#!/usr/bin/env python3
"""Attack sessions: one driver API, reusable cores.

Every attack driver subclasses ``repro.session.AttackSession``, which
owns the shared lifecycle: build the program, construct the core,
calibrate, classify.  ``session.reset()`` restores the exact
post-construction state without re-assembling anything -- so repeated
trials are byte-identical *and* cheaper than rebuilding a core per
trial.

Run:  python examples/attack_sessions.py
"""

import time

from repro.core.covert import ChannelParams, CovertChannel
from repro.cpu.noise import NoiseModel

TRIALS = 8


def _noise():
    return NoiseModel(evict_prob=0.01, jitter_sd=20.0, seed=7)


def main(argv=None):
    chan = CovertChannel(ChannelParams(), noise=_noise())

    # run_trials resets the session before each trial, so every trial
    # starts from the identical post-construction state: same noise
    # stream (the seeded model rewinds on reset), same cold caches,
    # same fitted thresholds.
    timings = chan.run_trials(lambda c: c.calibrate(), 3)
    print("three calibration trials on one reused core:")
    for i, t in enumerate(timings):
        print(f"  trial {i}: hit mean {t.hit_mean:7.1f}  "
              f"miss mean {t.miss_mean:7.1f}  threshold {t.threshold:7.1f}")
    assert timings[0].hit_times == timings[1].hit_times
    assert timings[0].miss_times == timings[2].miss_times
    print("  -> byte-identical (reset parity)")

    # The point of reuse: reset keeps the assembled program and the
    # front end's decode memos, so a trial pays for simulation only.
    # (Short trials make the fixed per-trial cost visible; the 2x
    # acceptance benchmark lives in benchmarks/test_session_throughput.py.)
    fast = ChannelParams(calibration_rounds=1)
    start = time.monotonic()
    for _ in range(TRIALS):
        fresh = CovertChannel(fast, noise=_noise())
        fresh.calibrate()
    rebuild = time.monotonic() - start

    chan = CovertChannel(fast, noise=_noise())
    start = time.monotonic()
    for _ in range(TRIALS):
        chan.reset()
        chan.calibrate()
    reuse = time.monotonic() - start

    print(f"{TRIALS} calibration trials, rebuild-per-trial: {rebuild:.2f}s")
    print(f"{TRIALS} calibration trials, reset-reuse:       {reuse:.2f}s "
          f"({rebuild / max(reuse, 1e-9):.2f}x)")
    assert reuse < rebuild, "reset-reuse must beat rebuilding"


if __name__ == "__main__":
    main()
