#!/usr/bin/env python3
"""End-to-end demo: extract a modular-exponentiation key from a
sibling SMT thread through the micro-op cache.

The victim runs textbook left-to-right square-and-multiply
(``base ** key mod 2^31-1``).  ``multiply`` only executes for *one*
bits, and its code occupies specific micro-op cache sets -- so a spy on
the other SMT thread of an AMD-Zen-style core (competitively shared
micro-op cache, paper Section V-B) watches its probe of those sets
spike once per one bit.  Calibration uses chosen keys on the
attacker's own copy of the binary, exactly as real key-extraction
attacks do.

Run:  python examples/key_extraction.py [nbits]
"""

import random
import sys

from repro.core.keyextract import MODULUS, KeyExtractor
from repro.cpu.config import CPUConfig


def main(argv=None):
    argv = sys.argv[1:] if argv is None else list(argv)
    nbits = int(argv[0]) if argv else 12
    rng = random.Random(2021)
    key = (1 << (nbits - 1)) | rng.getrandbits(nbits - 1)

    print(f"victim: computes base^key mod 2^31-1 with square-and-multiply")
    print(f"secret key ({nbits} bits): {key:0{nbits}b}\n")

    extractor = KeyExtractor(nbits=nbits)
    d_one, d_zero = extractor.calibrate()
    print(f"calibration (chosen keys on the attacker's own copy):")
    print(f"  1-iteration (square+multiply): ~{d_one:.0f} cycles")
    print(f"  0-iteration (square only):     ~{d_zero:.0f} cycles\n")

    result = extractor.extract(key)
    print(f"victim's modexp result: {result.modexp_result} "
          f"(correct: {result.modexp_result == pow(0x12345, key, MODULUS)})")
    print(f"spy observed {len(result.spikes)} multiply bursts")
    print(f"recovered key: {result.recovered_key:0{nbits}b}")
    print(f"bit errors:    {result.bit_errors}/{nbits} "
          f"({(1 - result.bit_errors / nbits) * 100:.0f}% accuracy)"
          + ("  -- exact recovery!" if result.exact else ""))

    print("\ncontrol: the same attack against Intel's statically")
    print("partitioned micro-op cache sees nothing:")
    from repro.core.keyextract import ModexpVictim

    victim = ModexpVictim(nbits=nbits, config=CPUConfig.skylake())
    _, samples = victim.run_pair(key)
    spikes = KeyExtractor._spikes(samples)
    print(f"  spikes observed on Skylake config: {len(spikes)}")


if __name__ == "__main__":
    main()
