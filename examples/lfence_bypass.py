#!/usr/bin/env python3
"""Variant-2 transient attack (Section VI-B): a secret-dependent
indirect call leaves its predicted target's footprint in the micro-op
cache *before dispatch*, leaking across Intel's recommended LFENCE.
CPUID -- which stalls fetch itself -- is the control that kills the
signal (Figure 10).

Run:  python examples/lfence_bypass.py
"""

from repro.core.transient import LfenceBypass


def main(argv=None):
    attack = LfenceBypass()
    print("victim: authorization check, then `call fun[secret]()`")
    print("training: legitimate authorised calls encode the secret-")
    print("dependent target in the indirect branch predictor\n")

    signals = attack.figure10(rounds=8)
    print(f"{'fence':8s} {'secret=0':>10s} {'secret=1':>10s} {'signal':>9s}")
    for name in ("none", "lfence", "cpuid"):
        sig = signals[name]
        print(f"{name:8s} {sig.timing.hit_mean:9.0f}c {sig.timing.miss_mean:9.0f}c "
              f"{sig.signal:8.0f}c")

    print()
    if signals["lfence"].signal > 100:
        print("LFENCE bypassed: the transmitter's footprint appears in the")
        print("micro-op cache even though it never dispatched to execution.")
    if abs(signals["cpuid"].signal) < 50:
        print("CPUID blocks the leak: fetch of younger instructions stalls")
        print("until it completes, so the indirect call is never fetched.")


if __name__ == "__main__":
    main()
