#!/usr/bin/env python3
"""Send a message between two code regions over the micro-op cache
(Section V-A), then repeat across the user/kernel boundary and across
SMT threads -- reporting Table-I-style bandwidth and error rates.

Run:  python examples/covert_channel.py [message]
"""

import sys

from repro.core.covert import ChannelParams, CovertChannel
from repro.core.crossdomain import CrossDomainChannel, CrossDomainParams
from repro.core.smtchannel import SMTChannel, SMTChannelParams
from repro.cpu.noise import NoiseModel


def report(name, rep, timing):
    print(f"{name}:")
    print(f"  signal: hit {timing.hit_mean:.0f} cyc vs miss "
          f"{timing.miss_mean:.0f} cyc (delta {timing.delta:.0f})")
    print(f"  {rep.bits_sent} bits sent, {rep.bit_errors} errors "
          f"({rep.error_rate * 100:.2f}%)")
    print(f"  bandwidth: {rep.bandwidth_kbps:.0f} Kbit/s over "
          f"{rep.total_cycles} simulated cycles")


def main(argv=None):
    argv = sys.argv[1:] if argv is None else list(argv)
    message = (argv[0] if argv else "I see dead uops").encode()
    noise = NoiseModel(evict_prob=0.005, jitter_sd=15.0, seed=1)

    print("=== same-address-space tiger/zebra channel ===")
    chan = CovertChannel(ChannelParams(), noise=noise)
    timing = chan.calibrate()
    rep = chan.transmit(message)
    report("same address space", rep, timing)

    print("\n=== with Reed-Solomon error correction ===")
    rep_ecc = chan.transmit(message, ecc=True)
    print(f"  raw error rate {rep_ecc.error_rate * 100:.2f}%, payload "
          f"recovered exactly: {rep_ecc.corrected_ok}")
    print(f"  corrected goodput: {rep_ecc.corrected_bandwidth_kbps:.0f} "
          f"Kbit/s (x{rep_ecc.ecc_overhead:.2f} inflation)")

    print("\n=== user/kernel cross-domain channel ===")
    xchan = CrossDomainChannel(CrossDomainParams())
    xtiming = xchan.calibrate()
    xrep = xchan.transmit(message[:8])
    report("user/kernel", xrep, xtiming)

    print("\n=== cross-SMT-thread channel (AMD Zen config) ===")
    schan = SMTChannel(SMTChannelParams())
    stiming = schan.calibrate()
    srep = schan.transmit(message[:4])
    report("cross-SMT", srep, stiming)


if __name__ == "__main__":
    main()
