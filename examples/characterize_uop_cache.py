#!/usr/bin/env python3
"""Reproduce the Section III characterization study: size,
associativity, placement rules, replacement policy and SMT
partitioning of the micro-op cache (Figures 3-7).

Run:  python examples/characterize_uop_cache.py [--fast]
"""

import argparse

from repro.core import characterize


def ascii_bar(value, scale=1.0, width=40):
    n = min(width, int(value * scale))
    return "#" * n


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="coarser sweeps (roughly 4x faster)")
    args = parser.parse_args(argv)
    step = 32 if args.fast else 16

    print("=== Figure 3a: micro-op cache size ===")
    result = characterize.measure_size(sizes=range(step, 385, step), iters=8)
    for x, y in zip(result.x, result.y):
        print(f"  {x:4d} regions | {y:8.1f} legacy uops/iter "
              f"{ascii_bar(y, 0.08)}")
    print(f"  -> capacity knee at {result.knee()} regions "
          "(paper: 256 lines)\n")

    print("=== Figure 3b: associativity ===")
    result = characterize.measure_associativity(ways=range(1, 15), iters=8)
    for x, y in zip(result.x, result.y):
        print(f"  {x:3d} ways | {y:7.2f} legacy uops/iter {ascii_bar(y, 3)}")
    print("  -> rises past 8 ways (paper: 8-way sets)\n")

    print("=== Figure 4: placement rules ===")
    placement = characterize.measure_placement(
        region_counts=(2, 4, 8), uop_counts=range(2, 25, 2), iters=8
    )
    print("  uops/region |   2 regions |   4 regions |   8 regions")
    for i, uops in enumerate(placement.uops_per_region):
        cells = " | ".join(
            f"{placement.dsb_uops[n][i]:11.1f}" for n in placement.regions
        )
        print(f"  {uops:11d} | {cells}")
    print("  -> cliffs at 18/12/6 uops per region "
          "(3 lines x 6 slots, <= 3 ways/region)\n")

    print("=== Figure 5: replacement policy (hotness diagonal) ===")
    rep = characterize.measure_replacement(
        main_iters=(1, 2, 4, 8, 12), evict_iters=(0, 2, 4, 8, 12),
        rounds=10,
    )
    print("  main\\evict " + "".join(f"{e:6d}" for e in rep.evict_iters))
    for m in rep.main_iters:
        row = "".join(f"{rep.cell(m, e):6.0f}" for e in rep.evict_iters)
        print(f"  M={m:2d}      {row}")
    print("  -> hot loops survive eviction pressure in proportion to "
          "their own iteration count\n")

    print("=== Figure 6: SMT partitioning ===")
    smt = characterize.measure_smt_partitioning(
        sizes=range(64, 289, 64 if args.fast else 32), iters=8
    )
    for size, st_val, smt_val in zip(smt.sizes, smt.single_thread, smt.smt):
        print(f"  {size:4d} regions | single {st_val:8.1f} | "
              f"SMT {smt_val:8.1f}")
    print("  -> capacity halves with a co-resident thread "
          "(static partitioning)\n")

    print("=== Figure 7: partition geometry ===")
    geo = characterize.measure_partition_geometry(
        sweep_sets=range(0, 32, 8),
        group_counts=(8, 16, 20, 32, 36),
        iters=8,
    )
    print("  7a: T1 sweeping sets vs T2 at set 0 "
          f"(max contention t1={max(geo.sweep_t1_mite):.1f}, "
          f"t2={max(geo.sweep_t2_mite):.1f} -> none)")
    print("  7b: 8-way groups streamable:")
    for n, st_val, smt_val in zip(geo.group_counts, geo.groups_single,
                                  geo.groups_smt):
        print(f"    {n:3d} groups | single {st_val:8.1f} | SMT {smt_val:8.1f}")
    print("  -> 32 groups single-threaded, 16 in SMT: the partition is "
          "16 private 8-way sets per thread")


if __name__ == "__main__":
    main()
