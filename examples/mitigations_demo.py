#!/usr/bin/env python3
"""Section VIII mitigations in action: flushing the micro-op cache at
domain crossings and privilege-level partitioning both close the
user/kernel channel (at a cost) -- but privilege partitioning does NOT
stop the variant-1 attack, whose priming and probing are entirely
user-mode.  A counter-based monitor detects loud attacks and misses
throttled ones.

Run:  python examples/mitigations_demo.py
"""

from repro.core.mitigations import (
    UopCacheMonitor,
    evaluate_crossdomain_mitigations,
    variant1_under_partitioning,
)


def main(argv=None):
    print("=== user/kernel channel vs mitigations ===")
    outcomes = evaluate_crossdomain_mitigations(b"\xa5\x5a")
    baseline_cycles = outcomes[0].kernel_cycles
    for o in outcomes:
        slowdown = o.kernel_cycles / baseline_cycles
        print(f"  {o.name:22s} signal={o.signal_delta:8.1f} cyc  "
              f"error={o.error_rate * 100:5.1f}%  "
              f"closed={str(o.channel_closed):5s}  "
              f"cost={slowdown:.2f}x")

    print("\n=== variant-1 vs privilege partitioning ===")
    base_acc, part_acc = variant1_under_partitioning(b"\x5a")
    print(f"  baseline accuracy:              {base_acc * 100:.0f}%")
    print(f"  privilege-partitioned accuracy: {part_acc * 100:.0f}%")
    print("  -> the attack adapts its tiger geometry to the halved "
          "user partition and still leaks (paper, Section VIII)")

    print("\n=== performance-counter monitoring ===")
    monitor = UopCacheMonitor(sigma=3.0)
    benign = [12, 14, 11, 13, 15, 12, 10, 14, 13, 12]
    loud_attack = [240, 310, 280, 260]
    stealthy_attack = [15, 16, 14, 15]
    loud = monitor.evaluate(benign, loud_attack)
    print(f"  loud attack:     {loud.detection_rate * 100:.0f}% of windows "
          f"flagged (threshold {loud.threshold:.1f} misses/window)")
    stealth = monitor.evaluate(benign, stealthy_attack)
    print(f"  throttled attack: {stealth.detection_rate * 100:.0f}% flagged "
          "-- mimicry evades counter-based detection (the paper's caveat)")


if __name__ == "__main__":
    main()
