#!/usr/bin/env python3
"""Quickstart: assemble a tiny program, run it on the simulated core,
and watch micro-ops move from the legacy decoders into the micro-op
cache.

Run:  python examples/quickstart.py
"""

from repro import Assembler, CPUConfig, Core, encodings as enc


def build_program():
    """A hot loop of three 32-byte regions, Listing-1 style."""
    asm = Assembler()
    asm.label("main")
    asm.emit(enc.mov_imm("r1", 20))  # loop counter
    asm.align(32)
    asm.label("top")
    for _ in range(3):
        asm.align(32)
        asm.emit(enc.nop(15), enc.nop(15), enc.nop(2))
    asm.emit(enc.dec("r1"))
    asm.emit(enc.jcc("nz", "top"))
    asm.emit(enc.halt())
    return asm.assemble(entry="main")


def main(argv=None):
    core = Core(CPUConfig.skylake(), build_program())

    cold = core.call("main")
    print("cold run (fills the micro-op cache):")
    print(f"  uops from legacy decode: {cold.uops_legacy}")
    print(f"  uops from micro-op cache: {cold.uops_dsb}")
    print(f"  cycles: {core.cycles()}")

    warm = core.call("main")
    print("warm run (streams from the micro-op cache):")
    print(f"  uops from legacy decode: {warm.uops_legacy}")
    print(f"  uops from micro-op cache: {warm.uops_dsb}")
    print(f"  cycles: {core.cycles()}")

    stats = core.uop_cache.stats
    print(f"micro-op cache: {stats.hits} hits / {stats.lookups} lookups "
          f"({stats.hit_rate * 100:.1f}%), "
          f"{core.uop_cache.occupancy()} lines resident")
    assert warm.uops_legacy < cold.uops_legacy


if __name__ == "__main__":
    main()
