#!/usr/bin/env python3
"""Gadget census (Section VI-A): scan a kernel-like code corpus for
transient-leak gadgets and compare the abundance of micro-op-cache
gadgets against classic Spectre-v1 gadgets.

The paper's taint analysis found 100 micro-op-cache gadgets in the
Linux kernel against 19 Spectre-v1 gadgets (plus 37 carrying a bit
mask and dependent branch).  We reproduce the census methodology on a
synthetic corpus with controlled pattern densities.

Run:  python examples/gadget_census.py [n_functions]
"""

import sys

from repro.core.gadgets import GadgetKind, generate_corpus, scan
from repro.isa.disasm import disassemble


def main(argv=None):
    argv = sys.argv[1:] if argv is None else list(argv)
    functions = int(argv[0]) if argv else 200
    corpus = generate_corpus(functions=functions)
    print(f"corpus: {functions} functions, "
          f"{len(corpus.instructions)} instructions, "
          f"{corpus.code_bytes} code bytes\n")

    census = scan(corpus)
    plain = census.count(GadgetKind.UOP_CACHE)
    masked = census.count(GadgetKind.MASKED_TRANSMIT)
    spectre = census.spectre_v1_total
    print("gadget census:")
    print(f"  usable by the micro-op cache attack: "
          f"{census.uop_cache_total}  (paper found 100 in Linux)")
    print(f"    plain bounds-check + indexed load: {plain}")
    print(f"    with bit-mask + dependent branch:  {masked} "
          "(paper: 37)")
    print(f"  usable by classic Spectre-v1:        {spectre} "
          "(paper: 19)")
    ratio = census.uop_cache_total / max(spectre, 1)
    print(f"\n  abundance ratio: {ratio:.1f}x "
          "(paper: ~5.3x) -- every Spectre-v1 gadget is also a "
          "micro-op cache gadget, but not vice versa")

    g = census.gadgets[0]
    print(f"\nfirst finding: {g}")
    print("disassembly around it:")
    print(disassemble(corpus, start=g.check_addr - 16,
                      end=(g.extra_addr or g.load_addr) + 16))


if __name__ == "__main__":
    main()
