#!/usr/bin/env python3
"""Watch a tiger/zebra conflict unfold in the micro-op cache.

Attaches a structured event recorder and takes per-set occupancy
snapshots around each phase of Listing 1's striped footprints: the
tiger fills eight ways of every fourth set, the zebra fills the
complementary stripes without evicting a single tiger line, and a
second tiger forces the eight-way conflicts the probe times.

Run:  python examples/observe_heatmap.py
"""

from repro import CPUConfig, Core
from repro.core.exploitgen import FootprintSpec, emit_chain, striped_sets
from repro.isa.assembler import Assembler
from repro.observe import (
    DSB_EVICT,
    OccupancySnapshot,
    TraceRecorder,
    owner_classifier,
)

TIGER_ARENA = 0x44_0000
ZEBRA_ARENA = 0x48_0000
TIGER2_ARENA = 0x4C_0000


def build_core():
    """Two mutually-exclusive striped footprints plus a conflicting
    twin of the first (same sets, different addresses)."""
    asm = Assembler()
    emit_chain(asm, "tiger", FootprintSpec(striped_sets(8), 8, TIGER_ARENA))
    emit_chain(asm, "zebra",
               FootprintSpec(striped_sets(8, offset=2), 8, ZEBRA_ARENA))
    emit_chain(asm, "tiger2", FootprintSpec(striped_sets(8), 8, TIGER2_ARENA))
    return Core(CPUConfig.skylake(), asm.assemble(entry="tiger"))


def main(argv=None):
    core = build_core()
    owner = owner_classifier(
        {
            "T": (TIGER_ARENA, ZEBRA_ARENA),
            "Z": (ZEBRA_ARENA, TIGER2_ARENA),
            "2": (TIGER2_ARENA, TIGER2_ARENA + 0x4_0000),
        },
        default="?",
    )
    recorder = TraceRecorder(kinds=(DSB_EVICT,)).connect(core)

    snapshots = []
    for label, entry in (
        ("after tiger", "tiger"),
        ("after zebra (disjoint stripes)", "zebra"),
        ("after second tiger (conflict)", "tiger2"),
    ):
        core.call(entry)
        snapshots.append(OccupancySnapshot.capture(core.uop_cache, label))

    for snap in snapshots:
        print(f"--- {snap.label} ---")
        print(snap.render_text(owner))
        print()

    conflicts = [e for e in recorder.events if e.get("cause") == "conflict"]
    print(f"conflict evictions: {len(conflicts)} "
          f"(all in tiger sets: "
          f"{ {e.get('set') for e in conflicts} <= set(striped_sets(8)) })")
    recorder.close()

    # the zebra never touched the tiger: its stripes only ever appear
    # in the diff, the tiger sets stay at full eight-way occupancy
    delta = snapshots[1].diff(snapshots[0])
    assert all(delta[s] == 0 for s in striped_sets(8))
    assert all(delta[s] == 8 for s in striped_sets(8, offset=2))
    print("zebra filled its stripes without evicting the tiger "
          "(mutually exclusive sets)")


if __name__ == "__main__":
    main()
