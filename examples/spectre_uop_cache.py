#!/usr/bin/env python3
"""Variant-1 transient-execution attack (Section VI-A): bypass a bounds
check and leak a secret string bit-by-bit through the micro-op cache,
then compare against the classic Spectre-v1 FLUSH+RELOAD baseline
(Table II).

Run:  python examples/spectre_uop_cache.py [secret]
"""

import sys

from repro.core.transient import ClassicSpectreV1, UopCacheSpectreV1


def main(argv=None):
    argv = sys.argv[1:] if argv is None else list(argv)
    secret = (argv[0] if argv else "uops!").encode()

    print(f"victim secret: {secret!r}")
    print("\n=== micro-op cache Spectre (variant-1) ===")
    attack = UopCacheSpectreV1(secret=secret)
    timing = attack.calibrate()
    print(f"probe calibration: delta {timing.delta:.0f} cycles "
          f"(sd {timing.delta_sd:.0f})")
    stats = attack.leak()
    print(f"leaked:   {stats.leaked!r}")
    print(f"accuracy: {stats.byte_accuracy * 100:.0f}% of bytes, "
          f"{stats.bit_errors} bit errors")
    print(f"cost:     {stats.total_cycles} cycles "
          f"({stats.seconds * 1e6:.1f} us simulated), "
          f"{stats.bandwidth_kbps:.1f} Kbit/s")
    print(f"stealth:  {stats.counters.llc_refs} LLC references, "
          f"{stats.counters.dsb_miss_penalty_cycles} uop-cache penalty "
          "cycles")

    print("\n=== classic Spectre-v1 baseline (FLUSH+RELOAD) ===")
    classic = ClassicSpectreV1(secret=secret)
    cstats = classic.leak()
    print(f"leaked:   {cstats.leaked!r}")
    print(f"cost:     {cstats.total_cycles} cycles "
          f"({cstats.seconds * 1e6:.1f} us simulated)")
    print(f"traffic:  {cstats.counters.llc_refs} LLC references, "
          f"{cstats.counters.llc_misses} LLC misses")

    print("\n=== Table II shape check ===")
    print(f"speedup over classic:    "
          f"{cstats.total_cycles / stats.total_cycles:.2f}x (paper: 2.6x)")
    print(f"LLC reference reduction: "
          f"{cstats.counters.llc_refs / max(stats.counters.llc_refs, 1):.1f}x "
          "(paper: ~5x)")

    print("\n=== LFENCE mitigates the classic variant ===")
    fenced = ClassicSpectreV1(secret=secret, lfence=True)
    fstats = fenced.leak()
    print(f"with LFENCE the baseline leaks {fstats.byte_accuracy * 100:.0f}% "
          "of bytes (the uop-cache variant-2 is NOT stopped by LFENCE -- "
          "see examples/lfence_bypass.py)")


if __name__ == "__main__":
    main()
