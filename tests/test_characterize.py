"""Characterization experiments reproduce the paper's structural
findings (Section III).  Sweeps use reduced point counts to stay fast;
the full-resolution versions live in benchmarks/."""

import pytest

from repro.core import characterize
from repro.cpu.config import CPUConfig


class TestSize:
    def test_knee_at_256_lines(self):
        result = characterize.measure_size(
            sizes=(64, 128, 192, 240, 272, 320), iters=8
        )
        assert result.knee() in (272, 320)
        # well under capacity: everything streams from the DSB
        assert result.y[0] < 4

    def test_sunny_cove_has_higher_knee(self):
        """The 1.5x Sunny Cove cache fits loops Skylake cannot."""
        skl = characterize.measure_size(sizes=(300,), iters=8)
        snc = characterize.measure_size(
            CPUConfig.sunny_cove(), sizes=(300,), iters=8
        )
        assert snc.y[0] < skl.y[0]


class TestAssociativity:
    def test_knee_at_8_ways(self):
        result = characterize.measure_associativity(ways=range(2, 13), iters=8)
        below = [y for x, y in zip(result.x, result.y) if x <= 8]
        above = [y for x, y in zip(result.x, result.y) if x > 9]
        assert max(below) < 2
        assert min(above) > 2


class TestPlacement:
    @pytest.fixture(scope="class")
    def result(self):
        return characterize.measure_placement(
            region_counts=(2, 8),
            uop_counts=(3, 6, 12, 18, 19, 21),
            iters=8,
        )

    def test_two_regions_cap_at_18_uops(self, result):
        series = dict(zip(result.uops_per_region, result.dsb_uops[2]))
        assert series[18] > 30  # 2 x 18 streams fine
        assert series[19] < 5  # rule 1: > 18 uops -> uncacheable

    def test_eight_regions_cap_at_6_uops(self, result):
        series = dict(zip(result.uops_per_region, result.dsb_uops[8]))
        assert series[6] > 40  # 8 x 6 = one full line per way
        # 12 uops/region demands 16 ways of one set: delivery collapses
        assert series[12] < series[6] / 2


class TestReplacement:
    @pytest.fixture(scope="class")
    def result(self):
        return characterize.measure_replacement(
            main_iters=(1, 4, 8), evict_iters=(0, 4, 8, 12), rounds=10
        )

    def test_no_eviction_without_interference(self, result):
        for m in result.main_iters:
            assert result.cell(m, 0) > 40

    def test_hotness_diagonal(self, result):
        """An evicting loop displaces the main loop only once its
        iteration count rivals the main loop's (Figure 5)."""
        assert result.cell(1, 4) < 10  # cold loop: evicted immediately
        assert result.cell(8, 4) > 35  # hot loop survives light pressure
        assert result.cell(8, 12) < result.cell(8, 4)  # heavy pressure wins

    def test_more_main_iterations_retain_more(self, result):
        assert result.cell(8, 8) >= result.cell(4, 8) >= result.cell(1, 8)


class TestSMTPartitioning:
    def test_knee_halves_in_smt(self):
        result = characterize.measure_smt_partitioning(
            sizes=(96, 120, 144, 192), iters=8
        )
        by_size_single = dict(zip(result.sizes, result.single_thread))
        by_size_smt = dict(zip(result.sizes, result.smt))
        # 144 and 192 regions fit single-threaded (<=256 lines) ...
        assert by_size_single[144] < 5
        assert by_size_single[192] < 5
        # ... but thrash the 128-line SMT half
        assert by_size_smt[144] > 50
        assert by_size_smt[192] > 50
        # while 96 and 120 fit either way
        assert by_size_smt[96] < 5
        assert by_size_smt[120] < 5


class TestPartitionGeometry:
    @pytest.fixture(scope="class")
    def result(self):
        return characterize.measure_partition_geometry(
            sweep_sets=(0, 8, 16, 24),
            group_counts=(8, 16, 20, 32, 36),
            iters=8,
        )

    def test_no_contention_across_sets(self, result):
        """Figure 7a: both threads keep streaming wherever T1 probes."""
        assert max(result.sweep_t1_mite) < 5
        assert max(result.sweep_t2_mite) < 5

    def test_16_sets_per_thread_in_smt(self, result):
        """Figure 7b: 32 groups stream single-threaded, 16 in SMT."""
        by_groups_single = dict(zip(result.group_counts, result.groups_single))
        by_groups_smt = dict(zip(result.group_counts, result.groups_smt))
        # the loop-control regions cost a couple of lines, so "fits"
        # means a small constant, not zero
        assert by_groups_single[32] < 80
        assert by_groups_single[36] > 300
        assert by_groups_smt[16] < 80
        assert by_groups_smt[20] > 300
