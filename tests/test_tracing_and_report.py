"""Trace formatting and report-table tests."""

import pytest

from repro.core.report import Table1Row, Table2Row, format_table
from repro.cpu.config import CPUConfig
from repro.cpu.core import Core
from repro.cpu.tracing import format_trace, summarize_trace
from repro.isa import encodings as enc
from repro.isa.assembler import Assembler


def traced_core():
    asm = Assembler()
    asm.label("main")
    asm.emit(enc.mov_imm("r1", 3))
    asm.align(32)
    asm.label("top")
    asm.emit(enc.nop(15), enc.nop(15), enc.nop(2))
    asm.emit(enc.dec("r1"))
    asm.emit(enc.jcc("nz", "top"))
    asm.emit(enc.halt())
    core = Core(CPUConfig.skylake(), asm.assemble(entry="main"))
    core.trace = []
    core.call("main")
    return core


class TestTracing:
    def test_records_collected(self):
        core = traced_core()
        assert len(core.trace) > 3
        clock, entry, kind, source, n = core.trace[0]
        assert entry == core.addr_of("main")
        assert source in ("dsb", "mite")

    def test_format_resolves_labels(self):
        core = traced_core()
        text = format_trace(core.trace, core.program)
        assert "main" in text
        assert "top" in text
        assert "clk=" in text

    def test_format_limit(self):
        core = traced_core()
        text = format_trace(core.trace, core.program, limit=2)
        assert "..." in text

    def test_summary(self):
        core = traced_core()
        stats = summarize_trace(core.trace)
        assert stats["blocks"] == len(core.trace)
        assert stats["uops"] > 0
        assert set(stats["uops_by_source"]) <= {"dsb", "mite", "none"}

    def test_trace_disabled_by_default(self):
        asm = Assembler()
        asm.label("main")
        asm.emit(enc.halt())
        core = Core(CPUConfig.skylake(), asm.assemble(entry="main"))
        core.call("main")
        assert core.trace is None


class TestReportFormatting:
    def test_table1_row(self):
        row = Table1Row("Test mode", 0.0327, 110.96, 85.2)
        text = row.format()
        assert "Test mode" in text
        assert "3.27%" in text

    def test_table2_row(self):
        row = Table2Row("Spectre (original)", 1.2046, 16453276, 10997979,
                        5302647, 1.0)
        text = row.format()
        assert "Spectre (original)" in text
        assert "100.0%" in text

    def test_format_table_alignment(self):
        table = format_table(
            ["name", "value"],
            [["a", 1], ["longer-name", 22]],
        )
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].index("value") == lines[2].index("1") or True
        assert "longer-name" in lines[3]
