"""Branch-prediction substrate tests: trainability is the requirement."""

import pytest

from repro.branch.predictor import (
    BTB,
    Bimodal,
    BranchPredictor,
    IndirectPredictor,
    ReturnStack,
)
from repro.isa import encodings as enc


class TestBimodal:
    def test_starts_weakly_taken(self):
        assert Bimodal().predict(0x1000)

    def test_mistrainable_not_taken(self):
        b = Bimodal()
        for _ in range(3):
            b.update(0x1000, taken=False)
        assert not b.predict(0x1000)

    def test_retrainable(self):
        b = Bimodal()
        for _ in range(4):
            b.update(0x1000, False)
        for _ in range(2):
            b.update(0x1000, True)
        assert b.predict(0x1000)

    def test_saturation_gives_hysteresis(self):
        b = Bimodal()
        for _ in range(100):
            b.update(0x1000, True)
        b.update(0x1000, False)  # one not-taken shouldn't flip it
        assert b.predict(0x1000)

    def test_aliasing_by_index_bits(self):
        b = Bimodal(entries=16)
        for _ in range(3):
            b.update(0x10, False)
        assert not b.predict(0x10 + 16)  # aliases to the same counter


class TestBTB:
    def test_caches_targets(self):
        btb = BTB()
        assert btb.predict(0x100) is None
        btb.update(0x100, 0x2000)
        assert btb.predict(0x100) == 0x2000

    def test_capacity_eviction(self):
        btb = BTB(entries=2)
        btb.update(1, 10)
        btb.update(2, 20)
        btb.update(3, 30)
        known = sum(1 for pc in (1, 2, 3) if btb.predict(pc) is not None)
        assert known == 2


class TestIndirect:
    def test_last_target_prediction(self):
        ind = IndirectPredictor()
        ind.update(0x50, 0xAAA)
        ind.update(0x50, 0xBBB)
        assert ind.predict(0x50) == 0xBBB


class TestReturnStack:
    def test_lifo(self):
        rsb = ReturnStack()
        rsb.push(0x100)
        rsb.push(0x200)
        assert rsb.pop() == 0x200
        assert rsb.pop() == 0x100
        assert rsb.pop() is None

    def test_depth_bound(self):
        rsb = ReturnStack(depth=2)
        for addr in (1, 2, 3):
            rsb.push(addr)
        assert rsb.pop() == 3
        assert rsb.pop() == 2
        assert rsb.pop() is None

    def test_snapshot_restore(self):
        rsb = ReturnStack()
        rsb.push(0x100)
        snap = rsb.snapshot()
        rsb.push(0x200)
        rsb.pop()
        rsb.pop()
        rsb.restore(snap)
        assert rsb.pop() == 0x100


class TestBranchPredictorUnit:
    def _bind(self, macro, addr, target=None):
        macro.bind(addr)
        if target is not None:
            macro.target = target
        return macro

    def test_direct_jmp_always_taken(self):
        bp = BranchPredictor()
        jmp = self._bind(enc.jmp("x"), 0x100, target=0x500)
        pred = bp.predict(jmp)
        assert pred.taken and pred.target == 0x500

    def test_call_pushes_rsb_and_ret_pops(self):
        bp = BranchPredictor()
        call = self._bind(enc.call("f"), 0x100, target=0x900)
        bp.predict(call)
        ret = self._bind(enc.ret(), 0x905)
        pred = bp.predict(ret)
        assert pred.target == call.end

    def test_jcc_follows_bimodal(self):
        bp = BranchPredictor()
        jcc = self._bind(enc.jcc("nz", "top"), 0x100, target=0x80)
        assert bp.predict(jcc).target == 0x80  # initially taken
        for _ in range(3):
            bp.resolve(jcc, taken=False, target=jcc.end, mispredicted=True)
        assert bp.predict(jcc).target == jcc.end

    def test_unseen_indirect_has_no_target(self):
        bp = BranchPredictor()
        ci = self._bind(enc.call_ind("r5"), 0x100)
        assert bp.predict(ci).target is None

    def test_indirect_learns_from_resolution(self):
        bp = BranchPredictor()
        ci = self._bind(enc.call_ind("r5"), 0x100)
        bp.predict(ci)
        bp.resolve(ci, taken=True, target=0x7000, mispredicted=False)
        assert bp.predict(ci).target == 0x7000

    def test_mispredict_counter(self):
        bp = BranchPredictor()
        jcc = self._bind(enc.jcc("z", "a"), 0x10, target=0x40)
        bp.resolve(jcc, taken=False, target=jcc.end, mispredicted=True)
        assert bp.mispredicts == 1
