"""Unit tests for the RC-series resource-claim verifiers
(``repro.lint.resources``): static page/store-site reachability,
claim verification diagnostics, capacity-relation pairs, and the lint
runner's contention targets.
"""

import pytest

from repro.contention.templates import generate_pair
from repro.lint import CATALOG, Severity, analyze, errors_of
from repro.lint.resources import (
    ITLBClaim,
    ResourcePairClaim,
    StoreClaim,
    verify_itlb_claim,
    verify_resource_claims,
    verify_resource_pair,
    verify_store_claim,
)


@pytest.fixture(scope="module")
def itlb_pair():
    pair = generate_pair("itlb", variant="conflict")
    return pair, analyze(pair.program, pair.config)


@pytest.fixture(scope="module")
def sb_pair():
    pair = generate_pair("store_buffer", variant="conflict")
    return pair, analyze(pair.program, pair.config)


class TestCatalogEntries:
    @pytest.mark.parametrize("code", ["RC001", "RC002", "RC003",
                                      "XC002", "XC003"])
    def test_new_codes_are_registered_errors(self, code):
        entry = CATALOG[code]
        assert entry.severity is Severity.ERROR
        assert entry.hint and entry.title


class TestITLBClaims:
    def test_generated_claims_verify_clean(self, itlb_pair):
        pair, report = itlb_pair
        assert verify_resource_claims(report, pair.resources) == []

    def test_unclaimed_page_is_rc001(self, itlb_pair):
        pair, report = itlb_pair
        good = next(c for c in pair.resources
                    if isinstance(c, ITLBClaim) and c.name == "victim")
        # drop one genuinely reachable page from the claim
        tampered = ITLBClaim(good.name, good.entry, good.pages[:-1])
        diags = verify_itlb_claim(report, tampered)
        assert {d.code for d in diags} == {"RC001"}
        assert any("unclaimed" in d.message for d in diags)

    def test_unreachable_claimed_page_is_rc001(self, itlb_pair):
        pair, report = itlb_pair
        good = next(c for c in pair.resources
                    if isinstance(c, ITLBClaim) and c.name == "victim")
        tampered = ITLBClaim(good.name, good.entry,
                             good.pages + (0x7FF,))
        diags = verify_itlb_claim(report, tampered)
        assert any("unreachable" in d.message for d in diags)

    def test_unknown_entry_label_is_rc001(self, itlb_pair):
        _, report = itlb_pair
        diags = verify_itlb_claim(
            report, ITLBClaim("ghost", "no_such_label", (1,))
        )
        assert [d.code for d in diags] == ["RC001"]


class TestStoreClaims:
    def test_generated_claims_verify_clean(self, sb_pair):
        pair, report = sb_pair
        assert verify_resource_claims(report, pair.resources) == []

    def test_wrong_site_count_is_rc002(self, sb_pair):
        pair, report = sb_pair
        good = next(c for c in pair.resources
                    if isinstance(c, StoreClaim) and c.name == "victim")
        diags = verify_store_claim(
            report, StoreClaim(good.name, good.entry, good.sites + 3)
        )
        assert [d.code for d in diags] == ["RC002"]

    def test_unknown_entry_label_is_rc002(self, sb_pair):
        _, report = sb_pair
        diags = verify_store_claim(
            report, StoreClaim("ghost", "no_such_label", 1)
        )
        assert [d.code for d in diags] == ["RC002"]


class TestPairClaims:
    def test_bad_relation_rejected_at_construction(self):
        with pytest.raises(ValueError, match="relation"):
            ResourcePairClaim("a", "v", "itlb", "overlapping")

    def test_false_conflict_is_rc003(self, itlb_pair):
        """Two tiny footprints cannot claim to oversubscribe 16
        entries."""
        pair, report = itlb_pair
        claims = {c.name: c for c in pair.resources
                  if isinstance(c, ITLBClaim)}
        small = ITLBClaim("victim", claims["victim"].entry,
                          claims["victim"].pages[:2])
        diags = verify_resource_pair(
            report, {"victim": small, "attacker": small},
            ResourcePairClaim("attacker", "victim", "itlb", "conflict"),
        )
        assert [d.code for d in diags] == ["RC003"]
        assert "within" in diags[0].message

    def test_false_disjoint_is_rc003(self, itlb_pair):
        pair, report = itlb_pair
        claims = {c.name: c for c in pair.resources
                  if isinstance(c, ITLBClaim)}
        diags = verify_resource_pair(
            report, claims,
            ResourcePairClaim("attacker", "victim", "itlb", "disjoint"),
        )
        assert [d.code for d in diags] == ["RC003"]

    def test_missing_referent_is_rc003(self, itlb_pair):
        _, report = itlb_pair
        diags = verify_resource_pair(
            report, {},
            ResourcePairClaim("nobody", "noone", "itlb", "conflict"),
        )
        assert len(diags) == 2
        assert all(d.code == "RC003" for d in diags)

    def test_non_itlb_resources_are_dynamic_only(self, sb_pair):
        _, report = sb_pair
        diags = verify_resource_pair(
            report, {},
            ResourcePairClaim("a", "v", "store_buffer", "conflict"),
        )
        assert diags == []


class TestPreflightIntegration:
    def test_session_preflight_rejects_tampered_claims(self):
        from repro.contention.channels import ITLBChannel
        from repro.lint import LintError
        from repro.session.base import AttackSession

        class Tampered(ITLBChannel):
            def build_program(self):
                program = super().build_program()
                claims = [c for c in self._lint_resources
                          if not isinstance(c, ITLBClaim)]
                claims.append(ITLBClaim("rx", "rx_epoch", (1, 2, 3)))
                self._lint_resources = claims
                return program

        with pytest.raises(LintError, match="RC001"):
            Tampered()

    def test_lint_runner_contention_targets_are_clean(self):
        from repro.lint.runner import run_lint

        run = run_lint(["contention-itlb", "contention-sb",
                        "contention-pairs"])
        assert run.ok, run.render(show_info=True)
        assert run.exit_code == 0
        by_name = {r.name: r for r in run.results}
        # the multi-program target analyzed real regions
        assert by_name["contention-pairs"].regions > 0
