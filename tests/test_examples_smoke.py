"""Smoke tests that the (fast) example scripts run end to end --
guards the documented entry points against bitrot.  The expensive
examples are exercised through their underlying APIs elsewhere."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "warm run" in out
    assert "micro-op cache" in out


def test_gadget_census(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["gadget_census", "40"])
    load_example("gadget_census").main()
    out = capsys.readouterr().out
    assert "abundance ratio" in out


def test_lfence_bypass(capsys):
    load_example("lfence_bypass").main()
    out = capsys.readouterr().out
    assert "LFENCE bypassed" in out
    assert "CPUID blocks the leak" in out


def test_examples_all_have_docstrings_and_main():
    for path in sorted(EXAMPLES.glob("*.py")):
        source = path.read_text()
        assert source.lstrip().startswith(('#!/usr/bin/env python3', '"""')), path
        assert "def main(" in source, path
        assert '__name__ == "__main__"' in source, path


def test_observe_heatmap(capsys):
    load_example("observe_heatmap").main()
    out = capsys.readouterr().out
    assert "µop cache occupancy" in out
    assert "conflict evictions" in out
    assert "mutually exclusive sets" in out


def test_attack_sessions(capsys):
    load_example("attack_sessions").main()
    out = capsys.readouterr().out
    assert "byte-identical (reset parity)" in out
    assert "reset-reuse" in out
