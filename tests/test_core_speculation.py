"""Speculative-execution machinery tests: squash correctness, transient
side effects, fences, and nested mispredictions."""

import pytest

from repro.cpu.config import CPUConfig
from repro.cpu.core import Core
from repro.errors import SimFault
from repro.isa import encodings as enc
from repro.isa.assembler import Assembler
from tests.conftest import build_core, run


def mistrained_branch_program(asm):
    """A victim whose bounds check is mistrained then bypassed.

    ``main`` (r1=index): load size (flushable), cmp, jae out;
    in-bounds path writes r9=1 and stores to a canary address.
    """
    asm.reserve("size", 8)
    asm.reserve("canary", 8)
    asm.label("main")
    asm.emit(enc.mov_imm("r10", asm.resolve("size"), width=64))
    asm.emit(enc.load("r3", "r10"))
    asm.emit(enc.cmp_reg("r1", "r3"))
    asm.emit(enc.jcc("ae", "oob"))
    asm.emit(enc.mov_imm("r9", 1))
    asm.emit(enc.mov_imm("r11", asm.resolve("canary"), width=64))
    asm.emit(enc.mov_imm("r12", 0x77))
    asm.emit(enc.store("r12", "r11"))
    asm.label("oob")
    asm.emit(enc.halt())
    asm.align(64)
    asm.label("flush_size")
    asm.emit(enc.clflush("r10"))
    asm.emit(enc.halt())


class TestSquashRestoresArchitecture:
    def _run_oob(self):
        core = build_core(mistrained_branch_program, entry="main")
        core.write_mem(core.addr_of("size"), 100)
        # train in-bounds so 'jae' is predicted not-taken
        for _ in range(4):
            core.call("main", regs={"r1": 5, "r9": 0})
        # training ran the in-bounds path architecturally: reset its
        # legitimate side effects before the attack
        core.write_mem(core.addr_of("canary"), 0)
        # flush the bound so the check resolves late
        core.call("flush_size")
        core.call("main", regs={"r1": 500, "r9": 0})
        return core

    def test_wrong_path_register_write_rolled_back(self):
        core = self._run_oob()
        assert core.read_reg("r9") == 0
        assert core.counters(0).branch_mispredicts >= 1
        assert core.counters(0).squashes >= 1

    def test_wrong_path_store_never_commits(self):
        core = self._run_oob()
        assert core.read_mem(core.addr_of("canary")) == 0

    def test_squashed_uops_counted_not_retired(self):
        core = self._run_oob()
        counters = core.counters(0)
        assert counters.squashed_uops > 0
        assert counters.retired_uops > 0

    def test_transient_uop_cache_fill_persists(self):
        """The headline microarchitectural property: wrong-path fetch
        fills the micro-op cache and the squash does not undo it."""
        core = self._run_oob()
        in_bounds_entry = None
        # the in-bounds tail (r9=1 etc.) lives right after the jae;
        # check some region beyond the branch is now resident
        resident = core.uop_cache.resident_entries(0)
        jae_end = None
        for addr, instr in core.program.instructions.items():
            if instr.mnemonic == "jae":
                jae_end = instr.end
        assert any(e >= core.addr_of("main") for e in resident)

    def test_transient_data_load_warms_cache(self):
        """Transient loads (issued before resolution) do update the
        data hierarchy -- the Spectre property."""
        def build(asm):
            asm.reserve("size", 8)
            asm.reserve("secretish", 64)
            asm.label("main")
            asm.emit(enc.mov_imm("r10", asm.resolve("size"), width=64))
            asm.emit(enc.load("r3", "r10"))
            asm.emit(enc.cmp_reg("r1", "r3"))
            asm.emit(enc.jcc("ae", "oob"))
            asm.emit(enc.mov_imm("r11", asm.resolve("secretish"), width=64))
            asm.emit(enc.load("r4", "r11"))
            asm.label("oob")
            asm.emit(enc.halt())
            asm.align(64)
            asm.label("flush_size")
            asm.emit(enc.clflush("r10"))
            asm.emit(enc.halt())

        core = build_core(build, entry="main")
        core.write_mem(core.addr_of("size"), 100)
        for _ in range(4):
            core.call("main", regs={"r1": 5})
        core.call("flush_size")
        target = core.addr_of("secretish")
        core.hierarchy.clflush(target)  # undo the training's warm-up
        assert core.hierarchy.probe_data_latency(target) == \
            core.hierarchy.dram_latency
        core.call("main", regs={"r1": 500})
        assert core.hierarchy.probe_data_latency(target) == \
            core.hierarchy.l1d.latency


class TestFetchSerialisation:
    def _fence_program(self, fence):
        def build(asm):
            asm.reserve("size", 8)
            asm.label("main")
            asm.emit(enc.mov_imm("r10", asm.resolve("size"), width=64))
            asm.emit(enc.load("r3", "r10"))
            asm.emit(enc.cmp_reg("r1", "r3"))
            asm.emit(enc.jcc("ae", "oob"))
            if fence == "lfence":
                asm.emit(enc.lfence())
            elif fence == "cpuid":
                asm.emit(enc.cpuid())
            asm.emit(enc.jmp("landing"))
            asm.label("oob")
            asm.emit(enc.halt())
            asm.org(0x41_0000)
            asm.label("landing")
            asm.emit(enc.nop(15), enc.nop(15), enc.nop(2))
            asm.emit(enc.halt())
            asm.org(0x42_0000)
            asm.label("flush_size")
            asm.emit(enc.clflush("r10"))
            asm.emit(enc.halt())

        return build

    def _landing_fetched_transiently(self, fence) -> bool:
        core = build_core(self._fence_program(fence), entry="main")
        core.write_mem(core.addr_of("size"), 100)
        for _ in range(4):
            core.call("main", regs={"r1": 5})
        core.flush_uop_cache()  # drop the training's footprint
        core.call("flush_size")
        core.call("main", regs={"r1": 500})
        # did the transient path reach 'landing'?
        return core.uop_cache.lookup(0, core.addr_of("landing")) is not None

    def test_lfence_does_not_stop_fetch(self):
        assert self._landing_fetched_transiently("lfence")

    def test_no_fence_fetches(self):
        assert self._landing_fetched_transiently("none")

    def test_cpuid_stops_fetch(self):
        assert not self._landing_fetched_transiently("cpuid")


class TestSuppression:
    def test_late_transient_load_never_touches_cache(self):
        """A load whose execution would begin after the squashing
        branch resolves must not perturb the data hierarchy (this is
        why LFENCE defeats classic Spectre)."""
        def build(asm):
            asm.reserve("size", 8)
            asm.reserve("probe_line", 64)
            asm.label("main")
            asm.emit(enc.mov_imm("r10", asm.resolve("size"), width=64))
            asm.emit(enc.load("r3", "r10"))
            asm.emit(enc.cmp_reg("r1", "r3"))
            asm.emit(enc.jcc("ae", "oob"))
            asm.emit(enc.lfence())  # delays the next load past resolve
            asm.emit(enc.mov_imm("r11", asm.resolve("probe_line"), width=64))
            asm.emit(enc.load("r4", "r11"))
            asm.label("oob")
            asm.emit(enc.halt())
            asm.align(64)
            asm.label("flush_size")
            asm.emit(enc.clflush("r10"))
            asm.emit(enc.halt())

        core = build_core(build, entry="main")
        core.write_mem(core.addr_of("size"), 100)
        for _ in range(4):
            core.call("main", regs={"r1": 5})
        core.call("flush_size")
        core.hierarchy.clflush(core.addr_of("probe_line"))
        core.call("main", regs={"r1": 500})
        assert core.hierarchy.probe_data_latency(core.addr_of("probe_line")) \
            == core.hierarchy.dram_latency


class TestNestedMisprediction:
    def test_inner_resolution_redirects_within_outer_window(self):
        """Variant-1's mechanism: an inner secret-dependent branch
        resolves early and resteers transient fetch to the true path
        while the outer bounds check is still pending."""
        def build(asm):
            asm.reserve("size", 8)
            asm.reserve("bit", 8)
            asm.label("main")
            asm.emit(enc.mov_imm("r10", asm.resolve("size"), width=64))
            asm.emit(enc.load("r3", "r10"))
            asm.emit(enc.cmp_reg("r1", "r3"))
            asm.emit(enc.jcc("ae", "oob"))
            asm.emit(enc.mov_imm("r11", asm.resolve("bit"), width=64))
            asm.emit(enc.load("r4", "r11"))
            asm.emit(enc.test_reg("r4", "r4"))
            asm.emit(enc.jcc("z", "path_zero"))
            asm.emit(enc.jmp("path_one"))
            asm.label("path_zero")
            asm.emit(enc.nop(1))
            asm.label("oob")
            asm.emit(enc.halt())
            asm.org(0x41_0000)
            asm.label("path_one")
            asm.emit(enc.nop(15), enc.nop(15), enc.nop(2))
            asm.emit(enc.halt())
            asm.org(0x42_0000)
            asm.label("flush_size")
            asm.emit(enc.clflush("r10"))
            asm.emit(enc.halt())

        core = build_core(build, entry="main")
        core.write_mem(core.addr_of("size"), 100)
        core.write_mem(core.addr_of("bit"), 1)
        # train: in-bounds, with bit=0 so 'jz' is trained taken
        core.write_mem(core.addr_of("bit"), 0)
        for _ in range(4):
            core.call("main", regs={"r1": 5})
        core.write_mem(core.addr_of("bit"), 1)
        core.call("main", regs={"r1": 5})  # warm the bit into L1
        core.call("flush_size")
        core.call("main", regs={"r1": 500})  # out of bounds
        # transient fetch must have reached path_one despite jz's
        # stale taken prediction
        assert core.uop_cache.lookup(0, core.addr_of("path_one")) is not None
        # and the architectural outcome is still the out-of-bounds halt
        assert core.read_reg("r9") == 0


class TestHaltAndFaults:
    def test_transient_halt_does_not_stop_thread(self):
        def build(asm):
            asm.reserve("size", 8)
            asm.label("main")
            asm.emit(enc.mov_imm("r10", asm.resolve("size"), width=64))
            asm.emit(enc.load("r3", "r10"))
            asm.emit(enc.cmp_reg("r1", "r3"))
            asm.emit(enc.jcc("ae", "oob"))
            asm.emit(enc.halt())  # transient halt on the wrong path
            asm.label("oob")
            asm.emit(enc.mov_imm("r9", 42))
            asm.emit(enc.halt())
            asm.align(64)
            asm.label("flush_size")
            asm.emit(enc.clflush("r10"))
            asm.emit(enc.halt())

        core = build_core(build, entry="main")
        core.write_mem(core.addr_of("size"), 100)
        for _ in range(4):
            core.call("main", regs={"r1": 5, "r9": 0})
        core.call("flush_size")
        core.call("main", regs={"r1": 500, "r9": 0})
        # the committed path is oob: r9 == 42 despite the wrong-path halt
        assert core.read_reg("r9") == 42

    def test_architectural_wild_fetch_raises(self):
        def build(asm):
            asm.org(0x41_0000)
            asm.label("nowhere_near")
            asm.emit(enc.halt())
            asm.org(0x40_0000)
            asm.label("main")
            asm.emit(enc.mov_imm("r5", 0x12345, width=64))
            asm.emit(enc.jmp_ind("r5"))

        core = build_core(build, entry="main")
        with pytest.raises(SimFault):
            core.call("main")

    def test_runaway_guard(self):
        def build(asm):
            asm.label("main")
            asm.label("spin")
            asm.emit(enc.jmp("spin", short=True))

        core = build_core(build, entry="main")
        with pytest.raises(SimFault):
            core.call("main", max_blocks=1000)


class TestLoopExecution:
    def test_loop_count_exact(self):
        def build(asm):
            asm.label("main")
            asm.emit(enc.mov_imm("r1", 10))
            asm.emit(enc.mov_imm("r2", 0))
            asm.label("top")
            asm.emit(enc.alu_imm("add", "r2", 3))
            asm.emit(enc.dec("r1"))
            asm.emit(enc.jcc("nz", "top"))
            asm.emit(enc.halt())

        core = run(build)
        assert core.read_reg("r2") == 30
        assert core.read_reg("r1") == 0

    def test_final_iteration_mispredict_is_recovered(self):
        def build(asm):
            asm.label("main")
            asm.emit(enc.mov_imm("r1", 5))
            asm.label("top")
            asm.emit(enc.dec("r1"))
            asm.emit(enc.jcc("nz", "top"))
            asm.emit(enc.mov_imm("r2", 99))
            asm.emit(enc.halt())

        core = run(build)
        assert core.read_reg("r2") == 99
        assert core.counters(0).branch_mispredicts >= 1
