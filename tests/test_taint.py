"""Secret-flow taint analysis tests: lattice propagation, implicit
flows, the claim shapes, the TA diagnostic catalog, capacity bounds
and the XC004 two-secret differential over the full target corpus."""

import json

import pytest

from repro.cpu.config import CPUConfig
from repro.isa import encodings as enc
from repro.isa.assembler import Assembler
from repro.lint import (
    SecretClaim,
    analyze,
    analyze_claim,
    errors_of,
    verify_secret_claims,
)

SKYLAKE = CPUConfig.skylake()


def _analyze(asm, entry="f"):
    return analyze(asm.assemble(entry=entry), SKYLAKE)


def _branchy_program():
    """``if (r7) one(); done()`` -- the minimal implicit flow."""
    asm = Assembler(base=0x2000)
    asm.label("f")
    asm.emit(enc.test_reg("r7", "r7"))
    asm.emit(enc.jcc("nz", "one"))
    asm.emit(enc.nop(2))
    asm.emit(enc.jmp("done"))
    asm.org(0x2040)
    asm.label("one")
    asm.emit(enc.nop(2))
    asm.emit(enc.jmp("done"))
    asm.org(0x2080)
    asm.label("done")
    asm.emit(enc.halt())
    return asm


class TestExplicitFlow:
    def test_register_claim_taints_dependent_branch(self):
        report = _analyze(_branchy_program())
        claim = SecretClaim(name="bit", entry="f", register="r7")
        leak, _ = analyze_claim(report, claim)
        assert len(leak.tainted_branches) == 1
        # the taken arm diverges; the join point is fetched either way
        assert 0x2040 in leak.regions
        assert 0x2080 not in leak.regions
        assert leak.capacity_bits == 1.0

    def test_untainted_register_is_silent(self):
        report = _analyze(_branchy_program())
        claim = SecretClaim(name="bit", entry="f", register="r9",
                            leaks_to=())
        leak, diags = analyze_claim(report, claim)
        assert leak.regions == frozenset()
        assert leak.capacity_bits == 0.0
        assert [d for d in diags if d.code == "TA002"] == []

    def test_flags_carry_taint_through_compare(self):
        """TEST r, r writes flags; JCC reads them -- two hops."""
        asm = Assembler(base=0x2000)
        asm.label("f")
        asm.emit(enc.mov("r3", "r7"))  # copy propagates taint
        asm.emit(enc.test_reg("r3", "r3"))
        asm.emit(enc.jcc("nz", "one"))
        asm.emit(enc.halt())
        asm.org(0x2040)
        asm.label("one")
        asm.emit(enc.halt())
        report = _analyze(asm)
        claim = SecretClaim(name="bit", entry="f", register="r7")
        leak, _ = analyze_claim(report, claim)
        assert leak.tainted_branches

    def test_secret_label_load_seeds_taint(self):
        asm = Assembler(base=0x2000)
        secret_addr = asm.reserve("secret", 8)
        asm.label("f")
        asm.emit(enc.mov_imm("r1", secret_addr, width=64))
        asm.emit(enc.load("r2", "r1", size=1))
        asm.emit(enc.test_reg("r2", "r2"))
        asm.emit(enc.jcc("nz", "one"))
        asm.emit(enc.halt())
        asm.org(0x2080)
        asm.label("one")
        asm.emit(enc.halt())
        report = _analyze(asm)
        claim = SecretClaim(name="s", entry="f", label="secret", size=8)
        leak, _ = analyze_claim(report, claim)
        assert leak.tainted_branches
        assert 0x2080 in leak.regions

    def test_unresolvable_load_overapproximates_when_secret_in_memory(self):
        """A load through an unknown pointer may reach the secret
        bytes (the Spectre bounds-bypass shape); its value must be
        assumed tainted."""
        asm = Assembler(base=0x2000)
        asm.reserve("secret", 8)
        asm.label("f")
        asm.emit(enc.load("r2", "r3"))  # r3 never defined: unresolvable
        asm.emit(enc.test_reg("r2", "r2"))
        asm.emit(enc.jcc("nz", "one"))
        asm.emit(enc.halt())
        asm.org(0x2040)
        asm.label("one")
        asm.emit(enc.halt())
        report = _analyze(asm)
        claim = SecretClaim(name="s", entry="f", label="secret", size=8)
        leak, _ = analyze_claim(report, claim)
        assert leak.tainted_branches


class TestEntriesShape:
    def test_alternative_entries_diverge_on_symmetric_difference(self):
        asm = Assembler(base=0x2000)
        asm.label("send_one")
        asm.emit(enc.nop(2))
        asm.emit(enc.jmp("fini"))
        asm.org(0x2040)
        asm.label("send_zero")
        asm.emit(enc.nop(2))
        asm.emit(enc.jmp("fini"))
        asm.org(0x2080)
        asm.label("fini")
        asm.emit(enc.halt())
        report = _analyze(asm, entry="send_one")
        claim = SecretClaim(
            name="bit", entries=("send_one", "send_zero")
        )
        leak, _ = analyze_claim(report, claim)
        assert leak.regions == frozenset({0x2000, 0x2040})
        assert leak.capacity_bits == 1.0  # log2 of 2 alternatives

    def test_aliased_entries_have_zero_dependence(self):
        """Two entry labels naming the same code cannot leak."""
        asm = Assembler(base=0x2000)
        asm.label("a")
        asm.label_at("b", 0x2000)
        asm.emit(enc.halt())
        report = _analyze(asm, entry="a")
        claim = SecretClaim(name="bit", entries=("a", "b"), leaks_to=())
        leak, diags = analyze_claim(report, claim)
        assert leak.regions == frozenset()
        assert leak.capacity_bits == 0.0
        assert errors_of(diags) == []


class TestIndirectCapacity:
    def test_jump_table_counts_log2_fanout(self):
        asm = Assembler(base=0x2000)
        asm.label("f")
        asm.emit(enc.jmp_ind("r7"))
        for i in range(4):
            asm.org(0x2040 + i * 0x40)
            asm.label(f"t{i}")
            asm.emit(enc.nop(2))
            asm.emit(enc.halt())
        report = _analyze(asm)
        claim = SecretClaim(
            name="sym", entry="f", register="r7",
            indirect_targets=("t0", "t1", "t2", "t3"),
        )
        leak, _ = analyze_claim(report, claim)
        assert len(leak.tainted_indirect) == 1
        assert leak.control_bits == 2.0  # log2(4 landing sites)
        assert leak.capacity_bits == 2.0


class TestDiagnostics:
    def test_ta001_undefined_secret_label(self):
        report = _analyze(_branchy_program())
        claim = SecretClaim(name="s", entry="f", label="nonesuch")
        leak, diags = analyze_claim(report, claim)
        assert [d.code for d in diags] == ["TA001"]
        assert leak.regions == frozenset()

    def test_ta001_undefined_entry_alternative(self):
        report = _analyze(_branchy_program())
        claim = SecretClaim(name="s", entries=("f", "nonesuch"))
        _, diags = analyze_claim(report, claim)
        assert [d.code for d in diags] == ["TA001"]

    def test_ta001_sourceless_claim(self):
        report = _analyze(_branchy_program())
        claim = SecretClaim(name="s", entry="f")
        _, diags = analyze_claim(report, claim)
        assert [d.code for d in diags] == ["TA001"]

    def test_ta002_reports_footprint_and_capacity(self):
        report = _analyze(_branchy_program())
        claim = SecretClaim(name="bit", entry="f", register="r7")
        _, diags = analyze_claim(report, claim)
        ta2 = [d for d in diags if d.code == "TA002"]
        assert len(ta2) == 1
        assert "capacity" in ta2[0].message

    def test_ta003_secret_derived_address(self):
        asm = Assembler(base=0x2000)
        asm.reserve("table", 64)
        asm.label("f")
        asm.emit(enc.load("r2", "r7"))  # secret pointer
        asm.emit(enc.halt())
        report = _analyze(asm)
        claim = SecretClaim(name="s", entry="f", register="r7",
                            leaks_to=())
        _, diags = analyze_claim(report, claim)
        assert any(d.code == "TA003" for d in diags)

    def test_ta004_constant_time_violation(self):
        report = _analyze(_branchy_program())
        claim = SecretClaim(name="bit", entry="f", register="r7",
                            constant_time=True)
        _, diags = analyze_claim(report, claim)
        assert any(d.code == "TA004" for d in diags)

    def test_constant_time_clean_program_passes(self):
        asm = Assembler(base=0x2000)
        asm.label("f")
        asm.emit(enc.alu("add", "r1", "r7"))
        asm.emit(enc.halt())
        report = _analyze(asm)
        claim = SecretClaim(name="bit", entry="f", register="r7",
                            constant_time=True)
        _, diags = analyze_claim(report, claim)
        assert not any(d.code == "TA004" for d in diags)

    def test_ta005_leaks_to_mismatch(self):
        report = _analyze(_branchy_program())
        claim = SecretClaim(name="bit", entry="f", register="r7",
                            leaks_to=("dsb", "itlb", "sb"))
        _, diags = analyze_claim(report, claim)
        assert any(d.code == "TA005" for d in diags)

    def test_ta006_uncacheable_dependent_region(self):
        asm = Assembler(base=0x2000)
        asm.label("f")
        asm.emit(enc.test_reg("r7", "r7"))
        asm.emit(enc.jcc("nz", "slow"))
        asm.emit(enc.halt())
        asm.org(0x2040)
        asm.label("slow")
        asm.emit(enc.pause())  # uncacheable: never fills the DSB
        asm.emit(enc.halt())
        report = _analyze(asm)
        claim = SecretClaim(name="bit", entry="f", register="r7",
                            leaks_to=("itlb",))
        leak, diags = analyze_claim(report, claim)
        assert 0x2040 in leak.dead_regions
        assert any(d.code == "TA006" for d in diags)

    def test_unknown_resource_rejected_at_declaration(self):
        with pytest.raises(ValueError):
            SecretClaim(name="s", entry="f", leaks_to=("l1d",))

    def test_claim_without_any_entry_rejected(self):
        with pytest.raises(ValueError):
            SecretClaim(name="s", register="r7")


class TestTaintReport:
    def test_verify_secret_claims_aggregates(self):
        report = _analyze(_branchy_program())
        claims = [
            SecretClaim(name="a", entry="f", register="r7"),
            SecretClaim(name="b", entry="f", register="r9",
                        leaks_to=()),
        ]
        out = verify_secret_claims(report, claims)
        assert len(out.leaks) == 2
        assert out.capacity_bits == 1.0
        assert 0x2040 in out.regions
        json.dumps(out.as_dict())  # must not raise


# ----------------------------------------------------------------------
# XC004: the two-secret differential over the shipped corpus


#: Targets carrying SecretClaim declarations and a secret_drive.
TAINT_TARGETS = (
    "tigerzebra", "covert", "smt", "crossdomain", "spectre",
    "classic", "lfence", "bti", "jumptable", "keyextract",
    "contention-itlb", "contention-sb",
)


class TestSecretCrossCheck:
    @pytest.fixture(scope="class")
    def run(self):
        from repro.lint.runner import run_lint

        return run_lint(list(TAINT_TARGETS), taint=True)

    def test_every_target_is_sound(self, run):
        """Acceptance: no live divergence escapes the static
        prediction on any of the twelve targets."""
        assert run.ok, run.render(show_info=True)
        assert run.exit_code == 0
        for result in run.results:
            assert result.taint is not None, result.name
            assert result.secretcheck is not None, result.name
            assert result.secretcheck.clean, (
                f"{result.name}: {result.secretcheck.summary()}"
            )

    def test_keyextract_has_nonzero_static_capacity(self, run):
        by_name = {r.name: r for r in run.results}
        assert by_name["keyextract"].taint.capacity_bits > 0

    def test_classic_spectre_is_the_negative_control(self, run):
        """ClassicSpectreV1 is a pure data channel: no
        secret-dependent fetch, zero static capacity, zero live
        divergence."""
        classic = {r.name: r for r in run.results}["classic"]
        assert classic.taint.capacity_bits == 0.0
        assert classic.taint.regions == frozenset()
        assert classic.secretcheck.divergences == 0

    def test_transmitting_targets_diverge_within_prediction(self, run):
        """The positive controls really do modulate the front end."""
        by_name = {r.name: r for r in run.results}
        for name in ("tigerzebra", "covert", "keyextract"):
            check = by_name[name].secretcheck
            assert check.divergences > 0, name
            assert check.clean, name

    def test_json_round_trip_carries_taint_and_secretcheck(self, run):
        data = json.loads(json.dumps(run.as_dict()))
        target = next(
            t for t in data["targets"] if t["target"] == "keyextract"
        )
        assert target["taint"]["capacity_bits"] > 0
        assert target["secretcheck"]["clean"] is True
