"""Property tests for the contention pair generator.

The generator's contract (``repro.contention.templates``): every
emitted pair assembles into a runnable program, passes the static lint
preflight (footprint rules + its own resource claims), and keeps
attacker/victim footprints disjoint-by-construction in the
``disjoint`` negative-control variant.  Hypothesis searches the
(resource, variant, domain, size) space for violations;
``test_contention_matrix.py`` keeps the example-based measurement
coverage.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.contention.session import MODES, ContentionSession
from repro.contention.templates import (
    DOMAINS,
    PAGE,
    RESOURCES,
    VARIANTS,
    generate_pair,
)
from repro.errors import ConfigError
from repro.lint import analyze, check_program, errors_of, verify_claims
from repro.lint.resources import ITLBClaim

#: Per-resource footprint-size menus.  Bounded so a draw stays cheap,
#: and chosen to respect each template's geometric constraints (set
#: counts dividing the cache geometry, disjoint shifts that cannot
#: wrap onto the conflict sets).
_SIZES = {
    "uop_cache": st.sampled_from([4, 8]),
    "itlb": st.integers(min_value=2, max_value=10),
    "dtlb": st.integers(min_value=2, max_value=10),
    "l1i": st.sampled_from([2, 4]),
    "l1d": st.sampled_from([2, 4]),
    "store_buffer": st.integers(min_value=20, max_value=60),
    "btb": st.integers(min_value=4, max_value=24),
}

_pair_space = st.sampled_from(RESOURCES).flatmap(
    lambda resource: st.tuples(
        st.just(resource),
        st.sampled_from(VARIANTS),
        st.sampled_from(DOMAINS),
        _SIZES[resource],
    )
)


@given(_pair_space)
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_every_pair_assembles_and_lints_clean(drawn):
    """Any in-menu pair assembles and has zero error-severity findings
    (footprint rules + chain/pair/resource claims)."""
    resource, variant, domain, size = drawn
    pair = generate_pair(resource, variant=variant, domain=domain, size=size)
    assert pair.program.labels["victim_work"]
    assert pair.program.labels[pair.attacker_label]
    assert pair.program.labels[pair.idle_label]
    report = analyze(pair.program, pair.config)
    findings = check_program(report)
    findings.extend(
        verify_claims(report, pair.chains, pair.pairs,
                      resources=pair.resources)
    )
    assert errors_of(findings) == [], [str(d) for d in findings]


def _data_pages(chain):
    return {addr // PAGE for addr in chain}


@given(_pair_space)
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_negative_controls_are_disjoint_by_construction(drawn):
    """In the ``disjoint`` variant no template shares index points:
    DSB sets, iTLB pages, data pages, L1 sets or bimodal slots."""
    resource, _, domain, size = drawn
    pair = generate_pair(resource, variant="disjoint", domain=domain,
                         size=size)
    meta = pair.meta
    if resource == "uop_cache":
        assert not set(meta["victim_sets"]) & set(meta["attacker_sets"])
    elif resource == "itlb":
        claims = {c.name: c for c in pair.resources
                  if isinstance(c, ITLBClaim)}
        assert not claims["victim"].page_set() & claims["attacker"].page_set()
    elif resource in ("dtlb", "l1d"):
        # victim chases its own reserved arena; the attacker's loads
        # stay inside a different reservation
        chain_pages = _data_pages(meta["pointer_chain"])
        a_base = pair.program.labels["attacker_darena"]
        v_base = pair.program.labels["victim_darena"]
        assert all(addr >= v_base for addr in meta["pointer_chain"])
        attacker_pages = {
            (a_base + i * PAGE) // PAGE
            for i in range(meta.get("attacker_pages", 16) + 1)
        }
        assert not chain_pages & attacker_pages
    elif resource == "l1i":
        assert not set(meta["victim_sets"]) & set(meta["attacker_sets"])
    elif resource == "store_buffer":
        # distinct data reservations: the only sharing left is the
        # drain port itself, which the 4-store pacing undercommits
        assert (pair.program.labels["victim_sbuf"]
                != pair.program.labels["attacker_sbuf"])
        assert meta["attacker_stores"] < meta["sb_entries"]
    elif resource == "btb":
        assert not set(meta["victim_slots"]) & set(meta["attacker_slots"])


@given(_pair_space)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_conflict_cells_share_index_points(drawn):
    """The ``conflict`` variant really does collide: same sets/slots,
    or a combined working set past the structure's capacity."""
    resource, _, domain, size = drawn
    pair = generate_pair(resource, variant="conflict", domain=domain,
                         size=size)
    meta = pair.meta
    if resource == "uop_cache":
        assert set(meta["victim_sets"]) == set(meta["attacker_sets"])
        assert meta["ways_demand"] > meta["cache_ways"]
    elif resource == "itlb":
        claims = {c.name: c for c in pair.resources
                  if isinstance(c, ITLBClaim)}
        combined = claims["victim"].page_set() | claims["attacker"].page_set()
        assert len(combined) > meta["itlb_entries"]
    elif resource == "dtlb":
        assert meta["victim_pages"] + meta["attacker_pages"] \
            > meta["dtlb_entries"]
    elif resource in ("l1i", "l1d"):
        assert set(meta["victim_sets"]) == set(meta["attacker_sets"])
        assert meta["victim_ways"] + meta["attacker_ways"] > 8
    elif resource == "store_buffer":
        assert meta["attacker_stores"] > meta["sb_entries"]
    elif resource == "btb":
        assert set(meta["victim_slots"]) == set(meta["attacker_slots"])


class TestValidation:
    def test_unknown_resource_rejected(self):
        with pytest.raises(ConfigError, match="resource"):
            generate_pair("frobnicator")

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigError, match="variant"):
            generate_pair("itlb", variant="maybe")

    def test_unknown_domain_rejected(self):
        with pytest.raises(ConfigError, match="domain"):
            generate_pair("itlb", domain="hypervisor")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError, match="mode"):
            ContentionSession("itlb", "telepathy")

    def test_modes_are_the_paper_scenarios(self):
        assert MODES == ("smt", "cross_domain", "time_sliced")

    def test_kernel_domain_marks_kernel_ranges(self):
        pair = generate_pair("itlb", domain="kernel")
        assert pair.program.kernel_ranges
        assert pair.attacker_label == "attacker_enter"
