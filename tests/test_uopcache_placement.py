"""Placement-rule tests (Section II-B), including property tests over
randomly composed regions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import encodings as enc
from repro.uopcache.placement import build_lines


def _bound(macros, base=0x1000):
    addr = base
    for m in macros:
        m.bind(addr)
        addr += m.length
    return macros


class TestBasicPacking:
    def test_six_uops_fill_one_line(self):
        macros = _bound([enc.nop(1) for _ in range(6)])
        lines = build_lines(macros)
        assert len(lines) == 1
        assert lines[0].slots == 6

    def test_seventh_uop_opens_second_line(self):
        macros = _bound([enc.nop(1) for _ in range(7)])
        lines = build_lines(macros)
        assert len(lines) == 2
        assert lines[0].slots == 6
        assert lines[1].slots == 1

    def test_max_three_lines_per_region(self):
        macros = _bound([enc.nop(1) for _ in range(18)])
        assert len(build_lines(macros)) == 3
        macros = _bound([enc.nop(1) for _ in range(19)])
        assert build_lines(macros) is None  # rule 1: not cacheable

    def test_empty_region_uncacheable(self):
        assert build_lines([]) is None


class TestRule64BitImmediates:
    def test_imm64_consumes_two_slots(self):
        macros = _bound([enc.mov_imm("r1", 1, width=64) for _ in range(3)])
        lines = build_lines(macros)
        assert len(lines) == 1
        assert lines[0].slots == 6
        # a fourth 2-slot op no longer fits the line
        macros = _bound([enc.mov_imm("r1", 1, width=64) for _ in range(4)])
        assert len(build_lines(macros)) == 2


class TestRuleNoSpanning:
    def test_macro_uops_never_split_across_lines(self):
        # five 1-uop nops then one 2-uop rdtsc: 5 + 2 > 6 so the rdtsc
        # must move entirely to line 2.
        macros = _bound([enc.nop(1)] * 5 + [enc.rdtsc("r0")])
        lines = build_lines(macros)
        assert len(lines) == 2
        assert lines[0].slots == 5
        assert lines[1].slots == 2


class TestRuleJumpTerminatesLine:
    def test_unconditional_jump_is_last_uop(self):
        macros = _bound([enc.nop(1), enc.jmp("x"), enc.nop(1)])
        macros[1].target = 0x9000
        lines = build_lines(macros)
        assert len(lines) == 2
        assert lines[0].uops[-1].is_unconditional
        assert lines[0].slots == 2

    def test_conditional_branch_does_not_terminate(self):
        macros = _bound([enc.nop(1), enc.jcc("z", "x"), enc.nop(1)])
        lines = build_lines(macros)
        assert len(lines) == 1


class TestRuleTwoBranchesPerLine:
    def test_third_branch_opens_new_line(self):
        macros = _bound([enc.jcc("z", "a"), enc.jcc("nz", "b"),
                         enc.jcc("z", "c")])
        lines = build_lines(macros)
        assert len(lines) == 2
        branches_in_first = sum(1 for u in lines[0].uops if u.is_branch)
        assert branches_in_first == 2


class TestRuleMSROM:
    def test_msrom_takes_whole_line(self):
        macros = _bound([enc.nop(1), enc.cpuid(), enc.nop(1)])
        lines = build_lines(macros)
        assert len(lines) == 3
        assert lines[1].msrom

    def test_msrom_alone(self):
        lines = build_lines(_bound([enc.syscall()]))
        assert len(lines) == 1
        assert lines[0].msrom


class TestRulePause:
    def test_pause_region_not_cached(self):
        assert build_lines(_bound([enc.pause()])) is None
        assert build_lines(_bound([enc.nop(1), enc.pause()])) is None


@st.composite
def region_macros(draw):
    """Random (bound) cacheable macro-op sequences <= 32 bytes."""
    choices = draw(
        st.lists(
            st.sampled_from(["nop1", "nop2", "imm64", "jcc", "jmp", "alu"]),
            min_size=1,
            max_size=12,
        )
    )
    macros = []
    total = 0
    for c in choices:
        if c == "nop1":
            m = enc.nop(1)
        elif c == "nop2":
            m = enc.nop(2)
        elif c == "imm64":
            m = enc.mov_imm("r1", 1, width=64)
        elif c == "jcc":
            m = enc.jcc("z", "t", short=True)
        elif c == "jmp":
            m = enc.jmp("t", short=True)
        else:
            m = enc.alu("add", "r1", "r2")
        if total + m.length > 32:
            break
        macros.append(m)
        total += m.length
        if c == "jmp":
            break  # walk would stop here anyway
    if not macros:
        macros = [enc.nop(1)]
    return _bound(macros)


@given(region_macros())
@settings(max_examples=200, deadline=None)
def test_packing_invariants(macros):
    """Every packed region obeys all placement rules."""
    lines = build_lines(macros)
    if lines is None:
        total_slots = sum(m.slot_count for m in macros)
        # only over-capacity or uncacheable content may be rejected
        assert total_slots > 0
        return
    assert 1 <= len(lines) <= 3
    all_uops = [u for line in lines for u in line.uops]
    assert all_uops == [u for m in macros for u in m.uops]
    for line in lines:
        if line.msrom:
            continue
        assert line.slots <= 6
        branches = sum(1 for u in line.uops if u.is_branch)
        assert branches <= 2
        for uop in line.uops[:-1]:
            assert not uop.is_unconditional
        # no macro spans a line boundary
        macro_addrs_here = {u.macro_addr for u in line.uops}
        for m in macros:
            if m.addr in macro_addrs_here:
                uops_here = [u for u in line.uops if u.macro_addr == m.addr]
                assert len(uops_here) == m.uop_count
