"""Unit tests for the macro-op/micro-op model."""

import pytest

from repro.isa.instruction import (
    BranchKind,
    MacroOp,
    MicroOp,
    UopKind,
    region_of,
)


class TestMicroOp:
    def test_default_single_slot(self):
        uop = MicroOp(UopKind.NOP)
        assert uop.slots == 1
        assert not uop.is_branch
        assert not uop.is_unconditional

    def test_branch_classification(self):
        assert MicroOp(UopKind.JCC, cond="z").is_branch
        assert not MicroOp(UopKind.JCC, cond="z").is_unconditional
        for kind in (UopKind.JMP, UopKind.JMP_IND, UopKind.CALL,
                     UopKind.CALL_IND, UopKind.RET):
            uop = MicroOp(kind)
            assert uop.is_branch
            assert uop.is_unconditional

    def test_load_reads_base_and_index(self):
        uop = MicroOp(UopKind.LOAD, dst="r1", base="r2", index="r3")
        assert set(uop.reads()) == {"r2", "r3"}
        assert uop.writes() == ("r1",)

    def test_jcc_reads_flags(self):
        uop = MicroOp(UopKind.JCC, cond="nz")
        assert "flags" in uop.reads()

    def test_alu_sets_flags_writes(self):
        uop = MicroOp(UopKind.ALU, dst="r1", srcs=("r1", "r2"),
                      alu_op="add", sets_flags=True)
        assert set(uop.writes()) == {"r1", "flags"}

    def test_store_reads_sources_and_address(self):
        uop = MicroOp(UopKind.STORE, srcs=("r4",), base="r5", disp=8)
        assert set(uop.reads()) == {"r4", "r5"}
        assert uop.writes() == ()


class TestMacroOp:
    def test_length_bounds(self):
        with pytest.raises(ValueError):
            MacroOp("bad", length=0, uops=(MicroOp(UopKind.NOP),))
        with pytest.raises(ValueError):
            MacroOp("bad", length=16, uops=(MicroOp(UopKind.NOP),))

    def test_needs_uops(self):
        with pytest.raises(ValueError):
            MacroOp("bad", length=1, uops=())

    def test_slot_count_counts_double_slots(self):
        macro = MacroOp(
            "movabs",
            length=10,
            uops=(MicroOp(UopKind.MOV_IMM, dst="r0", imm=1, slots=2),),
        )
        assert macro.uop_count == 1
        assert macro.slot_count == 2

    def test_bind_stamps_uops(self):
        uops = (MicroOp(UopKind.NOP), MicroOp(UopKind.NOP))
        macro = MacroOp("nop2x", length=4, uops=uops)
        macro.bind(0x1000)
        assert macro.addr == 0x1000
        assert macro.end == 0x1004
        for uop in macro.uops:
            assert uop.macro_addr == 0x1000
            assert uop.macro_len == 4

    def test_is_control(self):
        jmp = MacroOp("jmp", length=5, branch_kind=BranchKind.JMP,
                      uops=(MicroOp(UopKind.JMP),))
        assert jmp.is_control
        nop = MacroOp("nop", length=1, uops=(MicroOp(UopKind.NOP),))
        assert not nop.is_control


class TestRegionOf:
    @pytest.mark.parametrize(
        "addr,expected",
        [(0, 0), (31, 0), (32, 32), (0x400013, 0x400000), (0x40003F, 0x400020)],
    )
    def test_alignment(self, addr, expected):
        assert region_of(addr) == expected

    def test_custom_region_size(self):
        assert region_of(100, region_bytes=64) == 64
