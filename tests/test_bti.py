"""Spectre-v2 (branch target injection) chained with the micro-op
cache disclosure primitive (Section VI-A's closing remark)."""

import pytest

from repro.core.bti import BranchTargetInjection


class TestAliasing:
    def test_training_branch_aliases_victim_call(self):
        attack = BranchTargetInjection(secret=b"\x00")
        predictor = attack.core.thread(0).predictor.indirect
        v = attack.core.addr_of("victim_call")
        a = attack.core.addr_of("attacker_branch")
        assert v != a  # different code...
        assert predictor.slot(v) == predictor.slot(a)  # ...same slot

    def test_poison_steers_prediction(self):
        attack = BranchTargetInjection(secret=b"\x00")
        attack._install_secret()
        attack._poison()
        predictor = attack.core.thread(0).predictor
        predicted = predictor.indirect.predict(
            attack.core.addr_of("victim_call")
        )
        assert predicted == attack.core.addr_of("gadget")


class TestLeak:
    def test_leaks_secret(self):
        attack = BranchTargetInjection(secret=b"\xa5\x3c")
        stats = attack.leak()
        assert stats.leaked == b"\xa5\x3c"
        assert stats.bit_errors == 0

    def test_victim_never_reaches_gadget_architecturally(self):
        """The gadget is outside the victim's control-flow graph: after
        a full attack the victim's architectural behaviour is exactly
        the benign handler's."""
        attack = BranchTargetInjection(secret=b"\x5a")
        attack.calibrate(rounds=2)
        before = attack.core.read_reg("r6")
        attack._poison()
        attack._call("flush_table")
        attack._call("invoke_victim", regs={"r1": 0, "r2": 0})
        # the benign handler (and only it) committed: r6 incremented
        assert attack.core.read_reg("r6") == before + 1

    def test_calibration_is_separable(self):
        attack = BranchTargetInjection(secret=b"\x00")
        timing = attack.calibrate(rounds=4)
        assert timing.delta > 100
