"""Harness unit tests: job hashing, the content-addressed cache, the
executor (parallel, serial, retries, timeouts) and sweep expansion.

The determinism tests are the cache's safety argument: same job hash
must mean byte-identical result JSON even across fresh processes, and
any change to seed/config/params must change the hash (no false hits).
"""

import json
import subprocess
import sys
import time

import pytest

from repro.cpu.config import CPUConfig
from repro.harness import (
    CACHE_SCHEMA_VERSION,
    Job,
    NullCache,
    ResultCache,
    Sweep,
    TieredResultCache,
    TransientJobError,
    canonical_json,
    fingerprint_program,
    grid,
    outcome_records,
    register,
    run_jobs,
    write_csv,
    write_jsonl,
)
from repro.harness.job import resolve


# ----------------------------------------------------------------------
# Test-only job functions (run serially so registration in this module
# is always visible; cross-process tests use the built-in catalogue).

_FLAKY_STATE = {"calls": 0}


@register("test.echo")
def _echo(config, seed, value):
    return {"value": value, "seed": seed, "config": config.name}


@register("test.flaky")
def _flaky(config, seed, fail_times):
    _FLAKY_STATE["calls"] += 1
    if _FLAKY_STATE["calls"] <= fail_times:
        raise TransientJobError("not yet")
    return "ok"


@register("test.fatal")
def _fatal(config, seed):
    raise ValueError("permanently broken")


@register("test.sleepy")
def _sleepy(config, seed, seconds):
    time.sleep(seconds)
    return "done"


def _size_job(n=32, iters=2, **kwargs) -> Job:
    return Job("characterize.size", CPUConfig.skylake(),
               {"n": n, "iters": iters}, **kwargs)


# ----------------------------------------------------------------------
# Hashing


def test_same_job_same_hash():
    assert _size_job().key() == _size_job().key()


def test_seed_changes_hash():
    assert _size_job(seed=0).key() != _size_job(seed=1).key()


def test_params_change_hash():
    assert _size_job(n=32).key() != _size_job(n=64).key()


def test_config_changes_hash():
    a = _size_job()
    b = Job("characterize.size", CPUConfig.skylake(uop_cache_ways=12),
            {"n": 32, "iters": 2})
    assert a.key() != b.key()
    c = Job("characterize.size", CPUConfig.zen(), {"n": 32, "iters": 2})
    assert a.key() != c.key()


def test_tag_does_not_change_hash():
    assert _size_job(tag="a").key() == _size_job(tag="b").key()


def test_hash_stable_across_interpreters():
    """The key must be reproducible in a brand-new interpreter (no
    dependence on hash randomisation or import order)."""
    here = _size_job().key()
    code = (
        "from repro.cpu.config import CPUConfig\n"
        "from repro.harness import Job\n"
        "print(Job('characterize.size', CPUConfig.skylake(),"
        " {'n': 32, 'iters': 2}).key())\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True,
        check=True,
    )
    assert out.stdout.strip() == here


def test_program_fingerprint_sensitive_to_code():
    from repro.core import microbench

    a = fingerprint_program(microbench.size_loop(8, 2))
    b = fingerprint_program(microbench.size_loop(9, 2))
    assert a != b
    assert a == fingerprint_program(microbench.size_loop(8, 2))


def test_unknown_fn_rejected():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError, match="unknown job function"):
        Job("no.such.fn").key()


def test_unserialisable_params_rejected():
    with pytest.raises(TypeError, match="JSON-serialisable"):
        canonical_json({"bad": object()})


# ----------------------------------------------------------------------
# Cache


def test_cache_roundtrip(tmp_path):
    cache = ResultCache(tmp_path)
    key = "ab" + "0" * 62
    assert cache.get(key) is None
    cache.put(key, "test.echo", {"x": 1})
    assert cache.get(key) == {"x": 1}
    assert key in cache
    stats = cache.stats()
    assert stats.entries == 1
    assert stats.total_bytes > 0
    assert cache.clear() == 1
    assert cache.get(key) is None


def test_cache_rejects_wrong_schema(tmp_path):
    cache = ResultCache(tmp_path)
    key = "cd" + "0" * 62
    path = cache.path_for(key)
    path.parent.mkdir(parents=True)
    path.write_text(json.dumps(
        {"schema": CACHE_SCHEMA_VERSION + 1, "key": key, "result": 5}
    ))
    assert cache.get(key) is None


def test_cache_rejects_corrupt_blob(tmp_path):
    cache = ResultCache(tmp_path)
    key = "ef" + "0" * 62
    path = cache.path_for(key)
    path.parent.mkdir(parents=True)
    path.write_text("{not json")
    assert cache.get(key) is None


def test_cache_blob_is_canonical(tmp_path):
    """The stored blob must be byte-identical no matter who writes it."""
    a, b = ResultCache(tmp_path / "a"), ResultCache(tmp_path / "b")
    key = "12" + "0" * 62
    a.put(key, "f", {"z": 1, "a": [1.5, 2]})
    b.put(key, "f", {"a": [1.5, 2], "z": 1})
    assert a.path_for(key).read_bytes() == b.path_for(key).read_bytes()


def test_cache_env_default(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
    assert ResultCache().root == tmp_path / "envcache"


# ----------------------------------------------------------------------
# Cache: corrupt-blob quarantine


def test_corrupt_blob_is_quarantined_not_raised(tmp_path):
    """A truncated/garbled result blob degrades to a miss and is moved
    aside so the lookup path never re-trips on it."""
    cache = ResultCache(tmp_path)
    key = "ab" + "1" * 62
    path = cache.path_for(key)
    path.parent.mkdir(parents=True)
    path.write_text('{"schema": 3, "key": "' + key)  # torn mid-write
    assert cache.get(key) is None
    assert not path.exists()
    quarantined = list(cache.quarantine_dir.iterdir())
    assert len(quarantined) == 1
    assert cache.get(key) is None  # clean miss forever after


def test_wrong_key_blob_is_quarantined(tmp_path):
    cache = ResultCache(tmp_path)
    key = "cd" + "1" * 62
    path = cache.path_for(key)
    path.parent.mkdir(parents=True)
    path.write_text(json.dumps(
        {"schema": CACHE_SCHEMA_VERSION, "key": "ee" + "0" * 62,
         "result": 5}))
    assert cache.get(key) is None
    assert not path.exists()
    assert list(cache.quarantine_dir.iterdir())


def test_truncated_artifact_is_quarantined(tmp_path):
    """An artifact whose bytes disagree with its integrity sidecar is
    a miss, and both files land in quarantine."""
    cache = ResultCache(tmp_path)
    key = "ef" + "1" * 62
    path = cache.put_artifact(key, "trace.bin", b"x" * 1024)
    sidecar = path.with_name("trace.bin" + cache.ARTIFACT_DIGEST_SUFFIX)
    assert cache.get_artifact(key, "trace.bin") == b"x" * 1024
    path.write_bytes(b"x" * 100)  # torn copy
    assert cache.get_artifact(key, "trace.bin") is None
    assert not path.exists() and not sidecar.exists()
    assert len(list(cache.quarantine_dir.iterdir())) == 2
    assert cache.get_artifact(key, "trace.bin") is None


def test_legacy_artifact_without_sidecar_is_served(tmp_path):
    cache = ResultCache(tmp_path)
    key = "01" + "1" * 62
    path = cache.artifact_path(key, "old.bin")
    path.parent.mkdir(parents=True)
    path.write_bytes(b"pre-sidecar blob")
    assert cache.get_artifact(key, "old.bin") == b"pre-sidecar blob"


def test_clear_empties_quarantine_and_sidecars(tmp_path):
    cache = ResultCache(tmp_path)
    key = "23" + "1" * 62
    bad = cache.path_for(key)
    bad.parent.mkdir(parents=True)
    bad.write_text("{torn")
    assert cache.get(key) is None  # quarantines
    cache.put(key, "f", {"x": 1})
    cache.put_artifact(key, "a.bin", b"data")
    removed = cache.clear()
    # result blob + artifact + quarantined blob (sidecar uncounted)
    assert removed == 3
    assert not cache.quarantine_dir.exists()
    assert cache.stats().entries == 0
    assert cache.stats().artifacts == 0


# ----------------------------------------------------------------------
# Cache: cluster tiering (memory -> local disk -> shared)


def test_tiered_cache_reads_through_and_promotes(tmp_path):
    shared = ResultCache(tmp_path / "shared")
    tiered = TieredResultCache(ResultCache(tmp_path / "local"), shared)
    key = "45" + "1" * 62
    shared.put(key, "f", {"who": "other-node"})
    # first read walks to the shared tier...
    assert tiered.get(key) == {"who": "other-node"}
    assert tiered.tier_hits["shared"] == 1
    # ...and promotes: now on local disk and in the hot set
    assert tiered.local.get(key) == {"who": "other-node"}
    assert tiered.get(key) == {"who": "other-node"}
    assert tiered.tier_hits["memory"] == 1


def test_tiered_cache_writes_through_every_tier(tmp_path):
    tiered = TieredResultCache.from_roots(
        tmp_path / "local", tmp_path / "shared")
    key = "67" + "1" * 62
    tiered.put(key, "f", {"x": 9})
    assert tiered.local.get(key) == {"x": 9}
    assert tiered.shared.get(key) == {"x": 9}
    # a sibling node sharing the store sees the result
    sibling = TieredResultCache.from_roots(
        tmp_path / "other-local", tmp_path / "shared")
    assert sibling.get(key) == {"x": 9}
    assert sibling.tier_hits["shared"] == 1


def test_tiered_cache_memory_tier_is_bounded_lru(tmp_path):
    tiered = TieredResultCache.from_roots(
        tmp_path / "local", None, memory_capacity=2)
    keys = [f"{i:02d}" + "2" * 62 for i in range(3)]
    for i, key in enumerate(keys):
        tiered.put(key, "f", {"i": i})
    assert tiered.hot_keys == 2  # oldest evicted from memory...
    assert tiered.get(keys[0]) == {"i": 0}  # ...but still on disk
    assert tiered.tier_hits["local"] == 1


def test_tiered_cache_clear_leaves_shared_store_alone(tmp_path):
    tiered = TieredResultCache.from_roots(
        tmp_path / "local", tmp_path / "shared")
    key = "89" + "1" * 62
    tiered.put(key, "f", {"x": 1})
    tiered.clear()
    assert tiered.local.get(key) is None
    assert tiered.shared.get(key) == {"x": 1}  # fleet property, not ours
    assert tiered.get(key) == {"x": 1}  # read-through refills


def test_tiered_cache_promotes_artifacts_from_shared(tmp_path):
    shared = ResultCache(tmp_path / "shared")
    tiered = TieredResultCache(ResultCache(tmp_path / "local"), shared)
    key = "ab" + "2" * 62
    shared.put_artifact(key, "trace.json", b"[1, 2]")
    assert tiered.get_artifact(key, "trace.json") == b"[1, 2]"
    assert tiered.local.get_artifact(key, "trace.json") == b"[1, 2]"


# ----------------------------------------------------------------------
# Executor: serial semantics


def test_serial_run_and_cache(tmp_path):
    cache = ResultCache(tmp_path)
    jobs = [Job("test.echo", params={"value": v}) for v in (1, 2)]
    outcomes, summary = run_jobs(jobs, workers=1, cache=cache)
    assert [o.result["value"] for o in outcomes] == [1, 2]
    assert (summary.executed, summary.cached, summary.failed) == (2, 0, 0)

    outcomes, summary = run_jobs(jobs, workers=1, cache=cache)
    assert (summary.executed, summary.cached) == (0, 2)
    assert all(o.from_cache for o in outcomes)


def test_refresh_recomputes(tmp_path):
    cache = ResultCache(tmp_path)
    jobs = [Job("test.echo", params={"value": 9})]
    run_jobs(jobs, cache=cache)
    _, summary = run_jobs(jobs, cache=cache, refresh=True)
    assert summary.executed == 1
    assert summary.cached == 0


def test_no_cache_runs_everything():
    jobs = [Job("test.echo", params={"value": 3})]
    _, s1 = run_jobs(jobs, cache=None)
    _, s2 = run_jobs(jobs, cache=NullCache())
    assert s1.executed == s2.executed == 1


def test_duplicate_jobs_computed_once():
    jobs = [Job("test.echo", params={"value": 7}) for _ in range(3)]
    outcomes, summary = run_jobs(jobs)
    assert summary.executed == 1
    assert summary.cached == 2  # fanned out from the single computation
    assert [o.result["value"] for o in outcomes] == [7, 7, 7]


def test_transient_failure_retried():
    _FLAKY_STATE["calls"] = 0
    outcomes, summary = run_jobs(
        [Job("test.flaky", params={"fail_times": 1})], retries=1,
    )
    assert outcomes[0].ok
    assert outcomes[0].result == "ok"
    assert summary.retries == 1


def test_retry_budget_exhausted():
    _FLAKY_STATE["calls"] = 0
    outcomes, summary = run_jobs(
        [Job("test.flaky", params={"fail_times": 10})], retries=2,
    )
    assert not outcomes[0].ok
    assert "TransientJobError" in outcomes[0].error
    assert summary.failed == 1
    assert summary.retries == 2


def test_fatal_failure_not_retried():
    outcomes, summary = run_jobs([Job("test.fatal")], retries=3)
    assert not outcomes[0].ok
    assert "permanently broken" in outcomes[0].error
    assert summary.retries == 0


def test_failed_job_not_cached(tmp_path):
    cache = ResultCache(tmp_path)
    outcomes, _ = run_jobs([Job("test.fatal")], cache=cache, retries=0)
    assert cache.get(outcomes[0].key) is None


def test_per_job_timeout():
    outcomes, summary = run_jobs(
        [Job("test.sleepy", params={"seconds": 5.0})],
        timeout=0.2, retries=0,
    )
    assert not outcomes[0].ok
    assert "JobTimeoutError" in outcomes[0].error
    assert summary.failed == 1


# ----------------------------------------------------------------------
# Executor: process pool


def test_parallel_matches_serial():
    jobs = [_size_job(n) for n in (32, 64, 96, 128)]
    serial, _ = run_jobs(jobs, workers=1)
    parallel, summary = run_jobs(jobs, workers=2)
    assert [o.result for o in parallel] == [o.result for o in serial]
    assert summary.executed == 4


def test_same_hash_byte_identical_json_across_processes(tmp_path):
    """Two fresh worker processes computing the same job must produce
    byte-identical canonical result JSON (and hence identical cached
    blobs) -- the cache's core soundness property."""
    job = _size_job(n=48, iters=3)
    blobs = []
    for sub in ("a", "b"):
        cache = ResultCache(tmp_path / sub)
        outcomes, summary = run_jobs([job], workers=2, cache=cache)
        assert summary.executed == 1
        blobs.append(cache.path_for(job.key()).read_bytes())
        assert canonical_json(outcomes[0].result) in blobs[-1]
    assert blobs[0] == blobs[1]


def test_pool_failure_degrades_to_serial(monkeypatch):
    """If the pool cannot be created the runner falls back to serial
    in-process execution and still returns every result."""
    import repro.harness.executor as executor

    def broken_pool(*args, **kwargs):
        raise OSError("no processes for you")

    monkeypatch.setattr(executor, "ProcessPoolExecutor", broken_pool)
    jobs = [Job("test.echo", params={"value": v}) for v in (1, 2, 3)]
    outcomes, summary = run_jobs(jobs, workers=4)
    assert [o.result["value"] for o in outcomes] == [1, 2, 3]
    assert summary.fallback_serial
    assert summary.executed == 3


# ----------------------------------------------------------------------
# Sweeps


def test_grid_order():
    points = grid({"a": [1, 2], "b": [10, 20]})
    assert points == [
        {"a": 1, "b": 10}, {"a": 1, "b": 20},
        {"a": 2, "b": 10}, {"a": 2, "b": 20},
    ]


def test_sweep_expansion():
    sweep = Sweep("test.echo", axes={"value": [1, 2, 3]}, base={}, seed=5)
    jobs = sweep.jobs()
    assert len(sweep) == 3
    assert [j.params["value"] for j in jobs] == [1, 2, 3]
    assert all(j.seed == 5 for j in jobs)
    assert jobs[0].tag == "test.echo[0]"


def test_sweep_rejects_axis_base_clash():
    with pytest.raises(ValueError, match="overlap"):
        Sweep("test.echo", axes={"value": [1]}, base={"value": 2})


# ----------------------------------------------------------------------
# Artifacts


def test_outcome_records_and_writers(tmp_path):
    jobs = [Job("test.echo", params={"value": v}) for v in (1, 2)]
    outcomes, _ = run_jobs(jobs)
    records = outcome_records(outcomes)
    assert records[0]["fn"] == "test.echo"
    assert records[0]["value"] == 1
    assert records[0]["result_value"] == 1
    assert records[0]["cached"] is False

    jsonl = tmp_path / "out.jsonl"
    write_jsonl(jsonl, records)
    lines = jsonl.read_text().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[1])["result_value"] == 2

    csv_path = tmp_path / "out.csv"
    write_csv(csv_path, records)
    text = csv_path.read_text().splitlines()
    assert text[0].startswith("fn,")
    assert len(text) == 3


def test_registry_resolves_builtins():
    entry = resolve("covert.table1_row")
    assert entry.name == "covert.table1_row"
