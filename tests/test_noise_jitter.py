"""Regression tests for RDTSC timer jitter: jittered reads must stay
monotonic (hardware TSCs never run backwards), even at jitter levels
far above the back-to-back read distance."""

import pytest

from repro.cpu.config import CPUConfig
from repro.cpu.core import Core
from repro.cpu.noise import NoiseModel
from repro.isa import encodings as enc
from repro.isa.assembler import Assembler


def timing_core(noise, reads=8):
    """Program taking ``reads`` back-to-back RDTSCs into r1..rN."""
    asm = Assembler()
    asm.label("main")
    for i in range(reads):
        asm.emit(enc.rdtsc(f"r{i + 1}"))
    asm.emit(enc.halt())
    return Core(CPUConfig.skylake(), asm.assemble(entry="main"), noise=noise)


def test_high_jitter_reads_are_monotonic():
    """jitter_sd far above the inter-read gap: without the clamp,
    roughly half the consecutive deltas would come out negative."""
    reads = 8
    for seed in range(20):
        core = timing_core(NoiseModel(jitter_sd=200.0, seed=seed), reads)
        core.call("main")
        values = [core.threads[0].regs[f"r{i + 1}"] for i in range(reads)]
        deltas = [b - a for a, b in zip(values, values[1:])]
        assert all(d >= 0 for d in deltas), (seed, values)


def test_jittered_deltas_never_wrap_unsigned():
    """A negative delta stored through a 64-bit register would read
    back as a value near 2**64; probe post-processing must never see
    such a wrap."""
    asm = Assembler()
    asm.label("main")
    asm.emit(enc.rdtsc("r1"))
    asm.emit(enc.alu_imm("add", "r9", 1))
    asm.emit(enc.rdtsc("r2"))
    asm.emit(enc.alu("sub", "r2", "r1"))
    asm.emit(enc.halt())
    for seed in range(30):
        core = Core(
            CPUConfig.skylake(),
            asm.assemble(entry="main"),
            noise=NoiseModel(jitter_sd=500.0, seed=seed),
        )
        core.call("main")
        delta = core.threads[0].regs["r2"]
        assert 0 <= delta < 2**63, (seed, delta)


def test_monotonicity_spans_one_call_only():
    """The clamp state resets with the pipeline clocks between calls:
    a later call's first read is not dragged up to the previous call's
    (possibly inflated) last read."""
    core = timing_core(NoiseModel(jitter_sd=300.0, seed=7), reads=2)
    core.call("main")
    first_run_last = core.threads[0].regs["r2"]
    assert core.threads[0].last_rdtsc == first_run_last
    core.call("main")
    assert core.threads[0].regs["r2"] >= core.threads[0].regs["r1"]
    # last_rdtsc was rezeroed at the call boundary, so the new reads
    # track the fresh fetch clock rather than the old high-water mark
    assert core.threads[0].regs["r1"] < first_run_last + 10_000


def test_zero_jitter_unaffected_by_clamp():
    """Without jitter the clamp must be inert: two identical cores,
    one noise-free and one with jitter_sd=0, read identical TSCs."""
    plain = timing_core(None, reads=4)
    clamped = timing_core(NoiseModel(jitter_sd=0.0, seed=3), reads=4)
    plain.call("main")
    clamped.call("main")
    for i in range(4):
        reg = f"r{i + 1}"
        assert plain.threads[0].regs[reg] == clamped.threads[0].regs[reg]


def test_probe_timing_survives_high_jitter():
    """End-to-end: a real emit_probe measurement under heavy jitter
    still yields a sane (non-wrapped, non-negative) elapsed time."""
    from repro.core.exploitgen import FootprintSpec, emit_probe, striped_sets

    asm = Assembler()
    asm.reserve("result", 8)
    emit_probe(
        asm,
        "probe",
        FootprintSpec(striped_sets(8), 6, 0x44_0000),
        "result",
    )
    program = asm.assemble(entry="probe")
    for seed in range(5):
        core = Core(
            CPUConfig.skylake(),
            program,
            noise=NoiseModel(jitter_sd=150.0, seed=seed),
        )
        core.call("probe")
        elapsed = core.read_mem(core.addr_of("result"))
        assert 0 <= elapsed < 2**63, (seed, elapsed)


def test_jitter_sd_zero_returns_zero():
    noise = NoiseModel(jitter_sd=0.0, seed=1)
    assert all(noise.rdtsc_jitter() == 0 for _ in range(10))


def test_jitter_nonzero_produces_spread():
    noise = NoiseModel(jitter_sd=50.0, seed=2)
    draws = {noise.rdtsc_jitter() for _ in range(50)}
    assert len(draws) > 5
    assert any(d < 0 for d in draws)  # raw draws do go negative ...
    # ... which is exactly why the execute-stage clamp must exist.
