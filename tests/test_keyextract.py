"""End-to-end modexp key extraction over the SMT micro-op cache
channel (the classic square-and-multiply code-path side channel)."""

import random

import pytest

from repro.core.keyextract import (
    MODULUS,
    KeyExtractor,
    ModexpVictim,
)
from repro.cpu.config import CPUConfig
from repro.errors import ConfigError


class TestVictimArithmetic:
    def test_modexp_is_correct(self):
        victim = ModexpVictim(nbits=10)
        for key in (0b1000000001, 0b1010110111, 0b1111111111):
            result, _ = victim.run_pair(key)
            assert result == pow(0x12345, key, MODULUS), bin(key)

    def test_nbits_validation(self):
        with pytest.raises(ConfigError):
            ModexpVictim(nbits=2)
        with pytest.raises(ConfigError):
            ModexpVictim(nbits=64)

    def test_spy_records_samples(self):
        victim = ModexpVictim(nbits=8)
        _, samples = victim.run_pair(0b10110101)
        nonzero = [e for _, e in samples if e > 0]
        assert len(nonzero) > 50


class TestExtraction:
    @pytest.fixture(scope="class")
    def extractor(self):
        ex = KeyExtractor(nbits=12)
        ex.calibrate()
        return ex

    def test_calibration_orders_durations(self, extractor):
        # a 1-iteration (square+multiply) outlasts a 0-iteration
        assert extractor.d_one > extractor.d_zero > 0

    def test_msb_must_be_set(self, extractor):
        with pytest.raises(ConfigError):
            extractor.extract(0b001010101010)

    def test_pattern_keys_recover_exactly(self, extractor):
        for key in (0b101010101010, 0b100100100100):
            res = extractor.extract(key)
            assert res.exact, f"{res.true_key:b} -> {res.recovered_key:b}"

    def test_random_keys_recover_most_bits(self, extractor):
        rng = random.Random(9)
        total_bits = 0
        error_bits = 0
        for _ in range(4):
            key = (1 << 11) | rng.getrandbits(11)
            res = extractor.extract(key)
            assert res.modexp_result == pow(0x12345, key, MODULUS)
            total_bits += 12
            error_bits += res.bit_errors
        accuracy = 1 - error_bits / total_bits
        assert accuracy >= 0.75, f"bit accuracy {accuracy:.2f}"

    def test_intel_partitioning_blocks_extraction(self):
        """Static SMT partitioning (Intel) removes the cross-thread
        signal entirely -- the spy sees no multiply bursts."""
        victim = ModexpVictim(nbits=10, config=CPUConfig.skylake())
        _, samples = victim.run_pair(0b1111111111)
        spikes = KeyExtractor._spikes(samples)
        assert len(spikes) == 0
