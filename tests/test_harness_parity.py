"""Serial/parallel parity: the harness must reproduce the serial
entry points' numbers exactly.

Simulation determinism is the regression oracle here: every
``measure_*`` sweep is a loop over a pure per-point kernel, and the
harness runs the same kernels as jobs, so any divergence means the
refactor changed semantics.  Sweeps are kept tiny; the full ``--fast``
study is compared end-to-end in ``benchmarks/test_harness_speedup.py``.
"""

import pytest

from repro.core import characterize
from repro.cpu.config import CPUConfig
from repro.harness import Job, run_jobs
from repro.harness.experiments import (
    assemble_characterize,
    characterize_sweeps,
    run_table1,
)


@pytest.fixture(scope="module")
def config():
    return CPUConfig.skylake()


def _run(jobs):
    outcomes, _ = run_jobs(jobs, workers=1, cache=None)
    assert all(o.ok for o in outcomes), [o.error for o in outcomes]
    return [o.result for o in outcomes]


def test_size_parity(config):
    sizes, iters = (32, 256, 320), 2
    serial = characterize.measure_size(config, sizes=sizes, iters=iters)
    jobs = [Job("characterize.size", config, {"n": n, "iters": iters})
            for n in sizes]
    assert _run(jobs) == serial.y


def test_associativity_parity(config):
    ways, iters = (4, 8, 10), 2
    serial = characterize.measure_associativity(config, ways=ways, iters=iters)
    jobs = [Job("characterize.associativity", config,
                {"n": n, "iters": iters}) for n in ways]
    assert _run(jobs) == serial.y


def test_placement_parity(config):
    serial = characterize.measure_placement(
        config, region_counts=(2,), uop_counts=(4, 8), iters=2
    )
    jobs = [Job("characterize.placement", config,
                {"nregions": 2, "uops": u, "iters": 2}) for u in (4, 8)]
    assert _run(jobs) == serial.dsb_uops[2]


def test_replacement_parity(config):
    serial = characterize.measure_replacement(
        config, main_iters=(1, 2), evict_iters=(0, 2), rounds=4
    )
    jobs = [
        Job("characterize.replacement", config,
            {"main_iters": m, "evict_iters": e, "rounds": 4})
        for m in (1, 2) for e in (0, 2)
    ]
    flat = _run(jobs)
    assert [flat[0:2], flat[2:4]] == serial.matrix


def test_smt_partitioning_parity(config):
    serial = characterize.measure_smt_partitioning(
        config, sizes=(64,), iters=2
    )
    jobs = [Job("characterize.smt_partitioning", config,
                {"n": 64, "iters": 2, "t2_kind": "pause"})]
    point = _run(jobs)[0]
    assert [point["single"]] == serial.single_thread
    assert [point["smt"]] == serial.smt


def test_partition_geometry_parity(config):
    serial = characterize.measure_partition_geometry(
        config, sweep_sets=(0,), group_counts=(8,), iters=2
    )
    sweep_point = _run([Job("characterize.geometry_sweep", config,
                            {"set_index": 0, "iters": 2})])[0]
    group_point = _run([Job("characterize.geometry_groups", config,
                            {"n_groups": 8, "iters": 2})])[0]
    assert [sweep_point["t1"]] == serial.sweep_t1_mite
    assert [sweep_point["t2"]] == serial.sweep_t2_mite
    assert [group_point["single"]] == serial.groups_single
    assert [group_point["smt"]] == serial.groups_smt


def test_assembly_matches_serial_shapes(config):
    """The batch assembler must rebuild the serial result dataclasses
    with the sweep's own axes (spot-checked on a stub result set)."""
    sweeps = characterize_sweeps(config, fast=True)
    results = {}
    for name, sweep in sweeps.items():
        n = len(sweep)
        if name in ("fig6_smt",):
            results[name] = [{"single": 1.0, "smt": 2.0}] * n
        elif name == "fig7_sweep":
            results[name] = [{"t1": 0.0, "t2": 0.0}] * n
        elif name == "fig7_groups":
            results[name] = [{"single": 3.0, "smt": 4.0}] * n
        else:
            results[name] = [float(i) for i in range(n)]
    figures = assemble_characterize(sweeps, results)
    assert figures["fig3a_size"].x == list(sweeps["fig3a_size"].axes["n"])
    placement = figures["fig4_placement"]
    assert placement.regions == [2, 4, 8]
    assert len(placement.dsb_uops[2]) == len(placement.uops_per_region)
    # row-major slicing: region 2's series is the first block
    assert placement.dsb_uops[2][0] == 0.0
    assert placement.dsb_uops[4][0] == float(len(placement.uops_per_region))
    replacement = figures["fig5_replacement"]
    assert replacement.cell(1, 0) == 0.0
    assert replacement.cell(2, 0) == float(len(replacement.evict_iters))
    assert figures["fig6_smt"].single_thread[0] == 1.0
    assert figures["fig7_geometry"].groups_smt[-1] == 4.0


def test_table1_row_parity():
    """One Table I row through the harness equals the serial path (the
    full four-row table is compared in the benchmark suite)."""
    from repro.core.report import table1_row

    payload = b"A"
    serial = table1_row("Same address space", payload, noise_seed=17)
    rows, _, summary = run_table1(
        payload, noise_seed=17, workers=1, cache=None
    )
    assert summary.executed == 4
    assert rows[0] == serial
