"""Program container tests."""

import pytest

from repro.isa import encodings as enc
from repro.isa.assembler import Assembler, AssemblyError


def sample_program():
    asm = Assembler(base=0x1000)
    asm.label("main")
    asm.emit(enc.nop(2))
    asm.emit(enc.halt())
    asm.data("blob", b"\x01\x02")
    return asm.assemble(entry="main")


def test_at_and_fetch():
    prog = sample_program()
    assert prog.at(0x1000).mnemonic == "nop2"
    assert prog.at(0x1001) is None  # mid-instruction
    assert prog.fetch(0x1002).mnemonic == "halt"
    with pytest.raises(KeyError):
        prog.fetch(0x9999)


def test_has_code():
    prog = sample_program()
    assert prog.has_code(0x1000)
    assert not prog.has_code(0x1001)


def test_iter_is_address_ordered():
    asm = Assembler(base=0x1000)
    asm.org(0x2000)
    asm.label("late")
    asm.emit(enc.halt())
    asm.org(0x1000)
    asm.label("early")
    asm.emit(enc.halt())
    prog = asm.assemble(entry="early")
    addrs = [i.addr for i in prog.iter_instructions()]
    assert addrs == sorted(addrs)


def test_entry_resolution():
    prog = sample_program()
    assert prog.entry == prog.addr_of("main")


def test_data_image():
    prog = sample_program()
    addr = prog.addr_of("blob")
    assert prog.data[addr] == b"\x01\x02"


def test_kernel_range_queries():
    prog = sample_program()
    prog.kernel_ranges.append((0x5000, 0x6000))
    assert prog.is_kernel_code(0x5000)
    assert prog.is_kernel_code(0x5FFF)
    assert not prog.is_kernel_code(0x6000)


def test_patch_data_validation():
    asm = Assembler()
    asm.reserve("small", 4)
    asm.label("code")
    asm.emit(enc.halt())
    with pytest.raises(AssemblyError):
        asm.patch_data("small", b"123456789")  # exceeds reservation
    with pytest.raises(AssemblyError):
        asm.patch_data("code", b"x")  # not a data symbol
    asm.patch_data("small", b"ab")
    prog = asm.assemble()
    assert prog.data[prog.addr_of("small")] == b"ab"
