"""Contention-matrix measurements: positive diagonals, clean negative
controls, and harness parity.

Thresholds ride well under the deterministic simulator's measured
slowdowns (see ``docs/CONTENTION.md`` for the full matrix) so they
fail on a broken template, not on a retuned latency constant.  Two
cells are *designed* zeros and asserted as such: the store buffer in
serial modes (drain state rebases per call) and the branch predictor
under SMT (predictors are per-thread).
"""

import pytest

from repro.contention import ContentionSession
from repro.harness.contention import (
    FAST_MODES,
    FAST_RESOURCES,
    contention_jobs,
    format_matrix,
    run_contention,
)

#: (resource, clearest mode, minimum conflict slowdown).  Measured
#: values are 2-10x above each floor.
_POSITIVE_CELLS = [
    ("uop_cache", "smt", 2.0),
    ("uop_cache", "cross_domain", 4.0),
    ("itlb", "time_sliced", 1.5),
    ("dtlb", "time_sliced", 1.8),
    ("l1i", "time_sliced", 0.4),
    ("l1d", "time_sliced", 0.4),
    ("store_buffer", "smt", 0.4),
    ("btb", "time_sliced", 5.0),
]


def _cell(resource, mode, variant, trials=1):
    return ContentionSession(
        resource, mode, variant=variant, trials=trials
    ).measure()


@pytest.mark.parametrize("resource,mode,floor", _POSITIVE_CELLS,
                         ids=[f"{r}-{m}" for r, m, _ in _POSITIVE_CELLS])
def test_conflict_diagonal_is_positive(resource, mode, floor):
    cell = _cell(resource, mode, "conflict")
    assert cell.slowdown > floor, cell.as_dict()
    assert cell.contended_cycles > cell.baseline_cycles


@pytest.mark.parametrize("resource,mode,floor", _POSITIVE_CELLS,
                         ids=[f"{r}-{m}" for r, m, _ in _POSITIVE_CELLS])
def test_disjoint_negative_control_is_near_zero(resource, mode, floor):
    cell = _cell(resource, mode, "disjoint")
    assert abs(cell.slowdown) < 0.25, cell.as_dict()
    assert cell.slowdown < floor / 2


class TestDesignedZeros:
    def test_store_buffer_is_smt_only(self):
        """Serial calls rebase drain state; the asymmetry versus the
        SMT cell is the modelled fact."""
        serial = _cell("store_buffer", "time_sliced", "conflict")
        assert abs(serial.slowdown) < 0.05, serial.as_dict()

    def test_btb_is_serial_only(self):
        """Direction predictors are per-thread, so the SMT cell is a
        built-in negative control."""
        smt = _cell("btb", "smt", "conflict")
        assert abs(smt.slowdown) < 0.05, smt.as_dict()


class TestMeasurementShape:
    def test_cell_result_round_trips(self):
        cell = _cell("itlb", "time_sliced", "conflict", trials=2)
        d = cell.as_dict()
        assert d["resource"] == "itlb"
        assert d["trials"] == 2
        assert len(d["samples"]) == 2
        assert d["baseline_cycles"] > 0

    def test_deterministic_across_trials(self):
        """No noise model: every trial resets to the same state, so
        the per-trial samples are identical."""
        cell = _cell("uop_cache", "smt", "conflict", trials=2)
        assert cell.samples[0] == cell.samples[1]


class TestHarness:
    def test_grid_covers_the_full_matrix(self):
        jobs = contention_jobs()
        assert len(jobs) == 7 * 3 * 2
        labels = {j.tag for j in jobs}
        assert "contention[uop_cache/smt/conflict]" in labels
        assert "contention[btb/time_sliced/disjoint]" in labels

    def test_fast_grid_is_the_ci_subset(self):
        jobs = contention_jobs(fast=True)
        assert len(jobs) == len(FAST_RESOURCES) * len(FAST_MODES) * 2

    def test_harness_cell_matches_direct_session(self):
        """The job path and a hand-driven session agree bit-for-bit."""
        matrix, outcomes, summary = run_contention(
            resources=["itlb"], modes=["time_sliced"],
            variants=["conflict"], trials=1, cache=None,
        )
        direct = _cell("itlb", "time_sliced", "conflict").as_dict()
        assert matrix["itlb"]["time_sliced"]["conflict"] == direct
        assert summary.total == 1 and summary.failed == 0

    def test_warm_cache_executes_nothing(self, tmp_path):
        from repro.harness import ResultCache

        kwargs = dict(resources=["store_buffer"], modes=["smt"],
                      trials=1, cache=ResultCache(str(tmp_path)))
        _, _, cold = run_contention(**kwargs)
        matrix, _, warm = run_contention(**kwargs)
        assert cold.executed == 2 and cold.cached == 0
        assert warm.executed == 0 and warm.cached == 2
        assert matrix["store_buffer"]["smt"]["conflict"]["slowdown"] > 0.4

    def test_format_matrix_renders_every_cell(self):
        matrix, _, _ = run_contention(
            resources=["itlb"], modes=["time_sliced"], trials=1,
            cache=None,
        )
        text = format_matrix(matrix)
        assert "itlb" in text
        assert "conflict" in text and "disjoint" in text
        assert "time_sliced slowdown" in text
