"""Store buffer tests: forwarding, truncation, commit — with a
property test against a reference model."""

from hypothesis import given, settings, strategies as st

from repro.backend.storebuffer import StoreBuffer
from repro.memory.mainmem import MainMemory


def test_forwarding_exact_match():
    sbuf, mem = StoreBuffer(), MainMemory()
    sbuf.write(1, 0x100, 0xAABB, size=2)
    assert sbuf.read(0x100, 2, mem) == 0xAABB
    assert mem.read(0x100, 2) == 0  # not yet committed


def test_partial_overlap_forwarding():
    sbuf, mem = StoreBuffer(), MainMemory()
    mem.write(0x100, 0x1122334455667788, 8)
    sbuf.write(1, 0x102, 0xFF, size=1)
    assert sbuf.read(0x100, 8, mem) == 0x11223344_55FF7788


def test_youngest_store_wins():
    sbuf, mem = StoreBuffer(), MainMemory()
    sbuf.write(1, 0x100, 0x01, size=1)
    sbuf.write(2, 0x100, 0x02, size=1)
    assert sbuf.read(0x100, 1, mem) == 0x02


def test_truncate_discards_younger():
    sbuf, mem = StoreBuffer(), MainMemory()
    sbuf.write(1, 0x100, 0x01, size=1)
    sbuf.write(5, 0x100, 0x05, size=1)
    dropped = sbuf.truncate(3)
    assert dropped == 1
    assert sbuf.read(0x100, 1, mem) == 0x01


def test_drain_upto_commits_prefix():
    sbuf, mem = StoreBuffer(), MainMemory()
    sbuf.write(1, 0x100, 0x01, size=1)
    sbuf.write(5, 0x108, 0x05, size=1)
    sbuf.drain_upto(3, mem)
    assert mem.read(0x100, 1) == 0x01
    assert mem.read(0x108, 1) == 0
    assert len(sbuf) == 1


def test_drain_all():
    sbuf, mem = StoreBuffer(), MainMemory()
    sbuf.write(1, 0x100, 0xDEAD, size=2)
    sbuf.drain_all(mem)
    assert mem.read(0x100, 2) == 0xDEAD
    assert len(sbuf) == 0


@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=64),   # addr
            st.sampled_from([1, 2, 4, 8]),            # size
            st.integers(min_value=0, max_value=2**64 - 1),
        ),
        max_size=40,
    )
)
@settings(max_examples=60, deadline=None)
def test_matches_sequential_memory_semantics(ops):
    """Buffered writes + forwarding reads behave exactly like writing
    straight to memory and reading it back."""
    sbuf, mem = StoreBuffer(), MainMemory()
    reference = MainMemory()
    for seq, (addr, size, value) in enumerate(ops):
        sbuf.write(seq, addr, value, size)
        reference.write(addr, value, size)
    for addr in range(0, 80, 8):
        assert sbuf.read(addr, 8, mem) == reference.read(addr, 8)
    sbuf.drain_all(mem)
    for addr in range(0, 80, 8):
        assert mem.read(addr, 8) == reference.read(addr, 8)
