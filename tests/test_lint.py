"""Static analyzer tests: diagnostic catalog, footprint predictions,
rule engine, gadget-claim verifier, simulator cross-check and the lint
runner / CLI surface."""

import dataclasses
import json

import pytest

from repro.core.exploitgen import FootprintSpec, striped_sets
from repro.cpu.config import CPUConfig
from repro.isa import encodings as enc
from repro.isa.assembler import Assembler
from repro.lint import (
    CATALOG,
    ChainClaim,
    Diagnostic,
    LintError,
    PairClaim,
    Severity,
    analyze,
    check_program,
    check_sources,
    cross_check,
    errors_of,
    predicted_set,
    verify_claims,
    worst_severity,
)


SKYLAKE = CPUConfig.skylake()


# ----------------------------------------------------------------------
# diagnostics


class TestCatalog:
    def test_codes_are_namespaced_and_unique(self):
        for code, entry in CATALOG.items():
            assert code == entry.code
            assert code[:2] in ("UC", "DT", "XC", "RC", "TA", "LT")

    def test_documented_rule_set_is_stable(self):
        """The codes are public API: removing one is a breaking change."""
        expected = {
            "UC001", "UC002", "UC003", "UC004", "UC005", "UC006",
            "UC007", "UC008", "UC009", "UC010", "DT001", "DT002",
            "XC001", "XC002", "XC003", "XC004", "RC001", "RC002",
            "RC003", "TA001", "TA002", "TA003", "TA004", "TA005",
            "TA006", "LT001",
        }
        assert expected <= set(CATALOG)

    def test_every_entry_has_a_fix_hint(self):
        for entry in CATALOG.values():
            assert entry.hint
            assert entry.title

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("ZZ999", "nope")

    def test_severity_defaults_from_catalog_and_overrides(self):
        d = Diagnostic("UC004", "broken")
        assert d.severity is Severity.ERROR
        d = Diagnostic("UC004", "softer", severity=Severity.WARNING)
        assert d.severity is Severity.WARNING

    def test_format_carries_code_location_and_message(self):
        d = Diagnostic("UC005", "collision", addr=0x441000, label="zebra_r3")
        line = d.format()
        assert "UC005" in line
        assert "error" in line
        assert "zebra_r3@0x441000" in line
        assert "collision" in line

    def test_as_dict_is_json_ready(self):
        d = Diagnostic("DT001", "unseeded", context="core/x.py:7")
        json.dumps(d.as_dict())  # must not raise
        assert d.as_dict()["severity"] == "warning"

    def test_worst_severity_and_errors_of(self):
        diags = [
            Diagnostic("UC008", "info"),
            Diagnostic("UC001", "warn"),
            Diagnostic("UC004", "err"),
        ]
        assert worst_severity(diags) is Severity.ERROR
        assert worst_severity([]) is None
        assert [d.code for d in errors_of(diags)] == ["UC004"]

    def test_lint_error_lists_findings(self):
        err = LintError([Diagnostic("UC003", "off by one")])
        assert "UC003" in str(err)
        assert len(err.diagnostics) == 1


# ----------------------------------------------------------------------
# footprint predictions


class TestPredictedSet:
    def test_base_mapping_is_region_modulo_sets(self):
        assert predicted_set(0x1000, SKYLAKE) == (0x1000 // 32) % 32
        assert predicted_set(0x1020, SKYLAKE) == (0x1000 // 32 + 1) % 32

    def test_smt_static_sharing_halves_the_index_space(self):
        t0 = predicted_set(0x1000, SKYLAKE, thread=0, smt_active=True)
        t1 = predicted_set(0x1000, SKYLAKE, thread=1, smt_active=True)
        assert t0 < 16 <= t1
        assert t1 - t0 == 16

    def test_privilege_partition_separates_rings(self):
        part = dataclasses.replace(
            SKYLAKE, privilege_partition_uop_cache=True
        )
        kern = predicted_set(0x1000, part, privilege=0)
        user = predicted_set(0x1000, part, privilege=3)
        assert kern < 16 <= user


class TestAnalyze:
    def test_reports_set_and_lines_per_entry(self):
        asm = Assembler(base=0x2000)
        asm.label("f")
        for _ in range(8):
            asm.emit(enc.nop(1))
        asm.emit(enc.halt())
        report = analyze(asm.assemble(entry="f"), SKYLAKE)
        fp = report.footprint_at(0x2000)
        assert fp is not None
        assert fp.cacheable
        assert fp.n_lines == 2  # 9 uops over 6-slot lines
        assert report.expected_fill(0x2000) == (fp.set_index, 2)
        assert report.set_occupancy()[fp.set_index] >= 2

    def test_uncacheable_region_has_no_expected_fill(self):
        asm = Assembler(base=0x2000)
        asm.label("f")
        asm.emit(enc.pause())
        asm.emit(enc.halt())
        report = analyze(asm.assemble(entry="f"), SKYLAKE)
        assert not report.footprint_at(0x2000).cacheable
        assert report.expected_fill(0x2000) is None

    def test_labels_seed_the_walk(self):
        """Drivers enter gadget chains by label, never by fall-through."""
        asm = Assembler(base=0x2000)
        asm.label("a")
        asm.emit(enc.halt())
        asm.org(0x3000)
        asm.label("island")  # unreachable from the entry
        asm.emit(enc.halt())
        report = analyze(asm.assemble(entry="a"), SKYLAKE)
        assert 0x3000 in report.regions


# ----------------------------------------------------------------------
# program rules


def _diag_codes(program, config=SKYLAKE):
    return [d.code for d in check_program(analyze(program, config))]


class TestProgramRules:
    def test_uc001_pause_region_not_cacheable(self):
        asm = Assembler(base=0x2000)
        asm.emit(enc.pause())
        asm.emit(enc.halt())
        assert "UC001" in _diag_codes(asm.assemble())

    def test_uc002_macro_op_wider_than_line(self):
        # shrink the line so a 2-slot RDTSC can never fit one
        tiny = dataclasses.replace(SKYLAKE, uops_per_line=1)
        asm = Assembler(base=0x2000)
        asm.emit(enc.rdtsc("r1"))
        asm.emit(enc.halt())
        codes = _diag_codes(asm.assemble(), tiny)
        assert "UC002" in codes

    def test_uc006_lcp_in_hot_loop(self):
        asm = Assembler(base=0x2000)
        asm.emit(enc.mov_imm("r1", 10))
        asm.label("loop")
        asm.emit(enc.nop(5, lcp=2))
        asm.emit(enc.dec("r1"))
        asm.emit(enc.jcc("nz", "loop"))
        asm.emit(enc.halt())
        assert "UC006" in _diag_codes(asm.assemble())

    def test_uc006_silent_on_clean_loop(self):
        asm = Assembler(base=0x2000)
        asm.emit(enc.mov_imm("r1", 10))
        asm.label("loop")
        asm.emit(enc.nop(5))
        asm.emit(enc.dec("r1"))
        asm.emit(enc.jcc("nz", "loop"))
        asm.emit(enc.halt())
        assert "UC006" not in _diag_codes(asm.assemble())

    def test_uc007_msrom_inside_timing_window(self):
        asm = Assembler(base=0x1000)
        asm.label("open")
        asm.emit(enc.rdtsc("r1"))
        asm.emit(enc.jmp("mid"))
        asm.org(0x1040)
        asm.label("mid")
        asm.emit(enc.cpuid())  # MSROM line between the timer pair
        asm.emit(enc.jmp("close"))
        asm.org(0x1080)
        asm.label("close")
        asm.emit(enc.rdtsc("r2"))
        asm.emit(enc.halt())
        diags = check_program(analyze(asm.assemble(entry="open"), SKYLAKE))
        hits = [d for d in diags if d.code == "UC007"]
        assert hits and hits[0].addr == 0x1040

    def test_uc008_imm64_inflates_region(self):
        asm = Assembler(base=0x2000)
        asm.label("f")
        for _ in range(3):
            asm.emit(enc.mov_imm("r1", 1, width=64))  # 3 x 10 bytes
        asm.emit(enc.nop(2))  # fills the region to exactly 32 bytes
        asm.emit(enc.halt())
        diags = check_program(analyze(asm.assemble(entry="f"), SKYLAKE))
        hits = [d for d in diags if d.code == "UC008"]
        assert hits and hits[0].severity is Severity.INFO

    def test_uc009_indirect_exit_noted(self):
        asm = Assembler(base=0x2000)
        asm.emit(enc.mov_imm("r1", 0x2000, width=64))
        asm.emit(enc.jmp_ind("r1"))
        codes = _diag_codes(asm.assemble())
        assert "UC009" in codes

    def test_uc010_wild_branch_target(self):
        asm = Assembler(base=0x2000)
        asm.label_at("hole", 0x9990)
        asm.emit(enc.jmp("hole"))
        codes = _diag_codes(asm.assemble())
        assert "UC010" in codes

    def test_clean_program_is_clean(self):
        asm = Assembler(base=0x2000)
        asm.label("f")
        asm.emit(enc.alu("add", "r1", "r2"))
        asm.emit(enc.halt())
        assert _diag_codes(asm.assemble(entry="f")) == []


# ----------------------------------------------------------------------
# determinism rules (AST)


class TestSourceRules:
    def test_dt001_flags_unseeded_rng(self, tmp_path):
        (tmp_path / "core").mkdir()
        (tmp_path / "core" / "bad.py").write_text(
            "import random\n"
            "gen = random.Random()\n"
            "pick = random.randint(0, 5)\n"
            "good = random.Random(2021)\n"
        )
        diags = check_sources(root=tmp_path)
        dt = [d for d in diags if d.code == "DT001"]
        assert len(dt) == 2  # the seeded constructor is fine
        assert all("core/bad.py" in d.context for d in dt)

    def test_dt002_flags_clock_in_cache_key_paths(self, tmp_path):
        (tmp_path / "harness").mkdir()
        (tmp_path / "harness" / "cache.py").write_text(
            "import time\n"
            "def make_key():\n"
            "    return time.time()\n"
            "def run():\n"
            "    return time.monotonic()\n"  # measurement: exempt
        )
        diags = check_sources(root=tmp_path)
        dt = [d for d in diags if d.code == "DT002"]
        assert len(dt) == 1
        assert "make_key" in dt[0].message

    def test_shipped_sources_have_no_determinism_errors(self):
        assert errors_of(check_sources()) == []


# ----------------------------------------------------------------------
# gadget-claim verifier


def _emit_test_chain(asm, name, spec, moved_index=None, move_by=32):
    """Hand-rolled equivalent of exploitgen's region chain, with an
    optional deliberate layout corruption at ``moved_index``."""
    order = [(s, w) for s in spec.sets for w in range(spec.ways)]
    for i, (s, w) in enumerate(order):
        addr = spec.region_addr(s, w)
        if i == moved_index:
            addr += move_by  # one set over: off the claimed set
        asm.org(addr)
        asm.label(f"{name}_r{i}")
        for _ in range(spec.nops_per_region):
            asm.emit(enc.nop(spec.nop_len, lcp=spec.lcp_per_nop))
        if i + 1 < len(order):
            asm.emit(enc.jmp(f"{name}_r{i + 1}", lcp=spec.jmp_lcp))
        else:
            asm.emit(enc.halt())


class TestGadgetVerifier:
    SPEC = FootprintSpec((0, 4, 8, 12), 2, 0x40_0000)

    def _report(self, moved_index=None):
        asm = Assembler()
        _emit_test_chain(asm, "z", self.SPEC, moved_index=moved_index)
        program = asm.assemble(entry="z_r0")
        return analyze(program, SKYLAKE)

    def test_intact_chain_verifies_clean(self):
        diags = verify_claims(
            self._report(), [ChainClaim("z", self.SPEC, "zebra")]
        )
        assert errors_of(diags) == []

    def test_corrupted_gadget_caught_by_uc004_and_uc005(self):
        """The acceptance scenario: one zebra region moved one set
        over.  The chain still runs -- only the verifier notices that
        the claimed set is under-filled (UC004) and that code landed on
        a set the footprint does not claim (UC005)."""
        diags = verify_claims(
            self._report(moved_index=3),
            [ChainClaim("z", self.SPEC, "zebra")],
        )
        codes = {d.code for d in errors_of(diags)}
        assert "UC004" in codes
        assert "UC005" in codes

    def test_truncated_chain_caught(self):
        longer = dataclasses.replace(self.SPEC, ways=3)  # claim 12 regions
        diags = verify_claims(
            self._report(), [ChainClaim("z", longer, "zebra")]
        )
        codes = {d.code for d in errors_of(diags)}
        assert "UC004" in codes  # missing labels + under-filled sets

    def test_conflict_pair_verifies_on_shared_sets(self):
        spec_rx = FootprintSpec((0, 4), 5, 0x40_0000)
        spec_tx = FootprintSpec((0, 4), 5, 0x48_0000)
        asm = Assembler()
        _emit_test_chain(asm, "rx", spec_rx)
        _emit_test_chain(asm, "tx", spec_tx)
        report = analyze(asm.assemble(entry="rx_r0"), SKYLAKE)
        chains = [ChainClaim("rx", spec_rx), ChainClaim("tx", spec_tx)]
        diags = verify_claims(
            report, chains, [PairClaim("tx", "rx", "conflict")]
        )
        assert errors_of(diags) == []

    def test_disjoint_pair_sharing_a_set_is_uc005(self):
        spec_a = FootprintSpec((0, 4), 2, 0x40_0000)
        spec_b = FootprintSpec((4, 8), 2, 0x48_0000)  # overlaps on 4
        asm = Assembler()
        _emit_test_chain(asm, "a", spec_a)
        _emit_test_chain(asm, "b", spec_b)
        report = analyze(asm.assemble(entry="a_r0"), SKYLAKE)
        chains = [ChainClaim("a", spec_a), ChainClaim("b", spec_b)]
        diags = verify_claims(
            report, chains, [PairClaim("a", "b", "disjoint")]
        )
        assert "UC005" in {d.code for d in errors_of(diags)}

    def test_conflict_pair_missing_sets_is_uc004(self):
        spec_rx = FootprintSpec((0, 4), 5, 0x40_0000)
        spec_tx = FootprintSpec((0,), 5, 0x48_0000)  # never touches 4
        asm = Assembler()
        _emit_test_chain(asm, "rx", spec_rx)
        _emit_test_chain(asm, "tx", spec_tx)
        report = analyze(asm.assemble(entry="rx_r0"), SKYLAKE)
        chains = [ChainClaim("rx", spec_rx), ChainClaim("tx", spec_tx)]
        diags = verify_claims(
            report, chains, [PairClaim("tx", "rx", "conflict")]
        )
        assert "UC004" in {d.code for d in errors_of(diags)}

    def test_underprovisioned_conflict_is_a_warning_only(self):
        """Parameter sweeps legitimately explore demand <= ways; that
        must not fail a preflight."""
        spec_rx = FootprintSpec((0,), 2, 0x40_0000)
        spec_tx = FootprintSpec((0,), 2, 0x48_0000)  # 4 <= 8 ways
        asm = Assembler()
        _emit_test_chain(asm, "rx", spec_rx)
        _emit_test_chain(asm, "tx", spec_tx)
        report = analyze(asm.assemble(entry="rx_r0"), SKYLAKE)
        chains = [ChainClaim("rx", spec_rx), ChainClaim("tx", spec_tx)]
        diags = verify_claims(
            report, chains, [PairClaim("tx", "rx", "conflict")]
        )
        assert errors_of(diags) == []
        assert any(
            d.code == "UC004" and d.severity is Severity.WARNING
            for d in diags
        )

    def test_unknown_relation_rejected(self):
        with pytest.raises(ValueError):
            PairClaim("a", "b", "overlapping")


# ----------------------------------------------------------------------
# session preflight


class TestPreflight:
    class _BrokenSession:
        pass  # placeholder; real class built lazily below

    @staticmethod
    def _session_class():
        from repro.session import AttackSession

        spec = FootprintSpec((0, 4), 2, 0x40_0000)

        class Broken(AttackSession):
            def build_program(self):
                asm = Assembler()
                _emit_test_chain(asm, "z", spec, moved_index=1)
                self._lint_claims = [ChainClaim("z", spec, "zebra")]
                return asm.assemble(entry="z_r0")

        return Broken

    def test_preflight_refuses_broken_layout(self):
        Broken = self._session_class()
        with pytest.raises(LintError) as exc:
            Broken(SKYLAKE)
        codes = {d.code for d in exc.value.diagnostics}
        assert codes & {"UC004", "UC005"}

    def test_preflight_opt_out_keeps_findings(self):
        Broken = self._session_class()
        Broken.preflight = False
        session = Broken(SKYLAKE)
        assert session.lint_findings == []  # opt-out skips the analysis

    def test_shipped_drivers_pass_their_own_preflight(self):
        """CovertChannel constructs with preflight on by default."""
        from repro.core.covert import CovertChannel

        chan = CovertChannel()
        assert errors_of(chan.lint_findings) == []
        chains, pairs = chan.lint_claims()
        assert chains and pairs


# ----------------------------------------------------------------------
# cross-check (acceptance: 100% agreement, mismatch = failure)


class TestCrossCheck:
    def test_tigerzebra_agrees_exactly(self):
        from repro.lint.runner import TARGETS

        target = TARGETS["tigerzebra"]()
        report = analyze(target.program, target.config)
        result = cross_check(target.core, report, target.drive)
        assert result.fills > 0
        assert result.diffs == []  # any mismatch fails the test
        assert result.agreement == 1.0
        assert result.diagnostics() == []

    def test_covert_channel_agrees_exactly(self):
        from repro.lint.runner import TARGETS

        target = TARGETS["covert"]()
        report = analyze(target.program, target.config)
        result = cross_check(target.core, report, target.drive)
        assert result.fills > 0
        assert result.diffs == []
        assert result.agreement == 1.0

    def test_divergence_becomes_xc001_error(self):
        """Force a stale report: predictions for a *different* mapping
        context must be flagged against the live simulator."""
        from repro.lint.runner import TARGETS

        target = TARGETS["tigerzebra"]()
        stale = analyze(
            target.program, target.config, thread=1, smt_active=True
        )
        result = cross_check(target.core, stale, target.drive)
        assert result.diffs
        diags = result.diagnostics()
        assert diags and all(d.code == "XC001" for d in diags)
        assert worst_severity(diags) is Severity.ERROR


# ----------------------------------------------------------------------
# runner + CLI


class TestRunner:
    def test_full_corpus_lints_clean_and_fast(self):
        from repro.lint.runner import run_lint

        run = run_lint(cross=True)
        assert run.ok, run.render(show_info=True)
        assert run.exit_code == 0
        assert len(run.results) >= 10
        assert run.elapsed < 5.0  # acceptance budget for --all
        # the two driven targets carry cross-check results
        crossed = {r.name for r in run.results if r.crosscheck}
        assert crossed == {"tigerzebra", "covert"}
        for r in run.results:
            if r.crosscheck:
                assert r.crosscheck.agreement == 1.0

    def test_unknown_target_raises_with_known_list(self):
        from repro.lint.runner import run_lint

        with pytest.raises(KeyError, match="tigerzebra"):
            run_lint(["frobnicate"])

    def test_json_shape_is_stable(self):
        from repro.lint.runner import run_lint

        run = run_lint(["corpus"])
        data = json.loads(json.dumps(run.as_dict()))
        assert data["ok"] is True
        (target,) = data["targets"]
        assert target["target"] == "corpus"
        assert set(target["counts"]) == {"error", "warning", "info"}

    def test_build_crash_becomes_result_not_exception(self):
        from repro.lint.runner import lint_target

        def exploding():
            raise RuntimeError("boom")

        result = lint_target("bad", exploding)
        assert not result.ok
        assert "boom" in result.build_error

    def test_build_crash_carries_lt001_and_nonzero_exit(self):
        """A target that fails to build must surface a structured
        LT001 error and fail the run deterministically."""
        from repro.lint.runner import LintRun, lint_target

        def exploding():
            raise RuntimeError("boom")

        result = lint_target("bad", exploding)
        lt = [d for d in result.diagnostics if d.code == "LT001"]
        assert len(lt) == 1
        assert "bad" in lt[0].message and "boom" in lt[0].message
        assert lt[0].severity is Severity.ERROR
        run = LintRun(results=[result])
        assert not run.ok
        assert run.exit_code != 0


class TestCli:
    def test_lint_single_target(self, capsys):
        from repro.__main__ import main

        assert main(["lint", "tigerzebra"]) == 0
        out = capsys.readouterr().out
        assert "tigerzebra" in out
        assert "clean" in out

    def test_lint_json_to_stdout(self, capsys):
        from repro.__main__ import main

        assert main(["lint", "corpus", "sources", "--json", "-"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True
        assert [t["target"] for t in data["targets"]] == [
            "corpus", "sources",
        ]

    def test_lint_unknown_target_exits_2(self, capsys):
        from repro.__main__ import main

        assert main(["lint", "frobnicate"]) == 2
        assert "unknown" in capsys.readouterr().out
