"""Front-end fetch/delivery engine tests."""

import pytest

from repro.cpu.config import CPUConfig
from repro.cpu.core import Core
from repro.frontend.pipeline import (
    BLOCK_CPUID,
    BLOCK_FAULT,
    BLOCK_HALT,
    BLOCK_SEQ,
    BLOCK_STALL,
    BLOCK_TAKEN,
)
from repro.isa import encodings as enc
from repro.isa.assembler import Assembler


def make_core(build, config=None):
    asm = Assembler()
    build(asm)
    return Core(config or CPUConfig.skylake(), asm.assemble())


def fetch_one(core, label):
    thread = core.thread(0)
    thread.halted = False
    thread.fetch_rip = core.addr_of(label)
    thread.fetch_priv = thread.privilege
    return core.frontend.fetch_block(thread)


class TestBlockKinds:
    def test_sequential_fallthrough_at_region_end(self):
        def build(asm):
            asm.label("a")
            asm.emit(enc.nop(15), enc.nop(15), enc.nop(2))  # exactly 32B
            asm.label("next")
            asm.emit(enc.halt())

        core = make_core(build)
        block = fetch_one(core, "a")
        assert block.kind == BLOCK_SEQ
        assert block.next_rip == core.addr_of("next")
        assert len(block.dynuops) == 3

    def test_taken_jump_ends_block(self):
        def build(asm):
            asm.label("a")
            asm.emit(enc.nop(1))
            asm.emit(enc.jmp("b"))
            asm.emit(enc.nop(1))  # must not be delivered
            asm.align(64)
            asm.label("b")
            asm.emit(enc.halt())

        core = make_core(build)
        block = fetch_one(core, "a")
        assert block.kind == BLOCK_TAKEN
        assert block.next_rip == core.addr_of("b")
        assert len(block.dynuops) == 2

    def test_halt_block(self):
        core = make_core(lambda asm: (asm.label("a"), asm.emit(enc.halt())))
        assert fetch_one(core, "a").kind == BLOCK_HALT

    def test_cpuid_block(self):
        def build(asm):
            asm.label("a")
            asm.emit(enc.cpuid())
            asm.emit(enc.halt())

        core = make_core(build)
        block = fetch_one(core, "a")
        assert block.kind == BLOCK_CPUID
        assert block.next_rip == core.addr_of("a") + 2

    def test_unpredicted_indirect_stalls(self):
        def build(asm):
            asm.label("a")
            asm.emit(enc.jmp_ind("r5"))
            asm.label("t")
            asm.emit(enc.halt())

        core = make_core(build)
        block = fetch_one(core, "a")
        assert block.kind == BLOCK_STALL
        assert block.next_rip is None

    def test_wild_fetch_faults(self):
        core = make_core(lambda asm: (asm.label("a"), asm.emit(enc.halt())))
        thread = core.thread(0)
        thread.fetch_rip = 0xDEAD000
        assert core.frontend.fetch_block(thread).kind == BLOCK_FAULT

    def test_kernel_code_faults_for_user_fetch(self):
        def build(asm):
            asm.label("a")
            asm.emit(enc.halt())
            asm.org(0x90_0000)
            asm.label("k")
            asm.emit(enc.halt())
            asm.label("k_end")

        core = make_core(build)
        core.program.mark_kernel("k", "k_end")
        block = fetch_one(core, "k")
        assert block.kind == BLOCK_FAULT


class TestDSBPath:
    def _loop_core(self):
        def build(asm):
            asm.label("a")
            asm.emit(enc.nop(15), enc.nop(15), enc.nop(2))
            asm.emit(enc.halt())

        return make_core(build)

    def test_first_fetch_misses_then_hits(self):
        core = self._loop_core()
        block1 = fetch_one(core, "a")
        assert block1.source == "mite"
        block2 = fetch_one(core, "a")
        assert block2.source == "dsb"
        counters = core.counters(0)
        assert counters.dsb_misses >= 1
        assert counters.dsb_hits >= 1

    def test_dsb_hit_does_not_touch_icache(self):
        core = self._loop_core()
        fetch_one(core, "a")
        refs_after_fill = core.hierarchy.l1i.stats.refs
        fetch_one(core, "a")  # DSB hit
        assert core.hierarchy.l1i.stats.refs == refs_after_fill

    def test_mite_counts_penalty_cycles(self):
        core = self._loop_core()
        fetch_one(core, "a")
        assert core.counters(0).dsb_miss_penalty_cycles > 0

    def test_switch_penalty_counted(self):
        core = self._loop_core()
        fetch_one(core, "a")   # mite
        fetch_one(core, "a")   # dsb (switch)
        assert core.counters(0).dsb_switches >= 1

    def test_uncacheable_region_never_hits(self):
        def build(asm):
            asm.label("a")
            for _ in range(20):  # 21 uops > 18: placement rule 1
                asm.emit(enc.nop(1))
            asm.emit(enc.halt())

        core = make_core(build)
        fetch_one(core, "a")
        block = fetch_one(core, "a")
        assert block.source == "mite"

    def test_pause_region_never_cached(self):
        def build(asm):
            asm.label("a")
            asm.emit(enc.pause())
            asm.emit(enc.halt())

        core = make_core(build)
        fetch_one(core, "a")
        assert fetch_one(core, "a").source == "mite"

    def test_uop_source_counters(self):
        core = self._loop_core()
        fetch_one(core, "a")
        fetch_one(core, "a")
        counters = core.counters(0)
        assert counters.uops_mite == 3
        assert counters.uops_dsb == 3


class TestControlPredictions:
    def test_jcc_initially_predicted_taken(self):
        def build(asm):
            asm.label("a")
            asm.emit(enc.jcc("nz", "target"))
            asm.emit(enc.nop(1))
            asm.align(64)
            asm.label("target")
            asm.emit(enc.halt())

        core = make_core(build)
        block = fetch_one(core, "a")
        assert block.kind == BLOCK_TAKEN
        assert block.next_rip == core.addr_of("target")

    def test_syscall_redirects_to_kernel_entry(self):
        def build(asm):
            asm.label("a")
            asm.emit(enc.syscall())
            asm.org(0x90_0000)
            asm.label("kernel_entry")
            asm.emit(enc.sysret())

        core = make_core(build)
        thread = core.thread(0)
        block = fetch_one(core, "a")
        assert block.next_rip == core.addr_of("kernel_entry")
        assert thread.fetch_priv == 0
        assert thread.kernel_link == [core.addr_of("a") + 2]
        thread.fetch_rip = block.next_rip
        block2 = core.frontend.fetch_block(thread)
        assert block2.next_rip == core.addr_of("a") + 2
        assert thread.fetch_priv == 3

    def test_syscall_without_kernel_entry_faults(self):
        def build(asm):
            asm.label("a")
            asm.emit(enc.syscall())

        core = make_core(build)
        assert fetch_one(core, "a").kind == BLOCK_FAULT

    def test_domain_crossing_flush_option(self):
        def build(asm):
            asm.label("warm")
            asm.emit(enc.nop(15), enc.nop(15), enc.nop(2))
            asm.label("a")
            asm.emit(enc.syscall())
            asm.org(0x90_0000)
            asm.label("kernel_entry")
            asm.emit(enc.sysret())

        config = CPUConfig.skylake(flush_uop_cache_on_domain_crossing=True)
        core = make_core(build, config)
        fetch_one(core, "warm")
        warm_entry = core.addr_of("warm")
        assert core.uop_cache.lookup(0, warm_entry) is not None
        fetch_one(core, "a")
        # the previously warmed region was flushed at the crossing
        # (the syscall block itself refills after the flush)
        assert core.uop_cache.lookup(0, warm_entry) is None
