"""Property-test battery for the Section II-B placement rules.

``repro.uopcache.placement.build_lines`` is shared between the
simulator's fill path and the static analyzer (``repro.lint``), so a
packing bug corrupts both sides of the cross-check at once.  Each
property here pins one of the six placement rules over randomly
composed macro-op sequences; ``test_uopcache_placement.py`` keeps the
example-based coverage, this file does the adversarial search.

Rules (paper Section II-B / Table at ``uopcache.placement``):

1. at most 18 micro-ops (3 lines) per 32-byte region, else uncacheable;
2. microcoded (MSROM) instructions take a whole line by themselves;
3. a macro-op's micro-ops may not span a line boundary;
4. an unconditional branch is the last micro-op of its line;
5. at most two branches per line;
6. 64-bit immediates consume two slots.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import encodings as enc
from repro.uopcache.placement import build_lines

#: Menu of macro-ops a random region draws from.  Each entry is a
#: zero-argument constructor so every draw gets a fresh MacroOp.
_MENU = {
    "nop1": lambda: enc.nop(1),
    "nop3": lambda: enc.nop(3),
    "nop5_lcp": lambda: enc.nop(5, lcp=1),
    "alu": lambda: enc.alu("add", "r1", "r2"),
    "imm32": lambda: enc.mov_imm("r1", 7, width=32),
    "imm64": lambda: enc.mov_imm("r1", 7, width=64),  # 2 slots (rule 6)
    "rdtsc": lambda: enc.rdtsc("r1"),  # 2 micro-ops, must not split
    "push": lambda: enc.push("r1"),  # 2 micro-ops
    "load": lambda: enc.load("r2", "r1"),
    "jcc": lambda: enc.jcc("z", "t", short=True),
    "cpuid": lambda: enc.cpuid(),  # MSROM (rule 2)
    "syscall": lambda: enc.syscall(),  # MSROM + unconditional
    "pause": lambda: enc.pause(),  # never cacheable
    "jmp": lambda: enc.jmp("t", short=True),  # terminator (rule 4)
    "ret": lambda: enc.ret(),  # terminator
}

#: Choices that end a fetch walk -- a realistic region has at most one,
#: in final position.
_TERMINATORS = ("jmp", "ret", "syscall")


@st.composite
def region_macros(draw):
    """A bound, walk-shaped macro-op sequence within one 32-byte region."""
    names = draw(
        st.lists(
            st.sampled_from(sorted(_MENU)), min_size=1, max_size=14
        )
    )
    macros = []
    total = 0
    for name in names:
        macro = _MENU[name]()
        if total + macro.length > 32:
            break
        macros.append(macro)
        total += macro.length
        if name in _TERMINATORS:
            break
    if not macros:
        macros = [enc.nop(1)]
    addr = 0x4000
    for macro in macros:
        macro.bind(addr)
        if macro.target_label:
            macro.target = 0x9000  # branches resolve out of the region
        addr += macro.length
    return macros


def _lines(macros):
    return build_lines(macros)


@given(region_macros())
@settings(max_examples=300, deadline=None)
def test_rule1_line_budget_or_uncacheable(macros):
    """<= 3 lines when packed; rejection only for genuinely oversized
    or uncacheable content (checked by repacking with no line cap)."""
    lines = _lines(macros)
    if lines is not None:
        assert 1 <= len(lines) <= 3
        return
    if any(not m.cacheable for m in macros):
        return
    uncapped = build_lines(macros, max_lines_per_region=10_000)
    assert uncapped is not None and len(uncapped) > 3


@given(region_macros())
@settings(max_examples=300, deadline=None)
def test_rule2_msrom_takes_a_whole_line(macros):
    lines = _lines(macros)
    if lines is None:
        return
    for line in lines:
        from_msrom = [u for u in line.uops if u.from_msrom]
        if from_msrom:
            assert line.msrom
            # nothing shares a line with microcode
            assert from_msrom == list(line.uops)
            macro_addrs = {u.macro_addr for u in line.uops}
            assert len(macro_addrs) == 1


@given(region_macros())
@settings(max_examples=300, deadline=None)
def test_rule3_no_macro_spans_a_line_boundary(macros):
    lines = _lines(macros)
    if lines is None:
        return
    homes = {}
    for i, line in enumerate(lines):
        for uop in line.uops:
            homes.setdefault(uop.macro_addr, set()).add(i)
    for addr, line_set in homes.items():
        assert len(line_set) == 1, (
            f"macro at {addr:#x} split over lines {sorted(line_set)}"
        )


@given(region_macros())
@settings(max_examples=300, deadline=None)
def test_rule4_unconditional_branch_ends_its_line(macros):
    lines = _lines(macros)
    if lines is None:
        return
    for line in lines:
        if line.msrom:
            continue  # microcode expansions are not subject to rule 4
        for uop in line.uops[:-1]:
            assert not uop.is_unconditional


@given(region_macros())
@settings(max_examples=300, deadline=None)
def test_rule5_at_most_two_branches_per_line(macros):
    lines = _lines(macros)
    if lines is None:
        return
    for line in lines:
        assert sum(1 for u in line.uops if u.is_branch) <= 2


@given(region_macros())
@settings(max_examples=300, deadline=None)
def test_rule6_slot_accounting_includes_imm64_tax(macros):
    """Line slot counts equal the sum of member slot costs (a 64-bit
    immediate costs 2), lines never overflow, and nothing is lost.
    MSROM lines are charged as a full line whatever their expansion."""
    lines = _lines(macros)
    if lines is None:
        return
    for line in lines:
        if line.msrom:
            continue
        assert line.slots == sum(u.slots for u in line.uops)
        assert line.slots <= 6
    packed = sum(
        line.slots for line in lines if not line.msrom
    )
    regular = sum(m.slot_count for m in macros if not m.msrom)
    assert packed == regular


@given(region_macros())
@settings(max_examples=300, deadline=None)
def test_packing_preserves_program_order(macros):
    """The packed micro-op stream is exactly the decode stream --
    no reordering, duplication or loss."""
    lines = _lines(macros)
    if lines is None:
        return
    flat = [u for line in lines for u in line.uops]
    assert flat == [u for m in macros for u in m.uops]


def test_empty_region_is_uncacheable():
    assert build_lines([]) is None


@given(st.integers(min_value=0, max_value=10))
@settings(max_examples=20, deadline=None)
def test_pause_poisons_any_region(prefix_nops):
    macros = [enc.nop(1) for _ in range(prefix_nops)] + [enc.pause()]
    addr = 0x4000
    for m in macros:
        m.bind(addr)
        addr += m.length
    assert build_lines(macros) is None
