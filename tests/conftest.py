"""Shared test helpers: tiny program construction and execution."""

import pytest

from repro.cpu.config import CPUConfig
from repro.cpu.core import Core
from repro.isa.assembler import Assembler


@pytest.fixture
def skylake():
    """Fresh default Skylake-class configuration."""
    return CPUConfig.skylake()


def build_core(build_fn, config=None, entry=None):
    """Assemble a program via ``build_fn(asm)`` and wrap it in a Core."""
    asm = Assembler()
    build_fn(asm)
    program = asm.assemble(entry=entry)
    return Core(config or CPUConfig.skylake(), program)


def run(build_fn, regs=None, config=None, entry="main"):
    """Assemble, run to halt, return the core for inspection."""
    core = build_core(build_fn, config=config, entry=entry)
    core.call(entry, regs=regs)
    return core
