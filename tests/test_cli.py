"""CLI smoke tests (fast commands only; the heavy experiments are
covered by examples/ and benchmarks/)."""

import pytest

from repro.__main__ import main


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "hot_loop" in out
    assert "mean DSB hit rate" in out


def test_workloads_cpu_selection(capsys):
    assert main(["workloads", "--cpu", "zen2"]) == 0
    out = capsys.readouterr().out
    assert "4096-uop cache" in out
    # the 4K Zen 2 cache swallows the capacity-bound workload
    for line in out.splitlines():
        if line.startswith("large_code"):
            assert "100.0%" in line


def test_census_command(capsys):
    assert main(["census", "60"]) == 0
    out = capsys.readouterr().out
    assert "gadget census" in out
    assert "micro-op cache attack" in out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_command():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_load_example_missing_script_is_clear():
    from repro.__main__ import _load_example

    with pytest.raises(SystemExit, match="example script not found"):
        _load_example("no_such_example")


def test_workloads_json_export(tmp_path, capsys):
    import json

    out_path = tmp_path / "workloads.json"
    assert main(["workloads", "--json", str(out_path)]) == 0
    assert "mean DSB hit rate" in capsys.readouterr().out
    doc = json.loads(out_path.read_text())
    assert doc["experiment"] == "workloads"
    names = {row["name"] for row in doc["workloads"]}
    assert "hot_loop" in names
    assert all(0.0 <= row["dsb_hit_rate"] <= 1.0 for row in doc["workloads"])


def test_batch_workloads_cold_then_warm(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    args = ["batch", "workloads", "--jobs", "1", "--cache-dir", cache_dir]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "8 executed, 0 from cache" in out
    assert "mean DSB hit rate" in out

    # Warm re-run: every job answered from the content-addressed store.
    assert main(args) == 0
    assert "0 executed, 8 from cache" in capsys.readouterr().out


def test_batch_artifact_export(tmp_path, capsys):
    import json

    jsonl = tmp_path / "wl.jsonl"
    csv_path = tmp_path / "wl.csv"
    assert main(["batch", "workloads", "--no-cache",
                 "--jsonl", str(jsonl), "--csv", str(csv_path)]) == 0
    capsys.readouterr()
    lines = jsonl.read_text().splitlines()
    assert len(lines) == 8
    record = json.loads(lines[0])
    assert record["fn"] == "workloads.run"
    assert "result_dsb_hit_rate" in record
    assert csv_path.read_text().splitlines()[0].startswith("fn,")


def test_cache_stats_and_clear(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["batch", "workloads", "--cache-dir", cache_dir]) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    assert "8 cached result(s)" in capsys.readouterr().out
    assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
    assert "removed 8" in capsys.readouterr().out
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    assert "0 cached result(s)" in capsys.readouterr().out


def test_batch_attacks_cold_then_warm(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    args = ["batch", "attacks", "--fast", "--cache-dir", cache_dir]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "14 executed, 0 from cache" in out
    assert "Spectre (uop cache)" in out
    assert "key extraction: 1/1 exact" in out
    assert "fence signal" in out

    # Warm re-run: the whole evaluation without one simulation.
    assert main(args) == 0
    assert "0 executed, 14 from cache" in capsys.readouterr().out


def test_profile_command(capsys):
    assert main(["profile", "characterize", "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "profile: characterize" in out
    assert "cumulative" in out
    assert "size_point" in out


def test_profile_unknown_experiment():
    import pytest as _pytest

    with _pytest.raises(SystemExit):
        main(["profile", "frobnicate"])


def test_cache_stats_counts_artifacts(tmp_path, capsys):
    from repro.harness import ResultCache

    cache_dir = str(tmp_path / "cache")
    cache = ResultCache(cache_dir)
    cache.put("ab" * 32, "cli.test", {"x": 1})
    cache.put_artifact("ab" * 32, "trace.json", '{"events": []}')
    cache.put_artifact("ab" * 32, "heatmap-0.json", "{}")
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "1 cached result(s)" in out
    assert "2 artifact(s)" in out
    assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
    assert "removed 3" in capsys.readouterr().out


def test_submit_requires_fn_for_raw_job():
    with pytest.raises(SystemExit, match="--fn"):
        main(["submit", "job"])


def test_submit_unreachable_server_fails_cleanly(capsys):
    # nothing listens on this port: a clean nonzero exit, not a traceback
    assert main(["submit", "covert", "--port", "1"]) == 1
    assert "submit failed" in capsys.readouterr().out


def test_submit_shorthands_expand_to_valid_specs():
    """Every shorthand must pass server-side admission validation."""
    import argparse

    from repro.__main__ import _submit_spec
    from repro.serve.spec import ExperimentSpec

    base = dict(job_fn=None, params=None, payload=None, scale=1, targets=None,
                target=None, seed=17, priority=0, timeout=None,
                refresh=False, taint=False)
    for shorthand in ("covert", "table2", "workloads", "lint", "trace"):
        args = argparse.Namespace(experiment=shorthand, **base)
        spec = ExperimentSpec.from_json(_submit_spec(args))
        assert spec.kind in ("job", "sweep", "lint", "trace")
    args = argparse.Namespace(
        experiment="job", **{**base, "job_fn": "debug.echo",
                             "params": '{"x": 1}'})
    spec = ExperimentSpec.from_json(_submit_spec(args))
    assert spec.params["params"] == {"x": 1}


def test_serve_parser_accepts_flags():
    """Parser smoke: 'serve' wiring is valid without binding a socket."""
    parser_error = None
    try:
        # parse_known_args via main's parser is not exposed; drive the
        # subparser through a dry run that stops before run_server by
        # pointing at an invalid choice first.
        main(["serve", "--worker-mode", "bogus"])
    except SystemExit as exc:
        parser_error = exc
    assert parser_error is not None and parser_error.code == 2
