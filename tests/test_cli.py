"""CLI smoke tests (fast commands only; the heavy experiments are
covered by examples/ and benchmarks/)."""

import pytest

from repro.__main__ import main


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "hot_loop" in out
    assert "mean DSB hit rate" in out


def test_workloads_cpu_selection(capsys):
    assert main(["workloads", "--cpu", "zen2"]) == 0
    out = capsys.readouterr().out
    assert "4096-uop cache" in out
    # the 4K Zen 2 cache swallows the capacity-bound workload
    for line in out.splitlines():
        if line.startswith("large_code"):
            assert "100.0%" in line


def test_census_command(capsys):
    assert main(["census", "60"]) == 0
    out = capsys.readouterr().out
    assert "gadget census" in out
    assert "micro-op cache attack" in out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_command():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
