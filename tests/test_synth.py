"""repro.synth: genome space, staged pipeline, search determinism.

The load-bearing contracts:

- the search space *contains* the paper's operating point: the
  baseline genome rebuilds the hand-written covert channel's program
  byte-for-byte (same content fingerprint);
- every candidate that survives the free static stages is a
  well-formed harness job -- no malformed program can reach the serve
  queue (the hypothesis property sweeps mutation/crossover chains);
- the search is a pure function of its config: same seed and budget
  reproduce the identical best-candidate key, and a warm cache answers
  the rerun without executing a single job.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.covert import ChannelParams, CovertChannel
from repro.cpu.config import CPUConfig
from repro.harness.cache import ResultCache
from repro.harness.job import fingerprint_program
from repro.synth import (
    LocalEvaluator,
    SynthConfig,
    baseline_genome,
    best_report,
    build_session,
    crossover,
    evaluate_static,
    get_objective,
    measure_job,
    mutate,
    new_genome,
    run_search,
    search_key,
    seed_population,
    spearman,
)
from repro.synth.candidate import _no_preflight


def _fast_config(**overrides):
    base = dict(budget=24, population=12, finalists=3, elite=3,
                payload=b"sy", detector_bits=2, seed=99)
    base.update(overrides)
    return SynthConfig(**base)


# ----------------------------------------------------------------------
# genome space


def test_baseline_genome_rebuilds_the_hand_written_channel():
    with _no_preflight():
        hand = CovertChannel(ChannelParams(calibration_rounds=6)).program
        synth = build_session(baseline_genome()).program
    assert fingerprint_program(synth) == fingerprint_program(hand)


def test_seed_population_contains_the_baseline_and_is_seeded():
    a = seed_population(random.Random(5), 10)
    b = seed_population(random.Random(5), 10)
    assert a == b
    assert baseline_genome() in a


def test_mutate_returns_a_new_dict_of_the_same_family():
    rng = random.Random(1)
    for _ in range(50):
        parent = new_genome(rng)
        child = mutate(parent, rng)
        assert child is not parent
        assert child["family"] == parent["family"]


def test_crossover_of_cross_family_parents_is_total():
    rng = random.Random(2)
    covert = baseline_genome()
    smt = next(g for g in (new_genome(random.Random(i)) for i in range(99))
               if g["family"] == "smt")
    child = crossover(covert, smt, rng)
    assert child["family"] == "covert"  # clones parent a, mutated


# ----------------------------------------------------------------------
# staged pipeline


def test_out_of_range_geometry_rejects_at_assembly():
    bad = dict(baseline_genome(), nsets=20)  # > 16 sets
    cand = evaluate_static(bad)
    assert cand.stage == "rejected-assembly"
    assert "ConfigError" in cand.reject


def test_undersized_store_burst_rejects_at_assembly():
    cand = evaluate_static({
        "family": "smt", "resource": "store_buffer",
        "rx_stores": 10, "tx_stores": 64,
        "probe_passes": 4, "sender_loops": 8,
    })
    assert cand.stage == "rejected-assembly"
    assert "store buffer" in cand.reject


def test_oversubscribed_itlb_receiver_rejects_at_lint():
    cand = evaluate_static({
        "family": "smt", "resource": "itlb",
        "rx_pages": 20, "tx_pages": 24, "probe_passes": 4,
        "sender_loops": 4, "delay_iters": 150,
    })
    assert cand.stage == "rejected-lint"
    assert "RC003" in cand.reject


def test_survivor_carries_taint_capacity_and_static_rate():
    cand = evaluate_static(baseline_genome())
    assert cand.stage == "static"
    assert cand.capacity_bits == pytest.approx(1.0)
    assert cand.static_rate_kbps > 0


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       ops=st.lists(st.sampled_from(["mutate", "cross"]),
                    min_size=0, max_size=3))
def test_every_bred_candidate_is_rejected_or_submittable(seed, ops):
    """No malformed program reaches the serve queue: any genome a
    mutation/crossover chain can produce either dies in the free
    static stages or yields a job whose program builder (the same code
    the serve layer runs at admission) succeeds."""
    rng = random.Random(seed)
    genome = new_genome(rng)
    for op in ops:
        if op == "mutate":
            genome = mutate(genome, rng)
        else:
            genome = crossover(genome, new_genome(rng), rng)
    cand = evaluate_static(genome)
    assert cand.stage in ("static", "rejected-assembly", "rejected-lint")
    if cand.stage == "static":
        key = measure_job(cand.genome).key()  # runs the program builder
        assert len(key) == 64


# ----------------------------------------------------------------------
# objectives


def test_bandwidth_objective_gates_on_error_rate():
    obj = get_objective("bandwidth")
    assert obj({"bandwidth_kbps": 100.0, "error_rate": 0.0,
                "corrected_ok": True, "corrected_bandwidth_kbps": 90.0,
                "detector_auc": 1.0}) == 100.0
    assert obj({"bandwidth_kbps": 100.0, "error_rate": 0.5,
                "corrected_ok": False, "corrected_bandwidth_kbps": 0.0,
                "detector_auc": 1.0}) == 0.0


def test_stealth_objective_penalizes_detectable_channels():
    obj = get_objective("stealth")
    loud = {"bandwidth_kbps": 100.0, "error_rate": 0.0,
            "corrected_ok": True, "corrected_bandwidth_kbps": 90.0,
            "detector_auc": 1.0}
    quiet = dict(loud, detector_auc=0.5)
    assert obj(loud) == 0.0
    assert obj(quiet) == pytest.approx(100.0)


def test_unknown_objective_is_an_error():
    with pytest.raises(ValueError):
        get_objective("profit")


# ----------------------------------------------------------------------
# spearman (no SciPy)


def test_spearman_perfect_and_inverted():
    assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
    assert spearman([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)


def test_spearman_handles_ties_and_degenerate_input():
    assert spearman([1, 1, 2], [1, 1, 2]) == pytest.approx(1.0)
    assert spearman([1, 1, 1], [1, 2, 3]) == 0.0
    assert spearman([1], [2]) == 0.0


# ----------------------------------------------------------------------
# search determinism


def test_same_seed_and_budget_reproduce_the_identical_best_key(tmp_path):
    config = _fast_config()
    results = []
    for sub in ("a", "b"):
        cache = ResultCache(tmp_path / sub)
        res = run_search(config, LocalEvaluator(workers=0, cache=cache),
                         cache=cache)
        results.append(res)
    best_a, best_b = (r.best for r in results)
    assert best_a is not None
    assert best_a.key == best_b.key
    assert best_a.fitness == best_b.fitness
    assert [g.as_dict() for g in results[0].generations] == \
        [g.as_dict() for g in results[1].generations]


def test_warm_rerun_executes_zero_new_jobs(tmp_path):
    config = _fast_config()
    cache = ResultCache(tmp_path)
    cold = LocalEvaluator(workers=0, cache=cache)
    first = run_search(config, cold, cache=cache)
    assert cold.stats.executed > 0
    warm = LocalEvaluator(workers=0, cache=cache)
    second = run_search(config, warm, cache=cache)
    assert warm.stats.executed == 0
    assert warm.stats.cached == warm.stats.submitted
    assert second.best.key == first.best.key


def test_search_measures_the_baseline_anchor_and_checkpoints(tmp_path):
    config = _fast_config()
    cache = ResultCache(tmp_path)
    res = run_search(config, LocalEvaluator(workers=0, cache=cache),
                     cache=cache)
    anchor_key = measure_job(baseline_genome(), config.noise_seed,
                             config.payload, config.detector_bits).key()
    assert any(c.key == anchor_key for c in res.measured)
    ckpt = cache.artifact_path(search_key(config), "gen-000.json")
    assert ckpt.is_file()


def test_best_report_shape(tmp_path):
    config = _fast_config()
    cache = ResultCache(tmp_path)
    res = run_search(config, LocalEvaluator(workers=0, cache=cache),
                     cache=cache)
    report = best_report(res)
    assert report["objective"] == "bandwidth"
    assert report["key"] == res.best.key
    assert report["listing"], "report must include a program listing"
    assert report["funnel"]["raw"] == config.budget
    assert 0.0 < report["funnel"]["static_reject_rate"] < 1.0


def test_search_key_tracks_the_config():
    assert search_key(_fast_config()) != search_key(_fast_config(seed=100))
    assert search_key(_fast_config()) == search_key(_fast_config())
