"""Mitigation evaluation tests (Section VIII)."""

import pytest

from repro.core.crossdomain import CrossDomainChannel, CrossDomainParams
from repro.core.mitigations import (
    DetectionReport,
    UopCacheMonitor,
    evaluate_crossdomain_mitigations,
)
from repro.cpu.config import CPUConfig


SMALL = CrossDomainParams(samples=2, calibration_rounds=4)


class TestFlushOnCrossing:
    def test_channel_closed(self):
        chan = CrossDomainChannel(
            SMALL,
            config=CPUConfig.skylake(flush_uop_cache_on_domain_crossing=True),
        )
        timing = chan.calibrate()
        assert abs(timing.delta) < 50  # no separable signal

    def test_costs_performance(self):
        base = CrossDomainChannel(SMALL)
        mitigated = CrossDomainChannel(
            SMALL,
            config=CPUConfig.skylake(flush_uop_cache_on_domain_crossing=True),
        )
        r_base = base.transmit(b"\xaa")
        r_mit = mitigated.transmit(b"\xaa")
        # same work, many more cycles: the paper's predicted cost
        assert r_mit.total_cycles > 1.5 * r_base.total_cycles


class TestPrivilegePartitioning:
    def test_kernel_channel_closed(self):
        chan = CrossDomainChannel(
            SMALL,
            config=CPUConfig.skylake(privilege_partition_uop_cache=True),
        )
        report = chan.transmit(b"\xaa\x55")
        assert report.error_rate > 0.25  # guessing


class TestEvaluateAll:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return {o.name: o for o in evaluate_crossdomain_mitigations(b"\x5a")}

    def test_baseline_channel_open(self, outcomes):
        assert not outcomes["baseline"].channel_closed
        assert outcomes["baseline"].signal_delta > 100

    def test_both_mitigations_close_channel(self, outcomes):
        assert outcomes["flush-on-crossing"].channel_closed
        assert outcomes["privilege-partition"].channel_closed


class TestMonitor:
    def test_detects_anomalous_windows(self):
        monitor = UopCacheMonitor(sigma=3.0)
        benign = [10, 12, 11, 9, 13, 10, 12, 11]
        attack = [300, 250, 400, 280]
        report = monitor.evaluate(benign, attack)
        assert report.detection_rate == 1.0
        assert report.false_positive_rate == 0.0

    def test_mimicry_evades(self):
        """An attacker throttled to benign-looking miss rates slips
        through -- the liability the paper points out."""
        monitor = UopCacheMonitor(sigma=3.0)
        benign = [10, 12, 11, 9, 13, 10, 12, 11]
        stealthy_attack = [12, 13, 12, 14]
        report = monitor.evaluate(benign, stealthy_attack)
        assert report.detection_rate == 0.0

    def test_noisy_benign_costs_false_positives(self):
        monitor = UopCacheMonitor(sigma=1.0)
        benign = [10, 12, 11, 9, 300, 10, 11, 320]
        report = monitor.evaluate(benign, [500])
        assert report.false_positive_rate > 0.0

    def test_requires_training(self):
        with pytest.raises(RuntimeError):
            UopCacheMonitor().flag(100)
