"""ServeClient.submit_many: bounded-concurrency batch submission.

Burst-tested against the in-process fleet
(:class:`~repro.serve.testing.ClusterThread`) and against a
deliberately tiny single-service admission queue, where the whole
batch must ride out 429 backpressure through the shared Retry-After
pause instead of failing."""

import pytest

from repro.harness.cache import ResultCache
from repro.serve.client import Backpressure
from repro.serve.testing import ClusterThread, ServerThread


def _echo_spec(token):
    return {"kind": "job",
            "params": {"fn": "debug.echo", "params": {"token": token}}}


@pytest.fixture(scope="module")
def cluster():
    with ClusterThread(workers=2, worker_processes=1,
                       worker_mode="thread") as fleet:
        yield fleet


def test_burst_returns_terminal_records_in_spec_order(cluster):
    specs = [_echo_spec(i) for i in range(12)]
    records = cluster.client().submit_many(specs, max_in_flight=4,
                                           timeout=300.0)
    assert len(records) == len(specs)
    for i, record in enumerate(records):
        assert record["status"] == "done"
        assert record["result"]["result"]["token"] == i


def test_burst_of_identical_specs_coalesces_or_hits_cache(cluster):
    specs = [_echo_spec("same") for _ in range(8)]
    records = cluster.client().submit_many(specs, max_in_flight=8,
                                           timeout=300.0)
    assert all(r["status"] == "done" for r in records)
    assert len({r["id"] for r in records}) == 1, \
        "identical burst must coalesce onto one job"
    assert records[0]["result"]["executed"] <= 1
    assert len({r["key"] for r in records}) == 1


def test_invalid_spec_in_batch_raises_at_admission(cluster):
    """A 400 is a spec-authoring bug, not a job failure: it must
    propagate (the synth pipeline's static stages exist precisely so
    no such spec is ever submitted)."""
    from repro.serve.client import ServeError

    specs = [_echo_spec(1),
             {"kind": "job", "params": {"fn": "no.such.fn"}},
             _echo_spec(2)]
    with pytest.raises(ServeError):
        cluster.client().submit_many(specs, timeout=300.0)


def test_batch_survives_backpressure_on_a_tiny_queue(tmp_path):
    cache = ResultCache(tmp_path)
    with ServerThread(cache=cache, workers=1, queue_capacity=2,
                      worker_mode="thread") as srv:
        specs = [{"kind": "job",
                  "params": {"fn": "debug.sleep",
                             "params": {"seconds": 0.05, "token": i}}}
                 for i in range(10)]
        records = srv.client().submit_many(specs, max_in_flight=10,
                                           timeout=300.0)
    assert all(r["status"] == "done" for r in records)
    tokens = [r["result"]["result"]["token"] for r in records]
    assert tokens == list(range(10))


def test_exhausted_backpressure_retries_raise(tmp_path):
    cache = ResultCache(tmp_path)
    with ServerThread(cache=cache, workers=1, queue_capacity=1,
                      worker_mode="thread") as srv:
        from repro.serve.client import ServeError

        client = srv.client()
        blocker = {"kind": "job",
                   "params": {"fn": "debug.sleep",
                              "params": {"seconds": 3.0, "token": "b"}}}
        specs = [{"kind": "job",
                  "params": {"fn": "debug.sleep",
                             "params": {"seconds": 3.0, "token": i}}}
                 for i in range(6)]
        client.submit(blocker)
        with pytest.raises(Backpressure):
            client.submit_many(specs, max_in_flight=6,
                               backpressure_retries=0, timeout=300.0)
        # drain: cancel what is still queued (running jobs 409; they
        # finish within the blocker's own 3 s budget)
        for job in client.jobs()["jobs"]:
            try:
                client.cancel(job["id"])
            except ServeError:
                pass


def test_window_never_exceeds_max_in_flight(cluster):
    client = cluster.client()
    before = {j["id"] for j in client.jobs()["jobs"]}
    specs = [_echo_spec(f"w{i}") for i in range(9)]
    records = client.submit_many(specs, max_in_flight=3, timeout=300.0)
    assert all(r["status"] == "done" for r in records)
    assert len(records) == 9
    new = [j for j in client.jobs()["jobs"] if j["id"] not in before]
    assert len(new) == 9
