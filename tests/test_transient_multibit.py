"""Jump-table multi-bit variant-1 tests (the paper's suggested
bandwidth optimisation, implemented)."""

import pytest

from repro.core.transient_multibit import JumpTableSpectre
from repro.errors import ConfigError


class TestConfig:
    def test_bits_validation(self):
        with pytest.raises(ConfigError):
            JumpTableSpectre(secret=b"x", bits_per_symbol=0)
        with pytest.raises(ConfigError):
            JumpTableSpectre(secret=b"x", bits_per_symbol=4)
        with pytest.raises(ConfigError):
            JumpTableSpectre(secret=b"x", bits_per_symbol=3,
                             sets_per_group=8)  # 64 sets > 32

    def test_groups_have_disjoint_sets(self):
        attack = JumpTableSpectre(secret=b"x", bits_per_symbol=2)
        seen = set()
        for g in range(attack.groups):
            sets = set(attack._group_sets(g))
            assert not sets & seen
            seen |= sets


class TestLeak:
    def test_two_bits_per_symbol(self):
        attack = JumpTableSpectre(secret=b"\xa5", bits_per_symbol=2,
                                  samples=3)
        stats = attack.leak()
        assert stats.leaked == b"\xa5"

    def test_one_bit_degenerate_case(self):
        attack = JumpTableSpectre(secret=b"\x3c", bits_per_symbol=1,
                                  samples=3)
        stats = attack.leak()
        assert stats.leaked == b"\x3c"

    def test_calibration_separates_groups(self):
        attack = JumpTableSpectre(secret=b"\x00", bits_per_symbol=2)
        cal = attack.calibrate(rounds=3)
        for g in range(attack.groups):
            assert cal.loud[g] > cal.quiet[g]

    def test_fewer_victim_invocations_than_single_bit(self):
        """2 bits/symbol means half the victim invocations per byte."""
        two = JumpTableSpectre(secret=b"\x5a", bits_per_symbol=2, samples=2)
        one = JumpTableSpectre(secret=b"\x5a", bits_per_symbol=1, samples=2)
        two.calibrate(rounds=2)
        one.calibrate(rounds=2)
        s2 = two.core.counters().snapshot()
        two.leak()
        calls_two = two.core.counters().delta(s2).syscalls  # 0; use uops
        # compare by episodes: symbols per byte
        assert 8 // two.bits == 4
        assert 8 // one.bits == 8
