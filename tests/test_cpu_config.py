"""CPU configuration, counters and noise-model tests."""

import pytest

from repro.cpu.config import CPUConfig
from repro.cpu.counters import PerfCounters
from repro.cpu.noise import NoiseModel
from repro.errors import ConfigError
from repro.uopcache.cache import UopCache


class TestConfig:
    def test_skylake_defaults(self):
        c = CPUConfig.skylake()
        assert c.uop_cache_sets == 32
        assert c.uop_cache_ways == 8
        assert c.uops_per_line == 6
        assert c.uop_cache_capacity == 1536
        assert c.uop_cache_sharing == "static"

    def test_zen_preset(self):
        c = CPUConfig.zen()
        assert c.decode_style == "zen"
        assert c.msrom_threshold == 2
        assert c.uop_cache_sharing == "competitive"
        assert c.uop_cache_capacity == 2048

    def test_sunny_cove_is_one_point_five_x(self):
        skl = CPUConfig.skylake()
        snc = CPUConfig.sunny_cove()
        assert snc.uop_cache_capacity == pytest.approx(
            1.5 * skl.uop_cache_capacity
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            CPUConfig(decode_style="arm")
        with pytest.raises(ConfigError):
            CPUConfig(uop_cache_sharing="round-robin")
        with pytest.raises(ConfigError):
            CPUConfig(uop_cache_sets=33)

    def test_with_options(self):
        base = CPUConfig.skylake()
        derived = base.with_options(uop_cache_policy="lru")
        assert derived.uop_cache_policy == "lru"
        assert base.uop_cache_policy == "hotness"

    def test_cycles_to_seconds(self):
        c = CPUConfig.skylake()
        assert c.cycles_to_seconds(int(2.7e9)) == pytest.approx(1.0)


class TestCounters:
    def test_snapshot_delta(self):
        c = PerfCounters()
        c.uops_dsb = 10
        snap = c.snapshot()
        c.uops_dsb = 25
        c.uops_mite = 5
        delta = c.delta(snap)
        assert delta.uops_dsb == 15
        assert delta.uops_mite == 5

    def test_derived_views(self):
        c = PerfCounters(uops_dsb=10, uops_mite=3, uops_msrom=2)
        assert c.uops_total == 15
        assert c.uops_legacy == 5

    def test_reset_and_dict(self):
        c = PerfCounters(uops_dsb=7)
        c.reset()
        assert c.uops_dsb == 0
        assert "uops_dsb" in c.as_dict()


class TestNoise:
    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(evict_prob=1.5)

    def test_deterministic_by_seed(self):
        a = NoiseModel(jitter_sd=10.0, seed=42)
        b = NoiseModel(jitter_sd=10.0, seed=42)
        assert [a.rdtsc_jitter() for _ in range(10)] == [
            b.rdtsc_jitter() for _ in range(10)
        ]

    def test_zero_noise_is_silent(self):
        nm = NoiseModel()
        assert nm.rdtsc_jitter() == 0
        uc = UopCache()
        nm.maybe_evict(uc)  # no-op on empty cache, no crash

    def test_eviction_reduces_occupancy(self):
        from tests.test_uopcache_cache import entry_for_set, specs_for

        nm = NoiseModel(evict_prob=1.0, seed=1)
        uc = UopCache()
        uc.fill(0, entry_for_set(0), specs_for(3))
        nm.maybe_evict(uc)
        assert uc.occupancy() == 0
