"""Functional semantics of every micro-op kind, exercised through the
full core on small programs."""

import pytest

from repro.isa import encodings as enc
from tests.conftest import run


def simple(build_body):
    def build(asm):
        asm.label("main")
        build_body(asm)
        asm.emit(enc.halt())

    return build


class TestDataOps:
    def test_mov_imm_widths(self):
        core = run(simple(lambda asm: (
            asm.emit(enc.mov_imm("r1", 42)),
            asm.emit(enc.mov_imm("r2", 0x1122334455667788, width=64)),
        )))
        assert core.read_reg("r1") == 42
        assert core.read_reg("r2") == 0x1122334455667788

    def test_mov_reg(self):
        core = run(simple(lambda asm: (
            asm.emit(enc.mov_imm("r1", 7)),
            asm.emit(enc.mov("r2", "r1")),
        )))
        assert core.read_reg("r2") == 7

    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("add", 5, 3, 8),
            ("sub", 5, 3, 2),
            ("and", 0b1100, 0b1010, 0b1000),
            ("or", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("shl", 3, 2, 12),
            ("shr", 12, 2, 3),
            ("imul", 7, 6, 42),
        ],
    )
    def test_alu_reg_reg(self, op, a, b, expected):
        core = run(simple(lambda asm: (
            asm.emit(enc.mov_imm("r1", a)),
            asm.emit(enc.mov_imm("r2", b)),
            asm.emit(enc.alu(op, "r1", "r2")),
        )))
        assert core.read_reg("r1") == expected

    def test_alu_wraps_64_bits(self):
        core = run(simple(lambda asm: (
            asm.emit(enc.mov_imm("r1", (1 << 64) - 1, width=64)),
            asm.emit(enc.alu_imm("add", "r1", 1)),
        )))
        assert core.read_reg("r1") == 0

    def test_alu_imm(self):
        core = run(simple(lambda asm: (
            asm.emit(enc.mov_imm("r1", 10)),
            asm.emit(enc.alu_imm("sub", "r1", 4)),
        )))
        assert core.read_reg("r1") == 6

    def test_dec(self):
        core = run(simple(lambda asm: (
            asm.emit(enc.mov_imm("r1", 3)),
            asm.emit(enc.dec("r1")),
        )))
        assert core.read_reg("r1") == 2


class TestMemoryOps:
    def test_store_then_load(self):
        def body(asm):
            asm.reserve("buf", 64)
            asm.emit(enc.mov_imm("r1", asm.resolve("buf"), width=64))
            asm.emit(enc.mov_imm("r2", 0xBEEF))
            asm.emit(enc.store("r2", "r1"))
            asm.emit(enc.load("r3", "r1"))

        core = run(simple(body))
        assert core.read_reg("r3") == 0xBEEF
        assert core.read_mem(core.addr_of("buf")) == 0xBEEF

    def test_indexed_addressing(self):
        def body(asm):
            asm.data("table", bytes([10, 20, 30, 40]))
            asm.emit(enc.mov_imm("r1", asm.resolve("table"), width=64))
            asm.emit(enc.mov_imm("r2", 2))
            asm.emit(enc.load("r3", "r1", index="r2", size=1))

        core = run(simple(body))
        assert core.read_reg("r3") == 30

    def test_scaled_index(self):
        def body(asm):
            asm.data("table", (100).to_bytes(8, "little")
                     + (200).to_bytes(8, "little"))
            asm.emit(enc.mov_imm("r1", asm.resolve("table"), width=64))
            asm.emit(enc.mov_imm("r2", 1))
            asm.emit(enc.load("r3", "r1", index="r2", scale=8))

        core = run(simple(body))
        assert core.read_reg("r3") == 200

    def test_byte_load_isolates_byte(self):
        def body(asm):
            asm.data("v", b"\xAB\xCD")
            asm.emit(enc.mov_imm("r1", asm.resolve("v"), width=64))
            asm.emit(enc.load("r2", "r1", size=1))

        assert run(simple(body)).read_reg("r2") == 0xAB

    def test_clflush_slows_next_load(self):
        def body(asm):
            asm.reserve("buf", 64)
            asm.emit(enc.mov_imm("r1", asm.resolve("buf"), width=64))
            asm.emit(enc.load("r2", "r1"))
            asm.emit(enc.clflush("r1"))

        core = run(simple(body))
        assert core.hierarchy.probe_data_latency(core.addr_of("buf")) == \
            core.hierarchy.dram_latency


class TestConditions:
    @pytest.mark.parametrize(
        "cond,a,b,taken",
        [
            ("z", 5, 5, True),
            ("z", 5, 6, False),
            ("nz", 5, 6, True),
            ("b", 3, 5, True),
            ("b", 5, 3, False),
            ("ae", 5, 3, True),
            ("ae", 5, 5, True),
            ("l", 3, 5, True),
            ("l", 5, 3, False),
            ("ge", 5, 5, True),
        ],
    )
    def test_jcc_after_cmp(self, cond, a, b, taken):
        def body(asm):
            asm.emit(enc.mov_imm("r1", a))
            asm.emit(enc.mov_imm("r2", b))
            asm.emit(enc.cmp_reg("r1", "r2"))
            asm.emit(enc.jcc(cond, "yes"))
            asm.emit(enc.mov_imm("r9", 0))
            asm.emit(enc.jmp("out"))
            asm.label("yes")
            asm.emit(enc.mov_imm("r9", 1))
            asm.label("out")

        core = run(simple(body))
        assert core.read_reg("r9") == (1 if taken else 0)

    def test_test_sets_zero_flag(self):
        def body(asm):
            asm.emit(enc.mov_imm("r1", 0))
            asm.emit(enc.test_reg("r1", "r1"))
            asm.emit(enc.jcc("z", "zero"))
            asm.emit(enc.mov_imm("r9", 0))
            asm.emit(enc.jmp("out"))
            asm.label("zero")
            asm.emit(enc.mov_imm("r9", 1))
            asm.label("out")

        assert run(simple(body)).read_reg("r9") == 1


class TestCallsAndStack:
    def test_call_ret_roundtrip(self):
        def build(asm):
            asm.label("main")
            asm.emit(enc.mov_imm("r1", 1))
            asm.emit(enc.call("fn"))
            asm.emit(enc.alu_imm("add", "r1", 100))
            asm.emit(enc.halt())
            asm.align(64)
            asm.label("fn")
            asm.emit(enc.alu_imm("add", "r1", 10))
            asm.emit(enc.ret())

        core = run(build)
        assert core.read_reg("r1") == 111

    def test_nested_calls(self):
        def build(asm):
            asm.label("main")
            asm.emit(enc.mov_imm("r1", 0))
            asm.emit(enc.call("outer"))
            asm.emit(enc.halt())
            asm.align(64)
            asm.label("outer")
            asm.emit(enc.alu_imm("add", "r1", 1))
            asm.emit(enc.call("inner"))
            asm.emit(enc.alu_imm("add", "r1", 4))
            asm.emit(enc.ret())
            asm.align(64)
            asm.label("inner")
            asm.emit(enc.alu_imm("add", "r1", 2))
            asm.emit(enc.ret())

        assert run(build).read_reg("r1") == 7

    def test_indirect_call(self):
        def build(asm):
            asm.org(0x41_0000)
            asm.label("fn")
            asm.emit(enc.mov_imm("r1", 55))
            asm.emit(enc.ret())
            asm.org(0x40_0000)
            asm.label("main")
            asm.emit(enc.mov_imm("r5", asm.resolve("fn"), width=64))
            asm.emit(enc.mov_imm("r1", 0))
            asm.emit(enc.call_ind("r5"))
            asm.emit(enc.halt())

        core = run(build, entry="main")
        assert core.read_reg("r1") == 55

    def test_indirect_jump(self):
        def build(asm):
            asm.org(0x41_0000)
            asm.label("dest")
            asm.emit(enc.mov_imm("r1", 2))
            asm.emit(enc.halt())
            asm.org(0x40_0000)
            asm.label("main")
            asm.emit(enc.mov_imm("r5", asm.resolve("dest"), width=64))
            asm.emit(enc.jmp_ind("r5"))
            asm.emit(enc.mov_imm("r1", 1))  # skipped

        assert run(build).read_reg("r1") == 2

    def test_rsp_balanced(self):
        def build(asm):
            asm.label("main")
            asm.emit(enc.call("fn"))
            asm.emit(enc.halt())
            asm.align(64)
            asm.label("fn")
            asm.emit(enc.ret())

        core = run(build)
        from repro.cpu.thread import fresh_registers

        assert core.read_reg("rsp") == fresh_registers(0)["rsp"]


class TestTimingOps:
    def test_rdtsc_monotonic(self):
        def body(asm):
            asm.emit(enc.rdtsc("r1"))
            asm.emit(enc.nop(1))
            asm.emit(enc.rdtsc("r2"))

        core = run(simple(body))
        assert core.read_reg("r2") >= core.read_reg("r1")

    def test_rdtsc_observes_slow_load(self):
        def body(asm):
            asm.reserve("buf", 64)
            asm.emit(enc.mov_imm("r5", asm.resolve("buf"), width=64))
            asm.emit(enc.rdtsc("r1"))
            asm.emit(enc.load("r6", "r5"))  # DRAM miss
            asm.emit(enc.rdtsc("r2"))

        core = run(simple(body))
        elapsed = core.read_reg("r2") - core.read_reg("r1")
        assert elapsed >= core.hierarchy.dram_latency

    def test_lfence_orders_execution(self):
        """A load after an LFENCE cannot start before an older slow
        load completes."""
        def body(asm):
            asm.reserve("a", 64)
            asm.reserve("b", 64)
            asm.emit(enc.mov_imm("r5", asm.resolve("a"), width=64))
            asm.emit(enc.mov_imm("r6", asm.resolve("b"), width=64))
            asm.emit(enc.load("r1", "r5"))
            asm.emit(enc.lfence())
            asm.emit(enc.rdtsc("r2"))

        core = run(simple(body))
        assert core.read_reg("r2") >= core.hierarchy.dram_latency
