"""The two non-DSB covert channels: calibration separation, error-free
transmission on the quiet simulator, noise tolerance, and their wiring
into the Table I reporting/jobs surface.
"""

import pytest

from repro.contention.channels import (
    ITLBChannel,
    ITLBChannelParams,
    StoreBufferChannel,
    StoreBufferChannelParams,
)
from repro.core.report import CONTENTION_MODES, TABLE1_MODES, table1_row
from repro.cpu.noise import NoiseModel


class TestITLBChannel:
    def test_calibration_separates_hit_and_miss(self):
        chan = ITLBChannel()
        timing = chan.calibrate()
        # measured: ~20 vs ~88 cycles; assert a wide margin
        assert timing.miss_mean - timing.hit_mean > 20
        assert chan.classifier is not None

    def test_quiet_transmission_is_error_free(self):
        report = ITLBChannel().transmit(b"uop")
        assert report.bits_sent == 24
        assert report.bit_errors == 0
        assert report.bandwidth_kbps > 100

    def test_survives_default_noise(self):
        noise = NoiseModel(evict_prob=0.01, jitter_sd=25.0, seed=17)
        report = ITLBChannel(noise=noise).transmit(b"uop!")
        assert report.error_rate < 0.15

    def test_lint_claims_cover_all_entry_points(self):
        names = {c.name for c in ITLBChannel().lint_resource_claims()
                 if hasattr(c, "pages")}
        assert names == {"rx", "tx_one", "tx_zero"}


class TestStoreBufferChannel:
    def test_calibration_separates_hit_and_miss(self):
        timing = StoreBufferChannel().calibrate()
        # measured: ~75 vs ~160 cycles
        assert timing.miss_mean - timing.hit_mean > 20

    def test_quiet_transmission_is_error_free(self):
        report = StoreBufferChannel().transmit(b"uop")
        assert report.bit_errors == 0
        assert report.bandwidth_kbps > 100

    def test_survives_default_noise(self):
        noise = NoiseModel(evict_prob=0.01, jitter_sd=25.0, seed=17)
        report = StoreBufferChannel(noise=noise).transmit(b"uop!")
        assert report.error_rate < 0.15

    def test_params_scale_the_flood(self):
        small = StoreBufferChannelParams(tx_stores=32, sender_loops=4)
        chan = StoreBufferChannel(params=small)
        assert chan.transmit(b"u").bit_errors == 0


class TestTable1Wiring:
    def test_contention_modes_extend_but_do_not_touch_table1(self):
        assert len(CONTENTION_MODES) == 2
        assert not set(CONTENTION_MODES) & set(TABLE1_MODES)

    @pytest.mark.parametrize("mode", CONTENTION_MODES)
    def test_table1_row_dispatches_contention_modes(self, mode):
        row = table1_row(mode, payload=b"u")
        assert row.mode == mode
        assert row.error_rate < 0.2
        assert 0 < row.corrected_bandwidth_kbps < row.bandwidth_kbps

    def test_unknown_mode_error_lists_contention_modes(self):
        with pytest.raises(ValueError, match="iTLB"):
            table1_row("Cross-thread frobnicator")

    def test_attack_jobs_carry_the_contention_group(self):
        from repro.harness.attacks import attack_jobs

        groups = attack_jobs()
        modes = [j.params["mode"] for j in groups["contention"]]
        assert modes == list(CONTENTION_MODES)
        assert all(j.fn == "covert.table1_row"
                   for j in groups["contention"])

    def test_submit_shorthands_expand_to_contention_rows(self):
        import argparse

        from repro.__main__ import _submit_spec

        def spec_for(name):
            args = argparse.Namespace(
                experiment=name, payload=None, seed=17, priority=0,
                timeout=None, refresh=False, scale=1, targets=None,
                target=None, job_fn=None, params=None,
            )
            return _submit_spec(args)

        itlb = spec_for("itlb")
        assert itlb["kind"] == "job"
        assert itlb["params"]["params"]["mode"] == "Cross-thread iTLB (SMT)"
        sb = spec_for("storebuffer")
        assert sb["params"]["params"]["mode"] == \
            "Cross-thread store buffer (SMT)"

    def test_run_attacks_returns_table1_rows_for_contention(self, tmp_path):
        from repro.core.report import Table1Row
        from repro.harness.attacks import run_attacks

        results, _, _ = run_attacks(fast=True, cache=None)
        rows = results["contention"]
        assert [r.mode for r in rows] == list(CONTENTION_MODES)
        assert all(isinstance(r, Table1Row) for r in rows)
        assert all(r.error_rate < 0.2 for r in rows)
