"""Structured observability tests: event bus mechanics, hook coverage,
tiger/zebra occupancy heatmaps, windowed counter sampling, Chrome
trace export, session integration and artifact persistence."""

import json

import pytest

from repro.core.exploitgen import FootprintSpec, emit_chain, striped_sets
from repro.cpu.config import CPUConfig
from repro.cpu.core import Core
from repro.isa import encodings as enc
from repro.isa.assembler import Assembler
from repro.observe import (
    ALL_KINDS,
    BRANCH_PREDICT,
    BRANCH_RESOLVE,
    DSB_EVICT,
    DSB_FILL,
    DSB_FLUSH,
    FETCH_BLOCK,
    SQUASH,
    STORE_COMMIT,
    CounterSampler,
    Event,
    EventBus,
    OccupancySnapshot,
    TraceRecorder,
    chrome_trace,
    owner_classifier,
    validate_chrome_trace,
    write_chrome_trace,
)

TIGER_SETS = striped_sets(8)
ZEBRA_SETS = striped_sets(8, offset=2)


def conflict_core():
    """Tiger/zebra/second-tiger chains from Listing 1's recipe."""
    asm = Assembler()
    emit_chain(asm, "tiger", FootprintSpec(TIGER_SETS, 8, 0x44_0000))
    emit_chain(asm, "zebra", FootprintSpec(ZEBRA_SETS, 8, 0x48_0000))
    emit_chain(asm, "tiger2", FootprintSpec(TIGER_SETS, 8, 0x4C_0000))
    return Core(CPUConfig.skylake(), asm.assemble(entry="tiger"))


def tiny_core():
    asm = Assembler()
    asm.label("main")
    asm.emit(enc.alu_imm("add", "r1", 1))
    asm.emit(enc.halt())
    return Core(CPUConfig.skylake(), asm.assemble(entry="main"))


# ----------------------------------------------------------------------
# bus mechanics


class TestEventBus:
    def test_emit_without_subscribers_is_noop(self):
        bus = EventBus()
        bus.emit(FETCH_BLOCK, 0, 0, entry=1)  # must not raise
        assert not bus.active
        assert not bus.wants(FETCH_BLOCK)

    def test_subscribe_filters_by_kind(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, (DSB_FILL,))
        assert bus.wants(DSB_FILL)
        assert not bus.wants(FETCH_BLOCK)
        bus.emit(FETCH_BLOCK, 1, 0)
        bus.emit(DSB_FILL, 2, 0, entry=7)
        assert len(seen) == 1
        assert seen[0].kind == DSB_FILL
        assert seen[0].get("entry") == 7

    def test_subscribe_all_kinds_by_default(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        for kind in ALL_KINDS:
            bus.emit(kind, 0, 0)
        assert [e.kind for e in seen] == list(ALL_KINDS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            EventBus().subscribe(lambda e: None, ("fetch_blok",))

    def test_unsubscribe_removes_everywhere(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, (FETCH_BLOCK, SQUASH))
        bus.unsubscribe(seen.append)
        bus.emit(FETCH_BLOCK, 0, 0)
        bus.emit(SQUASH, 0, 0)
        assert not seen
        assert not bus.active

    def test_event_as_dict_is_flat(self):
        event = Event(DSB_EVICT, 10, 1, {"set": 4, "cause": "conflict"})
        assert event.as_dict() == {
            "kind": DSB_EVICT,
            "cycle": 10,
            "thread": 1,
            "set": 4,
            "cause": "conflict",
        }


# ----------------------------------------------------------------------
# core hooks


class TestCoreHooks:
    def test_unobserved_core_carries_no_bus(self):
        core = tiny_core()
        core.call("main")
        assert core.observer is None
        assert core.frontend.observer is None
        assert core.uop_cache.observer is None

    def test_observe_wires_all_components(self):
        core = tiny_core()
        bus = core.observe()
        assert core.observer is bus
        assert core.frontend.observer is bus
        assert core.uop_cache.observer is bus
        assert core.observe() is bus  # idempotent

    def test_unobserve_detaches(self):
        core = tiny_core()
        rec = TraceRecorder().connect(core)
        core.unobserve()
        core.call("main")
        assert len(rec) == 0
        assert core.observer is None

    def test_fetch_and_fill_events(self):
        core = conflict_core()
        with TraceRecorder(core=core) as rec:
            core.call("tiger")
        counts = rec.counts()
        assert counts[FETCH_BLOCK] == core.counters().fetch_blocks
        assert counts[DSB_FILL] > 0
        assert counts[BRANCH_PREDICT] > 0  # the jmp chain predicts
        # every fetch event carries the structured payload
        for event in rec.of(FETCH_BLOCK):
            assert event.get("kind") in (
                "seq", "taken", "stall_indirect", "halt", "cpuid", "fault"
            )
            assert event.get("source") in ("dsb", "mite", "msrom", "none")
            assert event.get("cycles") >= 0

    def test_uops_by_source_matches_counters(self):
        core = conflict_core()
        with TraceRecorder(core=core) as rec:
            core.call("tiger")
            core.call("tiger")
        by_source = rec.uops_by_source()
        counters = core.counters()
        assert by_source.get("dsb", 0) == counters.uops_dsb
        assert by_source.get("mite", 0) == counters.uops_mite

    def test_flush_event(self):
        core = conflict_core()
        core.call("tiger")
        with TraceRecorder(core=core, kinds=(DSB_FLUSH,)) as rec:
            core.flush_uop_cache()
        assert len(rec) == 1
        assert rec.events[0].get("dropped") > 0

    def test_squash_resolve_and_store_commit_events(self):
        from repro.core.transient import ClassicSpectreV1

        attack = ClassicSpectreV1(secret=b"\xa5")
        rec = TraceRecorder().connect(attack.core)
        attack.leak()
        rec.close()
        counts = rec.counts()
        assert counts.get(BRANCH_RESOLVE, 0) > 0
        assert counts.get(SQUASH, 0) > 0  # the transient attack squashes
        assert counts.get(STORE_COMMIT, 0) > 0
        mispredicted = [
            e for e in rec.of(BRANCH_RESOLVE) if e.get("mispredicted")
        ]
        assert len(mispredicted) >= counts[SQUASH]
        for event in rec.of(SQUASH):
            assert event.get("squashed") > 0
            assert event.get("correct_rip") is not None

    def test_conflict_evictions_carry_set_and_cause(self):
        core = conflict_core()
        core.call("tiger")
        with TraceRecorder(core=core, kinds=(DSB_EVICT,)) as rec:
            for _ in range(6):  # wear down the hot tiger lines
                core.call("tiger2")
        conflicts = [e for e in rec.events if e.get("cause") == "conflict"]
        assert conflicts, "second tiger must conflict-evict the first"
        assert {e.get("set") for e in conflicts} <= set(TIGER_SETS)

    def test_noise_evictions_carry_noise_cause(self):
        from repro.cpu.noise import NoiseModel

        asm = Assembler()
        emit_chain(asm, "tiger", FootprintSpec(TIGER_SETS, 8, 0x44_0000))
        core = Core(
            CPUConfig.skylake(),
            asm.assemble(entry="tiger"),
            noise=NoiseModel(evict_prob=0.5, seed=1),
        )
        with TraceRecorder(core=core, kinds=(DSB_EVICT,)) as rec:
            core.call("tiger")
            core.call("tiger")
        assert any(e.get("cause") == "noise" for e in rec.events)


class TestLegacyTrace:
    def test_trace_property_collects_tuples(self):
        core = tiny_core()
        core.trace = []
        core.call("main")
        assert core.trace, "legacy trace must still collect"
        for cycle, entry, kind, source, n_uops in core.trace:
            assert isinstance(cycle, int) and cycle >= 0
            assert isinstance(entry, int)
            assert kind in ("seq", "taken", "stall_indirect", "halt",
                            "cpuid", "fault")
            assert source in ("dsb", "mite", "msrom", "none")
            assert isinstance(n_uops, int)

    def test_trace_matches_structured_events(self):
        core = conflict_core()
        core.trace = []
        rec = TraceRecorder(kinds=(FETCH_BLOCK,)).connect(core)
        core.call("tiger")
        rec.close()
        expected = [
            (e.cycle, e.get("entry"), e.get("kind"), e.get("source"),
             e.get("n_uops"))
            for e in rec.events
        ]
        assert core.trace == expected

    def test_assigning_none_stops_collection(self):
        core = tiny_core()
        core.trace = []
        core.call("main")
        collected = list(core.trace)
        core.trace = None
        core.call("main")
        assert core.trace is None
        assert collected  # old list untouched


class TestPayPerUse:
    def test_observation_does_not_perturb_results(self):
        from repro.core.covert import ChannelParams, CovertChannel

        plain = CovertChannel(ChannelParams()).transmit(b"u")
        observed_channel = CovertChannel(ChannelParams())
        rec = TraceRecorder().connect(observed_channel.core)
        observed = observed_channel.transmit(b"u")
        rec.close()
        assert len(rec) > 0
        assert observed.bits_sent == plain.bits_sent
        assert observed.bit_errors == plain.bit_errors
        assert observed.total_cycles == plain.total_cycles
        assert observed.timing.hit_times == plain.timing.hit_times
        assert observed.timing.miss_times == plain.timing.miss_times


# ----------------------------------------------------------------------
# heatmaps


class TestHeatmap:
    def test_tiger_zebra_eight_way_set_conflict(self):
        """Listing 1's pattern: a tiger owns its eight striped sets
        completely (8/8 ways); the zebra's complementary stripes stay
        empty, then fill without evicting a single tiger line."""
        core = conflict_core()
        core.call("tiger")
        after_tiger = OccupancySnapshot.capture(core.uop_cache, "tiger")
        for s in TIGER_SETS:
            assert after_tiger.occupancy[s] == 8  # eight-way conflict rows
        for s in ZEBRA_SETS:
            assert after_tiger.occupancy[s] == 0

        evictions_before = core.uop_cache.stats.evictions
        core.call("zebra")
        after_zebra = OccupancySnapshot.capture(core.uop_cache, "zebra")
        assert core.uop_cache.stats.evictions == evictions_before
        for s in TIGER_SETS:
            assert after_zebra.occupancy[s] == 8  # tiger untouched
        for s in ZEBRA_SETS:
            assert after_zebra.occupancy[s] == 8  # zebra now resident
        diff = after_zebra.diff(after_tiger)
        assert all(diff[s] == 8 for s in ZEBRA_SETS)
        assert all(diff[s] == 0 for s in TIGER_SETS)

    def test_render_text_with_owner_classifier(self):
        core = conflict_core()
        core.call("tiger")
        core.call("zebra")
        snap = OccupancySnapshot.capture(core.uop_cache)
        owner = owner_classifier(
            {"T": (0x44_0000, 0x48_0000), "Z": (0x48_0000, 0x4C_0000)},
            default="?",
        )
        text = snap.render_text(owner)
        lines = text.splitlines()
        assert len(lines) == 32 + 2  # header + sets + total
        assert "TTTTTTTT" in lines[1 + TIGER_SETS[0]]
        assert "ZZZZZZZZ" in lines[1 + ZEBRA_SETS[0]]

    def test_json_roundtrip(self):
        core = conflict_core()
        core.call("tiger")
        snap = OccupancySnapshot.capture(core.uop_cache, "roundtrip")
        doc = json.loads(json.dumps(snap.to_json()))  # via real JSON
        back = OccupancySnapshot.from_json(doc)
        assert back.label == "roundtrip"
        assert back.occupancy == snap.occupancy
        assert back.lines[TIGER_SETS[0]][0] == snap.lines[TIGER_SETS[0]][0]

    def test_from_json_rejects_foreign_docs(self):
        with pytest.raises(ValueError):
            OccupancySnapshot.from_json({"schema": "something-else"})

    def test_occupied_sets_and_entries(self):
        core = conflict_core()
        core.call("tiger")
        snap = OccupancySnapshot.capture(core.uop_cache)
        occupied = set(snap.occupied_sets())
        assert set(TIGER_SETS) <= occupied
        assert not occupied & set(ZEBRA_SETS)
        assert len(snap.entries_in_set(TIGER_SETS[0])) == 8


# ----------------------------------------------------------------------
# counter timeseries


class TestCounterSampler:
    def test_window_cutting_and_zero_fill(self):
        sampler = CounterSampler(window=10)
        sampler._on_event(
            Event(FETCH_BLOCK, 5, 0, {"source": "dsb", "n_uops": 4})
        )
        sampler._on_event(
            Event(FETCH_BLOCK, 25, 0, {"source": "mite", "n_uops": 2})
        )
        rows = sampler.finish()
        assert [row["t0"] for row in rows] == [0, 10, 20]
        assert rows[0]["uops_dsb"] == 4
        assert rows[1]["fetch_blocks"] == 0  # interior window zero-filled
        assert rows[2]["uops_mite"] == 2

    def test_clock_reset_splices_timeline(self):
        sampler = CounterSampler(window=10)
        sampler._on_event(
            Event(FETCH_BLOCK, 25, 0, {"source": "dsb", "n_uops": 1})
        )
        # fetch clock reset between Core.call boundaries: raw cycle 3
        # lands at 25 + 3 = 28 on the continuous timeline
        sampler._on_event(
            Event(FETCH_BLOCK, 3, 0, {"source": "dsb", "n_uops": 1})
        )
        rows = sampler.finish()
        assert rows[-1]["t0"] == 20
        assert rows[-1]["uops_dsb"] == 2

    def test_integration_conserves_uops(self):
        core = conflict_core()
        rec = TraceRecorder(kinds=(FETCH_BLOCK,)).connect(core)
        sampler = CounterSampler(window=100).connect(core)
        core.call("tiger")
        core.call("tiger")
        rec.close()
        sampler.close()
        rows = sampler.finish()
        by_source = rec.uops_by_source()
        assert sum(r["uops_dsb"] for r in rows) == by_source.get("dsb", 0)
        assert sum(r["uops_mite"] for r in rows) == by_source.get("mite", 0)
        assert sum(r["fetch_blocks"] for r in rows) == len(rec.events)

    def test_as_json_shape(self):
        sampler = CounterSampler(window=50)
        sampler._on_event(Event(FETCH_BLOCK, 1, 0, {"source": "dsb",
                                                    "n_uops": 1}))
        doc = sampler.as_json()
        assert doc["window"] == 50
        assert doc["samples"][0]["t0"] == 0
        json.dumps(doc)  # JSON-serialisable throughout

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            CounterSampler(window=0)


# ----------------------------------------------------------------------
# chrome export


class TestChromeTrace:
    def _recorded(self):
        core = conflict_core()
        with TraceRecorder(core=core) as rec:
            core.call("tiger")
            core.call("zebra")  # second call: fetch clock resets
        return rec

    def test_export_is_valid(self):
        rec = self._recorded()
        doc = chrome_trace(rec.events)
        assert validate_chrome_trace(doc) == []
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        assert any(e["ph"] == "M" for e in doc["traceEvents"])

    def test_timestamps_are_monotonic_per_thread(self):
        rec = self._recorded()
        doc = chrome_trace(rec.events)
        last_end = {}
        for event in doc["traceEvents"]:
            if event["ph"] != "X":
                continue
            tid = event["tid"]
            assert event["ts"] >= 0
            assert event["ts"] >= last_end.get(tid, 0) - event["dur"]
            last_end[tid] = event["ts"] + event["dur"]
        # two calls' worth of slices ended up on one timeline
        assert last_end[0] > 0

    def test_round_trips_through_json(self, tmp_path):
        rec = self._recorded()
        doc = chrome_trace(rec.events, process_name="repro:test")
        path = tmp_path / "trace.json"
        write_chrome_trace(path, doc)
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []
        names = {e["name"] for e in loaded["traceEvents"]}
        assert "process_name" in names

    def test_validation_rejects_malformed_docs(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": [{}]}) != []
        missing_dur = {
            "traceEvents": [
                {"name": "x", "ph": "X", "ts": 0, "pid": 0, "tid": 0}
            ]
        }
        assert any("dur" in p for p in validate_chrome_trace(missing_dur))
        negative_ts = {
            "traceEvents": [
                {"name": "x", "ph": "i", "ts": -5, "pid": 0, "tid": 0}
            ]
        }
        assert validate_chrome_trace(negative_ts) != []

    def test_write_refuses_invalid_doc(self, tmp_path):
        with pytest.raises(ValueError):
            write_chrome_trace(tmp_path / "bad.json", {"traceEvents": "nope"})


# ----------------------------------------------------------------------
# session integration


class TestSessionObserve:
    def _session(self):
        from repro.session.base import AttackSession

        class TinySession(AttackSession):
            def __init__(self):
                super().__init__(CPUConfig.skylake())

            def build_program(self):
                asm = Assembler()
                asm.label("main")
                asm.emit(enc.alu_imm("add", "r1", 1))
                asm.emit(enc.halt())
                return asm.assemble(entry="main")

        return TinySession()

    def test_run_with_recorder(self):
        session = self._session()
        rec = TraceRecorder()
        result = session.run(
            lambda s: s._call("main").retired_instructions, observe=rec
        )
        assert result > 0
        assert rec.counts()[FETCH_BLOCK] > 0
        # detached afterwards: further runs record nothing
        n = len(rec)
        session.run(lambda s: s._call("main"))
        assert len(rec) == n

    def test_run_with_callable(self):
        session = self._session()
        seen = []
        session.run(lambda s: s._call("main"), observe=seen.append)
        assert seen
        assert not session.core.observer.active  # unsubscribed after run

    def test_run_without_observe_stays_unobserved(self):
        session = self._session()
        session.run(lambda s: s._call("main"))
        assert session.core.observer is None

    def test_run_trials_spans_resets(self):
        session = self._session()
        rec = TraceRecorder(kinds=(FETCH_BLOCK,))
        results = session.run_trials(
            lambda s: s._call("main").retired_instructions, 3, observe=rec
        )
        assert len(results) == 3
        assert len(rec) >= 3  # events from every trial, across resets

    def test_bad_observe_item_rejected(self):
        session = self._session()
        with pytest.raises(TypeError):
            session.run(lambda s: None, observe=42)


# ----------------------------------------------------------------------
# artifact persistence


class TestArtifacts:
    def test_roundtrip_and_clear(self, tmp_path):
        from repro.harness import ResultCache

        cache = ResultCache(tmp_path / "store")
        key = "ab" + "0" * 62
        cache.put_artifact(key, "chrome.json", '{"traceEvents": []}')
        cache.put_artifact(key, "heatmap-0.json", b"{}")
        assert cache.get_artifact(key, "chrome.json") == b'{"traceEvents": []}'
        assert cache.get_artifact(key, "missing.json") is None
        assert cache.artifact_path(key, "chrome.json").is_file()
        assert cache.clear() == 2
        assert cache.get_artifact(key, "chrome.json") is None

    def test_invalid_names_rejected(self, tmp_path):
        from repro.harness import ResultCache

        cache = ResultCache(tmp_path / "store")
        with pytest.raises(ValueError):
            cache.artifact_path("ab" + "0" * 62, "../escape.json")
        with pytest.raises(ValueError):
            cache.artifact_path("ab" + "0" * 62, ".hidden")

    def test_null_cache_artifact_noops(self):
        from repro.harness.cache import NullCache

        cache = NullCache()
        assert cache.put_artifact("k", "a.json", b"x") is None
        assert cache.get_artifact("k", "a.json") is None
