"""Satellite: the result cache under concurrent multi-process writers.

The serving layer makes simultaneous writers the *normal* case (N pool
workers plus the batch CLI against one cache directory), so
``put``/``put_artifact`` must be atomic: a reader sees either nothing
or a complete record -- never a torn file -- and no ``.tmp`` litter
survives.
"""

import json
import multiprocessing
import os

from repro.harness.cache import ResultCache, _atomic_write


def _hammer(args):
    """One writer process: interleave identical-key writes, private-key
    writes and artifact writes against a shared cache directory."""
    root, worker_id, rounds = args
    cache = ResultCache(root)
    for i in range(rounds):
        # everyone fights over the same key with identical content
        cache.put("00" * 32, "stress.shared", {"round": "same-for-all"})
        # a private key per (worker, round)
        cache.put(f"{worker_id:02d}{i:02d}" + "ab" * 30,
                  "stress.private", {"worker": worker_id, "i": i})
        # artifact under the shared key
        cache.put_artifact("00" * 32, f"w{worker_id}.json",
                           json.dumps({"worker": worker_id, "i": i}))
    return worker_id


def test_concurrent_writers_one_cache_dir(tmp_path):
    root = tmp_path / "stress-cache"
    workers, rounds = 8, 25
    with multiprocessing.Pool(workers) as pool:
        done = pool.map(_hammer, [(str(root), w, rounds)
                                  for w in range(workers)])
    assert sorted(done) == list(range(workers))

    cache = ResultCache(root)
    # the contested key holds one complete, parseable record
    assert cache.get("00" * 32) == {"round": "same-for-all"}
    # every private record survived intact
    for w in range(workers):
        for i in range(rounds):
            key = f"{w:02d}{i:02d}" + "ab" * 30
            assert cache.get(key) == {"worker": w, "i": i}, (w, i)
    # every artifact is complete JSON
    for w in range(workers):
        blob = cache.get_artifact("00" * 32, f"w{w}.json")
        assert json.loads(blob)["worker"] == w
    # no temp-file litter anywhere in the tree
    strays = [p for p in root.rglob("*.tmp")]
    assert strays == []
    stats = cache.stats()
    assert stats.entries == workers * rounds + 1
    assert stats.artifacts == workers


def _clear_racer(args):
    root, role, rounds = args
    cache = ResultCache(root)
    if role == "writer":
        for i in range(rounds):
            cache.put(f"{i % 16:02x}" + "cd" * 31, "stress.race", {"i": i})
    else:
        for _ in range(rounds // 4):
            cache.clear()
    return role


def test_writers_race_concurrent_clear(tmp_path):
    """put() must survive clear() yanking shard directories out from
    under it (the FileNotFoundError retry path in _atomic_write)."""
    root = tmp_path / "race-cache"
    jobs = ([(str(root), "writer", 200)] * 4
            + [(str(root), "clearer", 40)] * 2)
    with multiprocessing.Pool(len(jobs)) as pool:
        roles = pool.map(_clear_racer, jobs)
    assert roles.count("writer") == 4
    # whatever survived is readable and complete
    cache = ResultCache(root)
    stats = cache.stats()
    for shard in (root / "objects").glob("*/*.json"):
        record = json.loads(shard.read_text())
        assert record["result"]["i"] >= 0
    assert stats.entries >= 0  # and stats() itself didn't trip


def test_atomic_write_retries_into_removed_directory(tmp_path):
    target = tmp_path / "a" / "b" / "file.json"
    _atomic_write(target, b"{}")
    assert target.read_bytes() == b"{}"
    # overwrite is atomic too: the temp file never lingers
    _atomic_write(target, b'{"v": 2}')
    assert json.loads(target.read_text())["v"] == 2
    assert list(tmp_path.rglob("*.tmp")) == []


def test_clear_sweeps_stray_tmp_files(tmp_path):
    cache = ResultCache(tmp_path / "tmp-cache")
    cache.put("ef" * 32, "stress.tmp", {"x": 1})
    shard = cache.path_for("ef" * 32).parent
    stray = shard / "leftover.tmp"
    stray.write_text("torn write debris")
    removed = cache.clear()
    assert removed >= 2  # the record and the stray
    assert not stray.exists()
    assert cache.stats().entries == 0


def test_stats_counts_artifacts(tmp_path):
    """Satellite: `repro cache stats` accounts for named artifacts."""
    cache = ResultCache(tmp_path / "stats-cache")
    cache.put("12" * 32, "stress.stats", {"x": 1})
    cache.put_artifact("12" * 32, "one.json", "{}")
    cache.put_artifact("12" * 32, "two.bin", os.urandom(64))
    stats = cache.stats()
    assert stats.entries == 1
    assert stats.artifacts == 2
    assert stats.artifact_bytes >= 64
    rendered = stats.format()
    assert "2 artifact(s)" in rendered
