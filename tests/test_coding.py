"""GF(256) and Reed-Solomon codec tests, with field-axiom and
error-correction property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.gf256 import GF256
from repro.coding.reed_solomon import RSCodec, RSDecodeError

GF = GF256()
elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestGF256:
    def test_identities(self):
        for a in range(256):
            assert GF.mul(a, 1) == a
            assert GF.add(a, 0) == a
            assert GF.add(a, a) == 0  # characteristic 2

    @given(elements, elements)
    @settings(max_examples=200, deadline=None)
    def test_commutativity(self, a, b):
        assert GF.mul(a, b) == GF.mul(b, a)
        assert GF.add(a, b) == GF.add(b, a)

    @given(elements, elements, elements)
    @settings(max_examples=200, deadline=None)
    def test_mul_associative_and_distributive(self, a, b, c):
        assert GF.mul(GF.mul(a, b), c) == GF.mul(a, GF.mul(b, c))
        assert GF.mul(a, GF.add(b, c)) == GF.add(GF.mul(a, b), GF.mul(a, c))

    @given(nonzero)
    @settings(max_examples=100, deadline=None)
    def test_inverse(self, a):
        assert GF.mul(a, GF.inverse(a)) == 1
        assert GF.div(a, a) == 1

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            GF.div(5, 0)
        with pytest.raises(ZeroDivisionError):
            GF.inverse(0)

    @given(nonzero, st.integers(min_value=0, max_value=300))
    @settings(max_examples=100, deadline=None)
    def test_pow_matches_repeated_mul(self, a, n):
        expected = 1
        for _ in range(n):
            expected = GF.mul(expected, a)
        assert GF.pow(a, n) == expected

    def test_poly_eval_horner(self):
        # p(x) = x^2 + 1 at x=2 -> 4 ^ 1 = 5 in GF(2^8)
        assert GF.poly_eval([1, 0, 1], 2) == 5

    @given(
        st.lists(elements, min_size=1, max_size=6),
        st.lists(elements, min_size=1, max_size=6),
        elements,
    )
    @settings(max_examples=100, deadline=None)
    def test_poly_mul_consistent_with_eval(self, p, q, x):
        lhs = GF.poly_eval(GF.poly_mul(p, q), x)
        rhs = GF.mul(GF.poly_eval(p, x), GF.poly_eval(q, x))
        assert lhs == rhs


class TestRSCodec:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RSCodec(nsym=0)
        with pytest.raises(ValueError):
            RSCodec(nsym=20, block=20)
        with pytest.raises(ValueError):
            RSCodec(nsym=10, block=300)

    def test_overhead(self):
        rs = RSCodec(nsym=32, block=255)
        assert rs.payload_per_block == 223
        assert rs.overhead == pytest.approx(255 / 223)

    def test_clean_roundtrip(self):
        rs = RSCodec(nsym=8, block=40)
        data = bytes(range(32))
        assert rs.decode(rs.encode(data)) == data

    def test_encoded_is_systematic(self):
        rs = RSCodec(nsym=8, block=40)
        data = bytes(range(30))
        assert rs.encode(data)[:30] == data

    def test_corrects_up_to_t_errors(self):
        rs = RSCodec(nsym=8, block=40)
        data = bytes(range(32))
        enc = bytearray(rs.encode(data))
        for pos in (3, 17, 25, 39):  # 4 = nsym/2 errors
            enc[pos] ^= 0x5A
        assert rs.decode(bytes(enc)) == data

    def test_fails_beyond_capacity(self):
        rs = RSCodec(nsym=4, block=30)
        data = bytes(range(26))
        enc = bytearray(rs.encode(data))
        for pos in (0, 5, 9, 14, 20):  # 5 > nsym/2 = 2
            enc[pos] ^= 0xA5
        with pytest.raises(RSDecodeError):
            rs.decode(bytes(enc))

    def test_oversized_block_rejected(self):
        rs = RSCodec(nsym=8, block=20)
        with pytest.raises(ValueError):
            rs.encode_block(list(range(13)))

    @given(
        data=st.binary(min_size=1, max_size=300),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_with_random_correctable_errors(self, data, seed):
        import random

        rng = random.Random(seed)
        rs = RSCodec(nsym=16, block=255)
        enc = bytearray(rs.encode(data))
        for off in range(0, len(enc), 255):
            blk = min(255, len(enc) - off)
            nerr = rng.randrange(0, 8 + 1)  # <= nsym/2
            for pos in rng.sample(range(blk), min(nerr, blk)):
                enc[off + pos] ^= rng.randrange(1, 256)
        assert rs.decode(bytes(enc)) == data
