"""Macro-fusion decode-bandwidth tests and new-template coverage."""

import pytest

from repro.cpu.config import CPUConfig
from repro.frontend.decode import decode_cost
from repro.isa import encodings as enc
from tests.conftest import run

SKL = CPUConfig.skylake()
NOFUSE = CPUConfig.skylake(macro_fusion=False)


class TestMacroFusion:
    def test_cmp_jcc_fuses_to_one_slot(self):
        macros = [enc.cmp_imm("r1", 4), enc.jcc("z", "x")]
        assert decode_cost(macros, SKL).cycles == 1
        # five fused pairs would need two cycles unfused (10 macros)
        pairs = [m for _ in range(5)
                 for m in (enc.cmp_imm("r1", 4), enc.jcc("z", "x"))]
        assert decode_cost(pairs, SKL).cycles == 1
        assert decode_cost(pairs, NOFUSE).cycles == 2

    def test_dec_jcc_fuses(self):
        macros = [enc.dec("r1"), enc.jcc("nz", "top")]
        fused = decode_cost(macros, SKL)
        unfused = decode_cost(macros, NOFUSE)
        assert fused.cycles <= unfused.cycles

    def test_non_adjacent_does_not_fuse(self):
        macros = [enc.cmp_imm("r1", 4), enc.nop(1), enc.jcc("z", "x")]
        # 3 macros, still one cycle on Skylake; check via width pressure
        wide = macros * 2  # 6 macros: fusion can't reduce below 2 cycles
        assert decode_cost(wide, SKL).cycles == decode_cost(wide, NOFUSE).cycles

    def test_msrom_never_fuses(self):
        macros = [enc.cpuid(), enc.jcc("z", "x")]
        result = decode_cost(macros, SKL)
        assert result.msrom_uops == enc.cpuid().uop_count

    def test_fusion_preserves_semantics(self):
        """Fusion is a bandwidth effect only: results are identical."""
        def build(asm):
            asm.label("main")
            asm.emit(enc.mov_imm("r1", 5))
            asm.emit(enc.mov_imm("r2", 0))
            asm.label("top")
            asm.emit(enc.alu_imm("add", "r2", 2))
            asm.emit(enc.dec("r1"))
            asm.emit(enc.jcc("nz", "top"))
            asm.emit(enc.halt())

        with_fusion = run(build, config=SKL)
        without = run(build, config=NOFUSE)
        assert with_fusion.read_reg("r2") == without.read_reg("r2") == 10


class TestNewTemplates:
    def test_lea_computes_address_without_memory(self):
        def build(asm):
            asm.label("main")
            asm.emit(enc.mov_imm("r1", 0x1000))
            asm.emit(enc.mov_imm("r2", 3))
            asm.emit(enc.lea("r3", "r1", index="r2", scale=8, disp=4))
            asm.emit(enc.halt())

        core = run(build)
        assert core.read_reg("r3") == 0x1000 + 24 + 4
        assert core.counters().l1d_refs == 0  # no memory access

    def test_push_pop_roundtrip(self):
        def build(asm):
            asm.label("main")
            asm.emit(enc.mov_imm("r1", 0x77))
            asm.emit(enc.mov_imm("r2", 0x88))
            asm.emit(enc.push("r1"))
            asm.emit(enc.push("r2"))
            asm.emit(enc.pop("r3"))
            asm.emit(enc.pop("r4"))
            asm.emit(enc.halt())

        core = run(build)
        assert core.read_reg("r3") == 0x88
        assert core.read_reg("r4") == 0x77

    def test_push_pop_balance_rsp(self):
        def build(asm):
            asm.label("main")
            asm.emit(enc.push("r1"))
            asm.emit(enc.pop("r2"))
            asm.emit(enc.halt())

        core = run(build)
        from repro.cpu.thread import fresh_registers

        assert core.read_reg("rsp") == fresh_registers(0)["rsp"]

    def test_zen2_capacity(self):
        config = CPUConfig.zen2()
        assert config.uop_cache_capacity == 4096
