"""Harness-native attacks: job registration, serial parity, caching.

The batch path must reproduce the serial evaluation bit-for-bit
(``run_table2`` vs ``repro.core.report.table2``), and a warm cache
must answer the whole ``batch attacks`` grid without executing a
single simulation.
"""

import pytest

from repro.core.report import table2
from repro.harness import ResultCache
from repro.harness.attacks import (
    attack_jobs,
    keyextract_jobs,
    run_attacks,
    run_table2,
    table2_jobs,
)
from repro.harness.job import registered_names

SECRET = b"\xa5"


class TestRegistration:
    def test_attack_jobs_registered(self):
        names = registered_names()
        for name in (
            "attacks.table2_row",
            "attacks.keyextract",
            "attacks.bti",
            "attacks.jumptable",
            "attacks.lfence_signal",
        ):
            assert name in names

    def test_job_keys_are_stable(self):
        first = [job.key() for job in table2_jobs(SECRET)]
        second = [job.key() for job in table2_jobs(SECRET)]
        assert first == second
        assert len(set(first)) == len(first)

    def test_keyextract_grid_uses_zen(self):
        # the SMT spy needs competitive sharing (the Zen preset)
        for job in keyextract_jobs(keys=(0xAAA,), nbits=12):
            assert job.config.uop_cache_sharing == "competitive"

    def test_attack_jobs_groups(self):
        groups = attack_jobs(secret=SECRET)
        assert list(groups) == [
            "table1", "contention", "table2", "keyextract", "bti",
            "jumptable", "lfence",
        ]
        assert len(groups["table1"]) == 4
        assert len(groups["contention"]) == 2
        assert len(groups["table2"]) == 2
        assert len(groups["lfence"]) == 3


class TestParity:
    def test_table2_matches_serial(self):
        rows, outcomes, summary = run_table2(SECRET)
        assert rows == table2(SECRET)
        assert summary.executed == 2


@pytest.fixture(scope="module")
def fast_run(tmp_path_factory):
    """One cold fast-grid run plus its cache (shared by the tests)."""
    cache = ResultCache(tmp_path_factory.mktemp("attacks") / "store")
    results, _, summary = run_attacks(fast=True, cache=cache)
    return results, summary, cache


class TestCaching:
    def test_warm_cache_executes_nothing(self, fast_run):
        results, cold, cache = fast_run
        assert cold.executed == cold.total > 0
        warm_results, _, warm = run_attacks(fast=True, cache=cache)
        assert warm.executed == 0
        assert warm.cached == warm.total == cold.total
        assert warm_results == results

    def test_fast_grid_leaks(self, fast_run):
        results, _, _ = fast_run
        assert [row.mode for row in results["table1"]] == [
            "Same address space",
            "Same address space (User/Kernel)",
            "Cross-thread (SMT)",
            "Transient Execution Attack",
        ]
        uop_row = results["table2"][1]
        assert uop_row.attack == "Spectre (uop cache)"
        assert uop_row.byte_accuracy == 1.0
        assert results["keyextract"][0]["exact"]
        assert results["bti"][0]["byte_accuracy"] == 1.0
        fences = {r["fence"]: r["signal"] for r in results["lfence"]}
        # Figure 10: LFENCE does not close the channel, CPUID does
        assert fences["lf"] > 4 * fences["cp"]
