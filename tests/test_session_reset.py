"""Reset parity: a reused (reset) session is byte-identical to a
fresh one.

``Core.reset()`` keeps the assembled program and the front end's
decode memos but restores every piece of post-construction *state* --
registers, memory image, micro-op cache, hierarchy, predictors, store
buffers, speculation bookkeeping, counters.  Because the simulator is
deterministic (noise models rewind to their seed on reset), the first
run after a reset must reproduce the first run after construction
exactly.  Every attack driver is checked here; the harness cache and
the throughput benchmark both lean on this guarantee.
"""

import random

from repro.core.bti import BranchTargetInjection
from repro.core.covert import ChannelParams, CovertChannel
from repro.core.crossdomain import CrossDomainChannel, CrossDomainParams
from repro.core.keyextract import ModexpVictim
from repro.core.smtchannel import SMTChannel, SMTChannelParams
from repro.core.transient import (
    ClassicSpectreV1,
    LfenceBypass,
    UopCacheSpectreV1,
)
from repro.core.transient_multibit import JumpTableSpectre
from repro.cpu.noise import NoiseModel
from repro.uopcache.cache import UopCache
from repro.uopcache.placement import LineSpec


def _noise():
    """Mild seeded interference: exercises the reseed-on-reset path."""
    return NoiseModel(evict_prob=0.02, jitter_sd=10.0, seed=11)


# ----------------------------------------------------------------------
# UopCache.evict_random (the public replacement-aware eviction the
# noise model uses)


class TestEvictRandom:
    def test_empty_cache_returns_false(self):
        uc = UopCache()
        assert uc.evict_random(random.Random(0)) is False
        assert uc.stats.evictions == 0

    def test_removes_one_line_and_counts(self):
        uc = UopCache()
        for set_idx in (0, 5, 9):
            uc.fill(0, 0x40_0000 + set_idx * 32, [LineSpec((), 6)])
        before = uc.occupancy()
        assert uc.evict_random(random.Random(1)) is True
        assert uc.occupancy() == before - 1
        assert uc.stats.evictions == 1

    def test_only_occupied_sets_are_candidates(self):
        uc = UopCache()
        uc.fill(0, 0x40_0000 + 7 * 32, [LineSpec((), 6)])
        assert uc.evict_random(random.Random(2)) is True
        assert uc.lines_in_set(7) == []

    def test_uopcache_reset_empties_everything(self):
        uc = UopCache()
        uc.fill(0, 0x40_0000, [LineSpec((), 6)])
        uc.lookup(0, 0x40_0000)
        uc.reset()
        assert uc.occupancy() == 0
        assert uc.stats.lookups == 0
        assert uc.stats.fills == 0


# ----------------------------------------------------------------------
# Core-level reset parity


class TestCoreReset:
    def test_counters_and_memory_parity(self):
        chan = CovertChannel(ChannelParams(), noise=_noise())
        core = chan.core

        def run():
            delta = core.call("probe")
            return (
                delta.as_dict(),
                core.counters(0).as_dict(),
                core.read_mem(core.addr_of("probe_result")),
                core.cycles(0),
            )

        first = run()
        second_hot = run()  # warmed caches: must differ from cold
        core.reset()
        assert run() == first
        assert second_hot != first  # the parity above is not vacuous

    def test_reset_restores_memory_image(self):
        chan = CovertChannel(ChannelParams())
        core = chan.core
        addr = core.addr_of("probe_result")
        core.write_mem(addr, 0xDEAD)
        core.reset()
        assert core.read_mem(addr) == 0

    def test_reset_swaps_noise_model(self):
        chan = CovertChannel(ChannelParams(), noise=_noise())
        chan.reset(noise=None)
        assert chan.noise is None
        assert chan.core.noise is None
        assert chan.core.backend.rdtsc_jitter is None


# ----------------------------------------------------------------------
# Driver-level reset parity: one test per attack


def _covert_trial(chan):
    return chan.transmit(b"u")


def _assert_reset_parity(session, trial):
    """Run, reset, run again: results must be identical."""
    first = trial(session)
    session.reset()
    second = trial(session)
    assert first == second


class TestDriverResetParity:
    def test_covert_channel(self):
        _assert_reset_parity(
            CovertChannel(ChannelParams(), noise=_noise()), _covert_trial
        )

    def test_crossdomain_channel(self):
        _assert_reset_parity(
            CrossDomainChannel(CrossDomainParams(), noise=_noise()),
            _covert_trial,
        )

    def test_smt_channel(self):
        _assert_reset_parity(
            SMTChannel(SMTChannelParams(), noise=_noise()), _covert_trial
        )

    def test_uop_cache_spectre(self):
        attack = UopCacheSpectreV1(secret=b"\xa5", noise=_noise())

        def trial(a):
            stats = a.leak()
            return (stats.leaked, stats.total_cycles,
                    stats.counters.as_dict())

        _assert_reset_parity(attack, trial)

    def test_classic_spectre(self):
        attack = ClassicSpectreV1(secret=b"\xa5")

        def trial(a):
            stats = a.leak()
            return (stats.leaked, stats.total_cycles,
                    stats.counters.as_dict())

        _assert_reset_parity(attack, trial)

    def test_lfence_bypass(self):
        attack = LfenceBypass()

        def trial(a):
            sig = a.measure("nf", rounds=2)
            return (sig.timing.hit_times, sig.timing.miss_times)

        _assert_reset_parity(attack, trial)

    def test_jump_table_spectre(self):
        attack = JumpTableSpectre(secret=b"\xa5")

        def trial(a):
            stats = a.leak()
            return (stats.leaked, stats.total_cycles)

        _assert_reset_parity(attack, trial)

    def test_branch_target_injection(self):
        attack = BranchTargetInjection(secret=b"\xa5", noise=_noise())

        def trial(a):
            stats = a.leak()
            return (stats.leaked, stats.total_cycles)

        _assert_reset_parity(attack, trial)

    def test_modexp_victim(self):
        victim = ModexpVictim(nbits=8, spy_samples=64)

        def trial(v):
            return v.run_pair(0xB5)

        _assert_reset_parity(victim, trial)


# ----------------------------------------------------------------------
# run_trials: the batched form of the same guarantee


class TestRunTrials:
    def test_trials_are_identical(self):
        chan = CovertChannel(ChannelParams(), noise=_noise())
        reports = chan.run_trials(_covert_trial, 3)
        assert reports[0] == reports[1] == reports[2]

    def test_no_reset_differs(self):
        # Without the reset the second trial sees warmed caches --
        # which is exactly why run_trials resets by default.
        chan = CovertChannel(ChannelParams(), noise=_noise())
        a, b = chan.run_trials(
            lambda c: c.calibrate(), 2, reset_between=False
        )
        assert (a.hit_times, a.miss_times) != (b.hit_times, b.miss_times)
