"""Gadget scanner tests (Section VI-A's gadget analysis)."""

import pytest

from repro.core.gadgets import (
    GadgetKind,
    generate_corpus,
    scan,
)
from repro.isa import encodings as enc
from repro.isa.assembler import Assembler


def assemble(build):
    asm = Assembler()
    asm.reserve("tbl", 256)
    asm.reserve("tbl2", 256)
    build(asm)
    asm.emit(enc.ret())
    return asm.assemble()


class TestShapes:
    def test_plain_uop_cache_gadget(self):
        def build(asm):
            asm.emit(enc.cmp_imm("r1", 256))
            asm.emit(enc.jcc("ae", "out"))
            asm.emit(enc.mov_imm("r9", asm.resolve("tbl"), width=64))
            asm.emit(enc.load("r3", "r9", index="r1", size=1))
            asm.label("out")

        census = scan(assemble(build))
        assert census.uop_cache_total == 1
        assert census.gadgets[0].kind is GadgetKind.UOP_CACHE

    def test_spectre_v1_gadget(self):
        def build(asm):
            asm.emit(enc.cmp_imm("r1", 256))
            asm.emit(enc.jcc("ae", "out"))
            asm.emit(enc.mov_imm("r9", asm.resolve("tbl"), width=64))
            asm.emit(enc.load("r3", "r9", index="r1", size=1))
            asm.emit(enc.alu_imm("shl", "r3", 6))
            asm.emit(enc.mov_imm("r8", asm.resolve("tbl2"), width=64))
            asm.emit(enc.load("r2", "r8", index="r3"))
            asm.label("out")

        census = scan(assemble(build))
        assert census.spectre_v1_total == 1

    def test_masked_transmit_gadget(self):
        def build(asm):
            asm.emit(enc.cmp_imm("r1", 256))
            asm.emit(enc.jcc("ae", "out"))
            asm.emit(enc.mov_imm("r9", asm.resolve("tbl"), width=64))
            asm.emit(enc.load("r3", "r9", index="r1", size=1))
            asm.emit(enc.alu_imm("and", "r3", 1))
            asm.emit(enc.test_reg("r3", "r3"))
            asm.emit(enc.jcc("z", "out"))
            asm.emit(enc.alu("add", "r4", "r5"))
            asm.label("out")

        census = scan(assemble(build))
        kinds = [g.kind for g in census.gadgets]
        assert GadgetKind.MASKED_TRANSMIT in kinds

    def test_benign_check_not_flagged(self):
        def build(asm):
            asm.emit(enc.cmp_imm("r1", 256))
            asm.emit(enc.jcc("ae", "out"))
            asm.emit(enc.alu("add", "r4", "r5"))
            asm.label("out")

        assert scan(assemble(build)).uop_cache_total == 0

    def test_unguarded_load_not_flagged(self):
        def build(asm):
            asm.emit(enc.mov_imm("r9", asm.resolve("tbl"), width=64))
            asm.emit(enc.load("r3", "r9", index="r1", size=1))

        assert scan(assemble(build)).uop_cache_total == 0

    def test_load_past_return_not_flagged(self):
        """The def-use chase must not escape the guarded function."""
        def build(asm):
            asm.emit(enc.cmp_imm("r1", 256))
            asm.emit(enc.jcc("ae", "out"))
            asm.label("out")
            asm.emit(enc.ret())
            # next "function": an r1-indexed load -- unreachable from
            # the check above
            asm.emit(enc.mov_imm("r9", asm.resolve("tbl"), width=64))
            asm.emit(enc.load("r3", "r9", index="r1", size=1))

        assert scan(assemble(build)).uop_cache_total == 0

    def test_window_bounds_the_chase(self):
        def build(asm):
            asm.emit(enc.cmp_imm("r1", 256))
            asm.emit(enc.jcc("ae", "out"))
            for _ in range(15):
                asm.emit(enc.alu("add", "r4", "r5"))
            asm.emit(enc.mov_imm("r9", asm.resolve("tbl"), width=64))
            asm.emit(enc.load("r3", "r9", index="r1", size=1))
            asm.label("out")

        program = assemble(build)
        assert scan(program, window=8).uop_cache_total == 0
        assert scan(program, window=24).uop_cache_total == 1


class TestScanDegenerateInputs:
    """The window is clamped to the program length: empty and tiny
    programs must scan safely whatever window a caller passes."""

    def test_empty_program(self):
        empty = Assembler().assemble()
        assert scan(empty).uop_cache_total == 0

    def test_single_instruction_program(self):
        asm = Assembler()
        asm.emit(enc.ret())
        program = asm.assemble()
        assert scan(program).uop_cache_total == 0
        assert scan(program, window=1000).uop_cache_total == 0

    def test_window_larger_than_program(self):
        def build(asm):
            asm.emit(enc.cmp_imm("r1", 256))
            asm.emit(enc.jcc("ae", "out"))
            asm.emit(enc.mov_imm("r9", asm.resolve("tbl"), width=64))
            asm.emit(enc.load("r3", "r9", index="r1", size=1))
            asm.label("out")

        # an oversized window clamps; the finding is unchanged
        assert scan(assemble(build), window=10**6).uop_cache_total == 1

    def test_nonpositive_window_finds_nothing(self):
        def build(asm):
            asm.emit(enc.cmp_imm("r1", 256))
            asm.emit(enc.jcc("ae", "out"))
            asm.emit(enc.mov_imm("r9", asm.resolve("tbl"), width=64))
            asm.emit(enc.load("r3", "r9", index="r1", size=1))
            asm.label("out")

        program = assemble(build)
        assert scan(program, window=0).uop_cache_total == 0
        assert scan(program, window=-7).uop_cache_total == 0

    def test_guard_at_program_end(self):
        """A cmp as the final instruction must not index past the end."""
        asm = Assembler()
        asm.emit(enc.cmp_imm("r1", 256))
        assert scan(asm.assemble()).uop_cache_total == 0


class TestCorpusCensus:
    @pytest.fixture(scope="class")
    def census(self):
        return scan(generate_corpus(functions=150, seed=7))

    def test_uop_gadgets_far_more_abundant(self, census):
        """The paper's census shape: ~5x more micro-op cache gadgets
        than Spectre-v1 gadgets (Linux: 100 vs 19)."""
        assert census.spectre_v1_total > 0
        assert census.uop_cache_total > 3 * census.spectre_v1_total

    def test_masked_transmitters_exist(self, census):
        """Paper: 37 gadgets also carry the bit-mask + branch."""
        assert census.count(GadgetKind.MASKED_TRANSMIT) > 5

    def test_deterministic_by_seed(self):
        a = scan(generate_corpus(functions=40, seed=3))
        b = scan(generate_corpus(functions=40, seed=3))
        assert [str(g) for g in a.gadgets] == [str(g) for g in b.gadgets]
