"""Integration tests for the Section VI transient-execution attacks."""

import pytest

from repro.core.transient import (
    ClassicSpectreV1,
    LfenceBypass,
    UopCacheSpectreV1,
)
from repro.cpu.config import CPUConfig


class TestUopCacheSpectreV1:
    def test_leaks_single_byte(self):
        attack = UopCacheSpectreV1(secret=b"\xa5", samples=3)
        stats = attack.leak()
        assert stats.leaked == b"\xa5"
        assert stats.byte_accuracy == 1.0

    def test_leaks_multi_byte_secret(self):
        attack = UopCacheSpectreV1(secret=b"\x3c\xc3", samples=3)
        stats = attack.leak()
        assert stats.leaked == b"\x3c\xc3"
        assert stats.bit_errors == 0

    def test_calibration_is_separable(self):
        attack = UopCacheSpectreV1(secret=b"\x00")
        timing = attack.calibrate(rounds=4)
        assert timing.delta > 100

    def test_no_llc_signal(self):
        """Stealthiness: the attack makes far fewer LLC references than
        the classic variant (Table II's point)."""
        secret = b"\x5a"
        uop_stats = UopCacheSpectreV1(secret=secret, samples=3).leak()
        classic_stats = ClassicSpectreV1(secret=secret).leak()
        assert uop_stats.counters.llc_refs < classic_stats.counters.llc_refs / 3

    def test_faster_than_classic(self):
        secret = b"\x5a\xa5"
        uop = UopCacheSpectreV1(secret=secret, samples=3).leak()
        classic = ClassicSpectreV1(secret=secret).leak()
        assert uop.total_cycles < classic.total_cycles

    def test_survives_privilege_partitioning(self):
        """Section VIII: privilege partitioning does not stop variant-1."""
        attack = UopCacheSpectreV1(
            secret=b"\x99",
            config=CPUConfig.skylake(privilege_partition_uop_cache=True),
            samples=3,
        )
        assert attack.leak().byte_accuracy == 1.0

    def test_victim_returns_error_architecturally(self):
        """The out-of-bounds call must not leak architecturally."""
        attack = UopCacheSpectreV1(secret=b"\x7e")
        attack.calibrate(rounds=2)
        attack._call("invoke_victim", regs={"r1": 2000, "r2": 0})
        # r4 (the transient secret register) must hold no secret data
        assert attack.core.read_reg("r4") != 0x7E


class TestClassicSpectreV1:
    def test_leaks_byte_for_byte(self):
        attack = ClassicSpectreV1(secret=b"\xa5\x3c")
        stats = attack.leak()
        assert stats.leaked == b"\xa5\x3c"

    def test_lfence_mitigates(self):
        """Intel's recommended fence defeats the data-cache variant."""
        attack = ClassicSpectreV1(secret=b"\xa5\x3c", lfence=True)
        stats = attack.leak()
        assert stats.byte_accuracy < 1.0

    def test_uses_llc_disclosure(self):
        stats = ClassicSpectreV1(secret=b"\x42").leak()
        assert stats.counters.llc_refs > 200  # flush+reload traffic


class TestLfenceBypass:
    @pytest.fixture(scope="class")
    def fig10(self):
        return LfenceBypass().figure10(rounds=5)

    def test_no_fence_leaks(self, fig10):
        assert fig10["none"].signal > 100

    def test_lfence_still_leaks(self, fig10):
        """The paper's headline: LFENCE does not stop the front-end
        disclosure."""
        assert fig10["lfence"].signal > 100

    def test_cpuid_kills_signal(self, fig10):
        assert abs(fig10["cpuid"].signal) < 50

    def test_lfence_comparable_to_no_fence(self, fig10):
        assert fig10["lfence"].signal > 0.5 * fig10["none"].signal

    def test_single_episode_reads_trained_secret(self):
        attack = LfenceBypass()
        one = attack.attack_once("lf", secret_bit=1)
        zero = attack.attack_once("lf", secret_bit=0)
        assert one > zero
