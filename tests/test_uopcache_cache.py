"""Micro-op cache organisation tests: lookup/fill, streaming tags,
partitioning geometry, inclusion, and replacement policies."""

import pytest

from repro.isa import encodings as enc
from repro.uopcache.cache import UopCache
from repro.uopcache.placement import LineSpec, build_lines
from repro.uopcache.policies import HotnessPolicy, LRUPolicy, make_policy


def specs_for(n_uops: int):
    """Pack ``n_uops`` one-byte NOPs into line specs."""
    macros = [enc.nop(1) for _ in range(n_uops)]
    addr = 0
    for m in macros:
        m.bind(addr)
        addr += 1
    return build_lines(macros)


def entry_for_set(set_idx: int, way: int = 0, sets: int = 32) -> int:
    return 0x40_0000 + way * sets * 32 + set_idx * 32


class TestLookupFill:
    def test_miss_then_hit(self):
        uc = UopCache()
        entry = entry_for_set(3)
        assert uc.lookup(0, entry) is None
        assert uc.fill(0, entry, specs_for(4))
        lines = uc.lookup(0, entry)
        assert lines is not None
        assert sum(l.uop_count for l in lines) == 4

    def test_multi_line_region_all_or_nothing(self):
        uc = UopCache()
        entry = entry_for_set(0)
        specs = specs_for(14)  # 3 lines
        assert len(specs) == 3
        uc.fill(0, entry, specs)
        assert uc.lookup(0, entry) is not None
        # drop one line manually -> whole region must miss
        uc._sets[uc.set_index(entry, 0)].pop()
        assert uc.lookup(0, entry) is None

    def test_distinct_entries_same_region_have_distinct_tags(self):
        uc = UopCache()
        uc.fill(0, 0x40_0000, specs_for(3))
        assert uc.lookup(0, 0x40_0001) is None

    def test_refill_replaces_in_place(self):
        uc = UopCache()
        entry = entry_for_set(5)
        uc.fill(0, entry, specs_for(3))
        uc.fill(0, entry, specs_for(3))
        assert uc.set_occupancy(uc.set_index(entry, 0)) == 1

    def test_rejects_oversized_region(self):
        uc = UopCache()
        assert not uc.fill(0, 0x40_0000, [LineSpec((), 6)] * 4)

    def test_capacity_numbers(self):
        uc = UopCache()
        assert uc.capacity_lines == 256
        assert uc.capacity_uops == 1536


class TestSetIndex:
    def test_bits_5_to_9(self):
        uc = UopCache()
        assert uc.set_index(0x40_0000, 0) == 0
        assert uc.set_index(0x40_0020, 0) == 1
        assert uc.set_index(0x40_0000 + 31 * 32, 0) == 31
        assert uc.set_index(0x40_0400, 0) == 0  # wraps at 1024

    def test_static_smt_halves_sets(self):
        uc = UopCache(sharing="static")
        uc.set_smt_active(True)
        idx_t0 = uc.set_index(entry_for_set(20), 0)
        idx_t1 = uc.set_index(entry_for_set(20), 1)
        assert idx_t0 < 16 <= idx_t1
        assert idx_t0 == 20 % 16

    def test_competitive_smt_shares_all_sets(self):
        uc = UopCache(sharing="competitive")
        uc.set_smt_active(True)
        assert uc.set_index(entry_for_set(20), 0) == 20
        assert uc.set_index(entry_for_set(20), 1) == 20

    def test_privilege_partition(self):
        uc = UopCache(privilege_partition=True)
        user = uc.set_index(entry_for_set(5), 0, privilege=3)
        kern = uc.set_index(entry_for_set(5), 0, privilege=0)
        assert user != kern
        assert {user, kern} == {5 % 16, 5 % 16 + 16}


class TestSMTMode:
    def test_toggle_flushes_static(self):
        uc = UopCache(sharing="static")
        uc.fill(0, entry_for_set(0), specs_for(3))
        uc.set_smt_active(True)
        assert uc.occupancy() == 0

    def test_toggle_preserves_competitive(self):
        uc = UopCache(sharing="competitive")
        uc.fill(0, entry_for_set(0), specs_for(3))
        uc.set_smt_active(True)
        assert uc.occupancy() == 1

    def test_static_threads_cannot_evict_each_other(self):
        uc = UopCache(sharing="static")
        uc.set_smt_active(True)
        for way in range(8):
            assert uc.fill(0, entry_for_set(0, way), specs_for(6))
        occupancy_before = uc.occupancy()
        for way in range(8):
            uc.fill(1, entry_for_set(0, way), specs_for(6))
        # thread 0's lines are all still resident
        for way in range(8):
            assert uc.lookup(0, entry_for_set(0, way)) is not None
        assert uc.occupancy() == occupancy_before + 8

    def test_competitive_threads_do_evict_each_other(self):
        uc = UopCache(sharing="competitive", policy=LRUPolicy())
        uc.set_smt_active(True)
        for way in range(8):
            uc.fill(0, entry_for_set(0, way), specs_for(6))
        for way in range(8):
            uc.fill(1, entry_for_set(0, way), specs_for(6))
        survivors = sum(
            1 for way in range(8)
            if uc.lookup(0, entry_for_set(0, way)) is not None
        )
        assert survivors == 0


class TestInclusion:
    def test_invalidate_code_range(self):
        uc = UopCache()
        uc.fill(0, 0x40_0000, specs_for(3))
        uc.fill(0, 0x40_0020, specs_for(3))
        uc.fill(0, 0x40_0040, specs_for(3))
        dropped = uc.invalidate_code_range(0x40_0000, 0x40_0040)
        assert dropped == 2
        assert uc.lookup(0, 0x40_0000) is None
        assert uc.lookup(0, 0x40_0040) is not None

    def test_flush(self):
        uc = UopCache()
        uc.fill(0, 0x40_0000, specs_for(3))
        uc.flush()
        assert uc.occupancy() == 0
        assert uc.stats.flushes == 1


class TestHotnessPolicy:
    def test_fill_bypassed_until_worn(self):
        uc = UopCache(policy=HotnessPolicy(decay_interval=0))
        for way in range(8):
            uc.fill(0, entry_for_set(0, way), specs_for(6))
        # heat the residents
        for _ in range(4):
            for way in range(8):
                uc.lookup(0, entry_for_set(0, way))
        filled = uc.fill(0, entry_for_set(0, 9), specs_for(6))
        assert not filled  # first conflicting fill is bypassed
        assert uc.stats.fill_rejects >= 1

    def test_wear_down_eventually_evicts(self):
        uc = UopCache(policy=HotnessPolicy(decay_interval=0))
        for way in range(8):
            uc.fill(0, entry_for_set(0, way), specs_for(6))
        for attempt in range(100):
            if uc.fill(0, entry_for_set(0, 9), specs_for(6)):
                break
        else:
            pytest.fail("wear-down never admitted the fill")
        assert uc.lookup(0, entry_for_set(0, 9)) is not None

    def test_hot_lines_survive_longer(self):
        def evictions_until_displaced(heat: int) -> int:
            uc = UopCache(policy=HotnessPolicy(decay_interval=0))
            for way in range(8):
                uc.fill(0, entry_for_set(0, way), specs_for(6))
            for _ in range(heat):
                for way in range(8):
                    uc.lookup(0, entry_for_set(0, way))
            target = entry_for_set(0, 0)
            attempts = 0
            # passive residency check: lookup() would re-heat the line
            while any(l.entry == target for l in uc.lines_in_set(0)):
                attempts += 1
                uc.fill(0, entry_for_set(0, 8 + attempts), specs_for(6))
                if attempts > 500:
                    break
            return attempts

        assert evictions_until_displaced(6) > evictions_until_displaced(1)

    def test_decay_cools_lines(self):
        policy = HotnessPolicy(cap=8, decay_interval=4)
        uc = UopCache(policy=policy)
        uc.fill(0, entry_for_set(0, 0), specs_for(6))
        for _ in range(8):
            uc.lookup(0, entry_for_set(0, 0))
        line = uc.lines_in_set(0)[0]
        hot_before = line.hotness
        # touch other sets to advance the global tick
        for i in range(1, 30):
            uc.fill(0, entry_for_set(i), specs_for(3))
        uc.lookup(0, entry_for_set(0, 0))
        assert line.hotness <= hot_before


class TestLRUPolicy:
    def test_single_fill_evicts(self):
        uc = UopCache(policy=LRUPolicy())
        for way in range(8):
            uc.fill(0, entry_for_set(0, way), specs_for(6))
        for _ in range(10):  # heat them; LRU must not care
            for way in range(8):
                uc.lookup(0, entry_for_set(0, way))
        assert uc.fill(0, entry_for_set(0, 9), specs_for(6))

    def test_evicts_least_recently_streamed(self):
        uc = UopCache(policy=LRUPolicy())
        for way in range(8):
            uc.fill(0, entry_for_set(0, way), specs_for(6))
        for way in range(1, 8):
            uc.lookup(0, entry_for_set(0, way))  # way 0 now LRU
        uc.fill(0, entry_for_set(0, 9), specs_for(6))
        assert uc.lookup(0, entry_for_set(0, 0)) is None


def test_make_policy_factory():
    assert isinstance(make_policy("hotness"), HotnessPolicy)
    assert isinstance(make_policy("lru"), LRUPolicy)
    with pytest.raises(ValueError):
        make_policy("random")


def test_stats_accounting():
    uc = UopCache()
    entry = entry_for_set(0)
    uc.lookup(0, entry)
    uc.fill(0, entry, specs_for(3))
    uc.lookup(0, entry)
    assert uc.stats.lookups == 2
    assert uc.stats.misses == 1
    assert uc.stats.hits == 1
    assert uc.stats.lines_filled == 1
    assert 0 < uc.stats.hit_rate < 1
