"""Workload-suite tests, including the paper's cited micro-op cache
hit-rate behaviour (~80% average, ~100% for hotspots)."""

import pytest

from repro.cpu.config import CPUConfig
from repro.workloads import WORKLOADS, build_workload, run_suite, run_workload


class TestBuilders:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_every_workload_runs(self, name):
        result = run_workload(name, scale=1)
        assert result.cycles > 0
        assert result.counters.retired_uops > 0

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            build_workload("quake3")


class TestHitRates:
    @pytest.fixture(scope="class")
    def suite(self):
        return run_suite()

    def test_hotspots_stream_entirely_from_dsb(self, suite):
        """Paper (II-B): 'close to 100% for hotspots or tight loops'."""
        for name in ("hot_loop", "hash_loop", "matvec"):
            assert suite[name].dsb_hit_rate > 0.95, name

    def test_capacity_bound_code_misses(self, suite):
        assert suite["large_code"].dsb_hit_rate < 0.20

    def test_average_hit_rate_is_high_but_not_perfect(self, suite):
        """Paper (II-B): ~80% average hit rate across workloads."""
        avg = sum(r.dsb_hit_rate for r in suite.values()) / len(suite)
        assert 0.6 < avg < 1.0

    def test_pointer_chase_is_memory_bound(self, suite):
        r = suite["pointer_chase"]
        assert r.ipc < 1.0
        assert r.counters.l1d_misses > 0

    def test_branchy_mispredicts(self, suite):
        assert suite["branchy"].mispredict_rate > 0.02


class TestMitigationCostOnWorkloads:
    def test_flush_hurts_syscall_heavy_most(self):
        """Section VIII: frequent flushing 'could severely degrade
        performance' -- quantified on real-ish code."""
        base = CPUConfig.skylake()
        flush = CPUConfig.skylake(flush_uop_cache_on_domain_crossing=True)
        slowdowns = {}
        for name in ("hot_loop", "syscall_heavy"):
            cycles_base = run_workload(name, base).cycles
            cycles_flush = run_workload(name, flush).cycles
            slowdowns[name] = cycles_flush / cycles_base
        assert slowdowns["syscall_heavy"] > 1.5
        assert slowdowns["hot_loop"] < 1.05  # no crossings, no cost

    def test_privilege_partition_costs_capacity(self):
        """Halving the user partition hurts code near the capacity
        knee."""
        base = run_workload("large_code", CPUConfig.skylake())
        part = run_workload(
            "large_code",
            CPUConfig.skylake(privilege_partition_uop_cache=True),
        )
        assert part.dsb_hit_rate <= base.dsb_hit_rate + 0.01


class TestDeterminism:
    def test_workloads_are_deterministic(self):
        a = run_workload("interpreter")
        b = run_workload("interpreter")
        assert a.cycles == b.cycles
        assert a.counters.retired_uops == b.counters.retired_uops
