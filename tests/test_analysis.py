"""Analysis-package tests: BSC capacity, RS budgeting, detector ROC."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.channel import (
    bsc_capacity,
    effective_goodput_kbps,
    recommend_rs_parity,
)
from repro.analysis.detector import roc_sweep
from repro.coding.reed_solomon import RSCodec


class TestCapacity:
    def test_endpoints(self):
        assert bsc_capacity(0.0) == 1.0
        assert bsc_capacity(0.5) == pytest.approx(0.0, abs=1e-12)
        assert bsc_capacity(1.0) == 1.0  # inverted channel is perfect

    def test_paper_error_rates_leave_real_capacity(self):
        # Table I error rates: all still leak substantially
        for err in (0.0022, 0.0327, 0.0559, 0.0072):
            assert bsc_capacity(err) > 0.65

    @given(st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_error(self, p):
        assert bsc_capacity(p) >= bsc_capacity(0.5) - 1e-12
        assert bsc_capacity(p) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bsc_capacity(1.5)

    def test_goodput_scales(self):
        assert effective_goodput_kbps(1000, 0.0) == 1000
        assert effective_goodput_kbps(1000, 0.1) < 1000


class TestRSBudget:
    def test_clean_channel_minimal_parity(self):
        assert recommend_rs_parity(0.0) == 2

    def test_parity_grows_with_error(self):
        low = recommend_rs_parity(0.001)
        high = recommend_rs_parity(0.01)
        assert high > low

    def test_budget_actually_corrects(self):
        """The recommended parity really does fix a channel with that
        error rate (empirical check over the RS codec)."""
        import random

        p_bit = 0.003
        nsym = recommend_rs_parity(p_bit, block=255,
                                   target_block_failure=1e-4)
        rs = RSCodec(nsym=nsym, block=255)
        rng = random.Random(0)
        data = bytes(rng.randrange(256) for _ in range(rs.payload_per_block))
        failures = 0
        for _ in range(30):
            wire = bytearray(rs.encode(data))
            for i in range(len(wire)):
                for bit in range(8):
                    if rng.random() < p_bit:
                        wire[i] ^= 1 << bit
            try:
                if rs.decode(bytes(wire)) != data:
                    failures += 1
            except Exception:
                failures += 1
        assert failures <= 1  # target was 1e-4 per block

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            recommend_rs_parity(0.4, max_nsym=8)

    def test_validation(self):
        with pytest.raises(ValueError):
            recommend_rs_parity(0.6)


class TestROC:
    def test_separable_distributions_perfect_auc(self):
        roc = roc_sweep([1, 2, 3, 4], [100, 110, 120])
        assert roc.auc > 0.99
        best = roc.best_threshold(max_fpr=0.0)
        assert best is not None
        assert best.tpr == 1.0
        assert best.fpr == 0.0

    def test_identical_distributions_chance_auc(self):
        roc = roc_sweep([10, 20, 30], [10, 20, 30])
        assert 0.3 < roc.auc < 0.8

    def test_overlap_trades_fpr_for_tpr(self):
        benign = [10, 12, 14, 100]  # one noisy benign window
        attack = [90, 110, 130]
        roc = roc_sweep(benign, attack)
        strict = roc.best_threshold(max_fpr=0.0)
        loose = roc.best_threshold(max_fpr=0.5)
        tpr_strict = strict.tpr if strict is not None else 0.0
        assert loose is not None
        assert loose.tpr >= tpr_strict

    def test_requires_data(self):
        with pytest.raises(ValueError):
            roc_sweep([], [1])


# ----------------------------------------------------------------------
# property/edge tests (limits, monotonicity, exhaustion)


class TestCapacityProperties:
    def test_limit_p_to_zero(self):
        assert bsc_capacity(1e-12) == pytest.approx(1.0, abs=1e-9)

    def test_limit_p_to_half(self):
        assert bsc_capacity(0.5 - 1e-9) == pytest.approx(0.0, abs=1e-6)

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_symmetric_around_half(self, p):
        # a channel that flips every bit is as good as a clean one
        assert bsc_capacity(p) == pytest.approx(bsc_capacity(1.0 - p))

    @given(
        st.floats(min_value=0.0, max_value=0.5),
        st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_decreasing_on_lower_half(self, a, b):
        lo, hi = sorted((a, b))
        assert bsc_capacity(lo) >= bsc_capacity(hi) - 1e-12

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_bounded(self, p):
        assert 0.0 <= bsc_capacity(p) <= 1.0


class TestRSBudgetProperties:
    def test_limit_p_to_zero_needs_minimum_parity(self):
        assert recommend_rs_parity(1e-9) == 2

    def test_parity_monotone_in_error_rate(self):
        budgets = [
            recommend_rs_parity(p)
            for p in (0.0, 1e-4, 1e-3, 5e-3, 1e-2, 2e-2)
        ]
        assert budgets == sorted(budgets)

    def test_parity_always_even(self):
        for p in (0.0, 1e-3, 5e-3, 1e-2):
            assert recommend_rs_parity(p) % 2 == 0

    def test_near_half_exhausts_default_ceiling(self):
        # byte error rate ~1: no 255-byte block can decode
        with pytest.raises(ValueError):
            recommend_rs_parity(0.49)

    def test_exhaustion_reports_ceiling(self):
        with pytest.raises(ValueError, match="no parity budget <= 8"):
            recommend_rs_parity(0.4, max_nsym=8)

    def test_tighter_target_needs_no_less_parity(self):
        loose = recommend_rs_parity(0.005, target_block_failure=1e-3)
        tight = recommend_rs_parity(0.005, target_block_failure=1e-9)
        assert tight >= loose


class TestROCProperties:
    def test_sweep_is_monotone_in_threshold(self):
        benign = [3, 7, 7, 12, 40, 41]
        attack = [10, 35, 50, 50, 90]
        roc = roc_sweep(benign, attack)
        ordered = sorted(roc.points)
        for (_, f1, t1), (_, f2, t2) in zip(ordered, ordered[1:]):
            assert f2 <= f1  # raising the threshold never adds FPs
            assert t2 <= t1  # ... nor TPs

    def test_all_positive_endpoint_present(self):
        roc = roc_sweep([1, 2], [3, 4])
        assert (1.0, 1.0) in {(f, t) for _, f, t in roc.points}

    @given(
        st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                 max_size=30),
        st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                 max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_rates_and_auc_are_probabilities(self, benign, attack):
        roc = roc_sweep(benign, attack)
        assert 0.0 <= roc.auc <= 1.0
        for _, fpr, tpr in roc.points:
            assert 0.0 <= fpr <= 1.0
            assert 0.0 <= tpr <= 1.0

    def test_operating_point_as_dict(self):
        roc = roc_sweep([1, 2, 3], [50, 60])
        best = roc.best_threshold(max_fpr=0.0)
        assert best is not None
        doc = best.as_dict()
        assert doc == {
            "threshold": best.threshold,
            "fpr": best.fpr,
            "tpr": best.tpr,
        }

    def test_no_qualifying_point_returns_none(self):
        # every threshold admitting any attack also admits all benign
        roc = roc_sweep([100, 200], [1, 2])
        assert roc.best_threshold(max_fpr=-0.1) is None
