"""Analysis-package tests: BSC capacity, RS budgeting, detector ROC."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.channel import (
    bsc_capacity,
    effective_goodput_kbps,
    recommend_rs_parity,
)
from repro.analysis.detector import roc_sweep
from repro.coding.reed_solomon import RSCodec


class TestCapacity:
    def test_endpoints(self):
        assert bsc_capacity(0.0) == 1.0
        assert bsc_capacity(0.5) == pytest.approx(0.0, abs=1e-12)
        assert bsc_capacity(1.0) == 1.0  # inverted channel is perfect

    def test_paper_error_rates_leave_real_capacity(self):
        # Table I error rates: all still leak substantially
        for err in (0.0022, 0.0327, 0.0559, 0.0072):
            assert bsc_capacity(err) > 0.65

    @given(st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_error(self, p):
        assert bsc_capacity(p) >= bsc_capacity(0.5) - 1e-12
        assert bsc_capacity(p) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bsc_capacity(1.5)

    def test_goodput_scales(self):
        assert effective_goodput_kbps(1000, 0.0) == 1000
        assert effective_goodput_kbps(1000, 0.1) < 1000


class TestRSBudget:
    def test_clean_channel_minimal_parity(self):
        assert recommend_rs_parity(0.0) == 2

    def test_parity_grows_with_error(self):
        low = recommend_rs_parity(0.001)
        high = recommend_rs_parity(0.01)
        assert high > low

    def test_budget_actually_corrects(self):
        """The recommended parity really does fix a channel with that
        error rate (empirical check over the RS codec)."""
        import random

        p_bit = 0.003
        nsym = recommend_rs_parity(p_bit, block=255,
                                   target_block_failure=1e-4)
        rs = RSCodec(nsym=nsym, block=255)
        rng = random.Random(0)
        data = bytes(rng.randrange(256) for _ in range(rs.payload_per_block))
        failures = 0
        for _ in range(30):
            wire = bytearray(rs.encode(data))
            for i in range(len(wire)):
                for bit in range(8):
                    if rng.random() < p_bit:
                        wire[i] ^= 1 << bit
            try:
                if rs.decode(bytes(wire)) != data:
                    failures += 1
            except Exception:
                failures += 1
        assert failures <= 1  # target was 1e-4 per block

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            recommend_rs_parity(0.4, max_nsym=8)

    def test_validation(self):
        with pytest.raises(ValueError):
            recommend_rs_parity(0.6)


class TestROC:
    def test_separable_distributions_perfect_auc(self):
        roc = roc_sweep([1, 2, 3, 4], [100, 110, 120])
        assert roc.auc > 0.99
        threshold, tpr = roc.best_threshold(max_fpr=0.0)
        assert tpr == 1.0

    def test_identical_distributions_chance_auc(self):
        roc = roc_sweep([10, 20, 30], [10, 20, 30])
        assert 0.3 < roc.auc < 0.8

    def test_overlap_trades_fpr_for_tpr(self):
        benign = [10, 12, 14, 100]  # one noisy benign window
        attack = [90, 110, 130]
        roc = roc_sweep(benign, attack)
        _, tpr_strict = roc.best_threshold(max_fpr=0.0)
        _, tpr_loose = roc.best_threshold(max_fpr=0.5)
        assert tpr_loose >= tpr_strict

    def test_requires_data(self):
        with pytest.raises(ValueError):
            roc_sweep([], [1])
