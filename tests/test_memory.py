"""Tests for caches, main memory, the TLB, and the hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import Cache
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.mainmem import MainMemory
from repro.memory.tlb import TLB


class TestCache:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Cache("bad", sets=3, ways=2)
        with pytest.raises(ValueError):
            Cache("bad", sets=4, ways=0)
        with pytest.raises(ValueError):
            Cache("bad", sets=4, ways=2, line_size=48)

    def test_miss_then_hit(self):
        cache = Cache("t", sets=4, ways=2)
        assert not cache.lookup(0x100)
        cache.fill(0x100)
        assert cache.lookup(0x100)
        assert cache.stats.refs == 2
        assert cache.stats.misses == 1

    def test_same_line_aliases(self):
        cache = Cache("t", sets=4, ways=2, line_size=64)
        cache.fill(0x100)
        assert cache.lookup(0x13F)  # same 64-byte line
        assert not cache.lookup(0x140)

    def test_lru_eviction_order(self):
        cache = Cache("t", sets=1, ways=2, line_size=64)
        cache.fill(0x000)
        cache.fill(0x040)
        cache.lookup(0x000)  # make 0x000 most recent
        victim = cache.fill(0x080)
        assert victim == 0x040

    def test_evict_hook_fires(self):
        evicted = []
        cache = Cache("t", sets=1, ways=1, line_size=64,
                      on_evict=evicted.append)
        cache.fill(0x000)
        cache.fill(0x040)
        assert evicted == [0x000]

    def test_invalidate(self):
        cache = Cache("t", sets=4, ways=2)
        cache.fill(0x100)
        assert cache.invalidate(0x100)
        assert not cache.probe(0x100)
        assert not cache.invalidate(0x100)

    def test_flush_clears_everything(self):
        cache = Cache("t", sets=4, ways=2)
        for i in range(8):
            cache.fill(i * 64)
        cache.flush()
        assert cache.occupancy() == 0

    def test_probe_does_not_perturb(self):
        cache = Cache("t", sets=1, ways=2, line_size=64)
        cache.fill(0x000)
        cache.fill(0x040)
        refs = cache.stats.refs
        cache.probe(0x000)  # must NOT refresh LRU or count a ref
        assert cache.stats.refs == refs
        victim = cache.fill(0x080)
        assert victim == 0x000

    @given(st.lists(st.integers(min_value=0, max_value=2 ** 16), max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, addrs):
        cache = Cache("t", sets=4, ways=2, line_size=64)
        for addr in addrs:
            if not cache.lookup(addr):
                cache.fill(addr)
            assert cache.occupancy() <= 8

    @given(st.lists(st.integers(min_value=0, max_value=2 ** 12), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_most_recent_fill_always_resident(self, addrs):
        cache = Cache("t", sets=2, ways=2, line_size=64)
        for addr in addrs:
            cache.fill(addr)
            assert cache.probe(addr)


class TestMainMemory:
    def test_sparse_zero_default(self):
        mem = MainMemory()
        assert mem.read(0x12345, 8) == 0

    def test_little_endian_roundtrip(self):
        mem = MainMemory()
        mem.write(0x100, 0x0123456789ABCDEF, 8)
        assert mem.read(0x100, 8) == 0x0123456789ABCDEF
        assert mem.read(0x100, 1) == 0xEF
        assert mem.read(0x107, 1) == 0x01

    def test_partial_overwrite(self):
        mem = MainMemory()
        mem.write(0x100, 0xFFFFFFFFFFFFFFFF, 8)
        mem.write(0x102, 0x00, 1)
        assert mem.read(0x100, 8) == 0xFFFFFFFFFF00FFFF

    def test_load_image(self):
        mem = MainMemory()
        mem.load_image(0x200, b"\x01\x02\x03")
        assert mem.read_bytes(0x200, 3) == b"\x01\x02\x03"

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=1000),
            st.integers(min_value=0, max_value=255),
            max_size=64,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_reference_model(self, writes):
        mem = MainMemory()
        for addr, val in writes.items():
            mem.write(addr, val, 1)
        for addr, val in writes.items():
            assert mem.read(addr, 1) == val


class TestTLB:
    def test_miss_costs_walk(self):
        tlb = TLB(entries=2, walk_latency=30)
        assert tlb.access(0x1000) == 30
        assert tlb.access(0x1234) == 0  # same page

    def test_capacity_lru(self):
        tlb = TLB(entries=2)
        tlb.access(0x0000)
        tlb.access(0x1000)
        tlb.access(0x0000)  # refresh page 0
        tlb.access(0x2000)  # evicts page 1
        assert tlb.access(0x0500) == 0
        assert tlb.access(0x1800) == tlb.walk_latency

    def test_flush_triggers_callback(self):
        fired = []
        tlb = TLB(on_flush=lambda: fired.append(True))
        tlb.access(0x1000)
        tlb.flush()
        assert fired == [True]
        assert tlb.access(0x1000) == tlb.walk_latency


class TestHierarchy:
    def test_latency_ordering(self):
        h = MemoryHierarchy()
        first = h.access_data(0x1000)
        assert first.level == "DRAM"
        second = h.access_data(0x1000)
        assert second.level == "L1"
        assert second.latency < first.latency

    def test_fill_propagates_down(self):
        h = MemoryHierarchy()
        h.access_data(0x1000)
        assert h.l1d.probe(0x1000)
        assert h.l2.probe(0x1000)
        assert h.llc.probe(0x1000)

    def test_clflush_removes_everywhere(self):
        h = MemoryHierarchy()
        h.access_data(0x1000)
        h.clflush(0x1000)
        assert not h.l1d.probe(0x1000)
        assert not h.l2.probe(0x1000)
        assert not h.llc.probe(0x1000)
        assert h.access_data(0x1000).level == "DRAM"

    def test_llc_back_invalidates_l1(self):
        h = MemoryHierarchy()
        h.access_data(0x1000)
        h.llc.invalidate(0x1000)
        assert not h.l1d.probe(0x1000)

    def test_l1i_evict_hook(self):
        evicted = []
        h = MemoryHierarchy(on_l1i_evict=evicted.append)
        h.access_inst(0x1000)
        h.l1i.invalidate(0x1000)
        assert 0x1000 in evicted

    def test_inst_and_data_paths_are_split(self):
        h = MemoryHierarchy()
        h.access_inst(0x1000)
        assert h.l1i.probe(0x1000)
        assert not h.l1d.probe(0x1000)

    def test_itlb_miss_adds_latency(self):
        h = MemoryHierarchy()
        warm = h.access_inst(0x1000)  # walks the page
        h.l1i.invalidate(0x1000)
        h.l2.invalidate(0x1000)
        h.llc.invalidate(0x1000)
        cold_tlb_hit = h.access_inst(0x1000)
        assert warm.latency > cold_tlb_hit.latency  # first had the walk

    def test_probe_data_latency_is_passive(self):
        h = MemoryHierarchy()
        assert h.probe_data_latency(0x1000) == h.dram_latency
        h.access_data(0x1000)
        assert h.probe_data_latency(0x1000) == h.l1d.latency
