"""SMT execution and micro-op cache sharing tests (Figures 6/7)."""

import pytest

from repro.cpu.config import CPUConfig
from repro.cpu.core import Core
from repro.core import microbench
from repro.isa import encodings as enc
from repro.isa.assembler import Assembler


def dual_loop_program(n1=8, n2=8, iters=6):
    """Two independent region loops at disjoint addresses."""
    asm = Assembler()
    microbench.emit_eight_blocks(asm, "t1", max(1, n1 // 8), iters,
                                 arena=0x40_1000)
    microbench.emit_eight_blocks(asm, "t2", max(1, n2 // 8), iters,
                                 arena=0x50_1000, loop_reg="r2")
    return asm.assemble(entry="t1")


class TestRunSMT:
    def test_both_threads_halt(self):
        core = Core(CPUConfig.skylake(), dual_loop_program())
        d1, d2 = core.run_smt(("t1", "t2"))
        assert core.thread(0).halted
        assert core.thread(1).halted
        assert d1.retired_uops > 0
        assert d2.retired_uops > 0

    def test_threads_have_independent_registers(self):
        core = Core(CPUConfig.skylake(), dual_loop_program())
        core.run_smt(("t1", "t2"))
        assert core.read_reg("r1", thread_id=0) == 0  # t1's counter
        assert core.read_reg("r2", thread_id=1) == 0  # t2's counter

    def test_smt_mode_toggles_partitioning(self):
        core = Core(CPUConfig.skylake(), dual_loop_program())
        assert not core.uop_cache.smt_active
        core.run_smt(("t1", "t2"))
        assert not core.uop_cache.smt_active  # restored after the run

    def test_single_thread_after_smt_uses_full_cache(self):
        prog = microbench.size_loop(200, 8)
        core = Core(CPUConfig.skylake(), prog)
        core.call("main")
        delta = core.call("main")
        # 200 regions < 256 lines: fits single-threaded
        assert delta.uops_legacy / 8 < 20


class TestStaticPartitioning:
    def test_capacity_halves_in_smt_mode(self):
        """Figure 6's finding: T1's effective capacity is exactly half
        with SMT active, regardless of what T2 runs."""
        n = 160  # fits in 256 lines, not in 128
        prog = microbench.smt_pair(n, 8, t2_kind="pause")
        core = Core(CPUConfig.skylake(), prog)
        core.call("t1")
        single = core.call("t1").uops_legacy

        prog_long = microbench.smt_pair(n, 16, t2_kind="pause")
        d_long, _ = Core(CPUConfig.skylake(), prog_long).run_smt(("t1", "t2"))
        d_short, _ = Core(CPUConfig.skylake(), prog).run_smt(("t1", "t2"))
        smt_steady = (d_long.uops_legacy - d_short.uops_legacy) / 8
        assert single / 8 < 5
        assert smt_steady > 100  # thrashing: 160 regions > 128 lines

    def test_pause_coworker_equivalent_to_chase(self):
        """T2's instruction mix must not change T1's share."""
        results = {}
        for kind in ("pause", "chase"):
            prog = microbench.smt_pair(96, 8, t2_kind=kind)
            prog_long = microbench.smt_pair(96, 16, t2_kind=kind)
            d_long, _ = Core(CPUConfig.skylake(), prog_long).run_smt(("t1", "t2"))
            d_short, _ = Core(CPUConfig.skylake(), prog).run_smt(("t1", "t2"))
            results[kind] = (d_long.uops_legacy - d_short.uops_legacy) / 8
        # 96 regions fit in the 128-line half either way: ~0 legacy uops
        assert results["pause"] < 5
        assert results["chase"] < 5

    def test_no_cross_thread_interference_in_sets(self):
        """Figure 7a: T1 probing any set never contends with T2."""
        for t1_set in (0, 8, 16, 24):
            prog = microbench.partition_probe_pair(t1_set=t1_set, iters=8)
            prog_long = microbench.partition_probe_pair(t1_set=t1_set, iters=16)
            d1l, d2l = Core(CPUConfig.skylake(), prog_long).run_smt(("t1", "t2"))
            d1s, d2s = Core(CPUConfig.skylake(), prog).run_smt(("t1", "t2"))
            t1_steady = (d1l.uops_legacy - d1s.uops_legacy) / 8
            t2_steady = (d2l.uops_legacy - d2s.uops_legacy) / 8
            assert t1_steady < 5, f"t1 contends at set {t1_set}"
            assert t2_steady < 5, f"t2 contends at set {t1_set}"


class TestCompetitiveSharing:
    def test_zen_threads_evict_each_other(self):
        """On Zen the same workload does interfere cross-thread when
        both threads target the same sets (total > 8 ways)."""
        asm = Assembler()
        microbench.emit_eight_blocks(asm, "t1", 1, 8, arena=0x40_1000)
        microbench.emit_eight_blocks(asm, "t2", 1, 8, arena=0x50_1000,
                                     loop_reg="r2")
        prog = asm.assemble(entry="t1")
        # both loops fill 8 ways of set 0 -> 16 lines demanded of 8
        core = Core(CPUConfig.zen(), prog)
        d1, d2 = core.run_smt(("t1", "t2"))
        combined = d1.uops_legacy + d2.uops_legacy
        # steady-state thrash: far more legacy uops than the one-time fill
        assert combined > 2 * 48
