"""Distributed serving tests: router, coordinator, fleet behaviour.

Unit tests cover rendezvous hashing's contract (stable assignment,
minimal movement on eviction, resurrection on re-registration).  The
integration tests boot a whole in-process fleet
(:class:`~repro.serve.testing.ClusterThread`: coordinator + N workers
sharing a read-through store) and assert the cluster-wide versions of
the serving guarantees: fleet-wide coalescing executes once per
unique key, sweeps split across workers and reassemble in grid order,
and a worker killed mid-sweep is evicted while the sweep still
completes via rebalancing.
"""

import threading
import time

import pytest

from repro.serve.client import ServeClient, ServeError
from repro.serve.router import RendezvousRouter
from repro.serve.testing import ClusterThread, ServerThread

# ----------------------------------------------------------------------
# rendezvous router (pure unit tests)


def _keys(n):
    return [f"{i:064x}" for i in range(n)]


def test_router_routes_every_key_to_a_live_node():
    router = RendezvousRouter()
    for port in (9001, 9002, 9003):
        router.add("10.0.0.1", port)
    owners = {k: router.route(k).node_id for k in _keys(200)}
    assert set(owners.values()) <= {n.node_id for n in router.live_nodes}
    # the spread is roughly even: every node owns something
    assert len(set(owners.values())) == 3


def test_router_eviction_moves_only_the_dead_nodes_keys():
    router = RendezvousRouter()
    for port in (9001, 9002, 9003):
        router.add("10.0.0.1", port)
    keys = _keys(300)
    before = {k: router.route(k).node_id for k in keys}
    assert router.evict("10.0.0.1:9002") is True
    after = {k: router.route(k).node_id for k in keys}
    for key in keys:
        if before[key] == "10.0.0.1:9002":
            assert after[key] != "10.0.0.1:9002"  # rerouted
        else:
            assert after[key] == before[key]      # untouched


def test_router_reregistration_resurrects_an_evicted_node():
    router = RendezvousRouter()
    router.add("10.0.0.1", 9001)
    node = router.add("10.0.0.1", 9002)
    node.failures = 3
    router.evict(node.node_id)
    assert len(router) == 1
    # the worker phoning home again is the recovery path
    again = router.add("10.0.0.1", 9002, now_mono=42.0)
    assert again is node and node.alive and node.failures == 0
    assert len(router) == 2


def test_router_ranked_is_the_failover_order():
    router = RendezvousRouter()
    for port in (9001, 9002, 9003):
        router.add("10.0.0.1", port)
    key = "ab" * 32
    ranked = router.ranked(key)
    assert ranked[0] is router.route(key)
    router.evict(ranked[0].node_id)
    assert router.route(key) is ranked[1]


def test_router_add_is_idempotent():
    router = RendezvousRouter()
    a = router.add("h", 1)
    b = router.add("h", 1)
    assert a is b and len(router) == 1


# ----------------------------------------------------------------------
# fleet integration (thread-mode workers: cheap to boot, I/O workloads)


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    root = tmp_path_factory.mktemp("cluster")
    with ClusterThread(workers=2, worker_processes=2,
                       worker_mode="thread", root=str(root)) as fleet:
        yield fleet


def _echo_spec(token):
    return {"kind": "job",
            "params": {"fn": "debug.echo", "params": {"token": token}}}


def test_workers_register_and_appear_in_healthz(cluster):
    doc = cluster.client().healthz()
    assert doc["role"] == "coordinator"
    assert doc["live_workers"] == 2
    # each worker's own healthz reports its cluster wiring
    for i in range(2):
        wdoc = cluster.worker_client(i).healthz()
        assert wdoc["shared_store"] == cluster.shared_store
        deadline = time.monotonic() + 10
        while not wdoc.get("registered") and time.monotonic() < deadline:
            time.sleep(0.1)
            wdoc = cluster.worker_client(i).healthz()
        assert wdoc["registered"] is True


def test_fleet_wide_coalescing_executes_once(cluster):
    """N identical submissions through the coordinator: one forward,
    one execution, everyone gets the result."""
    client = cluster.client(timeout=60)
    before = client.metrics()["counters"]["executed"]
    spec = _echo_spec("fleet-coalesce")
    records = [None] * 4
    errors = []

    def one(i):
        try:
            records[i] = cluster.client(timeout=60).submit_and_wait(
                spec, timeout=60)
        except Exception as exc:  # noqa: BLE001 -- collected
            errors.append(exc)

    threads = [threading.Thread(target=one, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    assert all(r["status"] == "done" for r in records)
    assert all(r["result"]["result"]["token"] == "fleet-coalesce"
               for r in records)
    after = client.metrics()["counters"]["executed"]
    assert after - before == 1  # one unique key -> one execution


def test_resubmission_is_answered_from_shared_store(cluster):
    client = cluster.client(timeout=60)
    spec = _echo_spec("fleet-warm")
    first = client.submit_and_wait(spec, timeout=60)
    assert first["status"] == "done"
    again = client.submit(spec)
    assert again["status"] == "done"
    assert again["source"] == "cache"


def test_sweep_splits_across_fleet_in_grid_order(cluster):
    client = cluster.client(timeout=120)
    values = list(range(6))
    record = client.submit_and_wait({
        "kind": "sweep",
        "params": {"fn": "debug.echo", "axes": {"x": values},
                   "base": {"token": "fleet-sweep"}},
    }, timeout=120)
    assert record["status"] == "done"
    result = record["result"]
    assert result["kind"] == "sweep"
    assert [r["x"] for r in result["results"]] == values  # grid order
    # both workers saw forwarded traffic (6 keys over 2 nodes)
    workers = client.healthz()["workers"]
    assert sum(w["forwarded"] for w in workers) >= 6


def test_forwarded_flag_shows_in_worker_metrics(cluster):
    client = cluster.client(timeout=60)
    client.submit_and_wait(_echo_spec("fleet-forwarded"), timeout=60)
    forwarded = sum(
        cluster.worker_client(i).metrics()["counters"]["forwarded"]
        for i in range(2))
    assert forwarded >= 1


def test_cancel_unknown_job_is_404(cluster):
    with pytest.raises(ServeError) as excinfo:
        cluster.client().cancel("c999999")
    assert excinfo.value.status == 404


def test_submit_with_no_fleet_is_503(tmp_path):
    from repro.serve.testing import CoordinatorThread

    with CoordinatorThread(shared_store=str(tmp_path / "shared")) as coord:
        with pytest.raises(ServeError) as excinfo:
            coord.client().submit(_echo_spec("no-fleet"))
        assert excinfo.value.status == 503


# ----------------------------------------------------------------------
# eviction and rebalancing (dedicated fleet: we kill a worker)


def test_sweep_survives_worker_killed_mid_grid(tmp_path):
    """Kill one of two workers while a sweep grid is in flight: the
    coordinator evicts it and reroutes its key share; the sweep still
    completes with every result, exactly once per unique key."""
    with ClusterThread(workers=2, worker_processes=1, worker_mode="thread",
                       root=str(tmp_path)) as fleet:
        client = fleet.client(timeout=120)
        seconds = [0.15 + i * 0.001 for i in range(10)]
        record = client.submit({
            "kind": "sweep",
            "params": {"fn": "debug.sleep", "axes": {"seconds": seconds}},
        })
        time.sleep(0.4)  # let the grid start landing on both workers
        fleet.kill_worker(0)
        final = client.wait(record["id"], timeout=90)
        assert final["status"] == "done", final.get("error")
        result = final["result"]
        assert len(result["results"]) == len(seconds)
        assert [r["slept"] for r in result["results"]] == [
            pytest.approx(s) for s in seconds]
        # every unique key was dispatched exactly once coordinator-side
        assert client.metrics()["counters"]["executed"] == len(seconds)
        health = client.healthz()
        assert health["evictions"] >= 1
        assert health["live_workers"] == 1


# ----------------------------------------------------------------------
# client failover across cluster endpoints


def test_client_fails_over_to_a_live_endpoint(tmp_path):
    from repro.harness.cache import ResultCache

    cache = ResultCache(tmp_path / "failover-cache")
    with ServerThread(cache=cache, workers=1,
                      worker_mode="thread") as srv:
        # first endpoint is dark; the client must rotate to the live one
        client = ServeClient(endpoints=[("127.0.0.1", 1),
                                        ("127.0.0.1", srv.port)],
                             timeout=10)
        record = client.submit_and_wait(_echo_spec("failover"), timeout=60)
        assert record["status"] == "done"
        assert client.port == srv.port  # sticky on the endpoint that works


def test_client_raises_when_every_endpoint_is_dark():
    client = ServeClient(endpoints=[("127.0.0.1", 1), ("127.0.0.1", 2)],
                         timeout=2)
    with pytest.raises(ConnectionError):
        client.healthz()
