"""Integration tests for the three covert channels (Section V)."""

import random

import pytest

from repro.core.covert import (
    ChannelParams,
    CovertChannel,
    _bits_to_bytes,
    _bytes_to_bits,
)
from repro.core.crossdomain import CrossDomainChannel, CrossDomainParams
from repro.core.smtchannel import SMTChannel, SMTChannelParams
from repro.cpu.config import CPUConfig
from repro.cpu.noise import NoiseModel
from repro.errors import ConfigError


class TestBitPacking:
    def test_roundtrip(self):
        data = bytes(range(0, 256, 7))
        assert _bits_to_bytes(_bytes_to_bits(data)) == data

    def test_lsb_first(self):
        assert _bytes_to_bits(b"\x01")[:2] == [1, 0]


class TestCovertChannel:
    def test_params_validation(self):
        with pytest.raises(ConfigError):
            ChannelParams(nsets=32)
        with pytest.raises(ConfigError):
            ChannelParams(nways=9)
        with pytest.raises(ConfigError):
            ChannelParams(samples=0)

    def test_calibration_separates(self):
        chan = CovertChannel(ChannelParams(samples=1, calibration_rounds=4))
        timing = chan.calibrate()
        assert timing.delta > 100
        assert timing.miss_mean > timing.hit_mean

    def test_noiseless_transmission_is_exact(self):
        chan = CovertChannel(ChannelParams(samples=1, calibration_rounds=4))
        report = chan.transmit(b"\xc3\x5a")
        assert report.bit_errors == 0
        assert report.bits_sent == 16
        assert report.bandwidth_kbps > 100

    def test_random_payload(self):
        rng = random.Random(7)
        payload = bytes(rng.randrange(256) for _ in range(4))
        chan = CovertChannel(ChannelParams(samples=1, calibration_rounds=4))
        report = chan.transmit(payload)
        assert report.error_rate < 0.05

    def test_ecc_corrects_noisy_channel(self):
        noise = NoiseModel(evict_prob=0.01, jitter_sd=20.0, seed=3)
        chan = CovertChannel(
            ChannelParams(samples=3, calibration_rounds=6), noise=noise
        )
        report = chan.transmit(b"secret!", ecc=True, ecc_nsym=16)
        assert report.corrected_ok
        assert report.ecc_overhead > 1.0
        assert report.corrected_bandwidth_kbps < report.bandwidth_kbps

    def test_more_sets_cost_bandwidth(self):
        fast = CovertChannel(ChannelParams(nsets=2, samples=1,
                                           calibration_rounds=2))
        slow = CovertChannel(ChannelParams(nsets=16, samples=1,
                                           calibration_rounds=2))
        rf = fast.transmit(b"\xaa")
        rs = slow.transmit(b"\xaa")
        assert rf.bandwidth_kbps > rs.bandwidth_kbps


class TestCrossDomainChannel:
    def test_leaks_across_privilege(self):
        chan = CrossDomainChannel(CrossDomainParams(samples=2,
                                                    calibration_rounds=4))
        report = chan.transmit(b"\x96")
        assert report.bit_errors == 0

    def test_kernel_code_unreachable_from_user(self):
        """The channel works without the spy ever fetching kernel code."""
        chan = CrossDomainChannel(CrossDomainParams(samples=1,
                                                    calibration_rounds=2))
        chan.transmit(b"\x0f")
        # spy runs at user privilege throughout
        assert chan.core.thread(0).privilege == 3

    def test_slower_than_same_address_space(self):
        same = CovertChannel(ChannelParams(samples=2, calibration_rounds=2))
        cross = CrossDomainChannel(CrossDomainParams(samples=2,
                                                     calibration_rounds=2))
        r_same = same.transmit(b"\x3c")
        r_cross = cross.transmit(b"\x3c")
        assert r_cross.bandwidth_kbps < r_same.bandwidth_kbps


class TestSMTChannel:
    def test_zen_channel_works(self):
        chan = SMTChannel(SMTChannelParams(calibration_rounds=3))
        report = chan.transmit(b"\x5a")
        assert report.error_rate <= 0.125

    def test_signal_exists_on_zen(self):
        chan = SMTChannel(SMTChannelParams(calibration_rounds=3))
        timing = chan.calibrate()
        assert timing.delta > 200

    def test_intel_partitioning_closes_channel(self):
        """Negative control: no cross-thread signal under static
        partitioning (the paper's reason for attacking AMD here)."""
        chan = SMTChannel(
            SMTChannelParams(calibration_rounds=3),
            config=CPUConfig.skylake(),
        )
        timing = chan.calibrate()
        assert abs(timing.delta) < 50


class TestTuneSweep:
    def test_tune_returns_all_axes(self):
        from repro.core.covert import tune

        results = tune(
            b"\x5a",
            nsets_values=(8,),
            nways_values=(6,),
            samples_values=(2,),
        )
        assert set(results) == {"nsets", "nways", "samples"}
        for axis, rows in results.items():
            assert len(rows) == 1
            value, bandwidth, error = rows[0]
            assert bandwidth > 0
            assert 0.0 <= error <= 1.0
