"""Observe-event coverage for the contention suite: the live
simulator's ``itlb_fill`` / ``sb_drain`` event streams must line up
with the lint layer's statically predicted footprints -- the same
100%-agreement bar the eight existing drivers meet via ``dsb_fill``.
"""

import pytest

from repro.contention.channels import ITLBChannel, StoreBufferChannel
from repro.contention.templates import generate_pair
from repro.contention.session import ContentionSession
from repro.lint import analyze
from repro.lint.resources import (
    ITLBClaim,
    StoreClaim,
    cross_check_itlb,
    cross_check_stores,
    static_pages,
    static_store_sites,
)


def _claim(session, name, kind):
    for claim in session.lint_resource_claims():
        if isinstance(claim, kind) and claim.name == name:
            return claim
    raise AssertionError(f"no {kind.__name__} named {name!r}")


class TestITLBCoverage:
    @pytest.mark.parametrize("name,entry", [
        ("rx", "rx_epoch"), ("tx_one", "tx_one"), ("tx_zero", "tx_zero"),
    ])
    def test_channel_routine_agrees_with_claim(self, name, entry):
        chan = ITLBChannel()
        report = analyze(chan.program, chan.config)
        claim = _claim(chan, name, ITLBClaim)
        result = cross_check_itlb(
            chan.core, report, claim,
            lambda: chan.core.call(entry),
        )
        assert result.events > 0
        assert result.agreement == 1.0, result.summary()
        assert result.clean

    def test_pair_victim_and_attacker_agree_with_claims(self):
        session = ContentionSession("itlb", "time_sliced")
        report = analyze(session.program, session.config)
        for name, entry in (("victim", "victim_work"),
                            ("attacker", session.pair.attacker_label)):
            claim = _claim(session, name, ITLBClaim)
            result = cross_check_itlb(
                session.core, report, claim,
                lambda: session.core.call(entry),
            )
            assert result.agreement == 1.0, result.summary()

    def test_static_pages_match_generated_page_sets(self):
        pair = generate_pair("itlb", variant="conflict")
        report = analyze(pair.program, pair.config)
        claim = next(c for c in pair.resources
                     if isinstance(c, ITLBClaim) and c.name == "victim")
        assert static_pages(report, claim.entry) == claim.page_set()


class TestStoreBufferCoverage:
    @pytest.mark.parametrize("name,entry", [
        ("rx", "rx_epoch"), ("tx_one", "tx_one"), ("tx_zero", "tx_zero"),
    ])
    def test_channel_routine_agrees_with_claim(self, name, entry):
        chan = StoreBufferChannel()
        report = analyze(chan.program, chan.config)
        claim = _claim(chan, name, StoreClaim)
        result = cross_check_stores(
            chan.core, report, claim,
            lambda: chan.core.call(entry),
        )
        assert result.agreement == 1.0, result.summary()
        assert result.clean
        if name == "tx_zero":
            assert result.events == 0
        else:
            assert result.events > 0

    def test_pair_victim_agrees_with_claim(self):
        session = ContentionSession("store_buffer", "smt")
        report = analyze(session.program, session.config)
        claim = _claim(session, "victim", StoreClaim)
        result = cross_check_stores(
            session.core, report, claim,
            lambda: session.core.call("victim_work"),
        )
        assert result.agreement == 1.0, result.summary()
        assert len(result.observed) == claim.sites

    def test_static_sites_match_claimed_counts(self):
        pair = generate_pair("store_buffer", variant="disjoint")
        report = analyze(pair.program, pair.config)
        for claim in pair.resources:
            if isinstance(claim, StoreClaim):
                sites = static_store_sites(report, claim.entry)
                assert len(sites) == claim.sites, claim.name
