"""End-to-end tests for the experiment service (repro.serve).

One module-scoped server (process-pool workers are expensive to boot)
backed by a private cache directory; each test drives it through the
public client.  Coalescing, the tentpole behaviour, is asserted the
strong way: 32 concurrent identical submissions, worker-side execution
counter equal to one.
"""

import json
import threading

import pytest

from repro.harness.cache import ResultCache
from repro.serve.client import Backpressure, ServeClient, ServeError
from repro.serve.queue import BoundedPriorityQueue, QueueClosed, QueueFull
from repro.serve.spec import ExperimentSpec, SpecError
from repro.serve.testing import ServerThread

# ----------------------------------------------------------------------
# spec validation (no server needed)


def test_spec_rejects_unknown_kind():
    with pytest.raises(SpecError, match="kind"):
        ExperimentSpec.from_json({"kind": "banana"})


def test_spec_rejects_unknown_field():
    with pytest.raises(SpecError, match="unknown spec field"):
        ExperimentSpec.from_json({"kind": "lint", "shoes": 2})


def test_spec_rejects_unknown_fn():
    with pytest.raises(SpecError, match="registered"):
        ExperimentSpec.from_json(
            {"kind": "job", "params": {"fn": "no.such.fn"}})


def test_spec_rejects_bad_priority_and_retries():
    base = {"kind": "job", "params": {"fn": "debug.echo"}}
    with pytest.raises(SpecError, match="priority"):
        ExperimentSpec.from_json({**base, "priority": 99})
    with pytest.raises(SpecError, match="retries"):
        ExperimentSpec.from_json({**base, "retries": -1})
    with pytest.raises(SpecError, match="timeout"):
        ExperimentSpec.from_json({**base, "timeout": 0})


def test_spec_rejects_oversized_sweep():
    with pytest.raises(SpecError, match="split it"):
        ExperimentSpec.from_json({
            "kind": "sweep",
            "params": {"fn": "debug.echo",
                       "axes": {"a": list(range(100)),
                                "b": list(range(100))}},
        })


def test_spec_rejects_unknown_lint_target():
    with pytest.raises(SpecError, match="unknown lint target"):
        ExperimentSpec.from_json(
            {"kind": "lint", "params": {"targets": ["nope"]}})


def test_spec_rejects_non_boolean_taint():
    with pytest.raises(SpecError, match="'taint' must be a boolean"):
        ExperimentSpec.from_json(
            {"kind": "lint", "params": {"taint": "yes"}})


def test_spec_rejects_unknown_lint_field():
    with pytest.raises(SpecError, match="unknown lint spec field"):
        ExperimentSpec.from_json(
            {"kind": "lint", "params": {"taint": True, "crosss": 1}})


def test_spec_rejects_unknown_trace_experiment():
    with pytest.raises(SpecError, match="trace experiment"):
        ExperimentSpec.from_json(
            {"kind": "trace", "params": {"experiment": "nope"}})


def test_job_spec_key_is_harness_job_key():
    """The coalescing key IS the harness cache key (shared key space)."""
    spec = ExperimentSpec.from_json({
        "kind": "job", "seed": 3,
        "params": {"fn": "debug.echo", "params": {"x": 1}},
    })
    assert spec.key() == spec.jobs()[0].key()


def test_spec_round_trips_through_as_dict():
    doc = {"kind": "job", "params": {"fn": "debug.echo", "params": {"x": 2}},
           "seed": 5, "priority": 3, "timeout": 9.0, "retries": 2,
           "refresh": True, "cpu": "zen2"}
    spec = ExperimentSpec.from_json(doc)
    again = ExperimentSpec.from_json(spec.as_dict())
    assert again.key() == spec.key()
    assert again.as_dict() == spec.as_dict()


# ----------------------------------------------------------------------
# queue unit tests (own event loop via asyncio.run)


def test_queue_backpressure_and_priority():
    import asyncio

    async def scenario():
        q = BoundedPriorityQueue(capacity=2)
        q.put_nowait(0, "low")
        q.put_nowait(5, "high")
        with pytest.raises(QueueFull):
            q.put_nowait(0, "overflow")
        assert await q.get() == "high"
        assert await q.get() == "low"
        await q.close()
        with pytest.raises(QueueClosed):
            q.put_nowait(0, "late")
        with pytest.raises(QueueClosed):
            await q.get()

    asyncio.run(scenario())


def test_queue_remove_tombstones():
    import asyncio

    async def scenario():
        q = BoundedPriorityQueue(capacity=4)
        q.put_nowait(0, "a")
        q.put_nowait(0, "b")
        assert q.remove("a") is True
        assert q.remove("a") is False  # already tombstoned
        assert len(q) == 1
        assert await q.get() == "b"

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# live server


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("serve-cache"))
    with ServerThread(cache=cache, workers=2, queue_capacity=64) as srv:
        yield srv


def _echo_spec(token):
    return {"kind": "job",
            "params": {"fn": "debug.echo", "params": {"token": token}}}


def test_healthz_reports_process_mode(server):
    doc = server.client().healthz()
    assert doc["status"] == "ok"
    assert doc["worker_mode"] == "process"
    assert doc["queue_capacity"] == 64


def test_submit_and_wait_round_trip(server):
    record = server.client().submit_and_wait(_echo_spec("round-trip"))
    assert record["status"] == "done"
    assert record["result"]["result"]["token"] == "round-trip"
    assert record["result"]["executed"] + record["result"]["cached"] == 1


def test_lint_taint_spec_round_trips_through_service(server):
    """A taint-mode lint job comes back with the secret-flow report
    and a clean two-secret differential."""
    record = server.client().submit_and_wait({
        "kind": "lint",
        "params": {"targets": ["tigerzebra"], "taint": True},
    }, timeout=120)
    assert record["status"] == "done"
    assert record["result"]["ok"] is True
    (target,) = record["result"]["report"]["targets"]
    assert target["target"] == "tigerzebra"
    assert target["taint"]["capacity_bits"] > 0
    assert target["secretcheck"]["clean"] is True


def test_second_submission_is_answered_from_cache(server):
    client = server.client()
    first = client.submit_and_wait(_echo_spec("warm-me"))
    assert first["status"] == "done"
    second = client.submit_and_wait(_echo_spec("warm-me"))
    assert second["status"] == "done"
    assert second["source"] == "cache"
    assert second["result"]["result"] == first["result"]["result"]


def test_refresh_bypasses_the_cache(server):
    client = server.client()
    client.submit_and_wait(_echo_spec("refresh-me"))
    record = client.submit_and_wait(
        {**_echo_spec("refresh-me"), "refresh": True})
    assert record["source"] != "cache"
    assert record["status"] == "done"


def test_32_concurrent_identical_submissions_execute_once(server):
    """The acceptance criterion: N in-flight twins, one execution."""
    client = server.client()
    before = client.metrics()["counters"]["executed"]
    spec = {"kind": "job",
            "params": {"fn": "debug.sleep",
                       "params": {"seconds": 0.8, "token": "coalesce-32"}}}
    records = [None] * 32
    errors = []

    def submit(i):
        try:
            records[i] = client.submit_and_wait(spec, timeout=120)
        except Exception as exc:  # noqa: BLE001 -- collected for assert
            errors.append(exc)

    threads = [threading.Thread(target=submit, args=(i,)) for i in range(32)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not errors
    assert all(r["status"] == "done" for r in records)
    results = {json.dumps(r["result"], sort_keys=True) for r in records}
    assert len(results) == 1  # every waiter got the same answer
    metrics = server.client().metrics()
    assert metrics["counters"]["executed"] - before == 1
    assert metrics["counters"]["coalesced"] >= 31 - 1  # a few may race
    assert metrics["rates"]["coalesce_hit_rate"] > 0


def test_sweep_results_come_back_in_grid_order(server):
    record = server.client().submit_and_wait({
        "kind": "sweep",
        "params": {"fn": "debug.echo", "axes": {"x": [1, 2, 3]},
                   "base": {"tag": "grid"}},
    })
    assert record["status"] == "done"
    xs = [r["x"] for r in record["result"]["results"]]
    assert xs == [1, 2, 3]


def test_failed_job_reports_error(server):
    record = server.client().submit_and_wait({
        "kind": "job",
        "params": {"fn": "debug.flaky",
                   "params": {"sentinel": "/dev/null", "fail_times": 99}},
        "retries": 0,
    })
    assert record["status"] == "failed"
    assert "TransientJobError" in record["error"]


def test_events_stream_ends_with_terminal_record(server):
    client = server.client()
    submitted = client.submit(_echo_spec("events-stream"))
    events = list(client.events(submitted["id"]))
    assert events[0]["event"] == "snapshot"
    assert events[-1]["event"] == "end"
    assert events[-1]["record"]["status"] == "done"


def test_unknown_job_is_404(server):
    with pytest.raises(ServeError) as excinfo:
        server.client().status("j999999")
    assert excinfo.value.status == 404


def test_invalid_spec_is_400(server):
    with pytest.raises(ServeError) as excinfo:
        server.client().submit({"kind": "job", "params": {"fn": "no.fn"}})
    assert excinfo.value.status == 400


def test_cancel_running_job_is_409(server):
    client = server.client()
    spec = {"kind": "job",
            "params": {"fn": "debug.sleep",
                       "params": {"seconds": 1.0, "token": "cancel-409"}}}
    record = client.submit(spec)
    # Wait until it is actually running (2 runners, quiet server).
    import time
    for _ in range(200):
        if client.status(record["id"])["status"] in ("running", "done"):
            break
        time.sleep(0.02)
    with pytest.raises(ServeError) as excinfo:
        client.cancel(record["id"])
    assert excinfo.value.status == 409
    client.wait(record["id"], timeout=60)


def test_trace_spec_stores_and_serves_artifacts(server):
    client = server.client()
    record = client.submit_and_wait(
        {"kind": "trace", "params": {"experiment": "spectre"}}, timeout=300)
    assert record["status"] == "done"
    names = record["result"]["artifacts"]
    assert "events.json" in names and "chrome.json" in names
    chrome = json.loads(client.artifact(record["id"], "chrome.json"))
    assert chrome["traceEvents"]
    with pytest.raises(ServeError) as excinfo:
        client.artifact(record["id"], "missing.bin")
    assert excinfo.value.status == 404
    # resubmission is a cache answer (the aggregate trace record)
    warm = client.submit_and_wait(
        {"kind": "trace", "params": {"experiment": "spectre"}})
    assert warm["source"] == "cache"
    assert warm["result"]["artifacts"] == names


def test_metrics_latency_histogram_present(server):
    metrics = server.client().metrics()
    assert metrics["counters"]["completed"] >= 1
    assert any(h["count"] >= 1 and h["p50_ms"] is not None
               for h in metrics["latency"].values())


# ----------------------------------------------------------------------
# behaviours needing a dedicated (small) server


def test_backpressure_when_queue_full(tmp_path):
    cache = ResultCache(tmp_path / "bp-cache")
    with ServerThread(cache=cache, workers=1, queue_capacity=1) as srv:
        client = srv.client()
        blockers = []
        # Fill the single runner and the single queue slot with
        # distinct slow jobs, then overflow.
        got_429 = None
        for i in range(8):
            try:
                blockers.append(client.submit({
                    "kind": "job",
                    "params": {"fn": "debug.sleep",
                               "params": {"seconds": 1.0, "token": i}},
                }))
            except Backpressure as exc:
                got_429 = exc
                break
        assert got_429 is not None, "queue never filled"
        assert got_429.retry_after >= 1.0
        for record in blockers:
            client.wait(record["id"], timeout=120)
        assert srv.client().metrics()["counters"]["rejected"] >= 1


def test_cancel_queued_job(tmp_path):
    cache = ResultCache(tmp_path / "cancel-cache")
    with ServerThread(cache=cache, workers=1, queue_capacity=8) as srv:
        client = srv.client()
        blocker = client.submit({
            "kind": "job",
            "params": {"fn": "debug.sleep",
                       "params": {"seconds": 1.5, "token": "blocker"}},
        })
        queued = client.submit(_echo_spec("will-cancel"))
        cancelled = client.cancel(queued["id"])
        assert cancelled["status"] == "cancelled"
        final = client.wait(queued["id"], timeout=10)
        assert final["status"] == "cancelled"
        client.wait(blocker["id"], timeout=120)


# ----------------------------------------------------------------------
# timing: latencies ride the monotonic clock, never the wall clock


def test_latency_survives_backward_wall_clock_step(monkeypatch):
    """An NTP step (wall clock jumps 1h backward mid-job) skews the
    display timestamps but must never produce a negative latency."""
    import time as _time

    from repro.serve.server import JobRecord

    spec = ExperimentSpec.from_json(_echo_spec("clock-step"))
    real_time = _time.time
    record = JobRecord("j000001", spec, "queued")
    # the step lands between submission and start
    monkeypatch.setattr(_time, "time", lambda: real_time() - 3600.0)
    record.started_at = _time.time()
    record.started_mono = _time.monotonic()
    record.finish("done", result={"ok": True})
    assert record.finished_at < record.submitted_at  # display JSON skews...
    assert record.latency_s() >= 0.0                 # ...durations do not
    assert record.queue_wait_s() >= 0.0


def test_latency_metrics_ignore_forward_wall_clock_step(monkeypatch):
    """Symmetric: a forward step must not inflate the histogram feed."""
    import time as _time

    from repro.serve.server import JobRecord

    spec = ExperimentSpec.from_json(_echo_spec("clock-fwd"))
    real_time = _time.time
    record = JobRecord("j000002", spec, "queued")
    monkeypatch.setattr(_time, "time", lambda: real_time() + 3600.0)
    record.finish("done", result={})
    assert record.finished_at - record.submitted_at > 3000  # wall: absurd
    assert record.latency_s() < 60.0                        # mono: sane


# ----------------------------------------------------------------------
# client deadlines: timeout=0 and backoff clamping


def test_wait_timeout_zero_is_single_nonblocking_check(server):
    import time

    client = server.client()
    record = client.submit({
        "kind": "job",
        "params": {"fn": "debug.sleep",
                   "params": {"seconds": 1.0, "token": "wait-zero"}},
    })
    # poll=5.0: if the buggy full-interval sleep were still there this
    # would take 5 seconds; a single non-blocking check takes millis.
    t0 = time.monotonic()
    with pytest.raises(TimeoutError):
        client.wait(record["id"], timeout=0, poll=5.0)
    assert time.monotonic() - t0 < 2.0
    final = client.wait(record["id"], timeout=60)
    # terminal record: timeout=0 returns it instead of raising
    assert client.wait(record["id"], timeout=0)["status"] == final["status"]


def test_wait_clamps_poll_sleep_to_remaining_deadline(server):
    import time

    client = server.client()
    record = client.submit({
        "kind": "job",
        "params": {"fn": "debug.sleep",
                   "params": {"seconds": 1.5, "token": "wait-clamp"}},
    })
    t0 = time.monotonic()
    with pytest.raises(TimeoutError):
        client.wait(record["id"], timeout=0.3, poll=5.0)
    # must overshoot by at most one status poll, not one poll *interval*
    assert time.monotonic() - t0 < 2.0
    client.wait(record["id"], timeout=60)


def test_submit_and_wait_clamps_backpressure_backoff(tmp_path):
    import time

    cache = ResultCache(tmp_path / "clamp-cache")
    with ServerThread(cache=cache, workers=1, queue_capacity=1) as srv:
        client = srv.client()
        blockers = []
        while True:
            try:
                blockers.append(client.submit({
                    "kind": "job",
                    "params": {"fn": "debug.sleep",
                               "params": {"seconds": 1.0,
                                          "token": len(blockers)}},
                }))
            except Backpressure:
                break
        # The server's Retry-After here is >= 1s; a 0.4s overall budget
        # must cut the backoff short rather than sleep through it.
        t0 = time.monotonic()
        with pytest.raises((TimeoutError, Backpressure)):
            client.submit_and_wait({
                "kind": "job",
                "params": {"fn": "debug.sleep",
                           "params": {"seconds": 1.0, "token": "late"}},
            }, timeout=0.4, backpressure_retries=50)
        assert time.monotonic() - t0 < 1.5
        for record in blockers:
            client.wait(record["id"], timeout=120)


# ----------------------------------------------------------------------
# cancellation: every coalesced waiter reaches a terminal state


def test_cancel_fans_out_to_all_coalesced_waiters(tmp_path):
    """Three clients coalesce onto one queued record; one DELETE must
    terminate all three event streams and all three pollers."""
    cache = ResultCache(tmp_path / "fanout-cache")
    with ServerThread(cache=cache, workers=1, queue_capacity=8) as srv:
        client = srv.client()
        blocker = client.submit({
            "kind": "job",
            "params": {"fn": "debug.sleep",
                       "params": {"seconds": 2.0, "token": "fan-blocker"}},
        })
        first = client.submit(_echo_spec("fan-cancel"))
        twins = [client.submit(_echo_spec("fan-cancel")) for _ in range(2)]
        assert all(t["id"] == first["id"] for t in twins)

        ends = [None, None, None]

        def stream(i):
            events = list(srv.client().events(first["id"]))
            ends[i] = events[-1]

        streamers = [threading.Thread(target=stream, args=(i,))
                     for i in range(3)]
        for t in streamers:
            t.start()
        cancelled = client.cancel(first["id"])
        assert cancelled["status"] == "cancelled"
        for t in streamers:
            t.join(timeout=30)
        assert not any(t.is_alive() for t in streamers), (
            "a coalesced waiter's event stream hung after cancellation")
        for end in ends:
            assert end["event"] == "end"
            assert end["record"]["status"] == "cancelled"
        # pollers see the same terminal state
        assert client.wait(first["id"], timeout=5)["status"] == "cancelled"
        client.wait(blocker["id"], timeout=120)


def test_backpressure_refusal_leaves_no_phantom_record(tmp_path):
    """A 429'd submission must not leak a forever-'queued' record into
    the job table -- such a record can never finish, answers 409 to
    DELETE, and would make a waiter poll for the rest of its life."""
    cache = ResultCache(tmp_path / "phantom-cache")
    with ServerThread(cache=cache, workers=1, queue_capacity=1) as srv:
        client = srv.client()
        accepted = []
        while True:
            try:
                accepted.append(client.submit({
                    "kind": "job",
                    "params": {"fn": "debug.sleep",
                               "params": {"seconds": 0.5,
                                          "token": len(accepted)}},
                }))
            except Backpressure:
                break
        listed = client.jobs()["jobs"]
        assert len(listed) == len(accepted)
        assert {r["id"] for r in listed} == {r["id"] for r in accepted}
        for record in accepted:
            client.wait(record["id"], timeout=120)
        # every tracked record reaches a terminal state: no zombies
        assert all(r["status"] in ("done", "failed", "timeout", "cancelled")
                   for r in client.jobs()["jobs"])


def test_drain_finishes_accepted_work_and_rejects_new(tmp_path):
    cache = ResultCache(tmp_path / "drain-cache")
    srv = ServerThread(cache=cache, workers=1, queue_capacity=8).start()
    client = srv.client()
    accepted = client.submit({
        "kind": "job",
        "params": {"fn": "debug.sleep",
                   "params": {"seconds": 1.0, "token": "drain-me"}},
    })
    stopper = threading.Thread(target=srv.stop)
    stopper.start()
    import time
    rejected = None
    for _ in range(100):
        try:
            client.submit(_echo_spec("too-late"))
        except ServeError as exc:
            rejected = exc
            break
        except OSError:
            break  # listener already closed: also a refusal
        time.sleep(0.02)
    stopper.join(timeout=120)
    assert not stopper.is_alive()
    if rejected is not None:
        assert rejected.status == 503
    # the accepted job finished before shutdown (drain, not abort)
    record = srv.service.jobs[accepted["id"]]
    assert record.status == "done"
