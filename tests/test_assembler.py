"""Assembler and Program tests, including layout property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import encodings as enc
from repro.isa.assembler import Assembler, AssemblyError


def test_sequential_layout():
    asm = Assembler(base=0x1000)
    asm.emit(enc.nop(3))
    asm.emit(enc.nop(5))
    prog = asm.assemble()
    addrs = sorted(prog.instructions)
    assert addrs == [0x1000, 0x1003]


def test_labels_resolve_branch_targets():
    asm = Assembler(base=0x1000)
    asm.label("start")
    asm.emit(enc.jmp("end"))
    asm.label("end")
    asm.emit(enc.halt())
    prog = asm.assemble(entry="start")
    jmp = prog.at(0x1000)
    assert jmp.target == prog.addr_of("end")
    assert jmp.uops[0].target == prog.addr_of("end")


def test_duplicate_label_rejected():
    asm = Assembler()
    asm.label("x")
    with pytest.raises(AssemblyError):
        asm.label("x")


def test_undefined_label_rejected():
    asm = Assembler()
    asm.emit(enc.jmp("nowhere"))
    with pytest.raises(AssemblyError):
        asm.assemble()


def test_align_pads_with_nops():
    asm = Assembler(base=0x1000)
    asm.emit(enc.nop(1))
    asm.align(32)
    asm.label("aligned")
    asm.emit(enc.halt())
    prog = asm.assemble()
    assert prog.addr_of("aligned") == 0x1020
    # padding is executable: each gap byte belongs to some instruction
    total = sum(i.length for i in prog.instructions.values())
    assert total == 0x21  # 32 bytes of nop+pad plus the halt


def test_align_without_padding_leaves_gap():
    asm = Assembler(base=0x1000)
    asm.emit(enc.nop(1))
    asm.align(64, pad=False)
    asm.label("aligned")
    asm.emit(enc.halt())
    prog = asm.assemble()
    assert prog.addr_of("aligned") == 0x1040
    assert prog.at(0x1001) is None  # hole


@pytest.mark.parametrize("boundary", [0, -32, 3, 48, 33])
@pytest.mark.parametrize("pad", [True, False])
def test_align_requires_power_of_two(boundary, pad):
    """Both the padding and the hole-leaving path must reject bad
    boundaries instead of silently mis-padding."""
    asm = Assembler(base=0x1000)
    asm.emit(enc.nop(1))
    with pytest.raises(AssemblyError):
        asm.align(boundary, pad=pad)
    # the failed align must not have moved the cursor or emitted pad
    asm.label("after")
    prog = asm.assemble()
    assert prog.addr_of("after") == 0x1001


def test_org_rejects_overlap():
    asm = Assembler(base=0x1000)
    asm.emit(enc.nop(10))
    with pytest.raises(AssemblyError):
        asm.org(0x1005)


def test_overlapping_emission_rejected_at_assemble():
    asm = Assembler(base=0x1000)
    asm.emit(enc.nop(10))
    asm.org(0x1020)
    asm.emit(enc.nop(10))
    asm.org(0x1015)
    asm.emit(enc.nop(15))  # 0x1015..0x1024 overlaps 0x1020
    with pytest.raises(AssemblyError):
        asm.assemble()


def test_data_segment_and_reserve():
    asm = Assembler()
    addr = asm.data("greeting", b"hello", align=64)
    addr2 = asm.reserve("buffer", 100)
    asm.emit(enc.halt())
    prog = asm.assemble()
    assert prog.data[addr] == b"hello"
    assert addr % 64 == 0
    assert addr2 > addr
    assert len(prog.data[addr2]) == 100


def test_entry_defaults_to_first_instruction():
    asm = Assembler(base=0x2000)
    asm.emit(enc.halt())
    assert asm.assemble().entry == 0x2000


def test_kernel_ranges():
    asm = Assembler(base=0x1000)
    asm.label("user")
    asm.emit(enc.halt())
    asm.org(0x9000)
    asm.label("kstart")
    asm.emit(enc.halt())
    asm.label("kend")
    prog = asm.assemble()
    prog.mark_kernel("kstart", "kend")
    assert prog.is_kernel_code(0x9000)
    assert not prog.is_kernel_code(0x1000)


@given(
    lengths=st.lists(st.integers(min_value=1, max_value=15), min_size=1,
                     max_size=60),
    aligns=st.sets(st.integers(min_value=0, max_value=59)),
)
@settings(max_examples=50, deadline=None)
def test_layout_never_overlaps(lengths, aligns):
    """Random emission with random interleaved .aligns never produces
    overlapping instructions, and addresses strictly increase."""
    asm = Assembler(base=0x40_0000)
    for i, length in enumerate(lengths):
        if i in aligns:
            asm.align(32)
        asm.emit(enc.nop(length))
    prog = asm.assemble()
    spans = sorted((i.addr, i.end) for i in prog.instructions.values())
    for (s0, e0), (s1, _) in zip(spans, spans[1:]):
        assert e0 <= s1


@given(st.lists(st.integers(min_value=1, max_value=15), min_size=1,
                max_size=40))
@settings(max_examples=50, deadline=None)
def test_code_bytes_accounts_everything(lengths):
    asm = Assembler()
    for length in lengths:
        asm.emit(enc.nop(length))
    prog = asm.assemble()
    assert prog.code_bytes == sum(lengths)
