"""Section VII: invisible-speculation defenses vs the attacks.

InvisiSpec/SafeSpec-class defenses hide transient *data-cache* updates
until speculation resolves.  The paper's claim -- "our attack is able
to completely penetrate all of these solutions" -- holds because the
micro-op cache is filled by fetch, upstream of any execute-side
buffering."""

import pytest

from repro.core.covert import ChannelParams, CovertChannel
from repro.core.transient import ClassicSpectreV1, UopCacheSpectreV1
from repro.cpu.config import CPUConfig

INVISIBLE = CPUConfig.skylake(invisible_speculation=True)


class TestDataCacheSideIsClosed:
    def test_classic_spectre_blocked(self):
        stats = ClassicSpectreV1(secret=b"\xa5\x3c", config=INVISIBLE).leak()
        assert stats.byte_accuracy == 0.0

    def test_transient_loads_leave_no_footprint(self):
        attack = ClassicSpectreV1(secret=b"\x42", config=INVISIBLE)
        attack._install_secret()
        attack._call("invoke_victim", regs={"r1": 16})
        attack._call("invoke_victim", regs={"r1": 16})
        attack._call("flush_all")
        attack._call("invoke_victim", regs={"r1": 1024})  # OOB
        # no probe-array slot became cached transiently
        a2 = attack.core.addr_of("array2")
        hot = sum(
            1 for k in range(256)
            if attack.core.hierarchy.probe_data_latency(a2 + 512 * k)
            < attack.core.hierarchy.dram_latency
        )
        assert hot == 0


class TestFrontEndSideStaysOpen:
    def test_uop_cache_spectre_penetrates(self):
        """With a windowing gadget deep enough to cover the permanently
        cold secret load, variant-1 leaks straight through the
        defense."""
        attack = UopCacheSpectreV1(
            secret=b"\xa5", config=INVISIBLE, deep_window=True
        )
        assert attack.leak().byte_accuracy == 1.0

    def test_covert_channel_unaffected(self):
        """The non-speculative channel never depended on transient
        data accesses at all."""
        chan = CovertChannel(
            ChannelParams(samples=1, calibration_rounds=4), config=INVISIBLE
        )
        report = chan.transmit(b"\x5a")
        assert report.bit_errors == 0


class TestDeepWindow:
    def test_deep_window_also_works_without_defenses(self):
        attack = UopCacheSpectreV1(secret=b"\x3c", deep_window=True)
        assert attack.leak().byte_accuracy == 1.0

    def test_architectural_behaviour_unchanged(self):
        attack = UopCacheSpectreV1(secret=b"\x77", deep_window=True)
        attack.calibrate(rounds=2)
        attack._call("invoke_victim", regs={"r1": 5000, "r2": 0})
        assert attack.core.read_reg("r4") != 0x77
