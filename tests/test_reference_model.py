"""Differential testing: the full speculative core must produce the
same *architectural* results as a trivial in-order reference
interpreter, over randomly generated programs.

This is the strongest guard on the speculation machinery: any squash
that fails to roll back a register, store, or control decision shows
up as a divergence.
"""

from hypothesis import given, settings, strategies as st

from repro.cpu.config import CPUConfig
from repro.cpu.core import Core
from repro.cpu.thread import fresh_registers
from repro.isa import encodings as enc
from repro.isa.assembler import Assembler
from repro.isa.instruction import UopKind

_MASK = (1 << 64) - 1


class ReferenceInterpreter:
    """Architectural-only interpreter: no pipeline, no speculation."""

    def __init__(self, program, data_base=0x80_0000):
        self.program = program
        self.regs = fresh_registers(0)
        self.mem = {}
        for base, payload in program.data.items():
            for i, b in enumerate(payload):
                self.mem[base + i] = b
        self.flags = 0

    def _read(self, addr, size):
        return int.from_bytes(
            bytes(self.mem.get(addr + i, 0) for i in range(size)), "little"
        )

    def _write(self, addr, value, size):
        for i in range(size):
            self.mem[addr + i] = (value >> (8 * i)) & 0xFF

    def _addr(self, uop):
        addr = self.regs[uop.base] + uop.disp if uop.base else uop.disp
        if uop.index is not None:
            addr += self.regs[uop.index] * uop.scale
        return addr & _MASK

    def _flags(self, a, b):
        f = 0
        if (a - b) & _MASK == 0:
            f |= 1
        sa = a - (1 << 64) if a >> 63 else a
        sb = b - (1 << 64) if b >> 63 else b
        if sa - sb < 0:
            f |= 2
        if a < b:
            f |= 4
        return f

    def _cond(self, cond):
        f = self.regs["flags"]
        return {
            "z": bool(f & 1), "nz": not f & 1,
            "b": bool(f & 4), "ae": not f & 4,
            "l": bool(f & 2), "ge": not f & 2,
            "s": bool(f & 2), "ns": not f & 2,
        }[cond]

    def _alu(self, op, a, b):
        return {
            "add": (a + b) & _MASK, "sub": (a - b) & _MASK,
            "and": a & b, "or": a | b, "xor": a ^ b,
            "shl": (a << (b & 63)) & _MASK, "shr": (a & _MASK) >> (b & 63),
            "imul": (a * b) & _MASK,
        }[op]

    def run(self, entry, max_steps=100_000):
        rip = entry
        regs = self.regs
        steps = 0
        while True:
            steps += 1
            assert steps < max_steps, "reference interpreter ran away"
            instr = self.program.fetch(rip)
            next_rip = instr.end
            for uop in instr.uops:
                k = uop.kind
                if k is UopKind.MOV_IMM:
                    regs[uop.dst] = uop.imm & _MASK
                elif k is UopKind.MOV:
                    regs[uop.dst] = regs[uop.srcs[0]]
                elif k is UopKind.ALU:
                    v = self._alu(uop.alu_op, regs[uop.srcs[0]],
                                  regs[uop.srcs[1]])
                    regs[uop.dst] = v
                    if uop.sets_flags:
                        regs["flags"] = self._flags(v, 0)
                elif k is UopKind.ALU_IMM:
                    v = self._alu(uop.alu_op, regs[uop.srcs[0]], uop.imm)
                    regs[uop.dst] = v
                    if uop.sets_flags:
                        regs["flags"] = self._flags(v, 0)
                elif k is UopKind.CMP:
                    b = regs[uop.srcs[1]] if len(uop.srcs) > 1 else uop.imm
                    regs["flags"] = self._flags(regs[uop.srcs[0]], b)
                elif k is UopKind.TEST:
                    b = regs[uop.srcs[1]] if len(uop.srcs) > 1 else uop.imm
                    regs["flags"] = self._flags(regs[uop.srcs[0]] & b, 0)
                elif k is UopKind.LOAD:
                    regs[uop.dst] = self._read(self._addr(uop), uop.mem_size)
                elif k is UopKind.STORE:
                    self._write(self._addr(uop), regs[uop.srcs[0]],
                                uop.mem_size)
                elif k is UopKind.JCC:
                    if self._cond(uop.cond):
                        next_rip = uop.target
                elif k is UopKind.JMP:
                    next_rip = uop.target
                elif k is UopKind.JMP_IND:
                    next_rip = regs[uop.srcs[0]]
                elif k is UopKind.CALL:
                    regs["rsp"] = (regs["rsp"] - 8) & _MASK
                    self._write(regs["rsp"], instr.end, 8)
                    next_rip = uop.target
                elif k is UopKind.CALL_IND:
                    regs["rsp"] = (regs["rsp"] - 8) & _MASK
                    self._write(regs["rsp"], instr.end, 8)
                    next_rip = regs[uop.srcs[0]]
                elif k is UopKind.RET:
                    next_rip = self._read(regs["rsp"], 8)
                    regs["rsp"] = (regs["rsp"] + 8) & _MASK
                elif k is UopKind.HALT:
                    return
                # NOP/PAUSE/RDTSC/fences: no architectural effect we
                # compare on (RDTSC writes a timing value, excluded).
            rip = next_rip


# ----------------------------------------------------------------------
# random program generation

GPRS = ["r1", "r2", "r3", "r4", "r5"]


@st.composite
def random_program(draw):
    """Random branchy straight-line programs with a data buffer.

    Generated from a template bank: ALU ops, loads/stores into a
    private buffer, compares and forward conditional branches (always
    forward, so termination is structural), and function calls.
    """
    n_blocks = draw(st.integers(min_value=2, max_value=6))
    ops_per_block = draw(
        st.lists(st.integers(min_value=1, max_value=6),
                 min_size=n_blocks, max_size=n_blocks)
    )
    choices = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["alu", "alu_imm", "mov", "load", "store",
                                 "cmp"]),
                st.sampled_from(GPRS),
                st.sampled_from(GPRS),
                st.sampled_from(["add", "sub", "xor", "and", "or"]),
                st.integers(min_value=0, max_value=56),
                st.integers(min_value=0, max_value=255),
            ),
            min_size=sum(ops_per_block),
            max_size=sum(ops_per_block),
        )
    )
    conds = draw(st.lists(st.sampled_from(["z", "nz", "b", "ae", "l", "ge"]),
                          min_size=n_blocks, max_size=n_blocks))
    init = draw(st.lists(st.integers(min_value=0, max_value=2**32),
                         min_size=len(GPRS), max_size=len(GPRS)))

    asm = Assembler()
    asm.reserve("buf", 64)
    asm.label("main")
    for reg, val in zip(GPRS, init):
        asm.emit(enc.mov_imm(reg, val, width=64))
    asm.emit(enc.mov_imm("r10", asm.resolve("buf"), width=64))
    idx = 0
    for b in range(n_blocks):
        asm.label(f"block_{b}")
        for _ in range(ops_per_block[b]):
            kind, ra, rb, op, disp, imm = choices[idx]
            idx += 1
            if kind == "alu":
                asm.emit(enc.alu(op, ra, rb))
            elif kind == "alu_imm":
                asm.emit(enc.alu_imm(op, ra, imm))
            elif kind == "mov":
                asm.emit(enc.mov(ra, rb))
            elif kind == "load":
                asm.emit(enc.load(ra, "r10", disp=disp & ~7))
            elif kind == "store":
                asm.emit(enc.store(ra, "r10", disp=disp & ~7))
            else:
                asm.emit(enc.cmp_imm(ra, imm))
        # forward branch to the next-next block (or the end)
        target = f"block_{b + 2}" if b + 2 < n_blocks else "end"
        asm.emit(enc.jcc(conds[b], target))
    asm.label("end")
    asm.emit(enc.halt())
    return asm.assemble(entry="main")


@given(random_program())
@settings(max_examples=60, deadline=None)
def test_core_matches_reference(program):
    """Final registers and memory agree with the reference model."""
    core = Core(CPUConfig.skylake(), program)
    core.call("main")

    ref = ReferenceInterpreter(program)
    ref.run(program.entry)

    for reg in GPRS + ["flags", "rsp"]:
        assert core.read_reg(reg) == ref.regs[reg], f"register {reg} diverged"
    buf = program.labels["buf"]
    for offset in range(0, 64, 8):
        assert core.read_mem(buf + offset) == ref._read(buf + offset, 8), (
            f"memory at buf+{offset} diverged"
        )


@given(random_program())
@settings(max_examples=30, deadline=None)
def test_core_deterministic(program):
    """Two fresh cores running the same program agree exactly."""
    a = Core(CPUConfig.skylake(), program)
    b = Core(CPUConfig.skylake(), program)
    a.call("main")
    b.call("main")
    for reg in GPRS:
        assert a.read_reg(reg) == b.read_reg(reg)
    assert a.cycles() == b.cycles()
    assert a.counters().retired_uops == b.counters().retired_uops


@given(random_program())
@settings(max_examples=30, deadline=None)
def test_zen_config_same_architecture(program):
    """Architectural results are config-independent (Zen vs Skylake)."""
    skl = Core(CPUConfig.skylake(), program)
    zen = Core(CPUConfig.zen(), program)
    skl.call("main")
    zen.call("main")
    for reg in GPRS + ["flags"]:
        assert skl.read_reg(reg) == zen.read_reg(reg)


@st.composite
def looping_program(draw):
    """Random programs with bounded backward loops and calls --
    exercising the predictor-training and RSB paths of the core."""
    n_funcs = draw(st.integers(min_value=1, max_value=3))
    loop_counts = draw(st.lists(st.integers(min_value=1, max_value=9),
                                min_size=n_funcs, max_size=n_funcs))
    bodies = draw(
        st.lists(
            st.lists(
                st.tuples(
                    st.sampled_from(["alu", "store", "load", "cmp_skip"]),
                    st.sampled_from(GPRS),
                    st.sampled_from(["add", "sub", "xor"]),
                    st.integers(min_value=0, max_value=48),
                ),
                min_size=1, max_size=5,
            ),
            min_size=n_funcs, max_size=n_funcs,
        )
    )
    asm = Assembler()
    asm.reserve("buf", 64)
    # functions first (forward call references need resolved labels
    # only for data, so ordering is free for code labels)
    for f in range(n_funcs):
        asm.org(0x41_0000 + f * 0x1000)
        asm.label(f"fn_{f}")
        counter = f"r{10 + f}"
        asm.emit(enc.mov_imm(counter, loop_counts[f]))
        asm.label(f"fn_{f}_top")
        for j, (kind, reg, op, disp) in enumerate(bodies[f]):
            if kind == "alu":
                asm.emit(enc.alu_imm(op, reg, 3))
            elif kind == "store":
                asm.emit(enc.store(reg, "r9", disp=disp & ~7))
            elif kind == "load":
                asm.emit(enc.load(reg, "r9", disp=disp & ~7))
            else:
                skip = f"fn_{f}_skip_{j}"
                asm.emit(enc.cmp_imm(reg, 100))
                asm.emit(enc.jcc("b", skip))
                asm.emit(enc.alu_imm("add", reg, 1))
                asm.label(skip)
        asm.emit(enc.dec(counter))
        asm.emit(enc.jcc("nz", f"fn_{f}_top"))
        asm.emit(enc.ret())
    asm.org(0x40_0000)
    asm.label("main")
    asm.emit(enc.mov_imm("r9", asm.resolve("buf"), width=64))
    for reg in GPRS:
        asm.emit(enc.mov_imm(reg, 7))
    for f in range(n_funcs):
        asm.emit(enc.call(f"fn_{f}"))
    asm.emit(enc.halt())
    return asm.assemble(entry="main")


@given(looping_program())
@settings(max_examples=40, deadline=None)
def test_loops_and_calls_match_reference(program):
    core = Core(CPUConfig.skylake(), program)
    core.call("main")
    ref = ReferenceInterpreter(program)
    ref.run(program.entry)
    for reg in GPRS + ["rsp"]:
        assert core.read_reg(reg) == ref.regs[reg], f"register {reg} diverged"
    buf = program.labels["buf"]
    for offset in range(0, 64, 8):
        assert core.read_mem(buf + offset) == ref._read(buf + offset, 8)
