"""Counter-based detection evaluated on *real* simulated traces:
benign windows from the workload suite, attack windows from covert
channel bit transmissions (Section VIII's detection discussion)."""

import pytest

from repro.analysis import roc_sweep
from repro.core.mitigations import (
    collect_attack_windows,
    collect_benign_windows,
)


@pytest.fixture(scope="module")
def traces():
    benign = collect_benign_windows(rounds=2)
    attack = collect_attack_windows(bits=12)
    return benign, attack


def test_attack_windows_are_nonzero(traces):
    _, attack = traces
    assert all(w > 0 for w in attack)


def test_hot_benign_code_is_quiet(traces):
    benign, _ = traces
    # most benign windows (warm workloads) cause no DSB misses at all
    assert sorted(benign)[len(benign) // 2] == 0


def test_detector_separates_better_than_chance(traces):
    benign, attack = traces
    roc = roc_sweep(benign, attack)
    assert roc.auc > 0.7


def test_misclassification_is_inherent(traces):
    """The paper's caveat, reproduced with real traces: some benign
    code (capacity-bound loops) produces *more* DSB misses than the
    attack itself, so no threshold is simultaneously complete and
    sound."""
    benign, attack = traces
    assert max(benign) > max(attack)  # large_code out-misses the spy
    roc = roc_sweep(benign, attack)
    best = roc.best_threshold(max_fpr=0.0)
    tpr_at_zero_fpr = best.tpr if best is not None else 0.0
    assert tpr_at_zero_fpr < 1.0
