"""Bit-identical parity between the reference and replay engines.

The replay engine (:mod:`repro.cpu.engine`) memoizes deterministic
call segments and replays their recorded effects; its whole contract
is that no caller can tell it apart from the reference interpreter.
These tests enforce the contract end to end:

- every attack driver in the evaluation (Table I covert channels, the
  contention channels, both Table II Spectre variants, key extraction,
  BTI, the jump-table variant and the LFENCE signals) produces
  bit-identical results under both backends;
- the contention matrix (resource x mode x variant grid) is
  bit-identical;
- a Hypothesis property drives generated contention pairs through both
  backends and asserts identical performance counters, RDTSC-derived
  timing streams and micro-op cache occupancy snapshots;
- the replay engine demonstrably *replays* (not silently falls back to
  reference) on the reset-loop workload the speedup claim rests on.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.contention.session import ContentionSession
from repro.contention.templates import contention_config
from repro.cpu.config import CPUConfig
from repro.harness.attacks import run_attacks
from repro.harness.contention import run_contention
from repro.observe.heatmap import OccupancySnapshot

# ----------------------------------------------------------------------
# Full attack evaluation, both engines


def test_all_attack_drivers_bit_identical():
    """Every attack driver returns identical results on both engines."""
    ref_results, ref_outcomes, _ = run_attacks(fast=True, engine="reference")
    rep_results, rep_outcomes, _ = run_attacks(fast=True, engine="replay")

    # Raw per-job result payloads (pre-row-wrapping) must match
    # bit-for-bit, and so must the wrapped per-group rows.
    assert [o.result for o in ref_outcomes] == \
        [o.result for o in rep_outcomes]
    assert ref_results == rep_results
    # The comparison covered every group.
    assert sorted(ref_results) == [
        "bti", "contention", "jumptable", "keyextract",
        "lfence", "table1", "table2",
    ]


def test_engine_enters_job_keys():
    """Reference and replay runs must cache separately (schema v3)."""
    from repro.harness.attacks import attack_jobs

    ref = attack_jobs(engine="reference")
    rep = attack_jobs(engine="replay")
    for group in ref:
        for job_ref, job_rep in zip(ref[group], rep[group]):
            assert job_ref.key() != job_rep.key()
            assert job_rep.config.engine == "replay"


def test_contention_matrix_bit_identical():
    """The fast contention grid is identical under both engines."""
    ref_matrix, _, _ = run_contention(fast=True, trials=1,
                                      engine="reference")
    rep_matrix, _, _ = run_contention(fast=True, trials=1,
                                      engine="replay")
    assert ref_matrix == rep_matrix


# ----------------------------------------------------------------------
# Property: generated contention pairs


def _run_cell(resource: str, mode: str, variant: str, engine: str):
    """One contention cell under ``engine``; returns everything an
    observer could compare: the cell dict (whose ``samples`` are the
    per-trial RDTSC-derived cycle streams), per-thread counters, and
    the micro-op cache occupancy."""
    config = contention_config(resource).with_options(engine=engine)
    session = ContentionSession(
        resource, mode, variant=variant, trials=2, config=config
    )
    cell = session.measure().as_dict()
    core = session.core
    # Direct microarchitectural inspection requires materialized state
    # under the replay engine (no-op under reference).
    core.materialize()
    counters = [core.thread(tid).counters.as_dict() for tid in (0, 1)]
    occupancy = OccupancySnapshot.capture(core.uop_cache)
    return cell, counters, occupancy


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    resource=st.sampled_from(("uop_cache", "itlb", "store_buffer")),
    mode=st.sampled_from(("smt", "time_sliced")),
    variant=st.sampled_from(("conflict", "disjoint")),
)
def test_generated_pairs_bit_identical(resource, mode, variant):
    ref = _run_cell(resource, mode, variant, "reference")
    rep = _run_cell(resource, mode, variant, "replay")
    assert ref[0] == rep[0], "cell result / RDTSC streams diverged"
    assert ref[1] == rep[1], "performance counters diverged"
    assert ref[2] == rep[2], "DSB occupancy diverged"


# ----------------------------------------------------------------------
# The replay engine actually replays


def test_replay_engine_replays_reset_loops():
    """On the canonical reset-loop workload the replay engine serves
    trials from recorded segments -- no materializations, no bailouts
    -- which is what the benchmark speedup rests on."""
    from repro.core.covert import ChannelParams, CovertChannel

    channel = CovertChannel(
        ChannelParams(), config=CPUConfig.skylake(engine="replay")
    )
    warm = channel.transmit(b"u")
    trials = []
    for _ in range(3):
        channel.reset()
        trials.append(channel.transmit(b"u"))

    stats = channel.core.engine_stats()
    assert stats["engine"] == "replay"
    assert stats["replayed"] > 0
    assert stats["bailouts"] == 0
    assert stats["materializations"] == 0
    assert not stats["dead"]
    # And the replayed trials match the recorded one.
    for report in trials:
        assert report.bit_errors == warm.bit_errors
        assert report.total_cycles == warm.total_cycles


def test_observer_attach_falls_back_to_reference():
    """Attaching the event bus makes the run non-deterministic from
    the ledger's point of view; the engine must materialize and stop
    recording, and results must still match the reference engine."""
    from repro.core.covert import ChannelParams, CovertChannel
    from repro.observe import TraceRecorder

    reports = {}
    for engine in ("reference", "replay"):
        channel = CovertChannel(
            ChannelParams(), config=CPUConfig.skylake(engine=engine)
        )
        channel.transmit(b"u")  # recorded under replay
        channel.reset()
        recorder = TraceRecorder()
        reports[engine] = channel.run(
            lambda ch: ch.transmit(b"u"), observe=recorder
        )
    assert reports["reference"].bit_errors == reports["replay"].bit_errors
    assert reports["reference"].total_cycles == \
        reports["replay"].total_cycles
