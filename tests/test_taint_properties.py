"""Property tests for the taint analyzer's soundness contract.

The analyzer promises an *over-approximation*: every live event-key
divergence between two runs that differ only in the secret must fall
inside the static secret-dependence prediction.  Hypothesis searches
the contention pair generator's (resource, variant, size) space for a
counter-example, using the secret bit to select the attacker vs the
idle entry of each generated pair; the twin-entry control checks the
other direction -- identical alternatives must report no
secret-dependent state and produce no live divergence at all.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.contention.templates import RESOURCES, VARIANTS, generate_pair
from repro.cpu.core import Core
from repro.lint import SecretClaim, analyze, verify_secret_claims
from repro.lint.crosscheck import cross_check_secrets

#: Per-resource footprint-size menus, bounded as in
#: ``test_contention_templates.py`` so every draw stays cheap.
_SIZES = {
    "uop_cache": st.sampled_from([4, 8]),
    "itlb": st.integers(min_value=2, max_value=6),
    "dtlb": st.integers(min_value=2, max_value=6),
    "l1i": st.sampled_from([2, 4]),
    "l1d": st.sampled_from([2, 4]),
    "store_buffer": st.integers(min_value=20, max_value=40),
    "btb": st.integers(min_value=4, max_value=16),
}

_pair_space = st.sampled_from(RESOURCES).flatmap(
    lambda resource: st.tuples(
        st.just(resource),
        st.sampled_from(VARIANTS),
        _SIZES[resource],
    )
)


@given(_pair_space)
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_static_taint_overapproximates_live_divergence(drawn):
    """Soundness: the live two-secret differential never escapes the
    static prediction, for any in-menu generated pair."""
    resource, variant, size = drawn
    pair = generate_pair(resource, variant=variant, size=size)
    report = analyze(pair.program, pair.config)
    claim = SecretClaim(
        name="bit",
        entries=(pair.attacker_label, pair.idle_label),
        leaks_to=(),
    )
    taint = verify_secret_claims(report, [claim])
    core = Core(pair.config, pair.program)

    def drive(bit):
        core.call(pair.attacker_label if bit else pair.idle_label)

    check = cross_check_secrets(core, taint, drive)
    assert check.clean, f"{resource}/{variant}: {check.summary()}"


@given(_pair_space)
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_twin_entries_report_zero_dependence_and_divergence(drawn):
    """Negative control: when both 'alternatives' are the same label
    there is no secret, so the analysis must find zero
    secret-dependent sets and the live runs must not diverge."""
    resource, variant, size = drawn
    pair = generate_pair(resource, variant=variant, size=size)
    report = analyze(pair.program, pair.config)
    claim = SecretClaim(
        name="twin",
        entries=(pair.attacker_label, pair.attacker_label),
        leaks_to=(),
    )
    taint = verify_secret_claims(report, [claim])
    assert taint.regions == frozenset()
    assert taint.capacity_bits == 0.0
    core = Core(pair.config, pair.program)

    def drive(bit):
        core.call(pair.attacker_label)

    check = cross_check_secrets(core, taint, drive)
    assert check.divergences == 0
    assert check.clean
