"""Disassembler tests."""

from repro.isa import encodings as enc
from repro.isa.assembler import Assembler
from repro.isa.disasm import disassemble, format_instruction


def test_format_common_instructions():
    cases = [
        (enc.nop(5), "nop5"),
        (enc.mov_imm("r1", 0x42), "mov r1, 0x42"),
        (enc.alu("add", "r1", "r2"), "add r1, r2"),
        (enc.cmp_imm("r1", 7), "cmp r1, 0x7"),
        (enc.load("r3", "r9", index="r1", size=1), "movzx r3, byte"),
        (enc.store("r2", "r9"), "mov [r9], r2"),
        (enc.call_ind("r5"), "call r5"),
        (enc.rdtsc("r8"), "rdtsc -> r8"),
    ]
    for instr, expected in cases:
        instr.bind(0x1000)
        assert expected in format_instruction(instr)


def test_branch_targets_use_labels():
    asm = Assembler()
    asm.label("main")
    asm.emit(enc.jmp("exit"))
    asm.label("exit")
    asm.emit(enc.halt())
    prog = asm.assemble()
    listing = disassemble(prog)
    assert "jmp exit" in listing
    assert "main:" in listing
    assert "exit:" in listing


def test_markers_and_ranges():
    asm = Assembler()
    asm.label("a")
    asm.emit(enc.cpuid())
    asm.emit(enc.pause())
    asm.emit(enc.halt())
    prog = asm.assemble()
    listing = disassemble(prog)
    assert "msrom" in listing
    assert "uncacheable" in listing
    # range filtering
    partial = disassemble(prog, start=prog.addr_of("a") + 2)
    assert "cpuid" not in partial


def test_lcp_annotation():
    asm = Assembler()
    asm.emit(enc.nop(5, lcp=2))
    asm.emit(enc.halt())
    assert "lcp x2" in disassemble(asm.assemble())
