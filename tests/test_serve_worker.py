"""Satellite: harness failure paths driven through the server's worker
tier (retry, timeout, process-pool degradation).

These run the :class:`~repro.serve.worker.WorkerTier` directly --
process mode, because the harness's SIGALRM deadline only arms on a
main thread, which is exactly what a pool worker provides.
"""

import pytest

from repro.harness.cache import ResultCache
from repro.serve.spec import ExperimentSpec
from repro.serve.worker import WorkerTier, _worker_entry


@pytest.fixture()
def tier(tmp_path):
    tier = WorkerTier(workers=2, cache_root=tmp_path / "cache").start()
    yield tier
    tier.shutdown()


def test_flaky_job_fails_twice_then_succeeds(tier, tmp_path):
    """The ISSUE's named scenario: two transient failures, bounded
    retries, eventual success -- all inside a worker process."""
    sentinel = tmp_path / "flaky.attempts"
    spec = ExperimentSpec.from_json({
        "kind": "job",
        "params": {"fn": "debug.flaky",
                   "params": {"sentinel": str(sentinel), "fail_times": 2}},
        "retries": 2,
    })
    report = tier.submit(spec).result(timeout=120)
    assert report["ok"], report
    assert report["result"]["result"] == {"value": 42, "attempts": 3}
    assert report["result"]["retries"] == 2
    assert sentinel.read_text().count("attempt") == 3


def test_flaky_job_exhausts_retry_budget(tier, tmp_path):
    sentinel = tmp_path / "hopeless.attempts"
    spec = ExperimentSpec.from_json({
        "kind": "job",
        "params": {"fn": "debug.flaky",
                   "params": {"sentinel": str(sentinel), "fail_times": 5}},
        "retries": 1,
    })
    report = tier.submit(spec).result(timeout=120)
    assert not report["ok"]
    assert "TransientJobError" in report["error"]
    # initial attempt + 1 retry, then the budget is spent
    assert sentinel.read_text().count("attempt") == 2


def test_job_timeout_fires_inside_worker(tier):
    """SIGALRM deadline enforcement on the worker's main thread: a
    sleep far past its budget dies with JobTimeoutError."""
    spec = ExperimentSpec.from_json({
        "kind": "job",
        "params": {"fn": "debug.sleep",
                   "params": {"seconds": 30, "token": "too-slow"}},
        "timeout": 0.3,
        "retries": 0,
    })
    report = tier.submit(spec).result(timeout=120)
    assert not report["ok"]
    assert "JobTimeoutError" in report["error"]


def test_timeout_then_success_on_retry(tier, tmp_path):
    """JobTimeoutError is transient: with retries budgeted, the harness
    re-runs the job, and a fast second attempt lands."""
    sentinel = tmp_path / "slow-start.attempts"
    # flaky's transient failure stands in for "first attempt too slow";
    # the point is that the retry path and the timeout path share the
    # TransientJobError machinery (JobTimeoutError subclasses it).
    spec = ExperimentSpec.from_json({
        "kind": "job",
        "params": {"fn": "debug.flaky",
                   "params": {"sentinel": str(sentinel), "fail_times": 1}},
        "timeout": 30,
        "retries": 1,
    })
    report = tier.submit(spec).result(timeout=120)
    assert report["ok"], report
    assert report["result"]["result"]["attempts"] == 2


def test_worker_results_land_in_shared_cache(tier, tmp_path):
    spec = ExperimentSpec.from_json({
        "kind": "job",
        "params": {"fn": "debug.echo", "params": {"token": "shared"}},
    })
    report = tier.submit(spec).result(timeout=120)
    assert report["ok"]
    cache = ResultCache(tmp_path / "cache")
    assert cache.get(spec.key()) == {"seed": 0, "token": "shared"}


def test_tier_degrades_to_threads_when_pool_unavailable(tmp_path,
                                                        monkeypatch):
    """Serial-fallback analogue at the tier level: when the process
    pool cannot be built, the tier degrades to threads and still
    executes specs."""
    import repro.serve.worker as worker_mod

    def broken_pool(*args, **kwargs):
        raise OSError("no process pool for you")

    monkeypatch.setattr(worker_mod, "ProcessPoolExecutor", broken_pool)
    tier = WorkerTier(workers=1, cache_root=tmp_path / "cache").start()
    try:
        assert tier.mode == "thread"
        assert tier.degraded is True
        spec = ExperimentSpec.from_json({
            "kind": "job",
            "params": {"fn": "debug.echo", "params": {"token": "degraded"}},
        })
        report = tier.submit(spec).result(timeout=60)
        assert report["ok"]
        assert report["result"]["result"]["token"] == "degraded"
    finally:
        tier.shutdown()


def test_worker_entry_flattens_bad_spec_to_error():
    report = _worker_entry(({"kind": "job",
                             "params": {"fn": "no.such.fn"}}, None, None))
    assert not report["ok"]
    assert "SpecError" in report["error"]
