"""Core public-API edge cases."""

import pytest

from repro.cpu.config import CPUConfig
from repro.cpu.core import Core
from repro.errors import SimFault
from repro.isa import encodings as enc
from repro.isa.assembler import Assembler
from tests.conftest import build_core


def tiny_core():
    def build(asm):
        asm.label("main")
        asm.emit(enc.alu_imm("add", "r1", 1))
        asm.emit(enc.halt())
        asm.align(64)
        asm.label("other")
        asm.emit(enc.alu_imm("add", "r2", 1))
        asm.emit(enc.halt())

    return build_core(build, entry="main")


class TestCallAPI:
    def test_entry_by_label_or_address(self):
        core = tiny_core()
        core.call("main")
        core.call(core.addr_of("other"))
        assert core.read_reg("r1") == 1
        assert core.read_reg("r2") == 1

    def test_regs_argument_masks_to_64_bits(self):
        core = tiny_core()
        core.call("main", regs={"r5": 1 << 70})
        assert core.read_reg("r5") == (1 << 70) & ((1 << 64) - 1)

    def test_counters_delta_is_per_call(self):
        core = tiny_core()
        d1 = core.call("main")
        d2 = core.call("main")
        assert d1.retired_instructions == d2.retired_instructions

    def test_reset_clocks_false_accumulates_time(self):
        core = tiny_core()
        core.call("main")
        t1 = core.cycles()
        core.call("main", reset_clocks=False)
        assert core.cycles() > t1

    def test_write_read_reg_roundtrip(self):
        core = tiny_core()
        core.write_reg("r9", 12345)
        assert core.read_reg("r9") == 12345

    def test_write_read_mem(self):
        core = tiny_core()
        core.write_mem(0x99_0000, 0xDEAD, size=2)
        assert core.read_mem(0x99_0000, size=2) == 0xDEAD

    def test_flush_uop_cache(self):
        core = tiny_core()
        core.call("main")
        assert core.uop_cache.occupancy() > 0
        core.flush_uop_cache()
        assert core.uop_cache.occupancy() == 0

    def test_max_blocks_guard(self):
        def build(asm):
            asm.label("main")
            asm.label("spin")
            asm.emit(enc.jmp("spin", short=True))

        core = build_core(build, entry="main")
        with pytest.raises(SimFault):
            core.call("main", max_blocks=50)


class TestITLBInclusion:
    def test_itlb_flush_empties_uop_cache(self):
        """The SGX-entry behaviour (Section II-B): an iTLB flush takes
        the whole micro-op cache with it."""
        core = tiny_core()
        core.call("main")
        assert core.uop_cache.occupancy() > 0
        core.hierarchy.itlb.flush()
        assert core.uop_cache.occupancy() == 0

    def test_l1i_eviction_invalidates_uop_lines(self):
        core = tiny_core()
        core.call("main")
        entry = core.addr_of("main")
        assert core.uop_cache.lookup(0, entry) is not None
        core.hierarchy.l1i.invalidate(entry)
        assert core.uop_cache.lookup(0, entry) is None


class TestUopCacheDisabled:
    def test_everything_decodes_legacy(self):
        def build(asm):
            asm.label("main")
            asm.emit(enc.nop(15), enc.nop(15), enc.nop(2))
            asm.emit(enc.halt())

        config = CPUConfig.skylake(uop_cache_enabled=False)
        core = build_core(build, config=config, entry="main")
        core.call("main")
        delta = core.call("main")
        assert delta.uops_dsb == 0
        assert delta.uops_mite > 0
