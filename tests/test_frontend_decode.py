"""Legacy decode pipeline cost model tests."""

import pytest

from repro.cpu.config import CPUConfig
from repro.frontend.decode import decode_cost, effective_msrom, predecode_cost
from repro.isa import encodings as enc


SKL = CPUConfig.skylake()
ZEN = CPUConfig.zen()


class TestEffectiveMsrom:
    def test_architecturally_microcoded(self):
        assert effective_msrom(enc.cpuid(), SKL)
        assert effective_msrom(enc.syscall(), SKL)

    def test_width_threshold_differs_by_style(self):
        rdtsc = enc.rdtsc()  # 2 uops
        assert not effective_msrom(rdtsc, SKL)  # 1:4 decoder handles it
        assert not effective_msrom(rdtsc, ZEN)  # 1:2 decoder handles it

        class Fake:
            msrom = False
            uop_count = 3

        assert not effective_msrom(Fake(), SKL)
        assert effective_msrom(Fake(), ZEN)


class TestDecodeCostSkylake:
    def test_five_simple_per_cycle(self):
        macros = [enc.nop(1) for _ in range(5)]
        assert decode_cost(macros, SKL).cycles == 1

    def test_six_simple_take_two_cycles(self):
        macros = [enc.nop(1) for _ in range(6)]
        assert decode_cost(macros, SKL).cycles == 2

    def test_one_complex_per_cycle(self):
        # two 2-uop instructions cannot share the single complex decoder
        macros = [enc.rdtsc("r0"), enc.rdtsc("r1")]
        assert decode_cost(macros, SKL).cycles == 2

    def test_uop_width_cap(self):
        # complex(2) + 4 simple = 6 uops > 5/cycle cap
        macros = [enc.rdtsc("r0")] + [enc.nop(1)] * 4
        result = decode_cost(macros, SKL)
        assert result.cycles == 2
        assert result.mite_uops == 6

    def test_msrom_sequences_alone(self):
        macros = [enc.nop(1), enc.cpuid(), enc.nop(1)]
        result = decode_cost(macros, SKL)
        assert result.msrom_uops == enc.cpuid().uop_count
        assert result.mite_uops == 2
        assert result.cycles >= 1 + SKL.msrom_min_cycles + 1

    def test_empty_still_costs_a_cycle(self):
        assert decode_cost([], SKL).cycles == 1


class TestDecodeCostZen:
    def test_four_macros_per_cycle(self):
        macros = [enc.nop(1) for _ in range(4)]
        assert decode_cost(macros, ZEN).cycles == 1
        macros = [enc.nop(1) for _ in range(5)]
        assert decode_cost(macros, ZEN).cycles == 2

    def test_wide_instruction_goes_to_ucode(self):
        class Fake3:
            msrom = False
            uop_count = 3
            mnemonic = "fake"

        result = decode_cost([Fake3()], ZEN)
        assert result.msrom_uops == 3
        assert result.mite_uops == 0


class TestPredecode:
    def test_sixteen_bytes_per_cycle(self):
        assert predecode_cost(16, 0, SKL) == 1
        assert predecode_cost(17, 0, SKL) == 2
        assert predecode_cost(32, 0, SKL) == 2

    def test_lcp_penalty(self):
        base = predecode_cost(32, 0, SKL)
        assert predecode_cost(32, 3, SKL) == base + 3 * SKL.lcp_penalty

    def test_minimum_one_cycle(self):
        assert predecode_cost(0, 0, SKL) == 1
