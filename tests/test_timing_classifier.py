"""Timing-harness classifier tests."""

import pytest

from repro.core.timing import ProbeTiming, TimingClassifier


class TestProbeTiming:
    def test_statistics(self):
        t = ProbeTiming(hit_times=[10, 12, 14], miss_times=[100, 110, 90])
        assert t.hit_mean == 12
        assert t.miss_mean == 100
        assert t.delta == 88
        assert t.threshold == 56
        assert t.separable

    def test_not_separable_when_overlapping(self):
        t = ProbeTiming(hit_times=[10, 95], miss_times=[90, 100])
        assert not t.separable

    def test_single_sample_sd(self):
        t = ProbeTiming(hit_times=[10], miss_times=[100])
        assert t.delta_sd == 0.0

    def test_pooled_sd_equal_spreads(self):
        # equal-size sides with identical variance: pooled == either
        t = ProbeTiming(hit_times=[10, 14], miss_times=[100, 104])
        import statistics

        expected = statistics.stdev([10, 14])
        assert t.delta_sd == pytest.approx(expected)

    def test_pooled_sd_weights_by_dof(self):
        # sqrt((1*s1^2 + 2*s2^2) / 3) for sizes (2, 3)
        import math
        import statistics

        hits = [10, 20]
        misses = [100, 110, 130]
        t = ProbeTiming(hit_times=hits, miss_times=misses)
        expected = math.sqrt(
            (1 * statistics.variance(hits) + 2 * statistics.variance(misses))
            / 3
        )
        assert t.delta_sd == pytest.approx(expected)

    def test_pooled_sd_ignores_single_sample_side(self):
        import statistics

        t = ProbeTiming(hit_times=[10, 14, 18], miss_times=[100])
        assert t.delta_sd == pytest.approx(statistics.stdev([10, 14, 18]))

    def test_pooled_sd_zero_for_constant_times(self):
        t = ProbeTiming(hit_times=[10, 10, 10], miss_times=[90, 90])
        assert t.delta_sd == 0.0


class TestClassifier:
    def test_threshold_decision(self):
        c = TimingClassifier(threshold=50)
        assert c.classify_bit(80) == 1
        assert c.classify_bit(20) == 0
        assert c.is_miss(51)
        assert not c.is_miss(50)

    def test_from_timing(self):
        t = ProbeTiming([10, 10], [90, 90])
        assert TimingClassifier.from_timing(t).threshold == 50

    def test_majority_vote(self):
        c = TimingClassifier(threshold=50)
        assert c.vote([80, 80, 20]) == 1
        assert c.vote([20, 20, 80]) == 0

    def test_tie_falls_back_to_mean(self):
        c = TimingClassifier(threshold=50)
        assert c.vote([95, 20]) == 1  # mean 57.5 > 50
        assert c.vote([60, 10]) == 0  # mean 35 < 50

    def test_empty_vote_rejected(self):
        with pytest.raises(ValueError):
            TimingClassifier(50).vote([])

    def test_tie_with_mean_on_threshold_reads_zero(self):
        # mean exactly equal to the threshold is not a miss
        c = TimingClassifier(threshold=50)
        assert c.vote([80, 20]) == 0

    def test_odd_sample_counts_never_tie(self):
        c = TimingClassifier(threshold=50)
        # the extreme outlier (999) cannot flip a 1-of-3 minority:
        # majority rules, the mean fallback never engages
        assert c.vote([999, 20, 20]) == 0
        assert c.vote([51, 51, 0]) == 1

    def test_four_way_tie_uses_mean(self):
        c = TimingClassifier(threshold=50)
        assert c.vote([100, 100, 10, 10]) == 1  # mean 55 > 50
        assert c.vote([60, 60, 0, 0]) == 0  # mean 30 < 50

    def test_boundary_sample_counts_as_hit(self):
        # is_miss is strict: exactly-threshold samples vote "hit"
        c = TimingClassifier(threshold=50)
        assert c.vote([50, 50, 50]) == 0
