"""Timing-harness classifier tests."""

import pytest

from repro.core.timing import ProbeTiming, TimingClassifier


class TestProbeTiming:
    def test_statistics(self):
        t = ProbeTiming(hit_times=[10, 12, 14], miss_times=[100, 110, 90])
        assert t.hit_mean == 12
        assert t.miss_mean == 100
        assert t.delta == 88
        assert t.threshold == 56
        assert t.separable

    def test_not_separable_when_overlapping(self):
        t = ProbeTiming(hit_times=[10, 95], miss_times=[90, 100])
        assert not t.separable

    def test_single_sample_sd(self):
        t = ProbeTiming(hit_times=[10], miss_times=[100])
        assert t.delta_sd == 0.0


class TestClassifier:
    def test_threshold_decision(self):
        c = TimingClassifier(threshold=50)
        assert c.classify_bit(80) == 1
        assert c.classify_bit(20) == 0
        assert c.is_miss(51)
        assert not c.is_miss(50)

    def test_from_timing(self):
        t = ProbeTiming([10, 10], [90, 90])
        assert TimingClassifier.from_timing(t).threshold == 50

    def test_majority_vote(self):
        c = TimingClassifier(threshold=50)
        assert c.vote([80, 80, 20]) == 1
        assert c.vote([20, 20, 80]) == 0

    def test_tie_falls_back_to_mean(self):
        c = TimingClassifier(threshold=50)
        assert c.vote([95, 20]) == 1  # mean 57.5 > 50
        assert c.vote([60, 10]) == 0  # mean 35 < 50

    def test_empty_vote_rejected(self):
        with pytest.raises(ValueError):
            TimingClassifier(50).vote([])
