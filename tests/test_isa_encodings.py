"""Unit tests for every instruction template."""

import pytest

from repro.isa import encodings as enc
from repro.isa.instruction import BranchKind, UopKind


class TestNop:
    @pytest.mark.parametrize("length", range(1, 16))
    def test_all_lengths(self, length):
        macro = enc.nop(length)
        assert macro.length == length
        assert macro.uop_count == 1
        assert macro.uops[0].kind is UopKind.NOP

    def test_lcp(self):
        assert enc.nop(5, lcp=2).lcp_count == 2
        assert enc.nop(5).lcp_count == 0


class TestMovImm:
    def test_imm64_takes_two_slots(self):
        macro = enc.mov_imm("r1", 0xDEADBEEF, width=64)
        assert macro.length == 10
        assert macro.uop_count == 1
        assert macro.slot_count == 2

    def test_imm32_takes_one_slot(self):
        macro = enc.mov_imm("r1", 7, width=32)
        assert macro.slot_count == 1

    def test_rejects_other_widths(self):
        with pytest.raises(ValueError):
            enc.mov_imm("r1", 1, width=16)


class TestControlFlow:
    def test_jmp_forms(self):
        assert enc.jmp("x").length == 5
        assert enc.jmp("x", short=True).length == 2
        assert enc.jmp("x").branch_kind is BranchKind.JMP
        assert enc.jmp("x").target_label == "x"

    def test_jcc(self):
        macro = enc.jcc("nz", "top")
        assert macro.branch_kind is BranchKind.JCC
        assert macro.uops[0].cond == "nz"

    def test_call_ret(self):
        call = enc.call("f")
        assert call.branch_kind is BranchKind.CALL
        assert call.uops[0].base == "rsp"
        ret = enc.ret()
        assert ret.branch_kind is BranchKind.RET
        assert ret.length == 1

    def test_indirects(self):
        ci = enc.call_ind("r5")
        assert ci.branch_kind is BranchKind.CALL_IND
        assert ci.uops[0].srcs == ("r5",)
        ji = enc.jmp_ind("r6")
        assert ji.branch_kind is BranchKind.JMP_IND


class TestSerialising:
    def test_cpuid_is_msrom(self):
        macro = enc.cpuid()
        assert macro.msrom
        assert macro.uop_count > 4
        assert macro.uops[0].kind is UopKind.CPUID

    def test_lfence(self):
        macro = enc.lfence()
        assert macro.uops[0].kind is UopKind.LFENCE
        assert not macro.msrom

    def test_pause_not_cacheable(self):
        assert not enc.pause().cacheable
        assert enc.nop().cacheable

    def test_syscall_sysret(self):
        assert enc.syscall().branch_kind is BranchKind.SYSCALL
        assert enc.syscall().msrom
        assert enc.sysret().branch_kind is BranchKind.SYSRET


class TestMemoryOps:
    def test_load_fields(self):
        macro = enc.load("r1", "r2", index="r3", scale=4, disp=16, size=1)
        uop = macro.uops[0]
        assert uop.kind is UopKind.LOAD
        assert (uop.base, uop.index, uop.scale, uop.disp) == ("r2", "r3", 4, 16)
        assert uop.mem_size == 1

    def test_store_fields(self):
        macro = enc.store("r7", "r2", disp=-8)
        uop = macro.uops[0]
        assert uop.kind is UopKind.STORE
        assert uop.srcs == ("r7",)
        assert uop.disp == -8

    def test_clflush(self):
        macro = enc.clflush("r1", disp=64)
        assert macro.uops[0].kind is UopKind.CLFLUSH


class TestAlu:
    @pytest.mark.parametrize("op", ["add", "sub", "and", "or", "xor"])
    def test_reg_reg(self, op):
        macro = enc.alu(op, "r1", "r2")
        assert macro.uops[0].alu_op == op
        assert macro.uops[0].sets_flags

    def test_dec_is_sub_one(self):
        macro = enc.dec("r3")
        uop = macro.uops[0]
        assert uop.alu_op == "sub"
        assert uop.imm == 1

    def test_cmp_variants(self):
        assert enc.cmp_imm("r1", 5).uops[0].imm == 5
        assert enc.cmp_reg("r1", "r2").uops[0].srcs == ("r1", "r2")

    def test_rdtsc(self):
        macro = enc.rdtsc("r9")
        assert macro.uops[0].kind is UopKind.RDTSC
        assert macro.uops[0].dst == "r9"
        assert macro.uop_count == 2  # complex decode
