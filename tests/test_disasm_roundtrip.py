"""Disassembly round-trip tests.

``repro.isa.disasm`` promises a lossless listing and
``repro.isa.asmparse`` reassembles one; together they pin the encoding
tables.  Any drift between an encoding's byte length / micro-op
structure and its textual rendering would silently desynchronize lint
locations from real addresses -- these tests fail instead.

Two equalities are checked per program:

- **signature**: the reassembled program occupies the same addresses
  with the same lengths, prefixes, branch kinds and micro-op structure
  (``asmparse.signature`` is the equality relation);
- **fixed point**: disassembling the reassembled program reproduces
  the listing byte for byte, so the rendering itself is canonical.
"""

import pytest

from repro.isa import encodings as enc
from repro.isa.assembler import Assembler
from repro.isa.asmparse import AsmParseError, parse_listing, signature
from repro.isa.disasm import disassemble


#: Every shipped program the lint runner knows how to build.
#: "sources" is an AST scan with no program; "contention-pairs" is a
#: multi-program prechecked target -- its constituent pairs round-trip
#: in test_generated_contention_pair_roundtrips below.
def _program_targets():
    from repro.lint.runner import TARGETS

    return [
        name for name in TARGETS
        if name not in ("sources", "contention-pairs")
    ]


_BUILT = {}


def _program(name):
    if name not in _BUILT:
        from repro.lint.runner import TARGETS

        _BUILT[name] = TARGETS[name]().program
    return _BUILT[name]


@pytest.mark.parametrize("name", _program_targets())
def test_shipped_program_reassembles_identically(name):
    program = _program(name)
    listing = disassemble(program)
    rebuilt = parse_listing(listing)
    assert signature(rebuilt) == signature(program)


@pytest.mark.parametrize("name", _program_targets())
def test_shipped_listing_is_a_fixed_point(name):
    listing = disassemble(_program(name))
    assert disassemble(parse_listing(listing)) == listing


def _contention_pairs():
    from repro.contention.templates import RESOURCES

    return [(r, v) for r in RESOURCES for v in ("conflict", "disjoint")]


@pytest.mark.parametrize("resource,variant", _contention_pairs())
def test_generated_contention_pair_roundtrips(resource, variant):
    from repro.contention.templates import generate_pair

    program = generate_pair(resource, variant=variant).program
    listing = disassemble(program)
    rebuilt = parse_listing(listing)
    assert signature(rebuilt) == signature(program)
    assert disassemble(rebuilt) == listing


def _kitchen_sink():
    """One program exercising every encoding template the ISA offers,
    including forms no shipped driver currently uses."""
    asm = Assembler(base=0x10_0000)
    asm.reserve("buf", 256)
    asm.label("entry")
    asm.emit(enc.nop(1))
    asm.emit(enc.nop(5, lcp=2))
    asm.emit(enc.mov_imm("r1", 0x42, width=32))
    asm.emit(enc.mov_imm("r2", 0x1122334455667788, width=64))
    asm.emit(enc.mov("r3", "r1"))
    for op in ("add", "sub", "and", "or", "xor", "shl", "shr", "imul"):
        asm.emit(enc.alu(op, "r3", "r2"))
        asm.emit(enc.alu_imm(op, "r3", 7))
    asm.emit(enc.cmp_imm("r1", 0x100))
    asm.emit(enc.cmp_reg("r1", "r2"))
    asm.emit(enc.test_reg("r1", "r1"))
    asm.emit(enc.dec("r1"))
    asm.emit(enc.lea("r4", "r1", index="r2", scale=4, disp=0x30))
    asm.emit(enc.load("r5", "r1", index="r2", scale=8, disp=0x10))
    asm.emit(enc.load("r6", "r1", size=1))
    asm.emit(enc.store("r5", "r1", disp=0x20))
    asm.emit(enc.store("r6", "r1", size=1))
    asm.emit(enc.push("r7"))
    asm.emit(enc.pop("r8"))
    asm.emit(enc.rdtsc("r9"))
    asm.emit(enc.clflush("r1", disp=0x40))
    asm.emit(enc.lfence())
    asm.emit(enc.mfence())
    asm.emit(enc.cpuid())
    asm.emit(enc.pause())
    asm.emit(enc.jcc("z", "near_target"))
    asm.emit(enc.jcc("nz", "entry", short=True))
    asm.emit(enc.jmp("short_hop", short=True))
    asm.label("short_hop")
    asm.emit(enc.jmp("near_target", lcp=1))
    asm.label("near_target")
    asm.emit(enc.call("callee"))
    asm.emit(enc.mov_imm("r10", 0x10_0000, width=64))
    asm.emit(enc.call_ind("r10"))
    asm.emit(enc.jmp_ind("r10"))
    asm.label("callee")
    asm.emit(enc.syscall())
    asm.emit(enc.sysret())
    asm.emit(enc.ret())
    asm.label("stop")
    asm.emit(enc.halt())
    return asm.assemble(entry="entry")


def test_kitchen_sink_covers_every_template_and_round_trips():
    program = _kitchen_sink()
    listing = disassemble(program)
    rebuilt = parse_listing(listing)
    assert signature(rebuilt) == signature(program)
    assert disassemble(rebuilt) == listing


def test_short_and_near_jump_lengths_survive():
    """The 2-byte vs 5/6-byte branch forms are the classic drift."""
    asm = Assembler(base=0x2000)
    asm.label("a")
    asm.emit(enc.jmp("a", short=True))
    asm.emit(enc.jmp("a"))
    asm.emit(enc.jcc("z", "a", short=True))
    asm.emit(enc.jcc("z", "a"))
    asm.emit(enc.halt())
    program = asm.assemble(entry="a")
    rebuilt = parse_listing(disassemble(program))
    assert [i.length for i in rebuilt.iter_instructions()] == [2, 5, 2, 6, 1]


def test_unlabeled_branch_target_converges():
    """A branch to an unlabeled address renders numerically; parsing
    pins a synthetic label there, so the *second* rendering is the
    canonical fixed point."""
    asm = Assembler(base=0x2000)
    asm.emit(enc.jmp("mid"))
    asm.emit(enc.nop(1))
    # target the nop by address only: strip its label by using label_at
    asm.label_at("mid", 0x2005)
    program = asm.assemble()
    # drop the label so the disassembler must render "jmp 0x2005"
    del program.labels["mid"]
    l1 = disassemble(program)
    assert "0x2005" in l1.splitlines()[0] or "jmp 0x2005" in l1
    rebuilt = parse_listing(l1)
    assert signature(rebuilt) == signature(program)
    l2 = disassemble(rebuilt)
    l3 = disassemble(parse_listing(l2))
    assert l3 == l2


def test_unlabeled_entry_synthesizes_one():
    asm = Assembler(base=0x2000)
    asm.emit(enc.nop(3))
    asm.emit(enc.halt())
    program = asm.assemble()
    rebuilt = parse_listing(disassemble(program))
    assert signature(rebuilt) == signature(program)
    assert rebuilt.entry == program.entry


def test_explicit_entry_label_wins():
    asm = Assembler(base=0x2000)
    asm.label("first")
    asm.emit(enc.nop(1))
    asm.label("second")
    asm.emit(enc.halt())
    program = asm.assemble(entry="second")
    rebuilt = parse_listing(disassemble(program), entry="second")
    assert rebuilt.entry == program.entry


class TestParseErrors:
    def test_empty_listing_rejected(self):
        with pytest.raises(AsmParseError, match="empty"):
            parse_listing("")

    def test_garbage_line_rejected(self):
        with pytest.raises(AsmParseError, match="unparseable"):
            parse_listing("this is not a listing")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AsmParseError, match="unrecognised"):
            parse_listing("  0x0000001000: bogus r1, r2 (1 uop)")

    def test_lcp_on_unprefixable_instruction_rejected(self):
        with pytest.raises(AsmParseError, match="lcp"):
            parse_listing("  0x0000001000: ret (1 uop) (lcp x2)")
