"""Channel-quality analysis: capacity and error-correction budgeting.

A covert channel with bit error rate ``p`` is a binary symmetric
channel; its capacity bounds any coding scheme's goodput.  These
helpers turn a measured :class:`~repro.core.covert.ChannelReport` into
the numbers a channel designer actually wants: achievable goodput, and
how much Reed-Solomon parity is needed to push residual errors to a
target.
"""

from __future__ import annotations

import math
from typing import Optional


def _h2(p: float) -> float:
    """Binary entropy."""
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -p * math.log2(p) - (1 - p) * math.log2(1 - p)


def bsc_capacity(error_rate: float) -> float:
    """Capacity (bits per channel use) of a BSC with the given bit
    error rate: ``1 - H2(p)``.

    A 5.59% error rate (the paper's SMT channel) still leaves ~0.69
    bits/use -- which is why moderate-error channels remain dangerous.
    """
    if not 0.0 <= error_rate <= 1.0:
        raise ValueError("error_rate must be a probability")
    p = min(error_rate, 1.0 - error_rate)
    return 1.0 - _h2(p)


def effective_goodput_kbps(bandwidth_kbps: float, error_rate: float) -> float:
    """Capacity-scaled goodput: raw rate times the BSC capacity."""
    return bandwidth_kbps * bsc_capacity(error_rate)


def _binom_tail(n: int, k: int, p: float) -> float:
    """P[X > k] for X ~ Binomial(n, p)."""
    if p <= 0.0:
        return 0.0
    total = 0.0
    # sum P[X <= k] then complement; n <= 255 so this is cheap
    for i in range(0, k + 1):
        total += math.comb(n, i) * (p ** i) * ((1 - p) ** (n - i))
    return max(0.0, 1.0 - total)


def recommend_rs_parity(
    bit_error_rate: float,
    block: int = 255,
    target_block_failure: float = 1e-6,
    max_nsym: Optional[int] = None,
) -> int:
    """Smallest even RS parity-symbol count so a ``block``-byte block
    decodes with failure probability below the target.

    Bit errors are assumed independent; a byte is bad if any of its 8
    bits flipped.  RS(n, k) corrects up to ``nsym/2`` bad bytes, so we
    need ``P[#bad > nsym/2] < target``.
    """
    if not 0.0 <= bit_error_rate < 0.5:
        raise ValueError("bit_error_rate must be in [0, 0.5)")
    byte_error = 1.0 - (1.0 - bit_error_rate) ** 8
    ceiling = max_nsym if max_nsym is not None else block - 1
    for nsym in range(2, ceiling + 1, 2):
        if _binom_tail(block, nsym // 2, byte_error) < target_block_failure:
            return nsym
    raise ValueError(
        f"no parity budget <= {ceiling} meets the target at "
        f"p_bit={bit_error_rate}"
    )
