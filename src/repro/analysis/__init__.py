"""Analysis utilities over channel measurements and detector traces.

The paper reports raw bandwidth, error rate and error-corrected
bandwidth; this package adds the standard information-theoretic view
(binary-symmetric-channel capacity, effective goodput), a helper for
budgeting Reed-Solomon parity against a measured error rate, and ROC
sweeps for the counter-based detector of Section VIII.
"""

from repro.analysis.channel import (
    bsc_capacity,
    effective_goodput_kbps,
    recommend_rs_parity,
)
from repro.analysis.detector import DetectorROC, OperatingPoint, roc_sweep

__all__ = [
    "DetectorROC",
    "OperatingPoint",
    "bsc_capacity",
    "effective_goodput_kbps",
    "recommend_rs_parity",
    "roc_sweep",
]
