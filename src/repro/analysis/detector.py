"""ROC analysis for the counter-based attack detector (Section VIII).

The paper warns that performance-counter monitoring is "inherently
prone to misclassification errors"; a ROC sweep over the detection
threshold quantifies exactly that trade-off for a given benign/attack
trace pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class OperatingPoint:
    """One detector operating point: a threshold and its error rates.

    Plain finite floats throughout, so it serialises straight to JSON
    (unlike the old ``float("inf")`` sentinel it replaces).
    """

    threshold: float
    fpr: float
    tpr: float

    def as_dict(self) -> dict:
        return {"threshold": self.threshold, "fpr": self.fpr, "tpr": self.tpr}


@dataclass
class DetectorROC:
    """Operating points of a threshold detector."""

    points: List[Tuple[float, float, float]]  # (threshold, fpr, tpr)

    @property
    def auc(self) -> float:
        """Area under the ROC curve (trapezoidal over sorted FPR)."""
        pts = sorted((fpr, tpr) for _, fpr, tpr in self.points)
        pts = [(0.0, 0.0)] + pts + [(1.0, 1.0)]
        area = 0.0
        for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
            area += (x1 - x0) * (y0 + y1) / 2.0
        return area

    def best_threshold(self, max_fpr: float = 0.01) -> Optional[OperatingPoint]:
        """Highest-TPR operating point whose FPR stays within budget.

        Returns ``None`` when no swept point meets the budget -- an
        explicit answer instead of the old non-JSON-serialisable
        ``float("inf")`` sentinel.
        """
        best: Optional[OperatingPoint] = None
        for threshold, fpr, tpr in self.points:
            if fpr <= max_fpr and (best is None or tpr > best.tpr):
                best = OperatingPoint(threshold, fpr, tpr)
        return best


def roc_sweep(
    benign_windows: Sequence[float],
    attack_windows: Sequence[float],
    n_thresholds: int = 64,
) -> DetectorROC:
    """Sweep the miss-count threshold across the observed range.

    The curve always includes the all-positive endpoint (a threshold
    below every observed window, so ``fpr == tpr == 1.0``): the swept
    points span the full ROC range rather than relying on the AUC
    computation to pad in the corners.
    """
    if not benign_windows or not attack_windows:
        raise ValueError("need both benign and attack windows")
    lo = min(min(benign_windows), min(attack_windows))
    hi = max(max(benign_windows), max(attack_windows))
    points = [(lo - 1.0, 1.0, 1.0)]
    for i in range(n_thresholds + 1):
        threshold = lo + (hi - lo) * i / n_thresholds
        fpr = sum(1 for w in benign_windows if w > threshold) / len(
            benign_windows
        )
        tpr = sum(1 for w in attack_windows if w > threshold) / len(
            attack_windows
        )
        points.append((threshold, fpr, tpr))
    return DetectorROC(points)
