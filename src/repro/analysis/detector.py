"""ROC analysis for the counter-based attack detector (Section VIII).

The paper warns that performance-counter monitoring is "inherently
prone to misclassification errors"; a ROC sweep over the detection
threshold quantifies exactly that trade-off for a given benign/attack
trace pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass
class DetectorROC:
    """Operating points of a threshold detector."""

    points: List[Tuple[float, float, float]]  # (threshold, fpr, tpr)

    @property
    def auc(self) -> float:
        """Area under the ROC curve (trapezoidal over sorted FPR)."""
        pts = sorted((fpr, tpr) for _, fpr, tpr in self.points)
        pts = [(0.0, 0.0)] + pts + [(1.0, 1.0)]
        area = 0.0
        for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
            area += (x1 - x0) * (y0 + y1) / 2.0
        return area

    def best_threshold(self, max_fpr: float = 0.01) -> Tuple[float, float]:
        """Highest-TPR threshold whose FPR stays within budget.

        Returns (threshold, tpr); tpr is 0.0 if nothing qualifies.
        """
        best = (float("inf"), 0.0)
        for threshold, fpr, tpr in self.points:
            if fpr <= max_fpr and tpr > best[1]:
                best = (threshold, tpr)
        return best


def roc_sweep(
    benign_windows: Sequence[float],
    attack_windows: Sequence[float],
    n_thresholds: int = 64,
) -> DetectorROC:
    """Sweep the miss-count threshold across the observed range."""
    if not benign_windows or not attack_windows:
        raise ValueError("need both benign and attack windows")
    lo = min(min(benign_windows), min(attack_windows))
    hi = max(max(benign_windows), max(attack_windows))
    points = []
    for i in range(n_thresholds + 1):
        threshold = lo + (hi - lo) * i / n_thresholds
        fpr = sum(1 for w in benign_windows if w > threshold) / len(
            benign_windows
        )
        tpr = sum(1 for w in attack_windows if w > threshold) / len(
            attack_windows
        )
        points.append((threshold, fpr, tpr))
    return DetectorROC(points)
