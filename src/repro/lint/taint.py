"""Secret-flow taint analysis: static leakage prediction and capacity
bounds over the µop-cache, iTLB and store-buffer footprints.

The footprint analyzer (:mod:`repro.lint.footprint`) predicts *what*
a program occupies; this module predicts *which of that occupancy is
secret-dependent*.  A driver declares its secrets as
:class:`SecretClaim` objects -- a register live at an entry label, a
data label holding secret bytes, or a set of alternative entry labels
the secret selects between -- and the analysis answers with a
:class:`LeakReport`: the fetch regions whose presence in the µop
cache depends on the secret, the DSB sets / iTLB pages / store sites
they map to, and a static channel-capacity upper bound (log2 of the
distinguishable occupancy states) usable directly as a synthesis
fitness scalar.

The dataflow is a classic forward taint lattice over the region graph
the footprint walk already built:

- **explicit flow** propagates through :meth:`MicroOp.reads` /
  :meth:`MicroOp.writes` (flags are a pseudo-register, so
  ``TEST r8, r8; JCC`` carries taint into the branch);
- **constant tracking** (``MOV_IMM`` plus add/sub arithmetic) resolves
  statically-computable load/store addresses so reads of a declared
  secret *data label* seed taint, and taint stored to a known address
  forwards to later loads of it;
- **implicit flow** comes from post-dominators over the
  intraprocedural region graph: every region on a path from a
  secret-tainted branch to (beyond) its post-dominator frontier is
  fetched -- or not -- depending on the secret, so its fills are
  secret-dependent.  Callees invoked under tainted control (and
  targets of secret-indexed indirect transfers) taint transitively.

Everything over-approximates: the differential XC004 mode
(:func:`repro.lint.crosscheck.cross_check_secrets`) runs a target
twice with different secrets and asserts the live divergent
``dsb_fill``/``itlb_fill``/``sb_drain`` events are a **subset** of
this module's prediction, which keeps the analysis honest in the
sound direction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.isa.instruction import BranchKind, UopKind
from repro.lint.diagnostics import (
    MAX_DIVERGENCE_DIAGNOSTICS,
    Diagnostic,
    Severity,
)
from repro.lint.footprint import FootprintReport, RegionFootprint

#: Page size for the iTLB footprint view (mirrors
#: ``repro.lint.resources.PAGE_SIZE`` without importing the module).
PAGE_SIZE = 4096

#: Resources a claim can declare leakage into.
RESOURCES = ("dsb", "itlb", "sb")

#: Fixed-point iteration bound for the dataflow (region graphs are a
#: few hundred nodes; this is a runaway backstop, not a tuning knob).
MAX_ITERATIONS = 64

#: Cap on the exponent when counting distinguishable control states,
#: so the capacity bound stays finite arithmetic.
MAX_CONTROL_BITS = 64


@dataclass(frozen=True)
class SecretClaim:
    """A driver's declaration of where its secret lives.

    Exactly one source shape applies:

    - ``register`` -- the named register holds the secret when
      execution enters ``entry`` (keyextract's exponent in ``r7``);
    - ``label`` -- the data reservation ``[label, label+size)`` holds
      secret bytes (the transient drivers' ``secret`` arrays);
    - ``entries`` -- the secret selects *which* of the alternative
      entry labels runs (covert/SMT channels calling ``send_one`` vs
      ``send_zero``).  ``entry`` is ignored for this shape.

    ``indirect_targets`` lists the possible landing labels of
    secret-indexed indirect transfers (a jump-table dispatcher);
    without it a tainted indirect branch conservatively taints every
    analyzed region.  ``leaks_to`` declares which resources the
    secret is expected to reach (verified as TA005);
    ``constant_time`` asserts the opposite -- that taint must *never*
    reach control flow or an address (verified as TA004).
    """

    name: str
    entry: str = ""
    register: Optional[str] = None
    label: Optional[str] = None
    size: int = 8
    entries: Tuple[str, ...] = ()
    indirect_targets: Tuple[str, ...] = ()
    leaks_to: Tuple[str, ...] = ("dsb", "itlb")
    constant_time: bool = False

    def __post_init__(self) -> None:
        for res in self.leaks_to:
            if res not in RESOURCES:
                raise ValueError(
                    f"unknown leak resource {res!r}; choose from "
                    f"{RESOURCES}"
                )
        if not self.entries and not self.entry:
            raise ValueError(
                f"claim {self.name!r} needs an entry label (or "
                f"alternative entries)"
            )


# ----------------------------------------------------------------------
# abstract values

#: Lattice: TAINT > CONST(v) / UNKNOWN.  ``None`` in the state map
#: means "untainted, value unknown" (the implicit bottom).
_TAINT = ("taint",)


def _const(value: int) -> Tuple[str, int]:
    return ("const", value)


def _is_taint(v: object) -> bool:
    return v is _TAINT


def _const_of(v: object) -> Optional[int]:
    if isinstance(v, tuple) and v[0] == "const":
        return v[1]
    return None


def _join_value(a: object, b: object) -> object:
    if _is_taint(a) or _is_taint(b):
        return _TAINT
    if a == b:
        return a
    return None


@dataclass
class _State:
    """Abstract machine state at one program point.

    ``regs`` maps register name -> abstract value (absent = untainted
    unknown).  ``mem`` maps *statically known* tainted byte intervals
    (start, end).  ``wild_store`` records that tainted data was stored
    through an unresolvable address, after which any unresolvable load
    must be assumed tainted (sound memory summary).
    """

    regs: Dict[str, object] = field(default_factory=dict)
    mem: FrozenSet[Tuple[int, int]] = frozenset()
    wild_store: bool = False

    def copy(self) -> "_State":
        return _State(dict(self.regs), self.mem, self.wild_store)

    def join(self, other: "_State") -> "_State":
        regs: Dict[str, object] = {}
        for key in set(self.regs) | set(other.regs):
            v = _join_value(self.regs.get(key), other.regs.get(key))
            if v is not None:
                regs[key] = v
        return _State(
            regs, self.mem | other.mem,
            self.wild_store or other.wild_store,
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, _State)
            and self.regs == other.regs
            and self.mem == other.mem
            and self.wild_store == other.wild_store
        )

    def tainted(self, reg: Optional[str]) -> bool:
        return reg is not None and _is_taint(self.regs.get(reg))

    def mem_tainted(self, start: int, end: int) -> bool:
        return any(s < end and start < e for s, e in self.mem)


@dataclass
class _Analysis:
    """Mutable scratch shared by one claim's fixed-point run."""

    report: FootprintReport
    secret_mem: List[Tuple[int, int]]
    #: branch macro addr -> region entry, for tainted conditionals
    tainted_branches: Dict[int, int] = field(default_factory=dict)
    #: indirect transfers (macro addr) with a tainted target register
    tainted_indirect: Dict[int, int] = field(default_factory=dict)
    #: (macro addr, "load"/"store") with a secret-derived address
    tainted_memops: List[Tuple[int, str]] = field(default_factory=list)
    #: store sites (macro addr) writing secret-derived data
    tainted_stores: Set[int] = field(default_factory=set)
    #: regions whose *values* are implicitly tainted (control dep)
    implicit_regions: Set[int] = field(default_factory=set)


def _address_of(state: _State, uop) -> Optional[int]:
    """Statically resolved effective address, if computable."""
    base = 0
    if uop.base is not None:
        base_v = _const_of(state.regs.get(uop.base))
        if base_v is None:
            return None
        base = base_v
    index = 0
    if uop.index is not None:
        index_v = _const_of(state.regs.get(uop.index))
        if index_v is None:
            return None
        index = index_v * (uop.scale or 1)
    return base + index + (uop.disp or 0)


def _address_tainted(state: _State, uop) -> bool:
    return state.tainted(uop.base) or state.tainted(uop.index)


def _transfer_uop(
    uop, state: _State, ana: _Analysis, region_entry: int,
    implicit: bool,
) -> None:
    """Apply one micro-op to the abstract state, in place."""
    kind = uop.kind
    srcs_tainted = any(state.tainted(r) for r in uop.reads())

    if kind is UopKind.LOAD:
        addr = _address_of(state, uop)
        addr_tainted = _address_tainted(state, uop)
        if addr_tainted:
            ana.tainted_memops.append((uop.macro_addr, "load"))
        value_tainted = addr_tainted or implicit
        if addr is not None:
            end = addr + (uop.mem_size or 8)
            if any(
                addr < se and ss < end for ss, se in ana.secret_mem
            ) or state.mem_tainted(addr, end):
                value_tainted = True
        elif ana.secret_mem or state.wild_store:
            # A load whose address the analysis cannot resolve may
            # reach the declared secret bytes (the Spectre bounds
            # bypass is exactly an attacker-indexed load walking past
            # an array into the secret), so over-approximate.
            value_tainted = True
        if uop.dst:
            if value_tainted:
                state.regs[uop.dst] = _TAINT
            else:
                state.regs.pop(uop.dst, None)
        if value_tainted and uop.sets_flags:
            state.regs["flags"] = _TAINT
        return

    if kind is UopKind.STORE:
        addr = _address_of(state, uop)
        addr_tainted = _address_tainted(state, uop)
        if addr_tainted:
            ana.tainted_memops.append((uop.macro_addr, "store"))
        data_tainted = srcs_tainted or implicit
        if data_tainted or addr_tainted:
            ana.tainted_stores.add(uop.macro_addr)
        if data_tainted:
            if addr is not None:
                state.mem = state.mem | {
                    (addr, addr + (uop.mem_size or 8))
                }
            else:
                state.wild_store = True
        return

    if kind in (UopKind.JMP_IND, UopKind.CALL_IND):
        if srcs_tainted:
            ana.tainted_indirect[uop.macro_addr] = region_entry
        return

    if kind is UopKind.JCC:
        if srcs_tainted:
            ana.tainted_branches[uop.macro_addr] = region_entry
        return

    # plain register-to-register dataflow
    if uop.dst:
        if srcs_tainted or implicit:
            state.regs[uop.dst] = _TAINT
        elif kind is UopKind.MOV_IMM and uop.imm is not None:
            state.regs[uop.dst] = _const(uop.imm)
        elif kind is UopKind.MOV and uop.srcs:
            state.regs[uop.dst] = state.regs.get(uop.srcs[0])
            if state.regs[uop.dst] is None:
                state.regs.pop(uop.dst, None)
        elif kind in (UopKind.ALU, UopKind.ALU_IMM, UopKind.LEA):
            state.regs[uop.dst] = _const_arith(state, uop)
            if state.regs[uop.dst] is None:
                state.regs.pop(uop.dst, None)
        else:
            state.regs.pop(uop.dst, None)
    if uop.sets_flags:
        if srcs_tainted or implicit:
            state.regs["flags"] = _TAINT
        else:
            state.regs.pop("flags", None)


def _const_arith(state: _State, uop) -> Optional[object]:
    """Constant folding for the address-forming subset (add/sub/lea)."""
    if uop.kind is UopKind.LEA:
        addr = _address_of(state, uop)
        return None if addr is None else _const(addr)
    op = uop.alu_op
    if op not in ("add", "sub"):
        return None
    if uop.kind is UopKind.ALU_IMM:
        left_reg = uop.srcs[0] if uop.srcs else uop.dst
        left = _const_of(state.regs.get(left_reg))
        right = uop.imm
    else:
        if len(uop.srcs) < 2:
            return None
        left = _const_of(state.regs.get(uop.srcs[0]))
        right = _const_of(state.regs.get(uop.srcs[1]))
    if left is None or right is None:
        return None
    return _const(left + right if op == "add" else left - right)


# ----------------------------------------------------------------------
# region graph helpers


def _call_target(fp: RegionFootprint) -> Optional[int]:
    """Direct-call target of the region's terminator, if any."""
    term = fp.terminator
    if term.branch_kind is BranchKind.CALL and term.target is not None:
        return term.target
    return None


def _flow_successors(
    report: FootprintReport, entry: int
) -> Tuple[int, ...]:
    """Intraprocedural successors: drop the call-target edge (the
    callee is summarized separately) and keep the return-site edge."""
    fp = report.regions.get(entry)
    if fp is None:
        return ()
    target = _call_target(fp)
    if target is None:
        return fp.successors
    return tuple(s for s in fp.successors if s != target)


def _reachable(
    report: FootprintReport, seeds: Sequence[int],
    intraprocedural: bool = False,
) -> Set[int]:
    """Region entries reachable from ``seeds`` over the region graph."""
    seen: Set[int] = set()
    queue = [s for s in seeds if s in report.regions]
    while queue:
        cur = queue.pop()
        if cur in seen:
            continue
        seen.add(cur)
        succ = (
            _flow_successors(report, cur)
            if intraprocedural
            else report.regions[cur].successors
        )
        queue.extend(s for s in succ if s in report.regions)
    return seen


_EXIT = -1  # virtual exit node for the post-dominator computation


def _exits_graph(fp: RegionFootprint) -> bool:
    """True when some path through the region leaves the analyzed
    graph: HALT stops the thread, RET and unresolved indirect flow
    are only followed dynamically.  Such a region keeps an implicit
    edge to the virtual exit even when internal taken-JCC edges give
    it listed successors -- otherwise a lone branch target would
    appear to post-dominate a region the thread can simply stop in."""
    term = fp.terminator
    if any(u.kind is UopKind.HALT for u in term.uops):
        return True
    return term.branch_kind is BranchKind.RET or fp.unresolved


def _post_dominators(
    report: FootprintReport, nodes: Set[int]
) -> Dict[int, Set[int]]:
    """``node -> set of nodes post-dominating it`` over the
    intraprocedural graph restricted to ``nodes``, with a virtual
    exit absorbing every graph-leaving edge (RET, HALT, unresolved
    indirect flow)."""
    succ: Dict[int, List[int]] = {}
    for n in nodes:
        out = [
            s for s in _flow_successors(report, n) if s in nodes
        ]
        if not out or _exits_graph(report.regions[n]):
            out = out + [_EXIT]
        succ[n] = out

    everything: Set[int] = set(nodes) | {_EXIT}
    pdom: Dict[int, Set[int]] = {n: set(everything) for n in nodes}
    pdom[_EXIT] = {_EXIT}
    changed = True
    while changed:
        changed = False
        for n in nodes:
            new = {n} | set.intersection(
                *(pdom[s] for s in succ[n])
            )
            if new != pdom[n]:
                pdom[n] = new
                changed = True
    return pdom


def _influence(
    report: FootprintReport, branch_region: int,
    pdom: Dict[int, Set[int]],
) -> Set[int]:
    """Regions whose fetch depends on the branch's outcome: reachable
    from the branch's successors over the *full* graph (call targets
    included -- a conditionally-reached CALL conditionally fetches its
    callee) minus the regions that post-dominate the branch, which are
    fetched either way.  An over-approximation of control dependence,
    sound for XC004."""
    fp = report.regions.get(branch_region)
    if fp is None:
        return set()
    reach = _reachable(report, fp.successors)
    reach.discard(branch_region)
    return {
        r for r in reach
        if r not in pdom.get(branch_region, set())
    }


# ----------------------------------------------------------------------
# leak reports


@dataclass
class LeakReport:
    """Per-claim result: the secret-dependent footprint.

    ``regions`` holds the fetch entries whose *presence* in the cache
    depends on the secret; the per-resource views project them onto
    DSB sets, instruction pages and store sites.  ``capacity_bits``
    bounds the channel: the observer distinguishes at most
    ``2**capacity_bits`` occupancy states, capped both by how many
    control decisions the secret feeds (alternatives) and by how many
    binary observables it modulates.
    """

    claim: SecretClaim
    regions: FrozenSet[int] = frozenset()
    dsb_sets: FrozenSet[int] = frozenset()
    itlb_pages: FrozenSet[int] = frozenset()
    store_sites: FrozenSet[int] = frozenset()
    tainted_branches: Tuple[int, ...] = ()
    tainted_memops: Tuple[Tuple[int, str], ...] = ()
    tainted_indirect: Tuple[int, ...] = ()
    dead_regions: FrozenSet[int] = frozenset()

    @property
    def observable_bits(self) -> int:
        """Binary occupancy observables the secret modulates."""
        return (
            len(self.dsb_sets) + len(self.itlb_pages)
            + len(self.store_sites)
        )

    @property
    def control_bits(self) -> float:
        """log2 of the distinguishable control outcomes."""
        alternatives = max(1, len(self.claim.entries))
        branch_bits = min(len(self.tainted_branches), MAX_CONTROL_BITS)
        # A tainted indirect transfer distinguishes as many outcomes
        # as it has landing sites (the jump-table multi-bit trick);
        # without declared targets assume the minimum of two.
        fanout = max(2, len(self.claim.indirect_targets))
        indirect_bits = min(
            len(self.tainted_indirect) * math.log2(fanout),
            float(MAX_CONTROL_BITS),
        )
        return branch_bits + indirect_bits + math.log2(alternatives)

    @property
    def capacity_bits(self) -> float:
        """Static channel-capacity upper bound, in bits."""
        return min(self.control_bits, float(self.observable_bits))

    def inferred_resources(self) -> Tuple[str, ...]:
        """Resources the analysis found secret-dependent state in."""
        out = []
        if self.dsb_sets:
            out.append("dsb")
        if self.itlb_pages:
            out.append("itlb")
        if self.store_sites:
            out.append("sb")
        return tuple(out)

    def as_dict(self) -> Dict[str, object]:
        return {
            "claim": self.claim.name,
            "regions": sorted(self.regions),
            "dsb_sets": sorted(self.dsb_sets),
            "itlb_pages": sorted(self.itlb_pages),
            "store_sites": sorted(self.store_sites),
            "tainted_branches": sorted(self.tainted_branches),
            "tainted_indirect": sorted(self.tainted_indirect),
            "dead_regions": sorted(self.dead_regions),
            "capacity_bits": round(self.capacity_bits, 3),
        }


@dataclass
class TaintReport:
    """All claims' leak reports plus the TA diagnostics."""

    leaks: List[LeakReport] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def regions(self) -> FrozenSet[int]:
        """Union of secret-dependent fetch entries over all claims."""
        out: Set[int] = set()
        for leak in self.leaks:
            out |= leak.regions
        return frozenset(out)

    @property
    def itlb_pages(self) -> FrozenSet[int]:
        out: Set[int] = set()
        for leak in self.leaks:
            out |= leak.itlb_pages
        return frozenset(out)

    @property
    def store_sites(self) -> FrozenSet[int]:
        out: Set[int] = set()
        for leak in self.leaks:
            out |= leak.store_sites
        return frozenset(out)

    @property
    def capacity_bits(self) -> float:
        """Synthesis fitness scalar: total static capacity bound."""
        return sum(leak.capacity_bits for leak in self.leaks)

    def as_dict(self) -> Dict[str, object]:
        return {
            "capacity_bits": round(self.capacity_bits, 3),
            "leaks": [leak.as_dict() for leak in self.leaks],
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }


# ----------------------------------------------------------------------
# the analysis driver


def _region_pages(fp: RegionFootprint) -> Set[int]:
    """Instruction pages the region's fetch touches."""
    pages = set()
    for macro in fp.macros:
        pages.add(macro.addr // PAGE_SIZE)
        pages.add((macro.end - 1) // PAGE_SIZE)
    return pages


def _region_store_sites(fp: RegionFootprint) -> Set[int]:
    return {
        m.addr for m in fp.macros
        if any(u.kind is UopKind.STORE for u in m.uops)
    }


def _seed_state(claim: SecretClaim) -> _State:
    state = _State()
    if claim.register:
        state.regs[claim.register] = _TAINT
    return state


def _run_dataflow(
    report: FootprintReport,
    claim: SecretClaim,
    entry_addr: int,
    ana: _Analysis,
) -> Set[int]:
    """Fixed-point explicit+implicit taint from one entry; returns the
    set of secret-dependent fetch regions."""
    nodes = _reachable(report, [entry_addr])
    flow_nodes = _reachable(report, [entry_addr], intraprocedural=True)
    pdom = _post_dominators(report, flow_nodes)

    dependent: Set[int] = set()
    for _ in range(MAX_ITERATIONS):
        before = (
            len(dependent), len(ana.tainted_branches),
            len(ana.tainted_indirect), len(ana.implicit_regions),
        )
        # forward dataflow over the full reachable graph
        in_states: Dict[int, _State] = {entry_addr: _seed_state(claim)}
        worklist = [entry_addr]
        visits: Dict[int, int] = {}
        while worklist:
            cur = worklist.pop(0)
            visits[cur] = visits.get(cur, 0) + 1
            if visits[cur] > MAX_ITERATIONS:
                continue
            fp = report.regions.get(cur)
            if fp is None:
                continue
            state = in_states[cur].copy()
            implicit = cur in ana.implicit_regions
            exit_states = [state]
            for macro in fp.macros:
                for uop in macro.uops:
                    _transfer_uop(uop, state, ana, cur, implicit)
                if macro.branch_kind is not BranchKind.NONE:
                    exit_states.append(state.copy())
            out = exit_states[0]
            for s in exit_states[1:]:
                out = out.join(s)
            out = out.join(state)
            for nxt in fp.successors:
                if nxt not in nodes:
                    continue
                prev = in_states.get(nxt)
                new = out if prev is None else prev.join(out)
                if prev is None or new != prev:
                    in_states[nxt] = new
                    if nxt not in worklist:
                        worklist.append(nxt)

        # implicit flows: influence regions of tainted branches
        for _, region in ana.tainted_branches.items():
            infl = _influence(report, region, pdom)
            dependent |= infl
            ana.implicit_regions |= infl & nodes
        # tainted indirect transfers: land anywhere in the hint set,
        # or (no hints) anywhere at all
        if ana.tainted_indirect:
            if claim.indirect_targets:
                hints = [
                    report.program.labels[lbl]
                    for lbl in claim.indirect_targets
                    if lbl in report.program.labels
                ]
                landed = _reachable(report, hints)
            else:
                landed = set(report.regions)
            dependent |= landed
            ana.implicit_regions |= landed & nodes
        # callees invoked from secret-dependent regions inherit
        for region in list(dependent):
            fp = report.regions.get(region)
            if fp is None:
                continue
            target = _call_target(fp)
            if target is not None:
                dependent |= _reachable(report, [target])

        after = (
            len(dependent), len(ana.tainted_branches),
            len(ana.tainted_indirect), len(ana.implicit_regions),
        )
        if after == before:
            break
    return dependent


def analyze_claim(
    report: FootprintReport, claim: SecretClaim
) -> Tuple[LeakReport, List[Diagnostic]]:
    """Run the taint analysis for one claim."""
    labels = report.program.labels
    diags: List[Diagnostic] = []

    secret_mem: List[Tuple[int, int]] = []
    if claim.label is not None:
        base = labels.get(claim.label)
        if base is None:
            diags.append(Diagnostic(
                "TA001",
                f"claim {claim.name!r}: secret data label "
                f"{claim.label!r} is not defined",
            ))
            return LeakReport(claim=claim), diags
        secret_mem.append((base, base + claim.size))

    if claim.entries:
        missing = [e for e in claim.entries if e not in labels]
        if missing:
            diags.append(Diagnostic(
                "TA001",
                f"claim {claim.name!r}: alternative entr"
                f"{'y' if len(missing) == 1 else 'ies'} "
                f"{', '.join(repr(m) for m in missing)} not defined",
            ))
            return LeakReport(claim=claim), diags
        # The secret picks which alternative runs: regions reachable
        # from exactly one alternative are secret-dependent.
        reach = [
            _reachable(report, [labels[e]]) for e in claim.entries
        ]
        common = set.intersection(*reach) if reach else set()
        dependent = set.union(*reach) - common if reach else set()
        ana = _Analysis(report=report, secret_mem=secret_mem)
    else:
        entry_addr = labels.get(claim.entry)
        if entry_addr is None or entry_addr not in report.regions:
            diags.append(Diagnostic(
                "TA001",
                f"claim {claim.name!r}: entry label {claim.entry!r} "
                f"is not analyzed code",
                label=claim.entry or None,
            ))
            return LeakReport(claim=claim), diags
        if claim.register is None and claim.label is None:
            diags.append(Diagnostic(
                "TA001",
                f"claim {claim.name!r} declares neither a register, "
                f"a data label nor alternative entries",
            ))
            return LeakReport(claim=claim), diags
        ana = _Analysis(report=report, secret_mem=secret_mem)
        dependent = _run_dataflow(report, claim, entry_addr, ana)

    dsb_sets: Set[int] = set()
    itlb_pages: Set[int] = set()
    store_sites: Set[int] = set(ana.tainted_stores)
    dead: Set[int] = set()
    for entry in dependent:
        fp = report.regions.get(entry)
        if fp is None:
            continue
        itlb_pages |= _region_pages(fp)
        store_sites |= _region_store_sites(fp)
        if fp.cacheable:
            dsb_sets.add(fp.set_index)
        else:
            dead.add(entry)

    leak = LeakReport(
        claim=claim,
        regions=frozenset(dependent),
        dsb_sets=frozenset(dsb_sets),
        itlb_pages=frozenset(itlb_pages),
        store_sites=frozenset(store_sites),
        tainted_branches=tuple(sorted(ana.tainted_branches)),
        tainted_memops=tuple(ana.tainted_memops),
        tainted_indirect=tuple(sorted(ana.tainted_indirect)),
        dead_regions=frozenset(dead),
    )

    if dependent:
        sample = ", ".join(
            report.regions[e].location()
            for e in sorted(dependent)[:4]
        )
        more = len(dependent) - min(len(dependent), 4)
        diags.append(Diagnostic(
            "TA002",
            f"claim {claim.name!r}: {len(dependent)} fetch region(s) "
            f"are secret-dependent ({sample}"
            + (f", +{more} more" if more else "") + f"); "
            f"{len(dsb_sets)} DSB set(s), {len(itlb_pages)} page(s), "
            f"{len(store_sites)} store site(s); capacity <= "
            f"{leak.capacity_bits:.1f} bit(s)",
        ))
    seen_memops: Set[Tuple[int, str]] = set()
    for addr, op in ana.tainted_memops:
        if (addr, op) in seen_memops:
            continue
        seen_memops.add((addr, op))
        if len(seen_memops) > MAX_DIVERGENCE_DIAGNOSTICS:
            diags.append(Diagnostic(
                "TA003",
                f"claim {claim.name!r}: plus further secret-derived "
                f"memory operands (capped at "
                f"{MAX_DIVERGENCE_DIAGNOSTICS})",
            ))
            break
        diags.append(Diagnostic(
            "TA003",
            f"claim {claim.name!r}: {op} at {addr:#x} uses a "
            f"secret-derived address",
            addr=addr,
        ))
    if claim.constant_time and (
        dependent or ana.tainted_branches or ana.tainted_indirect
        or seen_memops
    ):
        diags.append(Diagnostic(
            "TA004",
            f"claim {claim.name!r} declares constant_time but the "
            f"secret reaches {len(ana.tainted_branches)} branch(es), "
            f"{len(ana.tainted_indirect)} indirect transfer(s) and "
            f"{len(seen_memops)} memory operand(s)",
        ))
    inferred = leak.inferred_resources()
    if set(inferred) != set(claim.leaks_to) and not claim.constant_time:
        diags.append(Diagnostic(
            "TA005",
            f"claim {claim.name!r} declares leaks_to="
            f"{sorted(claim.leaks_to)} but the analysis infers "
            f"{sorted(inferred)}",
        ))
    for entry in sorted(dead):
        diags.append(Diagnostic(
            "TA006",
            f"claim {claim.name!r}: secret-dependent region at "
            f"{entry:#x} is uncacheable; it never reaches the DSB",
            addr=entry,
            label=report.regions[entry].label,
        ))
    return leak, diags


def verify_secret_claims(
    report: FootprintReport, claims: Sequence[SecretClaim]
) -> TaintReport:
    """Analyze every claim; the taint-mode entry point."""
    out = TaintReport()
    for claim in claims:
        leak, diags = analyze_claim(report, claim)
        out.leaks.append(leak)
        out.diagnostics.extend(diags)
    return out
