"""Differential cross-check: static predictions vs the live simulator.

The static analyzer re-states the front end's region walk and the
cache's set mapping on purpose (see :mod:`repro.lint.footprint`); this
module closes the loop.  It attaches a
:class:`repro.observe.TraceRecorder` to a core, runs a short driver
callable, and diffs every observed ``dsb_fill`` event -- entry address,
set index, line count -- against the footprint report.  Any divergence
is an **XC001** error: either the simulator's placement logic or the
analyzer has drifted, and both claim to implement Section II-B.

:func:`cross_check_secrets` is the taint-mode analogue (**XC004**): it
runs the same target twice with different secrets and asserts every
live *divergent* ``dsb_fill``/``itlb_fill``/``sb_drain`` event falls
inside the static secret-dependence prediction
(:class:`repro.lint.taint.TaintReport`).  The taint analysis promises
an over-approximation; this is the soundness check that keeps it one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.diagnostics import MAX_DIVERGENCE_DIAGNOSTICS, Diagnostic
from repro.lint.footprint import FootprintReport
from repro.observe.events import (
    DSB_FILL,
    ITLB_FILL,
    SB_DRAIN,
    TraceRecorder,
)


@dataclass
class FillDiff:
    """One observed fill that disagrees with the static prediction."""

    entry: int
    cycle: int
    observed_set: int
    observed_lines: int
    predicted_set: Optional[int]  # None: entry unknown to the analyzer
    predicted_lines: Optional[int]

    def describe(self) -> str:
        if self.predicted_set is None:
            return (
                f"fill at entry {self.entry:#x} (cycle {self.cycle}) "
                f"was not predicted at all"
            )
        return (
            f"fill at entry {self.entry:#x} (cycle {self.cycle}): "
            f"observed set {self.observed_set} x{self.observed_lines} "
            f"line(s), predicted set {self.predicted_set} "
            f"x{self.predicted_lines}"
        )


@dataclass
class CrossCheckResult:
    """Outcome of one differential run."""

    fills: int = 0
    matches: int = 0
    diffs: List[FillDiff] = field(default_factory=list)
    #: distinct entries observed, for coverage reporting
    entries_seen: int = 0

    @property
    def agreement(self) -> float:
        """Fraction of fill events the static model predicted exactly."""
        return self.matches / self.fills if self.fills else 1.0

    @property
    def clean(self) -> bool:
        """True when every observed fill matched the prediction."""
        return not self.diffs

    def diagnostics(self) -> List[Diagnostic]:
        """XC001 errors for the divergences (deduplicated by entry)."""
        out: List[Diagnostic] = []
        seen: set = set()
        for diff in self.diffs:
            if diff.entry in seen:
                continue
            seen.add(diff.entry)
            out.append(
                Diagnostic("XC001", diff.describe(), addr=diff.entry)
            )
            if len(out) >= MAX_DIVERGENCE_DIAGNOSTICS:
                remaining = len(self.diffs) - len(out)
                if remaining > 0:
                    out.append(
                        Diagnostic(
                            "XC001",
                            f"... plus {remaining} further divergent "
                            f"fill(s) suppressed",
                        )
                    )
                break
        return out

    def summary(self) -> str:
        return (
            f"{self.matches}/{self.fills} fills agree "
            f"({self.agreement:.1%}) over {self.entries_seen} "
            f"distinct entries"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "fills": self.fills,
            "matches": self.matches,
            "agreement": self.agreement,
            "entries_seen": self.entries_seen,
            "diffs": [d.describe() for d in self.diffs],
        }


def cross_check(
    core,
    report: FootprintReport,
    drive: Callable[[], None],
) -> CrossCheckResult:
    """Run ``drive()`` with fill observation on and diff the events.

    ``core`` is the :class:`repro.cpu.core.Core` the driver exercises
    (its event bus is attached for the duration); ``report`` the static
    analysis of the same program under the same ``CPUConfig``.  Every
    ``dsb_fill`` the simulator emits is compared against
    :meth:`FootprintReport.expected_fill`.
    """
    recorder = TraceRecorder(kinds=(DSB_FILL,), core=core)
    recorder.connect()
    try:
        drive()
    finally:
        recorder.close()

    result = CrossCheckResult()
    entries = set()
    for event in recorder.of(DSB_FILL):
        entry = int(event.get("entry"))
        observed_set = int(event.get("set"))
        observed_lines = int(event.get("lines"))
        entries.add(entry)
        result.fills += 1
        predicted = report.expected_fill(entry)
        if predicted is None:
            result.diffs.append(
                FillDiff(
                    entry=entry,
                    cycle=event.cycle,
                    observed_set=observed_set,
                    observed_lines=observed_lines,
                    predicted_set=None,
                    predicted_lines=None,
                )
            )
            continue
        pred_set, pred_lines = predicted
        if pred_set == observed_set and pred_lines == observed_lines:
            result.matches += 1
        else:
            result.diffs.append(
                FillDiff(
                    entry=entry,
                    cycle=event.cycle,
                    observed_set=observed_set,
                    observed_lines=observed_lines,
                    predicted_set=pred_set,
                    predicted_lines=pred_lines,
                )
            )
    result.entries_seen = len(entries)
    return result


# ----------------------------------------------------------------------
# XC004: two-secret differential vs the taint prediction

#: Event kinds whose divergence under two secrets must be statically
#: predicted, and the payload key identifying each event.
_SECRET_EVENT_KEYS = {
    DSB_FILL: ("dsb", "entry"),
    ITLB_FILL: ("itlb", "page"),
    SB_DRAIN: ("sb", "pc"),
}


@dataclass
class SecretDiffResult:
    """Outcome of one two-secret differential run.

    ``divergent`` holds, per resource, the event keys (fill entries,
    pages, store pcs) present under one secret but not the other;
    ``escapes`` the subset of those the static taint analysis did not
    predict.  A nonempty ``escapes`` is an XC004 soundness failure.
    """

    events: int = 0
    divergent: Dict[str, List[int]] = field(default_factory=dict)
    escapes: Dict[str, List[int]] = field(default_factory=dict)

    @property
    def divergences(self) -> int:
        return sum(len(v) for v in self.divergent.values())

    @property
    def clean(self) -> bool:
        """True when every divergence was statically predicted."""
        return not any(self.escapes.values())

    def diagnostics(self) -> List[Diagnostic]:
        """XC004 errors for unpredicted divergences (capped)."""
        out: List[Diagnostic] = []
        total = sum(len(v) for v in self.escapes.values())
        for resource in sorted(self.escapes):
            for key in self.escapes[resource]:
                if len(out) >= MAX_DIVERGENCE_DIAGNOSTICS:
                    out.append(Diagnostic(
                        "XC004",
                        f"... plus {total - len(out)} further "
                        f"unpredicted divergence(s) suppressed",
                    ))
                    return out
                out.append(Diagnostic(
                    "XC004",
                    f"{resource} event {key:#x} diverged between the "
                    f"two secrets but is outside the static "
                    f"secret-dependence prediction",
                    addr=key,
                ))
        return out

    def summary(self) -> str:
        parts = ", ".join(
            f"{res}={len(keys)}"
            for res, keys in sorted(self.divergent.items())
        )
        return (
            f"{self.divergences} divergent event key(s) over "
            f"{self.events} events ({parts}); "
            f"{sum(len(v) for v in self.escapes.values())} escape(s)"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "events": self.events,
            "divergent": {k: v for k, v in self.divergent.items()},
            "escapes": {k: v for k, v in self.escapes.items()},
            "clean": self.clean,
        }


def _observed_keys(
    core, drive: Callable[[int], None], secret: int
) -> Tuple[Dict[str, Set[int]], int]:
    """Per-resource event-key sets for one secret's run."""
    core.reset()
    recorder = TraceRecorder(
        kinds=tuple(_SECRET_EVENT_KEYS), core=core
    )
    recorder.connect()
    try:
        drive(secret)
    finally:
        recorder.close()
    keys: Dict[str, Set[int]] = {"dsb": set(), "itlb": set(), "sb": set()}
    count = 0
    for kind, (resource, payload) in _SECRET_EVENT_KEYS.items():
        for event in recorder.of(kind):
            keys[resource].add(int(event.get(payload)))
            count += 1
    return keys, count


def cross_check_secrets(
    core,
    taint,
    drive: Callable[[int], None],
    secrets: Sequence[int] = (0, 1),
) -> SecretDiffResult:
    """Run ``drive(secret)`` once per secret and diff the event sets.

    ``taint`` is the target's :class:`repro.lint.taint.TaintReport`.
    The core is reset before each run so both executions start from
    identical post-construction state; divergence is the symmetric
    difference of the per-resource event-key sets, which must be a
    subset of the static prediction (fill entries for the DSB,
    instruction pages for the iTLB, store pcs for the store buffer).

    DSB fill entries are compared at 32-byte fetch-region granularity:
    the live front end re-enters a region mid-line (a loop-exit
    fall-through, a call's return site) at addresses the static walk
    only knows by their region, and the cache indexes by the aligned
    window either way.
    """
    runs = []
    result = SecretDiffResult()
    for secret in secrets:
        keys, count = _observed_keys(core, drive, secret)
        runs.append(keys)
        result.events += count

    predicted = {
        "dsb": set(taint.regions),
        "itlb": set(taint.itlb_pages),
        "sb": set(taint.store_sites),
    }
    predicted_dsb_windows = {entry >> 5 for entry in taint.regions}
    # A tainted branch's own window always executes, but the fetch
    # resumption point inside it differs per outcome, so its sub-entry
    # fill keys legitimately diverge.
    for leak in getattr(taint, "leaks", ()):
        predicted_dsb_windows |= {
            addr >> 5 for addr in leak.tainted_branches
        }
        predicted_dsb_windows |= {
            addr >> 5 for addr in leak.tainted_indirect
        }
    for resource in ("dsb", "itlb", "sb"):
        union: Set[int] = set()
        common: Optional[Set[int]] = None
        for keys in runs:
            union |= keys[resource]
            common = (
                set(keys[resource]) if common is None
                else common & keys[resource]
            )
        divergent = union - (common or set())
        result.divergent[resource] = sorted(divergent)
        if resource == "dsb":
            escapes = {
                key for key in divergent
                if key not in predicted[resource]
                and (key >> 5) not in predicted_dsb_windows
            }
        else:
            escapes = divergent - predicted[resource]
        result.escapes[resource] = sorted(escapes)
    return result
