"""Differential cross-check: static predictions vs the live simulator.

The static analyzer re-states the front end's region walk and the
cache's set mapping on purpose (see :mod:`repro.lint.footprint`); this
module closes the loop.  It attaches a
:class:`repro.observe.TraceRecorder` to a core, runs a short driver
callable, and diffs every observed ``dsb_fill`` event -- entry address,
set index, line count -- against the footprint report.  Any divergence
is an **XC001** error: either the simulator's placement logic or the
analyzer has drifted, and both claim to implement Section II-B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.footprint import FootprintReport
from repro.observe.events import DSB_FILL, TraceRecorder

#: Cap on per-entry XC001 diagnostics, so a systematic divergence does
#: not bury the report under one error per fill event.
MAX_DIVERGENCE_DIAGNOSTICS = 20


@dataclass
class FillDiff:
    """One observed fill that disagrees with the static prediction."""

    entry: int
    cycle: int
    observed_set: int
    observed_lines: int
    predicted_set: Optional[int]  # None: entry unknown to the analyzer
    predicted_lines: Optional[int]

    def describe(self) -> str:
        if self.predicted_set is None:
            return (
                f"fill at entry {self.entry:#x} (cycle {self.cycle}) "
                f"was not predicted at all"
            )
        return (
            f"fill at entry {self.entry:#x} (cycle {self.cycle}): "
            f"observed set {self.observed_set} x{self.observed_lines} "
            f"line(s), predicted set {self.predicted_set} "
            f"x{self.predicted_lines}"
        )


@dataclass
class CrossCheckResult:
    """Outcome of one differential run."""

    fills: int = 0
    matches: int = 0
    diffs: List[FillDiff] = field(default_factory=list)
    #: distinct entries observed, for coverage reporting
    entries_seen: int = 0

    @property
    def agreement(self) -> float:
        """Fraction of fill events the static model predicted exactly."""
        return self.matches / self.fills if self.fills else 1.0

    @property
    def clean(self) -> bool:
        """True when every observed fill matched the prediction."""
        return not self.diffs

    def diagnostics(self) -> List[Diagnostic]:
        """XC001 errors for the divergences (deduplicated by entry)."""
        out: List[Diagnostic] = []
        seen: set = set()
        for diff in self.diffs:
            if diff.entry in seen:
                continue
            seen.add(diff.entry)
            out.append(
                Diagnostic("XC001", diff.describe(), addr=diff.entry)
            )
            if len(out) >= MAX_DIVERGENCE_DIAGNOSTICS:
                remaining = len(self.diffs) - len(out)
                if remaining > 0:
                    out.append(
                        Diagnostic(
                            "XC001",
                            f"... plus {remaining} further divergent "
                            f"fill(s) suppressed",
                        )
                    )
                break
        return out

    def summary(self) -> str:
        return (
            f"{self.matches}/{self.fills} fills agree "
            f"({self.agreement:.1%}) over {self.entries_seen} "
            f"distinct entries"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "fills": self.fills,
            "matches": self.matches,
            "agreement": self.agreement,
            "entries_seen": self.entries_seen,
            "diffs": [d.describe() for d in self.diffs],
        }


def cross_check(
    core,
    report: FootprintReport,
    drive: Callable[[], None],
) -> CrossCheckResult:
    """Run ``drive()`` with fill observation on and diff the events.

    ``core`` is the :class:`repro.cpu.core.Core` the driver exercises
    (its event bus is attached for the duration); ``report`` the static
    analysis of the same program under the same ``CPUConfig``.  Every
    ``dsb_fill`` the simulator emits is compared against
    :meth:`FootprintReport.expected_fill`.
    """
    recorder = TraceRecorder(kinds=(DSB_FILL,), core=core)
    recorder.connect()
    try:
        drive()
    finally:
        recorder.close()

    result = CrossCheckResult()
    entries = set()
    for event in recorder.of(DSB_FILL):
        entry = int(event.get("entry"))
        observed_set = int(event.get("set"))
        observed_lines = int(event.get("lines"))
        entries.add(entry)
        result.fills += 1
        predicted = report.expected_fill(entry)
        if predicted is None:
            result.diffs.append(
                FillDiff(
                    entry=entry,
                    cycle=event.cycle,
                    observed_set=observed_set,
                    observed_lines=observed_lines,
                    predicted_set=None,
                    predicted_lines=None,
                )
            )
            continue
        pred_set, pred_lines = predicted
        if pred_set == observed_set and pred_lines == observed_lines:
            result.matches += 1
        else:
            result.diffs.append(
                FillDiff(
                    entry=entry,
                    cycle=event.cycle,
                    observed_set=observed_set,
                    observed_lines=observed_lines,
                    predicted_set=pred_set,
                    predicted_lines=pred_lines,
                )
            )
    result.entries_seen = len(entries)
    return result
