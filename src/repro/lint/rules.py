"""The lint rule engine: program rules over a footprint report, plus
AST-based determinism rules over the driver sources.

Program rules (UC0xx) consume a
:class:`~repro.lint.footprint.FootprintReport` and never touch a
simulator.  Determinism rules (DT0xx) parse the ``repro`` sources with
:mod:`ast` and flag nondeterminism that would make experiment results
unreproducible or poison the content-addressed result cache.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.isa.instruction import BranchKind, MacroOp
from repro.isa.program import Program
from repro.lint.diagnostics import Diagnostic
from repro.lint.footprint import FootprintReport, RegionFootprint

#: A "hot loop" for UC006: a backward conditional branch whose body
#: spans at most this many bytes.  Wider spans are treated as generic
#: control flow, not a loop body worth warning about.
HOT_LOOP_SPAN = 512

#: BFS bound for the UC007 timing-window search, in regions.  A probe
#: chain touches sets*ways regions (<= 512 on the largest preset), so
#: this comfortably covers real windows without letting a pathological
#: graph blow up.
TIMING_WINDOW_DEPTH = 1024


# ----------------------------------------------------------------------
# program rules


def _uncacheable_reason(fp: RegionFootprint, uops_per_line: int) -> str:
    """Human explanation of why ``build_lines`` refused this region."""
    bad = [m for m in fp.macros if not m.cacheable]
    if bad:
        names = ", ".join(sorted({m.mnemonic for m in bad}))
        return f"contains non-cacheable instruction(s): {names}"
    wide = [
        m for m in fp.macros
        if not m.msrom and m.slot_count > uops_per_line
    ]
    if wide:
        return (
            f"macro-op {wide[0].mnemonic!r} needs {wide[0].slot_count} "
            f"slots, more than one {uops_per_line}-slot line"
        )
    return (
        f"{sum(m.slot_count for m in fp.macros)} slots over "
        f"{len(fp.macros)} macro-ops exceeds the region line budget"
    )


def _rule_cacheability(report: FootprintReport) -> List[Diagnostic]:
    """UC001 + UC002: regions that never enter the cache."""
    out: List[Diagnostic] = []
    upl = report.config.uops_per_line
    for entry in sorted(report.regions):
        fp = report.regions[entry]
        if fp.cacheable:
            continue
        out.append(
            Diagnostic(
                "UC001",
                f"region at entry {fp.entry:#x} is not cacheable: "
                f"{_uncacheable_reason(fp, upl)}",
                addr=fp.entry,
                label=fp.label,
            )
        )
    # UC002 looks at instructions directly: a too-wide macro-op poisons
    # every walk that includes it, so anchor the error on the macro.
    seen: Set[int] = set()
    for macro in report.program.iter_instructions():
        if macro.msrom or macro.addr in seen:
            continue
        if macro.slot_count > upl:
            seen.add(macro.addr)
            out.append(
                Diagnostic(
                    "UC002",
                    f"{macro.mnemonic!r} decodes to {macro.slot_count} "
                    f"slots but a line holds {upl}; rule 3 forbids "
                    f"spanning, so no region containing it can cache",
                    addr=macro.addr,
                )
            )
    return out


def _rule_wild_branches(report: FootprintReport) -> List[Diagnostic]:
    """UC010: direct branches into holes."""
    out: List[Diagnostic] = []
    for branch_addr, target in report.wild_branches():
        out.append(
            Diagnostic(
                "UC010",
                f"direct branch at {branch_addr:#x} targets {target:#x}, "
                f"where no instruction starts",
                addr=branch_addr,
            )
        )
    return out


def _rule_unresolved(report: FootprintReport) -> List[Diagnostic]:
    """UC009: coverage notes for indirect exits."""
    out: List[Diagnostic] = []
    for fp in report.unresolved_exits():
        term = fp.terminator
        out.append(
            Diagnostic(
                "UC009",
                f"{term.mnemonic} at {term.addr:#x} leaves the static "
                f"walk; footprints past it rely on label seeding",
                addr=term.addr,
                label=fp.label,
            )
        )
    return out


def _rule_lcp_loops(report: FootprintReport) -> List[Diagnostic]:
    """UC006: length-changing prefixes inside tight backward loops.

    One diagnostic per loop head (not per LCP site) keeps the report
    readable when a tiger deliberately stacks prefixes.
    """
    out: List[Diagnostic] = []
    program = report.program
    instrs = list(program.iter_instructions())
    reported: Set[int] = set()
    for macro in instrs:
        if macro.branch_kind is not BranchKind.JCC or macro.target is None:
            continue
        head = macro.target
        if not head <= macro.addr or macro.end - head > HOT_LOOP_SPAN:
            continue
        if head in reported:
            continue
        body = [
            m for m in instrs if head <= m.addr < macro.end and m.lcp_count
        ]
        sites = sum(m.lcp_count for m in body)
        if not sites:
            continue
        reported.add(head)
        out.append(
            Diagnostic(
                "UC006",
                f"loop [{head:#x}, {macro.end:#x}) carries {sites} "
                f"length-changing prefix(es) over {len(body)} "
                f"instruction(s); every MITE iteration pays the "
                f"predecode stall",
                addr=head,
                label=report.regions.get(head, None)
                and report.regions[head].label,
            )
        )
    return out


def _rule_msrom_in_window(report: FootprintReport) -> List[Diagnostic]:
    """UC007: microcoded lines between a probe's RDTSC pair.

    A region is "inside a timing window" when it is forward-reachable
    from an RDTSC region and can itself reach another RDTSC region
    (without crossing further timers).  Any MSROM line there inflates
    every sample the probe takes.
    """
    regions = report.regions
    timers = [e for e, fp in regions.items() if fp.has_rdtsc]
    if len(timers) < 2:
        return []
    # reverse edges once, restricted to analyzed entries
    rev: Dict[int, List[int]] = {}
    for entry, fp in regions.items():
        for nxt in fp.successors:
            if nxt in regions:
                rev.setdefault(nxt, []).append(entry)

    out: List[Diagnostic] = []
    flagged: Set[int] = set()
    for opener in timers:
        # forward sweep, stopping at (but recording) other timers
        fwd: Set[int] = set()
        closers: Set[int] = set()
        queue = [
            n for n in regions[opener].successors if n in regions
        ]
        steps = 0
        while queue and steps < TIMING_WINDOW_DEPTH:
            steps += 1
            cur = queue.pop(0)
            if cur in fwd:
                continue
            fwd.add(cur)
            if regions[cur].has_rdtsc:
                closers.add(cur)
                continue
            queue.extend(
                n for n in regions[cur].successors if n in regions
            )
        if not closers:
            continue
        # backward sweep from the closers, inside the forward set
        window: Set[int] = set()
        queue = list(closers)
        while queue:
            cur = queue.pop(0)
            for prev in rev.get(cur, ()):
                if prev in fwd and prev not in window:
                    window.add(prev)
                    queue.append(prev)
        for entry in sorted(window):
            fp = regions[entry]
            if fp.msrom_lines and entry not in flagged:
                flagged.add(entry)
                out.append(
                    Diagnostic(
                        "UC007",
                        f"region at {entry:#x} contributes "
                        f"{fp.msrom_lines} MSROM line(s) inside the "
                        f"timing window opened at {opener:#x}",
                        addr=entry,
                        label=fp.label,
                    )
                )
    return out


def _rule_imm64(report: FootprintReport) -> List[Diagnostic]:
    """UC008: 64-bit immediates that cost the region an extra line."""
    out: List[Diagnostic] = []
    upl = report.config.uops_per_line
    for entry in sorted(report.regions):
        fp = report.regions[entry]
        if not fp.cacheable or not fp.imm64_uops:
            continue
        uop_lines = -(-sum(m.uop_count for m in fp.macros) // upl)
        slot_lines = -(-fp.slot_count // upl)
        if slot_lines <= uop_lines:
            continue
        out.append(
            Diagnostic(
                "UC008",
                f"{fp.imm64_uops} two-slot immediate(s) grow the region "
                f"from {uop_lines} to {slot_lines} line(s)",
                addr=fp.entry,
                label=fp.label,
            )
        )
    return out


def check_program(report: FootprintReport) -> List[Diagnostic]:
    """Run every program rule over an analyzed footprint report."""
    out: List[Diagnostic] = []
    out.extend(_rule_cacheability(report))
    out.extend(_rule_wild_branches(report))
    out.extend(_rule_lcp_loops(report))
    out.extend(_rule_msrom_in_window(report))
    out.extend(_rule_imm64(report))
    out.extend(_rule_unresolved(report))
    return out


# ----------------------------------------------------------------------
# determinism rules (AST over the repro sources)

#: Modules whose nondeterminism breaks experiment reproducibility.
_DRIVER_DIRS = ("core", "session", "harness")

#: Call roots that poison cache-key construction (DT002).
_NONDET_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("uuid", "uuid4"),
    ("uuid", "uuid1"),
    ("os", "urandom"),
    ("secrets", "token_bytes"),
    ("secrets", "token_hex"),
}

#: Functions in the harness allowed to read the clock: runtime
#: *measurement* is fine, key *construction* is not.
_DT002_EXEMPT_FUNCS = {"run", "execute", "elapsed", "now", "main"}


def _dotted(node: ast.AST) -> Optional[Tuple[str, str]]:
    """``module.attr`` call target as a pair, if that shape."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return node.value.id, node.attr
    return None


def _enclosing_function(
    tree: ast.Module, lineno: int
) -> Optional[str]:
    """Name of the innermost function containing ``lineno``."""
    best: Optional[str] = None
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            end = getattr(node, "end_lineno", node.lineno)
            if node.lineno <= lineno <= end:
                best = node.name
    return best


def _scan_module_dt(path: Path, rel: str) -> List[Diagnostic]:
    """DT001/DT002 findings for one source file."""
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError:
        return []
    out: List[Diagnostic] = []
    is_cache_layer = rel.startswith("harness/")
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        target = _dotted(node.func)
        if target is None:
            continue
        mod, attr = target
        # DT001: unseeded RNG construction or module-level random.*
        if mod == "random":
            if attr == "Random" and not node.args and not node.keywords:
                out.append(
                    Diagnostic(
                        "DT001",
                        f"random.Random() constructed without a seed",
                        context=f"{rel}:{node.lineno}",
                    )
                )
            elif attr in (
                "random", "randrange", "randint", "choice", "shuffle",
                "sample", "gauss",
            ):
                out.append(
                    Diagnostic(
                        "DT001",
                        f"module-level random.{attr}() draws from the "
                        f"shared unseeded generator",
                        context=f"{rel}:{node.lineno}",
                    )
                )
        # DT002: wall-clock / uuid / urandom in the caching layer
        if is_cache_layer and (mod, attr) in _NONDET_CALLS:
            func = _enclosing_function(tree, node.lineno)
            if func in _DT002_EXEMPT_FUNCS:
                continue
            out.append(
                Diagnostic(
                    "DT002",
                    f"{mod}.{attr}() in {func or '<module>'}() can leak "
                    f"into job identity; cache keys must be pure",
                    context=f"{rel}:{node.lineno}",
                )
            )
    return out


def check_sources(root: Optional[Path] = None) -> List[Diagnostic]:
    """Run the determinism rules over the driver/harness sources.

    ``root`` defaults to the installed ``repro`` package directory.
    """
    if root is None:
        root = Path(__file__).resolve().parents[1]
    out: List[Diagnostic] = []
    for sub in _DRIVER_DIRS:
        subdir = root / sub
        if not subdir.is_dir():
            continue
        for path in sorted(subdir.glob("*.py")):
            rel = f"{sub}/{path.name}"
            out.extend(_scan_module_dt(path, rel))
    return out
