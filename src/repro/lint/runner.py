"""Lint targets and the ``python -m repro lint`` entry point's engine.

A *target* is one thing the linter knows how to build and check: a
shipped attack program (built through its driver with the preflight
disabled, so the runner sees the diagnostics instead of an exception),
the Listing-1 tiger/zebra demonstration, the synthetic gadget corpus,
or the driver sources themselves (AST rules only).  ``run_lint`` builds
the requested targets, runs the footprint rules and the drivers' own
gadget claims over each, optionally cross-checks the static predictions
against live ``dsb_fill`` events, and folds everything into a
:class:`LintRun` that renders as text or JSON.
"""

from __future__ import annotations

import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.lint.crosscheck import (
    CrossCheckResult,
    SecretDiffResult,
    cross_check,
    cross_check_secrets,
)
from repro.lint.diagnostics import Diagnostic, Severity, errors_of
from repro.lint.footprint import FootprintReport, analyze
from repro.lint.gadgets import verify_claims
from repro.lint.rules import check_program, check_sources
from repro.lint.taint import TaintReport, verify_secret_claims


@dataclass
class BuiltTarget:
    """One buildable lint target, ready for analysis."""

    name: str
    program: Optional[object] = None  # repro.isa.program.Program
    config: Optional[object] = None  # repro.cpu.config.CPUConfig
    chains: list = field(default_factory=list)
    pairs: list = field(default_factory=list)
    #: per-resource claims (repro.lint.resources) -- iTLB page sets,
    #: store-site counts and capacity-relation pairs
    resources: list = field(default_factory=list)
    #: secret declarations (repro.lint.taint.SecretClaim) for the
    #: taint mode; targets without any stay taint-silent
    secrets: list = field(default_factory=list)
    #: live core + zero-arg driver for the cross-check mode; targets
    #: without one are static-only
    core: Optional[object] = None
    drive: Optional[Callable[[], None]] = None
    #: one-secret driver for the XC004 differential mode: called as
    #: ``secret_drive(value)`` once per value in ``secret_values``
    #: after a core reset; the observed fill divergence must stay
    #: inside the static taint prediction
    secret_drive: Optional[Callable[[int], None]] = None
    secret_values: tuple = (0, 1)
    #: source-scan targets have no program at all
    source_scan: bool = False
    #: findings computed by the builder itself (multi-program targets
    #: like ``contention-pairs``); the engine reports them verbatim
    prechecked: Optional[List[Diagnostic]] = None
    prechecked_regions: int = 0


@contextmanager
def _no_preflight():
    """Build sessions without the construction-time preflight: the
    runner wants the diagnostics as data, not as a raised LintError.
    Delegates to the thread-local :func:`repro.session.no_preflight`
    so concurrent builds in other threads keep their lint gating."""
    from repro.session import no_preflight

    with no_preflight():
        yield


# ----------------------------------------------------------------------
# target builders (driver imports stay inside: repro.core drivers import
# repro.lint for their claims, so module level would be a cycle)


def _from_session(name: str, session, drive=None,
                  secret_drive=None, secret_values=(0, 1)) -> BuiltTarget:
    chains, pairs = session.lint_claims()
    resources = getattr(session, "lint_resource_claims", lambda: [])()
    secrets = getattr(session, "lint_secret_claims", lambda: [])()
    live = drive is not None or secret_drive is not None
    return BuiltTarget(
        name=name,
        program=session.program,
        config=session.config,
        chains=chains,
        pairs=pairs,
        resources=resources,
        secrets=secrets,
        core=session.core if live else None,
        drive=drive,
        secret_drive=secret_drive,
        secret_values=secret_values,
    )


def _build_covert() -> BuiltTarget:
    from repro.core.covert import CovertChannel

    with _no_preflight():
        chan = CovertChannel()

    def drive() -> None:
        for bit in (1, 0):
            chan._prime()
            chan._send(bit)
            chan._call("probe")

    def secret_drive(bit: int) -> None:
        chan.setup()
        chan._prime()
        chan._send(bit)
        chan._call("probe")

    return _from_session("covert", chan, drive, secret_drive)


def _build_tigerzebra() -> BuiltTarget:
    """The paper's Listing 1: probe + tiger + zebra, no driver."""
    from repro.core.exploitgen import (
        FootprintSpec,
        emit_chain,
        emit_probe,
        striped_sets,
    )
    from repro.cpu.config import CPUConfig
    from repro.cpu.core import Core
    from repro.isa.assembler import Assembler
    from repro.lint.gadgets import ChainClaim, PairClaim

    from repro.lint.taint import SecretClaim

    config = CPUConfig.skylake()
    tiger_sets = striped_sets(8)
    zebra_sets = striped_sets(8, offset=2)
    probe_spec = FootprintSpec(tiger_sets, 6, 0x44_0000)
    tiger_spec = FootprintSpec(tiger_sets, 6, 0x48_0000)
    zebra_spec = FootprintSpec(zebra_sets, 6, 0x4C_0000)
    asm = Assembler()
    asm.reserve("probe_result", 8)
    emit_probe(asm, "probe", probe_spec, "probe_result")
    emit_chain(asm, "tiger", tiger_spec)
    emit_chain(asm, "zebra", zebra_spec)
    program = asm.assemble(entry="probe")
    core = Core(config, program)

    def drive() -> None:
        for label in ("probe", "tiger", "probe", "zebra", "probe"):
            core.call(label)

    def secret_drive(bit: int) -> None:
        core.call("probe")
        core.call("tiger" if bit else "zebra")
        core.call("probe")

    return BuiltTarget(
        name="tigerzebra",
        program=program,
        config=config,
        chains=[
            ChainClaim("probe", probe_spec, "probe"),
            ChainClaim("tiger", tiger_spec, "tiger"),
            ChainClaim("zebra", zebra_spec, "zebra"),
        ],
        pairs=[
            PairClaim("tiger", "probe", "conflict"),
            PairClaim("zebra", "probe", "disjoint"),
        ],
        secrets=[
            SecretClaim(name="bit", entries=("tiger", "zebra"),
                        leaks_to=("dsb", "itlb")),
        ],
        core=core,
        drive=drive,
        secret_drive=secret_drive,
    )


def _build_smt() -> BuiltTarget:
    from repro.core.smtchannel import SMTChannel

    with _no_preflight():
        chan = SMTChannel()

    def secret_drive(bit: int) -> None:
        chan.setup()
        chan._episode(bit)

    return _from_session("smt", chan, secret_drive=secret_drive)


def _build_spectre() -> BuiltTarget:
    from repro.core.transient import ARRAY_BYTES, UopCacheSpectreV1

    with _no_preflight():
        attack = UopCacheSpectreV1(secret=b"!")

    def secret_drive(bit: int) -> None:
        attack.setup()
        attack._install_data()
        attack.core.write_mem(attack.core.addr_of("secret"), bit, size=1)
        attack._episode(ARRAY_BYTES, 0)  # out-of-bounds: secret[0] bit 0

    return _from_session("spectre", attack, secret_drive=secret_drive)


def _build_classic() -> BuiltTarget:
    from repro.core.transient import ARRAY_BYTES, ClassicSpectreV1

    with _no_preflight():
        attack = ClassicSpectreV1(secret=b"!")

    def secret_drive(bit: int) -> None:
        # Classic v1 leaks through the data cache only: the taint
        # prediction is empty, and so must be the fill divergence.
        attack.setup()
        attack._install_secret()
        attack.core.write_mem(attack.core.addr_of("secret"), bit, size=1)
        attack._call("invoke_victim", regs={"r1": 16})  # in-bounds train
        attack._call("flush_all")
        attack._call("invoke_victim", regs={"r1": ARRAY_BYTES})
        attack._call("reload_all")

    return _from_session("classic", attack, secret_drive=secret_drive)


def _build_lfence() -> BuiltTarget:
    from repro.core.transient import LfenceBypass

    with _no_preflight():
        attack = LfenceBypass()

    def secret_drive(bit: int) -> None:
        attack.setup()
        attack.attack_once("nf", bit, train_rounds=1)

    return _from_session("lfence", attack, secret_drive=secret_drive)


def _build_bti() -> BuiltTarget:
    from repro.core.bti import BranchTargetInjection

    with _no_preflight():
        attack = BranchTargetInjection(secret=b"!")

    def secret_drive(bit: int) -> None:
        attack.setup()
        attack._install_secret()
        attack.core.write_mem(attack.core.addr_of("secret"), bit, size=1)
        attack._episode(0, 0)

    return _from_session("bti", attack, secret_drive=secret_drive)


def _build_crossdomain() -> BuiltTarget:
    from repro.core.crossdomain import CrossDomainChannel

    with _no_preflight():
        chan = CrossDomainChannel()

    def secret_drive(bit: int) -> None:
        chan.setup()
        chan._send(bit)
        chan._call("probe")

    return _from_session("crossdomain", chan, secret_drive=secret_drive)


def _build_jumptable() -> BuiltTarget:
    from repro.core.transient import ARRAY_BYTES
    from repro.core.transient_multibit import JumpTableSpectre

    with _no_preflight():
        attack = JumpTableSpectre(secret=b"!")

    def secret_drive(symbol: int) -> None:
        attack.setup()
        attack._install_data()
        attack.core.write_mem(attack.core.addr_of("secret"), symbol, size=1)
        attack._episode(ARRAY_BYTES, 0)

    # Differential over two symbols, exercising distinct jump-table
    # landing sites (send_1 vs send_2).
    return _from_session("jumptable", attack, secret_drive=secret_drive,
                         secret_values=(1, 2))


def _build_keyextract() -> BuiltTarget:
    from repro.core.keyextract import ModexpVictim

    with _no_preflight():
        # Full nbits keeps the static surface identical to the shipped
        # driver; fewer spy samples keep the live XC004 episode fast
        # (the spy's sample count never touches the victim's layout).
        victim = ModexpVictim(spy_samples=40)

    def secret_drive(key: int) -> None:
        victim.setup()
        victim.run_pair(key)

    # The all-zeros key never takes the multiply arm and the all-ones
    # key always does, so the divergence between the two runs is
    # exactly the square-and-multiply fetch difference.  (Adjacent
    # keys such as 0x8000/0x8001 both fetch every path at least once
    # and are indistinguishable at the event-*set* level.)
    return _from_session("keyextract", victim, secret_drive=secret_drive,
                         secret_values=(0, 0xFFFF))


def _build_contention_itlb() -> BuiltTarget:
    from repro.contention.channels import ITLBChannel

    with _no_preflight():
        chan = ITLBChannel()

    def secret_drive(bit: int) -> None:
        chan.setup()
        chan._episode(bit)

    return _from_session("contention-itlb", chan, secret_drive=secret_drive)


def _build_contention_sb() -> BuiltTarget:
    from repro.contention.channels import StoreBufferChannel

    with _no_preflight():
        chan = StoreBufferChannel()

    def secret_drive(bit: int) -> None:
        chan.setup()
        chan._episode(bit)

    return _from_session("contention-sb", chan, secret_drive=secret_drive)


def _build_contention_pairs() -> BuiltTarget:
    """Lint one generated pair per claim-carrying resource.

    Each pair is its own program, so the findings are computed here
    (one analysis per pair) and handed to the engine pre-checked.
    """
    from repro.contention.templates import generate_pair

    findings: List[Diagnostic] = []
    regions = 0
    for resource in ("uop_cache", "itlb", "store_buffer", "btb"):
        for variant in ("conflict", "disjoint"):
            gen = generate_pair(resource, variant=variant)
            report = analyze(gen.program, gen.config)
            regions += len(report.regions)
            findings.extend(check_program(report))
            findings.extend(
                verify_claims(report, gen.chains, gen.pairs, gen.resources)
            )
    target = BuiltTarget(name="contention-pairs")
    target.prechecked = findings
    target.prechecked_regions = regions
    return target


def _build_corpus() -> BuiltTarget:
    from repro.core.gadgets import generate_corpus
    from repro.cpu.config import CPUConfig

    return BuiltTarget(
        name="corpus",
        program=generate_corpus(functions=40),
        config=CPUConfig.skylake(),
    )


def _build_sources() -> BuiltTarget:
    return BuiltTarget(name="sources", source_scan=True)


#: Every target ``--all`` lints, in report order.
TARGETS: Dict[str, Callable[[], BuiltTarget]] = {
    "tigerzebra": _build_tigerzebra,
    "covert": _build_covert,
    "smt": _build_smt,
    "crossdomain": _build_crossdomain,
    "spectre": _build_spectre,
    "classic": _build_classic,
    "lfence": _build_lfence,
    "bti": _build_bti,
    "jumptable": _build_jumptable,
    "keyextract": _build_keyextract,
    "contention-itlb": _build_contention_itlb,
    "contention-sb": _build_contention_sb,
    "contention-pairs": _build_contention_pairs,
    "corpus": _build_corpus,
    "sources": _build_sources,
}

#: Targets the cross-check mode drives (the rest stay static).
CROSS_CHECK_TARGETS = ("tigerzebra", "covert")


@dataclass
class TargetResult:
    """Lint outcome for one target."""

    name: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    regions: int = 0
    elapsed: float = 0.0
    crosscheck: Optional[CrossCheckResult] = None
    #: taint-mode outputs (``--taint``): the static leak prediction
    #: and, for targets with a secret driver, the XC004 differential
    taint: Optional[TaintReport] = None
    secretcheck: Optional[SecretDiffResult] = None
    build_error: Optional[str] = None

    @property
    def errors(self) -> List[Diagnostic]:
        return errors_of(self.diagnostics)

    @property
    def ok(self) -> bool:
        return self.build_error is None and not self.errors

    def counts(self) -> Dict[str, int]:
        out = {"error": 0, "warning": 0, "info": 0}
        for diag in self.diagnostics:
            out[str(diag.severity)] += 1
        return out

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "target": self.name,
            "ok": self.ok,
            "regions": self.regions,
            "elapsed_s": round(self.elapsed, 4),
            "counts": self.counts(),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }
        if self.crosscheck is not None:
            data["crosscheck"] = self.crosscheck.as_dict()
        if self.taint is not None:
            data["taint"] = self.taint.as_dict()
        if self.secretcheck is not None:
            data["secretcheck"] = self.secretcheck.as_dict()
        if self.build_error is not None:
            data["build_error"] = self.build_error
        return data


@dataclass
class LintRun:
    """One complete lint invocation over a set of targets."""

    results: List[TargetResult] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "elapsed_s": round(self.elapsed, 4),
            "targets": [r.as_dict() for r in self.results],
        }

    def render(self, show_info: bool = False) -> str:
        """Human-readable report, one block per target."""
        lines: List[str] = []
        for result in self.results:
            counts = result.counts()
            head = (
                f"{result.name}: "
                f"{counts['error']} error(s), "
                f"{counts['warning']} warning(s), "
                f"{counts['info']} info"
            )
            if result.regions:
                head += f", {result.regions} region(s)"
            head += f"  [{result.elapsed:.2f}s]"
            lines.append(head)
            if result.build_error is not None:
                lines.append(f"  build failed: {result.build_error}")
            for diag in result.diagnostics:
                if diag.severity is Severity.INFO and not show_info:
                    continue
                lines.append(f"  {diag.format()}")
            if result.crosscheck is not None:
                lines.append(f"  cross-check: {result.crosscheck.summary()}")
            if result.taint is not None:
                lines.append(
                    f"  taint: {len(result.taint.leaks)} claim(s), "
                    f"{len(result.taint.regions)} secret-dependent "
                    f"region(s), capacity <= "
                    f"{result.taint.capacity_bits:.1f} bit(s)"
                )
            if result.secretcheck is not None:
                lines.append(
                    f"  secret-check: {result.secretcheck.summary()}"
                )
        total_err = sum(r.counts()["error"] for r in self.results)
        total_err += sum(1 for r in self.results if r.build_error)
        verdict = "clean" if self.ok else f"{total_err} error(s)"
        lines.append(
            f"lint: {len(self.results)} target(s), {verdict} "
            f"[{self.elapsed:.2f}s]"
        )
        return "\n".join(lines)


def lint_target(
    name: str,
    builder: Callable[[], BuiltTarget],
    cross: bool = False,
    taint: bool = False,
) -> TargetResult:
    """Build and lint one target; build crashes become the result.

    A build failure is reported both as ``build_error`` (the traceback,
    for humans) and as a structured LT001 error diagnostic, so JSON
    consumers and exit-code logic see it through the same catalog path
    as every other finding.
    """
    start = time.perf_counter()
    result = TargetResult(name=name)
    try:
        target = builder()
        if target.source_scan:
            result.diagnostics = check_sources()
        elif target.prechecked is not None:
            result.diagnostics = list(target.prechecked)
            result.regions = target.prechecked_regions
        else:
            report = analyze(target.program, target.config)
            result.regions = len(report.regions)
            result.diagnostics = check_program(report)
            result.diagnostics.extend(
                verify_claims(
                    report, target.chains, target.pairs, target.resources
                )
            )
            if cross and target.drive is not None:
                result.crosscheck = cross_check(
                    target.core, report, target.drive
                )
                result.diagnostics.extend(result.crosscheck.diagnostics())
            if taint and target.secrets:
                result.taint = verify_secret_claims(report, target.secrets)
                result.diagnostics.extend(result.taint.diagnostics)
                if (target.secret_drive is not None
                        and target.core is not None):
                    result.secretcheck = cross_check_secrets(
                        target.core, result.taint, target.secret_drive,
                        secrets=target.secret_values,
                    )
                    result.diagnostics.extend(
                        result.secretcheck.diagnostics()
                    )
    except Exception as exc:
        result.build_error = traceback.format_exc(limit=3).strip()
        result.diagnostics.append(Diagnostic(
            "LT001",
            f"target {name!r} failed to build: "
            f"{type(exc).__name__}: {exc}",
        ))
    result.elapsed = time.perf_counter() - start
    return result


def run_lint(
    names: Optional[Sequence[str]] = None, cross: bool = False,
    taint: bool = False,
) -> LintRun:
    """Lint the named targets (default: all of them).

    ``cross=True`` additionally drives the targets in
    :data:`CROSS_CHECK_TARGETS` against the live simulator and diffs
    every observed fill (XC001 on divergence).

    ``taint=True`` runs the secret-flow taint analysis over every
    target that declares :class:`~repro.lint.taint.SecretClaim`s, and
    -- for targets with a secret driver -- the XC004 differential:
    the target runs once per secret value and the live fill divergence
    must stay inside the static prediction.
    """
    if names:
        unknown = [n for n in names if n not in TARGETS]
        if unknown:
            raise KeyError(
                f"unknown lint target(s) {unknown}; "
                f"known: {', '.join(TARGETS)}"
            )
        selected = list(names)
    else:
        selected = list(TARGETS)
    start = time.perf_counter()
    run = LintRun()
    for name in selected:
        do_cross = cross and name in CROSS_CHECK_TARGETS
        run.results.append(
            lint_target(name, TARGETS[name], cross=do_cross, taint=taint)
        )
    run.elapsed = time.perf_counter() - start
    return run
