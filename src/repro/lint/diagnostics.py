"""Diagnostic model and catalog for the static analyzer.

Every finding the lint subsystem can report is a :class:`Diagnostic`
carrying a catalog code, a severity, a program location (address and
nearest label, when the finding is anchored in code) and a fix hint.
The catalog is the documented contract: codes are stable, so tests,
CI gates and suppression lists can key on them.

Severity semantics:

- ``ERROR``: the program cannot do what it claims -- a gadget that
  does not form its eviction set, a macro-op that can never be cached,
  a branch into a hole.  ``python -m repro lint`` exits nonzero and
  :meth:`repro.session.AttackSession` preflight refuses to run.
- ``WARNING``: legal but suspicious -- an uncacheable region, an MSROM
  line inside a timing window.  Reported, never fatal.
- ``INFO``: analysis-coverage notes (e.g. an indirect branch the
  static walk cannot follow).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


#: Shared cap on per-entry divergence diagnostics.  Every differential
#: mode (XC001 placement, XC002 iTLB, XC003 stores, XC004 secrets)
#: reports at most this many findings before folding the remainder
#: into a single "plus N further" note, so one systemic drift cannot
#: drown the report.
MAX_DIVERGENCE_DIAGNOSTICS = 20


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class CatalogEntry:
    """One documented diagnostic kind."""

    code: str
    title: str
    severity: Severity
    hint: str


#: The diagnostic catalog (Section II-B placement rules -> UC0xx,
#: determinism of the experiment harness -> DT0xx, simulator
#: cross-check -> XC0xx).  Codes are stable API.
CATALOG: Dict[str, CatalogEntry] = {
    entry.code: entry
    for entry in (
        CatalogEntry(
            "UC001", "region-not-cacheable", Severity.WARNING,
            "the region exceeds the 3-line/18-uop budget or contains an "
            "instruction (e.g. PAUSE) observed not to enter the cache; "
            "split it or drop the uncacheable instruction",
        ),
        CatalogEntry(
            "UC002", "macro-op-wider-than-line", Severity.ERROR,
            "a single macro-op's micro-ops exceed one line and may not "
            "span a boundary (placement rule 3); it can never be cached",
        ),
        CatalogEntry(
            "UC003", "gadget-misaligned", Severity.ERROR,
            "the chain region does not start at its claimed "
            "arena + way*stride + set*32 address; check .org targets "
            "and arena alignment",
        ),
        CatalogEntry(
            "UC004", "eviction-set-incomplete", Severity.ERROR,
            "a claimed set receives fewer lines than the claimed ways; "
            "the conflict will not evict and the channel reads flat",
        ),
        CatalogEntry(
            "UC005", "unintended-set-collision", Severity.ERROR,
            "code lands in a cache set the footprint does not claim "
            "(or a claimed-disjoint pair overlaps); fix the region "
            "addresses or the claimed set list",
        ),
        CatalogEntry(
            "UC006", "lcp-stall-in-hot-loop", Severity.WARNING,
            "length-changing prefixes inside a loop body stall the "
            "predecoder every MITE iteration; intentional in tigers, "
            "a hazard anywhere else",
        ),
        CatalogEntry(
            "UC007", "msrom-line-in-timing-window", Severity.WARNING,
            "a microcoded instruction between the probe's RDTSC pair "
            "adds a whole MSROM line and sequencing latency to every "
            "sample; move it out of the timed window",
        ),
        CatalogEntry(
            "UC008", "imm64-slot-inflation", Severity.INFO,
            "64-bit immediates consume two micro-op slots (placement "
            "rule 6) and push this region onto an extra line; use a "
            "32-bit immediate or hoist the constant",
        ),
        CatalogEntry(
            "UC009", "unresolvable-indirect-flow", Severity.INFO,
            "an indirect branch/return leaves the static walk; "
            "footprint predictions past this point are incomplete",
        ),
        CatalogEntry(
            "UC010", "wild-branch-target", Severity.ERROR,
            "a direct branch targets an address with no instruction; "
            "the simulator will fault with a wild fetch",
        ),
        CatalogEntry(
            "DT001", "unseeded-rng-in-driver", Severity.WARNING,
            "an unseeded random.Random() (or module-level random.*) in "
            "a driver makes trials unreproducible; thread a seed "
            "through",
        ),
        CatalogEntry(
            "DT002", "cache-key-nondeterminism", Severity.WARNING,
            "time/uuid/urandom feeding cache-key construction poisons "
            "the content-addressed store; keys must be pure functions "
            "of the job parameters",
        ),
        CatalogEntry(
            "XC001", "placement-model-divergence", Severity.ERROR,
            "the simulator filled a set/line count the static model "
            "did not predict; the placement logic and the analyzer "
            "have drifted apart",
        ),
        CatalogEntry(
            "RC001", "itlb-footprint-mismatch", Severity.ERROR,
            "the code pages statically reachable from the claimed "
            "entry differ from the claimed iTLB page set; the "
            "contention pair will not press (or avoid) the iTLB the "
            "way the experiment assumes -- fix the page list or the "
            "region layout",
        ),
        CatalogEntry(
            "RC002", "store-footprint-mismatch", Severity.ERROR,
            "the number of static store sites reachable from the "
            "claimed entry differs from the claimed count; the "
            "store-buffer pressure the pair advertises is wrong -- "
            "recount the stores (unrolled bodies and the probe's "
            "result store all count)",
        ),
        CatalogEntry(
            "RC003", "resource-pair-mismatch", Severity.ERROR,
            "a claimed-conflict pair's combined footprint fits the "
            "shared resource (no contention possible), or a "
            "claimed-disjoint pair oversubscribes it; resize the "
            "footprints or fix the capacity parameter",
        ),
        CatalogEntry(
            "XC002", "itlb-model-divergence", Severity.ERROR,
            "the live simulator filled iTLB pages the static claim "
            "did not predict (or never touched claimed ones); the "
            "page-reachability analysis and the fetch path have "
            "drifted apart",
        ),
        CatalogEntry(
            "XC003", "store-model-divergence", Severity.ERROR,
            "the live simulator drained stores from sites the static "
            "claim did not predict (or claimed sites never drained); "
            "the store-site analysis and the backend have drifted "
            "apart",
        ),
        CatalogEntry(
            "TA001", "untracked-secret-source", Severity.ERROR,
            "a SecretClaim names an entry label, register or data "
            "label the program does not define; the taint analysis "
            "has nothing to seed and the claim verifies vacuously -- "
            "fix the claim or the layout",
        ),
        CatalogEntry(
            "TA002", "secret-dependent-fetch", Severity.INFO,
            "fetch regions are control-dependent on the declared "
            "secret: which 32-byte regions enter the µop cache (and "
            "which DSB sets/iTLB pages they occupy) encodes the "
            "secret -- this is the leak the paper measures",
        ),
        CatalogEntry(
            "TA003", "secret-dependent-memory-operand", Severity.INFO,
            "a load/store address is computed from the secret; the "
            "access pattern leaks through data-side channels even if "
            "fetch stays secret-independent",
        ),
        CatalogEntry(
            "TA004", "constant-time-violation", Severity.ERROR,
            "a claim declared constant_time but the secret reaches a "
            "branch condition, an indirect target or a memory "
            "address; the code is not constant-time -- linearize the "
            "control flow or drop the declaration",
        ),
        CatalogEntry(
            "TA005", "secret-claim-mismatch", Severity.ERROR,
            "the resources the claim declares the secret leaks into "
            "(leaks_to) differ from what the taint analysis infers; "
            "update the declaration or fix the layout so they agree",
        ),
        CatalogEntry(
            "TA006", "dead-tainted-region", Severity.INFO,
            "secret taint reaches a fetch region that cannot enter "
            "the µop cache (uncacheable packing), so the DSB channel "
            "never observes it; the region is dead weight for the "
            "leak",
        ),
        CatalogEntry(
            "XC004", "secret-divergence-escape", Severity.ERROR,
            "two live runs with different secrets diverged in a "
            "dsb_fill/itlb_fill/sb_drain event the static taint "
            "analysis did not predict as secret-dependent; the "
            "analysis under-approximates and its capacity bound is "
            "unsound",
        ),
        CatalogEntry(
            "LT001", "target-build-failure", Severity.ERROR,
            "a lint target's builder raised before analysis could "
            "run; nothing about the target was verified -- fix the "
            "driver construction error in the context traceback",
        ),
    )
}


@dataclass
class Diagnostic:
    """One lint finding, anchored to a program location when possible."""

    code: str
    message: str
    severity: Optional[Severity] = None  # None -> catalog default
    addr: Optional[int] = None
    label: Optional[str] = None
    context: Optional[str] = None  # disasm line, source file, ...

    def __post_init__(self) -> None:
        entry = CATALOG.get(self.code)
        if entry is None:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if self.severity is None:
            self.severity = entry.severity

    @property
    def title(self) -> str:
        """Catalog short name of this diagnostic kind."""
        return CATALOG[self.code].title

    @property
    def hint(self) -> str:
        """Catalog fix hint."""
        return CATALOG[self.code].hint

    def location(self) -> str:
        """Human-readable program location."""
        parts = []
        if self.label:
            parts.append(self.label)
        if self.addr is not None:
            parts.append(f"{self.addr:#x}")
        return "@".join(parts) if parts else "<program>"

    def format(self) -> str:
        """One-line rendering: ``UC004 error eviction-set-incomplete
        @probe_r3@0x441060: ...``"""
        ctx = f" [{self.context}]" if self.context else ""
        return (f"{self.code} {self.severity} {self.title} "
                f"{self.location()}: {self.message}{ctx}")

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready rendering."""
        return {
            "code": self.code,
            "title": self.title,
            "severity": str(self.severity),
            "message": self.message,
            "addr": self.addr,
            "label": self.label,
            "context": self.context,
            "hint": self.hint,
        }


class LintError(Exception):
    """Raised when a preflight check finds error-severity diagnostics."""

    def __init__(self, diagnostics: List[Diagnostic]):
        self.diagnostics = diagnostics
        lines = [d.format() for d in diagnostics]
        super().__init__(
            "lint preflight failed with "
            f"{len(diagnostics)} error(s):\n  " + "\n  ".join(lines)
        )


def worst_severity(diagnostics: List[Diagnostic]) -> Optional[Severity]:
    """The highest severity present, or None for a clean report."""
    return max((d.severity for d in diagnostics), default=None)


def errors_of(diagnostics: List[Diagnostic]) -> List[Diagnostic]:
    """Just the error-severity findings."""
    return [d for d in diagnostics if d.severity is Severity.ERROR]
