"""Attack-gadget verification: prove tiger/zebra chains do what their
:class:`~repro.core.exploitgen.FootprintSpec` claims.

A generated chain *claims* a footprint -- "I occupy ``ways`` lines in
each of these sets".  A silent layout mistake (an ``org`` landing one
region over, an arena overlapping another function's, a broken jump in
the chain) does not crash anything: the channel just reads flat and the
experiment wastes hours.  The verifier turns those mistakes into
immediate diagnostics:

- **UC003** -- a ``{name}_r{i}`` region label is not at its claimed
  ``arena + way*stride + set*32`` address;
- **UC005** -- a chain region's predicted cache set is not the claimed
  one, or a claimed-*disjoint* pair actually overlaps;
- **UC004** -- a claimed set ends up with fewer resident lines than the
  claimed ways (broken chain links count too: a region the jump chain
  never reaches is never fetched, hence never filled), or a claimed
  *conflict* pair cannot evict.

Claims compare **final mapped set indices** (after SMT / privilege
partitioning), so a claim made against physical sets still verifies
correctly on partitioned configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.isa.instruction import BranchKind
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.footprint import (
    FootprintReport,
    USER_PRIV,
    predicted_set,
)


@dataclass
class ChainClaim:
    """One generated chain: its entry-label prefix and footprint spec.

    ``kind`` is informational ("tiger" / "zebra" / "probe" ...); the
    layout checks are identical for all of them.
    """

    name: str
    spec: "FootprintSpec"  # repro.core.exploitgen.FootprintSpec
    kind: str = "chain"

    def body_entries(self) -> List[Tuple[int, int, int, int]]:
        """``(index, set, way, addr)`` for every claimed body region,
        in chain order (sets outer, ways inner -- generator order)."""
        out = []
        i = 0
        for s in self.spec.sets:
            for w in range(self.spec.ways):
                out.append((i, s, w, self.spec.region_addr(s, w)))
                i += 1
        return out


@dataclass
class PairClaim:
    """A claimed relation between two chains' footprints.

    ``relation``: ``"conflict"`` (the pair must contend -- transmitter
    vs receiver) or ``"disjoint"`` (the pair must never touch a common
    set -- zebra vs probe).
    """

    a: str
    b: str
    relation: str

    def __post_init__(self) -> None:
        if self.relation not in ("conflict", "disjoint"):
            raise ValueError(f"unknown relation {self.relation!r}")


def _final_set(
    claim: ChainClaim, set_idx: int, report: FootprintReport
) -> int:
    """Mapped cache set the claimed physical ``set_idx`` lands in."""
    entry = claim.spec.region_addr(set_idx, 0)
    fp = report.regions.get(entry)
    if fp is not None:
        return fp.set_index
    priv = (
        0 if report.program.is_kernel_code(entry) else USER_PRIV
    )
    return predicted_set(
        entry,
        report.config,
        thread=report.thread,
        privilege=priv,
        smt_active=report.smt_active,
    )


def _claimed_final_sets(
    claim: ChainClaim, report: FootprintReport
) -> Dict[int, int]:
    """physical claimed set -> final mapped set."""
    return {s: _final_set(claim, s, report) for s in claim.spec.sets}


def verify_chain(
    report: FootprintReport, claim: ChainClaim
) -> List[Diagnostic]:
    """Layout, mapping, connectivity and occupancy checks for one chain."""
    out: List[Diagnostic] = []
    program = report.program
    spec = claim.spec
    entries = claim.body_entries()
    mapped = _claimed_final_sets(claim, report)
    #: final set -> lines the verified chain actually lands there
    landed: Dict[int, int] = {}

    reachable = True  # chain connectivity so far
    for i, s, w, want_addr in entries:
        label = f"{claim.name}_r{i}"
        have_addr = program.labels.get(label)
        if have_addr is None:
            out.append(
                Diagnostic(
                    "UC004",
                    f"{claim.kind} {claim.name!r}: region label "
                    f"{label!r} missing; the chain is shorter than the "
                    f"claimed {len(entries)} regions",
                    label=claim.name,
                )
            )
            reachable = False
            continue
        if have_addr != want_addr:
            out.append(
                Diagnostic(
                    "UC003",
                    f"{claim.kind} {claim.name!r}: {label} is at "
                    f"{have_addr:#x}, claimed slot (set {s}, way {w}) "
                    f"is {want_addr:#x}",
                    addr=have_addr,
                    label=label,
                )
            )
        fp = report.regions.get(have_addr)
        if fp is None or not fp.cacheable:
            out.append(
                Diagnostic(
                    "UC004",
                    f"{claim.kind} {claim.name!r}: region {label} at "
                    f"{have_addr:#x} is not cacheable, so it installs "
                    f"no line in set {s}",
                    addr=have_addr,
                    label=label,
                )
            )
            continue
        if fp.set_index != mapped[s]:
            out.append(
                Diagnostic(
                    "UC005",
                    f"{claim.kind} {claim.name!r}: region {label} at "
                    f"{have_addr:#x} maps to set {fp.set_index}, "
                    f"claimed set {s} maps to {mapped[s]}",
                    addr=have_addr,
                    label=label,
                )
            )
        # A region is fetched (and fills) when every link before it was
        # intact, regardless of whether its own exit is broken.
        if reachable:
            landed[fp.set_index] = landed.get(fp.set_index, 0) + fp.n_lines
        # connectivity: the region must end in a direct jump to the
        # next region (or the chain exit); a broken link means every
        # later region is never fetched.
        term = fp.terminator
        if i + 1 < len(entries):
            want_next = program.labels.get(f"{claim.name}_r{i + 1}")
            if (
                term.branch_kind is not BranchKind.JMP
                or term.target != want_next
            ):
                out.append(
                    Diagnostic(
                        "UC004",
                        f"{claim.kind} {claim.name!r}: {label} does not "
                        f"jump to {claim.name}_r{i + 1}; regions past "
                        f"it are never fetched",
                        addr=term.addr,
                        label=label,
                    )
                )
                reachable = False

    # occupancy: every claimed set must actually receive `ways` lines
    for s in spec.sets:
        got = landed.get(mapped[s], 0)
        if got < spec.ways:
            out.append(
                Diagnostic(
                    "UC004",
                    f"{claim.kind} {claim.name!r}: claimed set {s} "
                    f"(mapped {mapped[s]}) receives {got} line(s), "
                    f"claimed {spec.ways} ways",
                    label=claim.name,
                )
            )
    return out


def verify_pair(
    report: FootprintReport,
    chains: Dict[str, ChainClaim],
    pair: PairClaim,
) -> List[Diagnostic]:
    """Check a claimed conflict/disjointness between two chains.

    Uses the chains' *body* regions only: the shared prologue/epilogue
    scaffolding parks on a neutral set by construction and must not
    make two deliberately disjoint footprints look overlapping.
    """
    out: List[Diagnostic] = []
    a, b = chains.get(pair.a), chains.get(pair.b)
    for name, claim in ((pair.a, a), (pair.b, b)):
        if claim is None:
            out.append(
                Diagnostic(
                    "UC004",
                    f"pair claim references unknown chain {name!r}",
                )
            )
    if a is None or b is None:
        return out

    sets_a = set(_claimed_final_sets(a, report).values())
    sets_b = set(_claimed_final_sets(b, report).values())
    shared = sets_a & sets_b

    if pair.relation == "disjoint":
        if shared:
            out.append(
                Diagnostic(
                    "UC005",
                    f"chains {pair.a!r} and {pair.b!r} claim disjoint "
                    f"footprints but share set(s) "
                    f"{sorted(shared)}",
                    label=pair.b,
                )
            )
        return out

    # conflict: the receiver's sets must all be contended, and the
    # combined demand per shared set must exceed the associativity.
    ways = report.config.uop_cache_ways
    missing = sets_b - sets_a
    if missing:
        out.append(
            Diagnostic(
                "UC004",
                f"chain {pair.a!r} claims a conflict with {pair.b!r} "
                f"but misses its set(s) {sorted(missing)}; those sets "
                f"never see contention",
                label=pair.a,
            )
        )
    if shared:
        # Under-provisioned contention is a sensitivity problem, not a
        # layout bug (parameter sweeps legitimately explore it), so it
        # warns instead of erroring.
        demand = a.spec.ways + b.spec.ways
        if demand <= ways:
            out.append(
                Diagnostic(
                    "UC004",
                    f"chains {pair.a!r}+{pair.b!r} place {demand} "
                    f"line(s) in each shared set, within the "
                    f"{ways}-way associativity; conflict misses are "
                    f"not guaranteed",
                    severity=Severity.WARNING,
                    label=pair.a,
                )
            )
    return out


def verify_claims(
    report: FootprintReport,
    chains: Sequence[ChainClaim],
    pairs: Sequence[PairClaim] = (),
    resources: Sequence[object] = (),
) -> List[Diagnostic]:
    """Run every chain, pair and per-resource claim; the verifier
    entry point.  ``resources`` takes the contention suite's
    :class:`~repro.lint.resources.ITLBClaim` /
    :class:`~repro.lint.resources.StoreClaim` /
    :class:`~repro.lint.resources.ResourcePairClaim` mix."""
    out: List[Diagnostic] = []
    by_name = {c.name: c for c in chains}
    for claim in chains:
        out.extend(verify_chain(report, claim))
    for pair in pairs:
        out.extend(verify_pair(report, by_name, pair))
    if resources:
        from repro.lint.resources import verify_resource_claims

        out.extend(verify_resource_claims(report, resources))
    return out
