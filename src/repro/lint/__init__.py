"""``repro.lint``: static µop-cache footprint analysis, gadget
verification and simulator cross-checking.

Following uops.info's static instruction characterization and uGen's
validate-before-run discipline, this package derives everything the
attacks depend on -- set indices, line packing, cacheability, conflict
relations -- from the assembled :class:`~repro.isa.program.Program` and
a :class:`~repro.cpu.config.CPUConfig` alone.  Three consumers:

- ``python -m repro lint`` (see :mod:`repro.lint.runner`) lints the
  shipped attack programs and the gadget corpus;
- :class:`repro.session.AttackSession` runs a construction-time
  preflight (opt-out via the ``preflight`` class attribute);
- the cross-check mode (:mod:`repro.lint.crosscheck`) diffs static
  predictions against live ``dsb_fill`` events, a differential test of
  the simulator's placement logic.
"""

from repro.lint.crosscheck import (
    CrossCheckResult,
    FillDiff,
    SecretDiffResult,
    cross_check,
    cross_check_secrets,
)
from repro.lint.diagnostics import (
    CATALOG,
    MAX_DIVERGENCE_DIAGNOSTICS,
    CatalogEntry,
    Diagnostic,
    LintError,
    Severity,
    errors_of,
    worst_severity,
)
from repro.lint.footprint import (
    FootprintReport,
    RegionFootprint,
    analyze,
    predicted_set,
)
from repro.lint.gadgets import (
    ChainClaim,
    PairClaim,
    verify_chain,
    verify_claims,
    verify_pair,
)
from repro.lint.resources import (
    ITLBClaim,
    ResourceCheckResult,
    ResourcePairClaim,
    StoreClaim,
    cross_check_itlb,
    cross_check_stores,
    static_pages,
    static_store_sites,
    verify_resource_claims,
)
from repro.lint.rules import check_program, check_sources
from repro.lint.taint import (
    LeakReport,
    SecretClaim,
    TaintReport,
    analyze_claim,
    verify_secret_claims,
)

__all__ = [
    "CATALOG",
    "MAX_DIVERGENCE_DIAGNOSTICS",
    "CatalogEntry",
    "ChainClaim",
    "CrossCheckResult",
    "Diagnostic",
    "FillDiff",
    "FootprintReport",
    "ITLBClaim",
    "LeakReport",
    "LintError",
    "PairClaim",
    "RegionFootprint",
    "ResourceCheckResult",
    "ResourcePairClaim",
    "SecretClaim",
    "SecretDiffResult",
    "Severity",
    "StoreClaim",
    "TaintReport",
    "analyze",
    "analyze_claim",
    "check_program",
    "check_sources",
    "cross_check",
    "cross_check_itlb",
    "cross_check_secrets",
    "cross_check_stores",
    "errors_of",
    "predicted_set",
    "static_pages",
    "static_store_sites",
    "verify_chain",
    "verify_claims",
    "verify_pair",
    "verify_secret_claims",
    "worst_severity",
]
