"""Static µop-cache footprint analysis of an assembled program.

This walks a :class:`~repro.isa.program.Program` region-entry by
region-entry -- exactly the granularity at which the micro-op cache is
filled -- and predicts, for a given :class:`~repro.cpu.config.CPUConfig`,
which cache set every fetch entry maps to, how many lines its packing
consumes, whether it is cacheable at all, and where the MSROM lines,
LCP stall sites and 64-bit-immediate slot inflation sit.  No simulator
object is constructed and nothing executes: the full corpus lints in
milliseconds.

The region-walk termination rules and the set-index arithmetic are
*deliberately re-stated here* rather than imported from
``repro.frontend.pipeline`` / ``repro.uopcache.cache``.  The analyzer
and the simulator share only the placement packer
(:func:`repro.uopcache.placement.build_lines`) and the decode metadata
in ``repro.isa`` -- so the cross-check mode
(:mod:`repro.lint.crosscheck`) is a genuine differential test: if the
front end's walk or the cache's mapping drifts, the diff catches it
instead of both sides moving together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.cpu.config import CPUConfig
from repro.isa.instruction import BranchKind, MacroOp, UopKind, region_of
from repro.isa.program import Program
from repro.uopcache.placement import LineSpec, build_lines

#: Privilege levels, restated from ``repro.cpu.thread`` (kernel ring 0,
#: user ring 3) so the analyzer stays simulator-independent.
KERNEL_PRIV = 0
USER_PRIV = 3


def predicted_set(
    entry: int,
    config: CPUConfig,
    thread: int = 0,
    privilege: int = USER_PRIV,
    smt_active: bool = False,
) -> int:
    """Cache set a fetch entry address maps to, from first principles.

    Base index is ``(entry / region_bytes) mod sets``; SMT static
    sharing halves the index space per thread, and the
    privilege-partition mitigation halves it again per ring (Section
    III / Section VIII).  Mirrors -- independently -- the mapping in
    ``UopCache.set_index``.
    """
    frac = config.uop_cache_sets
    offset = 0
    if smt_active and config.uop_cache_sharing == "static":
        frac //= 2
        offset += frac * (thread & 1)
    if config.privilege_partition_uop_cache:
        frac //= 2
        offset += frac * (0 if privilege == KERNEL_PRIV else 1)
    return offset + ((entry // config.region_bytes) % frac)


@dataclass
class RegionFootprint:
    """Everything the analyzer knows about one fetch entry point.

    ``entry`` is the address fetch enters the region at (cache lines
    are tagged by entry, not by region base, so two entries into the
    same 32 bytes are two distinct footprints).  ``specs`` is the
    Section II-B line packing, ``None`` when the region cannot be
    cached.  ``successors`` are the statically resolvable next fetch
    entries; ``unresolved`` flags an exit through an indirect
    branch/return the static walk cannot follow.
    """

    entry: int
    macros: Tuple[MacroOp, ...]
    specs: Optional[List[LineSpec]]
    set_index: int
    privilege: int
    label: Optional[str] = None
    successors: Tuple[int, ...] = ()
    unresolved: bool = False
    #: Direct-branch targets with no instruction (addr_of_branch, target).
    wild_targets: Tuple[Tuple[int, int], ...] = ()

    # -- packing-derived views ----------------------------------------

    @property
    def cacheable(self) -> bool:
        """True when the region packs into the cache at all."""
        return self.specs is not None

    @property
    def n_lines(self) -> int:
        """Lines this entry's fill would install (0 if uncacheable)."""
        return len(self.specs) if self.specs else 0

    @property
    def slot_count(self) -> int:
        """Total micro-op cache slots over all lines."""
        return sum(s.slots for s in self.specs) if self.specs else 0

    @property
    def msrom_lines(self) -> int:
        """Lines consumed whole by microcoded instructions (rule 2)."""
        return sum(1 for s in self.specs if s.msrom) if self.specs else 0

    @property
    def lcp_count(self) -> int:
        """Length-changing prefixes in the walked instructions."""
        return sum(m.lcp_count for m in self.macros)

    @property
    def imm64_uops(self) -> int:
        """Micro-ops paying the two-slot 64-bit-immediate tax (rule 6)."""
        return sum(
            1 for m in self.macros for u in m.uops if u.slots > 1
        )

    @property
    def has_rdtsc(self) -> bool:
        """True when the walk contains a timestamp read."""
        return any(
            u.kind is UopKind.RDTSC for m in self.macros for u in m.uops
        )

    @property
    def terminator(self) -> MacroOp:
        """The instruction that ended the walk."""
        return self.macros[-1]

    def location(self) -> str:
        """``label@0xaddr`` rendering for diagnostics."""
        if self.label:
            return f"{self.label}@{self.entry:#x}"
        return f"{self.entry:#x}"


@dataclass
class FootprintReport:
    """The analyzer's output: one :class:`RegionFootprint` per entry.

    ``regions`` is keyed by fetch entry address.  ``thread`` and
    ``smt_active`` record the mapping context the prediction was made
    for (they change set indices under static SMT sharing).
    """

    program: Program
    config: CPUConfig
    regions: Dict[int, RegionFootprint] = field(default_factory=dict)
    thread: int = 0
    smt_active: bool = False

    def footprint_at(self, entry: int) -> Optional[RegionFootprint]:
        """Footprint for one fetch entry, if analyzed."""
        return self.regions.get(entry)

    def cacheable_regions(self) -> List[RegionFootprint]:
        """Footprints that actually enter the cache, by address."""
        return [
            fp for _, fp in sorted(self.regions.items()) if fp.cacheable
        ]

    def by_set(self) -> Dict[int, List[RegionFootprint]]:
        """Cacheable footprints grouped by predicted set index."""
        out: Dict[int, List[RegionFootprint]] = {}
        for fp in self.cacheable_regions():
            out.setdefault(fp.set_index, []).append(fp)
        return out

    def set_occupancy(self) -> Dict[int, int]:
        """Predicted lines per set if every entry were resident at once.

        This is the *demand* on each set; compare against
        ``config.uop_cache_ways`` to find guaranteed conflicts.
        """
        out: Dict[int, int] = {}
        for fp in self.cacheable_regions():
            out[fp.set_index] = out.get(fp.set_index, 0) + fp.n_lines
        return out

    def expected_fill(self, entry: int) -> Optional[Tuple[int, int]]:
        """Predicted ``(set_index, n_lines)`` of a fill at ``entry``,
        or ``None`` when the entry is unknown or uncacheable."""
        fp = self.regions.get(entry)
        if fp is None or not fp.cacheable:
            return None
        return fp.set_index, fp.n_lines

    def unresolved_exits(self) -> List[RegionFootprint]:
        """Footprints whose control flow leaves the static walk."""
        return [
            fp for _, fp in sorted(self.regions.items()) if fp.unresolved
        ]

    def wild_branches(self) -> List[Tuple[int, int]]:
        """All (branch addr, target) pairs pointing at no instruction."""
        out = []
        for _, fp in sorted(self.regions.items()):
            out.extend(fp.wild_targets)
        return out


def _label_map(program: Program) -> Dict[int, str]:
    """addr -> label for code labels (first label wins per address)."""
    out: Dict[int, str] = {}
    for name, addr in sorted(program.labels.items()):
        out.setdefault(addr, name)
    return out


def _nearest_label(
    entry: int, labels: Dict[int, str], ordered: List[int]
) -> Optional[str]:
    """Exact-match label, else the closest preceding one (as ``lbl+off``)."""
    if entry in labels:
        return labels[entry]
    best = None
    for addr in ordered:
        if addr > entry:
            break
        best = addr
    if best is None:
        return None
    return f"{labels[best]}+{entry - best:#x}"


def _walk(program: Program, config: CPUConfig, entry: int) -> Tuple[MacroOp, ...]:
    """Prediction-independent decode of one region entry.

    Restates the simulator's walk-termination rules: stay inside the
    entry's aligned region, stop after any non-JCC control transfer,
    stop after a serialising (HALT/CPUID) instruction.
    """
    macros: List[MacroOp] = []
    region = region_of(entry, config.region_bytes)
    addr = entry
    while True:
        macro = program.at(addr)
        if macro is None:
            break
        if addr != entry and region_of(addr, config.region_bytes) != region:
            break
        macros.append(macro)
        if macro.branch_kind not in (BranchKind.NONE, BranchKind.JCC):
            break
        if any(u.kind in (UopKind.HALT, UopKind.CPUID) for u in macro.uops):
            break
        addr = macro.end
    return tuple(macros)


def _successors(
    program: Program, macros: Tuple[MacroOp, ...]
) -> Tuple[List[int], List[Tuple[int, int]], bool]:
    """Statically resolvable next fetch entries of one walk.

    Returns ``(successors, wild_targets, unresolved)``.  Successor
    discovery mirrors next-fetch-address selection: taken JCC targets
    anywhere in the walk, the terminator's transfer target, and the
    sequential fall-through where the simulator would continue fetch.
    """
    succ: List[int] = []
    wild: List[Tuple[int, int]] = []
    unresolved = False

    def add(addr: Optional[int], branch_addr: Optional[int] = None) -> None:
        if addr is None:
            return
        if program.has_code(addr):
            if addr not in succ:
                succ.append(addr)
        elif branch_addr is not None:
            wild.append((branch_addr, addr))

    last = macros[-1]
    for macro in macros:
        if macro.branch_kind is BranchKind.JCC:
            add(macro.target, macro.addr)  # taken edge

    kind = last.branch_kind
    if kind in (BranchKind.JMP, BranchKind.CALL):
        add(last.target, last.addr)
        if kind is BranchKind.CALL:
            add(last.end)  # return site, reached through RET
    elif kind in (BranchKind.JMP_IND, BranchKind.CALL_IND, BranchKind.RET):
        unresolved = True
        if kind is BranchKind.CALL_IND:
            add(last.end)
    elif kind is BranchKind.SYSCALL:
        add(program.labels.get("kernel_entry"), last.addr)
        add(last.end)  # SYSRET pops the link back here
    elif kind is BranchKind.SYSRET:
        pass  # return target comes off the kernel link stack
    elif any(u.kind is UopKind.HALT for u in last.uops):
        pass  # thread stops
    else:
        # Serialising CPUID and plain region-boundary fall-through both
        # resume fetch at the next instruction.
        add(last.end)
    return succ, wild, unresolved


def analyze(
    program: Program,
    config: CPUConfig,
    entries: Optional[Iterable[int]] = None,
    thread: int = 0,
    smt_active: bool = False,
) -> FootprintReport:
    """Build the static footprint report for ``program`` on ``config``.

    Reachability is a BFS over fetch entries seeded from the program
    entry point, every code label (attack drivers enter gadget chains
    by label) and any extra ``entries``.  Each discovered entry gets a
    :class:`RegionFootprint` with its predicted set index and packing.
    """
    labels = _label_map(program)
    ordered_label_addrs = sorted(labels)

    seeds: List[int] = []
    if program.has_code(program.entry):
        seeds.append(program.entry)
    for addr in ordered_label_addrs:
        if program.has_code(addr) and addr not in seeds:
            seeds.append(addr)
    for addr in entries or ():
        if program.has_code(addr) and addr not in seeds:
            seeds.append(addr)

    report = FootprintReport(
        program=program, config=config, thread=thread, smt_active=smt_active
    )
    queue = list(seeds)
    seen: Set[int] = set(queue)
    while queue:
        entry = queue.pop(0)
        macros = _walk(program, config, entry)
        if not macros:
            continue
        specs = build_lines(
            macros,
            uops_per_line=config.uops_per_line,
            max_lines_per_region=config.max_lines_per_region,
        )
        succ, wild, unresolved = _successors(program, macros)
        priv = (
            KERNEL_PRIV if program.is_kernel_code(entry) else USER_PRIV
        )
        report.regions[entry] = RegionFootprint(
            entry=entry,
            macros=macros,
            specs=specs,
            set_index=predicted_set(
                entry, config, thread=thread, privilege=priv,
                smt_active=smt_active,
            ),
            privilege=priv,
            label=_nearest_label(entry, labels, ordered_label_addrs),
            successors=tuple(succ),
            unresolved=unresolved,
            wild_targets=tuple(wild),
        )
        for nxt in succ:
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return report
