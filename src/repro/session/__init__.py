"""Attack-session layer: shared driver lifecycle over reusable cores."""

from repro.session.base import (
    AttackSession,
    no_preflight,
    preflight_suppressed,
    read_elapsed,
)
from repro.session.pool import SessionPool, shared_pool

__all__ = [
    "AttackSession",
    "SessionPool",
    "no_preflight",
    "preflight_suppressed",
    "read_elapsed",
    "shared_pool",
]
