"""Attack-session layer: shared driver lifecycle over reusable cores."""

from repro.session.base import AttackSession, read_elapsed

__all__ = ["AttackSession", "read_elapsed"]
