"""Per-process reuse pool for attack sessions.

Building an :class:`~repro.session.base.AttackSession` is the
expensive part of most attack experiments: the program is assembled,
the core constructed, and the lint preflight run.  ``reset()`` is
cheap -- it restores the exact post-construction state without any of
that work (PR 2's reset-parity tests are the guarantee).  Long-lived
processes that run the same experiment repeatedly -- the serving
layer's worker tier above all -- should therefore build each session
once and reset it between uses.

:class:`SessionPool` is that memo: ``acquire(key, factory)`` returns
the cached session for ``key`` after resetting it, or builds one via
``factory`` on first use.  Pools are process-local by design (cores
are not picklable and must never cross process boundaries); the
module-level :func:`shared_pool` gives every caller in one process the
same instance.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional


class SessionPool:
    """Keyed memo of reusable sessions with reset-on-acquire.

    ::

        pool = SessionPool()
        chan = pool.acquire("covert", lambda: CovertChannel(ChannelParams()))
        chan.transmit(b"uop")
        chan = pool.acquire("covert", ...)   # same instance, reset()

    Anything with a ``reset()`` method qualifies -- every
    :class:`~repro.session.base.AttackSession` subclass, but also
    composite drivers like :class:`~repro.core.keyextract.KeyExtractor`
    that own sessions internally.
    """

    def __init__(self) -> None:
        self._sessions: Dict[str, Any] = {}
        self.builds = 0
        self.reuses = 0

    def acquire(self, key: str, factory: Callable[[], Any]):
        """The pooled session for ``key``, freshly reset; built via
        ``factory()`` on first use."""
        session = self._sessions.get(key)
        if session is None:
            session = factory()
            self._sessions[key] = session
            self.builds += 1
        else:
            session.reset()
            self.reuses += 1
        return session

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, key: str) -> bool:
        return key in self._sessions

    def discard(self, key: str) -> bool:
        """Drop one pooled session (e.g. after it raised mid-trial and
        its state can no longer be trusted)."""
        return self._sessions.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every pooled session."""
        self._sessions.clear()


_SHARED: Optional[SessionPool] = None


def shared_pool() -> SessionPool:
    """The process-wide session pool (created on first use)."""
    global _SHARED
    if _SHARED is None:
        _SHARED = SessionPool()
    return _SHARED
