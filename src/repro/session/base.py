"""The attack-session layer: one lifecycle for every attack driver.

Every attack in the paper -- the tiger/zebra covert channels
(Section V), the Spectre variants (Section VI) and the key extraction
(Section VI-B) -- shares the same skeleton: build a program, construct
a core, prime/send/probe, calibrate a timing threshold, classify.
:class:`AttackSession` owns that skeleton once, so the eight drivers
in :mod:`repro.core` shrink to their program builder plus send/probe
hooks and none of the glue can drift between copies.

The layer also owns the core's *lifecycle*: repeated trials reuse one
``Core`` through :meth:`AttackSession.reset` instead of re-assembling
and rebuilding per trial.  ``Core.reset()`` restores the
post-construction state exactly (the reset-parity tests assert
byte-identical trials) while keeping the assembled program and the
front end's memoized region decodes -- which is where the trial
throughput comes from (see ``benchmarks/test_session_throughput.py``).

Subclass contract::

    class MyAttack(AttackSession):
        def __init__(self, ..., config=None, noise=None):
            self.knob = ...              # anything build_program needs
            super().__init__(config or CPUConfig.skylake(), noise)

        def build_program(self):         # required
            ...
        def setup(self):                 # optional: post-assembly pokes
            ...                          # (re-applied after every reset)

``setup()`` exists because some drivers patch memory after assembly
(function-pointer tables, planted calibration bytes); a reset re-images
memory from the program, so those pokes must be re-applied through the
hook rather than inline in ``__init__``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.timing import ProbeTiming, TimingClassifier
from repro.cpu.config import CPUConfig
from repro.cpu.core import Core
from repro.cpu.counters import PerfCounters
from repro.cpu.noise import NoiseModel
from repro.isa.program import Program

#: Sentinel for ``reset(noise=...)``: "keep the current model".
_KEEP_NOISE = object()

#: Per-thread preflight-suppression depth (see :func:`no_preflight`).
_preflight_suppressed = threading.local()


def preflight_suppressed() -> bool:
    """True while the *current thread* is inside :func:`no_preflight`."""
    return getattr(_preflight_suppressed, "depth", 0) > 0


@contextmanager
def no_preflight() -> Iterator[None]:
    """Build sessions without the construction-time lint preflight.

    Thread-local and re-entrant: suppression only affects sessions the
    current thread constructs, so a serve worker computing job keys in
    one thread cannot race another thread's lint-gated construction
    (the save/restore of a class-global flag did exactly that, leaving
    the preflight stuck off process-wide).  The lint runner and the
    synthesis pipeline both build through this -- they want diagnostics
    as data, not a raised ``LintError``.
    """
    _preflight_suppressed.depth = getattr(
        _preflight_suppressed, "depth", 0) + 1
    try:
        yield
    finally:
        _preflight_suppressed.depth -= 1


def read_elapsed(core: Core, addr: int) -> int:
    """Read a stored RDTSC delta, clamping wraparound to zero.

    With timer jitter two nearby RDTSC reads can appear to go
    backwards; the subtraction then wraps around 2^64.  Attackers
    clamp such garbage samples, and so do we.
    """
    value = core.read_mem(addr)
    if value >> 63:
        return 0
    return value


class AttackSession:
    """Base class owning program build, core lifecycle, cycle
    accounting and calibration for one attack instance."""

    #: Opt-out switch for the static lint preflight (class attribute so
    #: a subclass -- or a harness that knowingly builds broken layouts
    #: -- can disable it wholesale).  When on, construction runs
    #: ``repro.lint`` over the freshly built program and refuses to
    #: hand back a session whose gadget layout provably cannot do what
    #: it claims (raising :class:`repro.lint.LintError`) -- failing in
    #: milliseconds instead of after a silently-flat experiment.
    preflight: bool = True

    def __init__(self, config: CPUConfig, noise: Optional[NoiseModel] = None,
                 engine: Optional[str] = None):
        if engine is not None:
            # Engine override folded into the config, so the session's
            # config -- and any harness job keys derived from it --
            # names the backend that actually ran.
            config = config.with_options(engine=engine)
        self.config = config
        self.noise = noise
        self.program = self.build_program()
        self.core = Core(config, self.program, noise=noise)
        self.total_cycles = 0
        self.timing: Optional[ProbeTiming] = None
        self.classifier: Optional[TimingClassifier] = None
        #: Findings of the construction-time preflight (all severities);
        #: empty when the preflight is disabled.
        self.lint_findings: list = []
        #: Preflight taint analysis (``None`` until the preflight runs
        #: a driver that declares secrets).
        self.taint_report = None
        self.setup()
        if self.preflight and not preflight_suppressed():
            self._run_preflight()

    # ------------------------------------------------------------------
    # subclass hooks

    def build_program(self) -> Program:
        """Assemble the attack's program (called once, at construction)."""
        raise NotImplementedError

    def setup(self) -> None:
        """Post-assembly state installation (e.g. function-pointer
        tables).  Runs after construction and after every
        :meth:`reset`; keep it idempotent and architectural-only."""

    def lint_claims(self) -> Tuple[list, list]:
        """``(chains, pairs)`` the driver claims about its gadget layout.

        Drivers populate ``self._lint_claims`` /  ``self._lint_pairs``
        inside :meth:`build_program` (where the
        :class:`~repro.core.exploitgen.FootprintSpec` objects live);
        override this instead for computed claims.
        """
        return (
            getattr(self, "_lint_claims", []),
            getattr(self, "_lint_pairs", []),
        )

    def lint_resource_claims(self) -> list:
        """Per-resource claims (iTLB pages, store sites) the driver
        makes about its layout; see :mod:`repro.lint.resources`.
        Drivers populate ``self._lint_resources`` in
        :meth:`build_program`; override for computed claims.
        """
        return getattr(self, "_lint_resources", [])

    def lint_secret_claims(self) -> list:
        """:class:`~repro.lint.taint.SecretClaim` declarations of
        where the driver's secrets live (a register at an entry, a
        data label, or the choice between alternative entries); the
        preflight runs the secret-flow taint analysis over them.
        Drivers populate ``self._lint_secrets`` in
        :meth:`build_program`; override for computed claims.
        """
        return getattr(self, "_lint_secrets", [])

    # ------------------------------------------------------------------
    # preflight

    def _run_preflight(self) -> None:
        """Statically verify the built program and the driver's claims.

        Imported lazily: ``repro.lint`` is a consumer of the session
        layer's drivers in its runner, so the dependency must stay
        runtime-only here.
        """
        from repro.lint import (
            LintError,
            analyze,
            check_program,
            errors_of,
            verify_claims,
            verify_secret_claims,
        )

        report = analyze(self.program, self.config)
        chains, pairs = self.lint_claims()
        resources = self.lint_resource_claims()
        self.lint_findings = check_program(report)
        self.lint_findings.extend(
            verify_claims(report, chains, pairs, resources)
        )
        secrets = self.lint_secret_claims()
        #: Taint-analysis result of the preflight (``None`` when the
        #: driver declares no secrets); the lint runner and the XC004
        #: differential mode reuse it instead of re-analyzing.
        self.taint_report = None
        if secrets:
            self.taint_report = verify_secret_claims(report, secrets)
            self.lint_findings.extend(self.taint_report.diagnostics)
        errors = errors_of(self.lint_findings)
        if errors:
            raise LintError(errors)

    # ------------------------------------------------------------------
    # lifecycle

    def reset(self, noise=_KEEP_NOISE) -> None:
        """Return the session to its just-constructed state.

        Delegates to ``Core.reset()`` (which keeps the assembled
        program and decode memos), zeroes the cycle account, drops the
        fitted classifier, and re-runs :meth:`setup`.  By default the
        existing noise model is kept and rewound to its seed; pass a
        model (or ``None``) to swap it.
        """
        if noise is _KEEP_NOISE:
            self.core.reset()
        else:
            self.core.reset(noise=noise)
            self.noise = noise
        self.total_cycles = 0
        self.timing = None
        self.classifier = None
        self.setup()

    def run(self, trial: Callable[["AttackSession"], object],
            observe=None) -> object:
        """Run one ``trial(self)``, optionally under observation.

        ``observe`` attaches structured-event consumers for the
        duration of the trial and detaches them afterwards (collected
        data stays on the consumer).  Accepted forms:

        - an object with the ``connect(core)`` / ``close()`` protocol
          (:class:`repro.observe.TraceRecorder`,
          :class:`repro.observe.CounterSampler`, ...);
        - a bare callable, subscribed to every event kind;
        - a list/tuple mixing either.

        With ``observe=None`` (the default) no bus is attached and the
        core runs at full unobserved speed.
        """
        attached = self._attach_observers(observe)
        try:
            return trial(self)
        finally:
            self._detach_observers(attached)

    def run_trials(self, trial: Callable[["AttackSession"], object],
                   n: int, reset_between: bool = True,
                   observe=None) -> List[object]:
        """Run ``trial(self)`` ``n`` times, resetting the session
        before each so every trial starts from the identical
        post-construction state (cheap: no rebuild).

        ``observe`` attaches event consumers (see :meth:`run`) around
        the whole batch -- resets keep subscribers attached, so one
        consumer sees every trial.
        """
        attached = self._attach_observers(observe)
        try:
            results = []
            for _ in range(n):
                if reset_between:
                    self.reset()
                results.append(trial(self))
            return results
        finally:
            self._detach_observers(attached)

    def _attach_observers(self, observe) -> List[Tuple[str, object]]:
        if observe is None:
            return []
        items = list(observe) if isinstance(observe, (list, tuple)) else [observe]
        attached: List[Tuple[str, object]] = []
        for item in items:
            if hasattr(item, "connect"):
                item.connect(self.core)
                attached.append(("consumer", item))
            elif callable(item):
                self.core.observe().subscribe(item)
                attached.append(("fn", item))
            else:
                raise TypeError(
                    f"observe item {item!r} is neither a connectable "
                    "consumer nor a callable"
                )
        return attached

    def _detach_observers(self, attached: List[Tuple[str, object]]) -> None:
        for kind, item in attached:
            if kind == "consumer":
                item.close()
            elif self.core.observer is not None:
                self.core.observer.unsubscribe(item)

    # ------------------------------------------------------------------
    # cycle accounting (the one home for total_cycles)

    def _call(self, label: str, regs: Optional[Dict[str, int]] = None,
              thread_id: int = 0) -> PerfCounters:
        """Run ``label`` on one thread, charging its cycles to the
        session's account."""
        delta = self.core.call(label, thread_id=thread_id, regs=regs)
        self.total_cycles += self.core.cycles(thread_id)
        return delta

    def _run_smt(
        self,
        entries: Tuple,
        regs: Tuple[Optional[Dict[str, int]], Optional[Dict[str, int]]] = (None, None),
    ) -> Tuple[PerfCounters, PerfCounters]:
        """Run both SMT threads, charging the slower thread's cycles."""
        deltas = self.core.run_smt(entries, regs=regs)
        self.total_cycles += max(self.core.cycles(0), self.core.cycles(1))
        return deltas

    # ------------------------------------------------------------------
    # measurement glue

    def _elapsed(self, addr: int) -> int:
        """Read a stored RDTSC delta (wraparound-clamped)."""
        return read_elapsed(self.core, addr)

    def _probe_time(self, label: str = "probe",
                    result: str = "probe_result") -> int:
        """Run the timed probe and read back its RDTSC delta."""
        self._call(label)
        return self._elapsed(self.core.addr_of(result))

    def _fit(self, hits: Sequence[float],
             misses: Sequence[float]) -> ProbeTiming:
        """Fit the hit/miss threshold from calibration samples and
        install the classifier."""
        self.timing = ProbeTiming(hits, misses)
        self.classifier = TimingClassifier.from_timing(self.timing)
        return self.timing
