"""Named trace captures: run an experiment slice under the event bus.

One function per seconds-scale experiment, each returning a closed
:class:`TraceRecorder` plus a list of :class:`OccupancySnapshot`
heatmaps.  Both the ``python -m repro trace`` CLI verb and the serving
layer's ``trace`` experiment kind (:mod:`repro.serve.spec`) dispatch
through :data:`TRACE_TARGETS`, so the two paths capture identical
event streams.

Drivers are acquired through the process-wide
:class:`~repro.session.pool.SessionPool`: a long-lived worker process
serving repeated trace requests assembles each attack program once and
``reset()``s it per capture, which keeps captures deterministic (reset
restores the exact post-construction state) while skipping rebuild
cost.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.observe.events import TraceRecorder
from repro.observe.heatmap import OccupancySnapshot


def shared_pool():
    """The process-wide session pool.

    Imported lazily: the session layer sits on ``repro.cpu.core``,
    which itself imports ``repro.observe.events`` -- a module-level
    import here would close that loop during package init.
    """
    from repro.session.pool import shared_pool as _shared

    return _shared()


def _trace_covert() -> Tuple[TraceRecorder, List[OccupancySnapshot]]:
    from repro.core.covert import ChannelParams, CovertChannel

    channel = shared_pool().acquire(
        "trace.covert", lambda: CovertChannel(ChannelParams())
    )
    recorder = TraceRecorder().connect(channel.core)
    channel.transmit(b"uop")
    recorder.close()
    # Reproduce Listing 1's conflict pattern for the heatmaps: prime
    # the receiver, then run the tiger (same stripes: conflict) and
    # the zebra (complementary stripes: no conflict).
    channel.reset()
    capture = OccupancySnapshot.capture
    channel._prime()
    snaps = [capture(channel.core.uop_cache, "receiver primed")]
    channel._send(1)
    snaps.append(capture(channel.core.uop_cache, "after tiger (bit=1)"))
    channel._send(0)
    snaps.append(capture(channel.core.uop_cache, "after zebra (bit=0)"))
    return recorder, snaps


def _trace_spectre() -> Tuple[TraceRecorder, List[OccupancySnapshot]]:
    from repro.core.transient import UopCacheSpectreV1

    attack = shared_pool().acquire(
        "trace.spectre", lambda: UopCacheSpectreV1(secret=b"\xa5")
    )
    recorder = TraceRecorder().connect(attack.core)
    attack.leak()
    recorder.close()
    return recorder, [
        OccupancySnapshot.capture(attack.core.uop_cache, "after leak")
    ]


def _trace_classic() -> Tuple[TraceRecorder, List[OccupancySnapshot]]:
    from repro.core.transient import ClassicSpectreV1

    attack = shared_pool().acquire(
        "trace.classic", lambda: ClassicSpectreV1(secret=b"\xa5")
    )
    recorder = TraceRecorder().connect(attack.core)
    attack.leak()
    recorder.close()
    return recorder, [
        OccupancySnapshot.capture(attack.core.uop_cache, "after leak")
    ]


def _trace_smt() -> Tuple[TraceRecorder, List[OccupancySnapshot]]:
    from repro.core.smtchannel import SMTChannel, SMTChannelParams

    channel = shared_pool().acquire(
        "trace.smt", lambda: SMTChannel(SMTChannelParams())
    )
    recorder = TraceRecorder().connect(channel.core)
    channel.transmit(b"u")
    recorder.close()
    return recorder, [
        OccupancySnapshot.capture(channel.core.uop_cache, "after transmit")
    ]


def _trace_keyextract() -> Tuple[TraceRecorder, List[OccupancySnapshot]]:
    from repro.core.keyextract import KeyExtractor

    extractor = shared_pool().acquire(
        "trace.keyextract", lambda: KeyExtractor(nbits=8)
    )
    # the victim session (and its core) is built lazily and reused
    # across runs; reset() keeps observe subscribers attached
    core = extractor._victim_session().core
    recorder = TraceRecorder().connect(core)
    extractor.extract(0xB5)
    recorder.close()
    return recorder, [
        OccupancySnapshot.capture(core.uop_cache, "after extraction")
    ]


#: Seconds-scale named experiments for ``repro trace`` and the serving
#: layer's ``trace`` kind (each returns a closed TraceRecorder and a
#: list of occupancy snapshots).
TRACE_TARGETS: Dict[str, Callable[[], Tuple[TraceRecorder, List[OccupancySnapshot]]]] = {
    "covert": _trace_covert,
    "spectre": _trace_spectre,
    "classic": _trace_classic,
    "smt": _trace_smt,
    "keyextract": _trace_keyextract,
}


def capture_trace(
    experiment: str,
) -> Tuple[TraceRecorder, List[OccupancySnapshot]]:
    """Run one named capture; ``KeyError``-safe lookup with the valid
    names in the message."""
    try:
        target = TRACE_TARGETS[experiment]
    except KeyError:
        raise KeyError(
            f"unknown trace experiment {experiment!r}; "
            f"valid: {sorted(TRACE_TARGETS)}"
        ) from None
    return target()
