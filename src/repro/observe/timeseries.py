"""Windowed counter timeseries sampled from the event stream.

Table II's detector features are *windowed* counter reads -- micro-op
deliveries, DSB switches and mispredict rates accumulated over
fixed-length cycle windows, then fed to an anomaly detector.
:class:`CounterSampler` reproduces that view from the structured event
bus: it folds events into per-window counter dicts, cutting a new
window every ``window`` cycles of normalized simulated time.

The simulator zeroes each thread's fetch clock between ``Core.call``
boundaries (``reset_pipeline_clocks``), so raw event cycles are only
monotonic *within* one call.  The sampler normalizes per thread: when
a thread's cycle regresses, the previous high-water mark is folded
into that thread's offset, yielding one continuous timeline across an
entire session.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .events import (
    BRANCH_RESOLVE,
    DSB_EVICT,
    DSB_FILL,
    DSB_FLUSH,
    FETCH_BLOCK,
    SQUASH,
    STORE_COMMIT,
    Event,
)

#: Counter names every window carries (zero-filled when nothing fired).
WINDOW_COUNTERS = (
    "uops_dsb",
    "uops_mite",
    "uops_ms",
    "fetch_blocks",
    "dsb_fills",
    "dsb_evicts",
    "dsb_flushes",
    "branch_resolves",
    "mispredicts",
    "squashes",
    "uops_squashed",
    "store_commits",
)

_SOURCE_COUNTER = {"dsb": "uops_dsb", "mite": "uops_mite", "ms": "uops_ms"}


class CounterSampler:
    """Fold bus events into fixed-width per-window counter samples.

    ::

        sampler = CounterSampler(window=100).connect(core)
        core.call("main")
        sampler.close()
        for row in sampler.finish():
            print(row["t0"], row["uops_dsb"], row["mispredicts"])

    Each sample is a flat dict: ``t0`` (window start on the normalized
    timeline), ``window`` (width), plus the :data:`WINDOW_COUNTERS`.
    Empty interior windows are emitted zero-filled so downstream
    detectors see a regular sampling grid.
    """

    KINDS = (
        FETCH_BLOCK,
        DSB_FILL,
        DSB_EVICT,
        DSB_FLUSH,
        BRANCH_RESOLVE,
        SQUASH,
        STORE_COMMIT,
    )

    def __init__(self, window: int = 100, core=None) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = int(window)
        self.samples: List[Dict[str, int]] = []
        self._core = core
        self._current: Optional[Dict[str, int]] = None
        self._t0 = 0
        # per-thread monotonic normalization
        self._offset: Dict[int, int] = {}
        self._last_raw: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # lifecycle

    def connect(self, core=None) -> "CounterSampler":
        """Subscribe to ``core``'s event bus (creating it on demand)."""
        if core is not None:
            self._core = core
        if self._core is None:
            raise ValueError("no core to connect to")
        self._core.observe().subscribe(self._on_event, self.KINDS)
        return self

    def close(self) -> "CounterSampler":
        """Unsubscribe; accumulated samples stay available."""
        if self._core is not None and self._core.observer is not None:
            self._core.observer.unsubscribe(self._on_event)
        return self

    def __enter__(self) -> "CounterSampler":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # accumulation

    def _normalize(self, thread: int, raw: int) -> int:
        offset = self._offset.get(thread, 0)
        last = self._last_raw.get(thread, 0)
        if raw < last:
            # clock reset between Core.call boundaries: splice onto the
            # continuous timeline at the thread's high-water mark
            offset += last
            self._offset[thread] = offset
        self._last_raw[thread] = raw
        return offset + raw

    def _window_for(self, cycle: int) -> Dict[str, int]:
        if self._current is None:
            self._t0 = (cycle // self.window) * self.window
            self._current = self._blank(self._t0)
        while cycle >= self._t0 + self.window:
            self.samples.append(self._current)
            self._t0 += self.window
            self._current = self._blank(self._t0)
        return self._current

    def _blank(self, t0: int) -> Dict[str, int]:
        row: Dict[str, int] = {"t0": t0, "window": self.window}
        for name in WINDOW_COUNTERS:
            row[name] = 0
        return row

    def _on_event(self, event: Event) -> None:
        cycle = self._normalize(event.thread, event.cycle)
        row = self._window_for(cycle)
        kind = event.kind
        if kind == FETCH_BLOCK:
            row["fetch_blocks"] += 1
            counter = _SOURCE_COUNTER.get(str(event.data.get("source")))
            if counter is not None:
                row[counter] += int(event.data.get("n_uops", 0))
        elif kind == DSB_FILL:
            row["dsb_fills"] += 1
        elif kind == DSB_EVICT:
            row["dsb_evicts"] += 1
        elif kind == DSB_FLUSH:
            row["dsb_flushes"] += 1
        elif kind == BRANCH_RESOLVE:
            row["branch_resolves"] += 1
            if event.data.get("mispredicted"):
                row["mispredicts"] += 1
        elif kind == SQUASH:
            row["squashes"] += 1
            row["uops_squashed"] += int(event.data.get("squashed", 0))
        elif kind == STORE_COMMIT:
            row["store_commits"] += 1

    # ------------------------------------------------------------------
    # results

    def finish(self) -> List[Dict[str, int]]:
        """Flush the in-progress window and return every sample."""
        if self._current is not None:
            self.samples.append(self._current)
            self._current = None
            self._t0 += self.window
        return self.samples

    def as_json(self) -> Dict[str, object]:
        """JSON document with sampling metadata and the sample rows."""
        return {
            "schema": "repro.counter-timeseries/1",
            "window": self.window,
            "counters": list(WINDOW_COUNTERS),
            "samples": self.finish(),
        }
