"""Micro-op cache set-occupancy snapshots and heatmap rendering.

The paper's conflict analysis (Section IV, Listing 1) is about *which
sets* a tiger or zebra occupies: a tiger replicates the victim's
striped footprint and conflicts; a zebra occupies the complementary
stripes and never does.  :class:`OccupancySnapshot` freezes the
per-set/per-way state of a :class:`~repro.uopcache.cache.UopCache` at
one instant and renders it as a text heatmap (rows = sets, columns =
ways) or a JSON document -- the view that makes set-conflict debugging
a look-up instead of guesswork.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

#: Schema tag stamped into JSON renderings.
HEATMAP_SCHEMA = "repro.uopcache-occupancy/1"


@dataclass(slots=True)
class LineView:
    """Immutable view of one resident line (inspection only)."""

    entry: int
    thread: int
    seq: int
    slots: int
    uop_count: int
    hotness: int
    msrom: bool

    def as_dict(self) -> Dict[str, object]:
        return {
            "entry": self.entry,
            "thread": self.thread,
            "seq": self.seq,
            "slots": self.slots,
            "uop_count": self.uop_count,
            "hotness": self.hotness,
            "msrom": self.msrom,
        }


@dataclass
class OccupancySnapshot:
    """Frozen per-set/way occupancy of a micro-op cache.

    ``lines[s]`` lists the resident lines of set ``s`` in way order
    (insertion order -- the order the replacement policy maintains).
    """

    sets: int
    ways: int
    label: str = ""
    lines: List[List[LineView]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # capture

    @classmethod
    def capture(cls, uop_cache, label: str = "") -> "OccupancySnapshot":
        """Snapshot ``uop_cache``'s current residency."""
        lines: List[List[LineView]] = []
        for idx in range(uop_cache.sets):
            lines.append(
                [
                    LineView(
                        entry=line.entry,
                        thread=line.thread,
                        seq=line.seq,
                        slots=line.slots,
                        uop_count=line.uop_count,
                        hotness=line.hotness,
                        msrom=line.msrom,
                    )
                    for line in uop_cache.lines_in_set(idx)
                ]
            )
        return cls(
            sets=uop_cache.sets, ways=uop_cache.ways, label=label, lines=lines
        )

    # ------------------------------------------------------------------
    # queries

    @property
    def occupancy(self) -> List[int]:
        """Valid lines per set."""
        return [len(ways) for ways in self.lines]

    @property
    def total_lines(self) -> int:
        """Valid lines overall."""
        return sum(len(ways) for ways in self.lines)

    def occupied_sets(self) -> List[int]:
        """Indices of sets holding at least one line."""
        return [idx for idx, ways in enumerate(self.lines) if ways]

    def entries_in_set(self, idx: int) -> List[int]:
        """Distinct entry addresses resident in set ``idx``."""
        return sorted({line.entry for line in self.lines[idx]})

    def diff(self, earlier: "OccupancySnapshot") -> List[int]:
        """Per-set occupancy delta ``self - earlier`` (conflict view)."""
        if earlier.sets != self.sets:
            raise ValueError("snapshots cover different geometries")
        mine, theirs = self.occupancy, earlier.occupancy
        return [a - b for a, b in zip(mine, theirs)]

    # ------------------------------------------------------------------
    # rendering

    def render_text(
        self,
        owner_of: Optional[Callable[[LineView], str]] = None,
        empty: str = "·",
    ) -> str:
        """Text heatmap: one row per set, one column per way.

        ``owner_of`` maps a resident line to a single display
        character (see :func:`owner_classifier`); the default marks
        occupancy with ``#``.  Empty ways render as ``empty``.
        """
        head = f"µop cache occupancy — {self.sets} sets × {self.ways} ways"
        if self.label:
            head += f" — {self.label}"
        rows = [head]
        for idx, ways in enumerate(self.lines):
            cells = []
            for line in ways:
                ch = owner_of(line) if owner_of is not None else "#"
                cells.append((ch or "#")[0])
            cells.extend(empty * (self.ways - len(cells)))
            rows.append(f"  set {idx:2d} |{''.join(cells)}| {len(ways)}")
        rows.append(f"  total: {self.total_lines}/{self.sets * self.ways} lines")
        return "\n".join(rows)

    def to_json(self) -> Dict[str, object]:
        """JSON document: geometry, per-set occupancy, resident lines."""
        return {
            "schema": HEATMAP_SCHEMA,
            "label": self.label,
            "sets": self.sets,
            "ways": self.ways,
            "occupancy": self.occupancy,
            "lines": [
                [line.as_dict() for line in ways] for ways in self.lines
            ],
        }

    @classmethod
    def from_json(cls, doc: Mapping) -> "OccupancySnapshot":
        """Inverse of :meth:`to_json` (artifact round-trips)."""
        if doc.get("schema") != HEATMAP_SCHEMA:
            raise ValueError(f"not an occupancy snapshot: {doc.get('schema')!r}")
        lines = [
            [LineView(**cell) for cell in ways] for ways in doc["lines"]
        ]
        return cls(
            sets=int(doc["sets"]),
            ways=int(doc["ways"]),
            label=str(doc.get("label", "")),
            lines=lines,
        )


def owner_classifier(
    arenas: Mapping[str, Tuple[int, int]], default: str = "#"
) -> Callable[[LineView], str]:
    """Build an ``owner_of`` callable from named address ranges.

    ``arenas`` maps a display character (only the first character is
    used) to a ``[lo, hi)`` entry-address range -- typically the code
    arenas of the tiger/zebra/probe functions.  Lines outside every
    range render as ``default``.

    ::

        owner = owner_classifier({"T": (SENDER_ARENA, SENDER_ARENA + 0x4000),
                                  "Z": (ZEBRA_ARENA, ZEBRA_ARENA + 0x4000)})
        print(snapshot.render_text(owner))
    """
    ranges = [(ch[0], lo, hi) for ch, (lo, hi) in arenas.items()]

    def owner_of(line: LineView) -> str:
        for ch, lo, hi in ranges:
            if lo <= line.entry < hi:
                return ch
        return default

    return owner_of
