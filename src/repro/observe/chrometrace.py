"""Chrome trace-event JSON export of a run's structured event stream.

Converts :class:`~repro.observe.events.Event` streams into the Chrome
trace-event format (the JSON array flavour wrapped in an object:
``{"traceEvents": [...]}``) loadable by ``chrome://tracing`` and
Perfetto.  Fetch blocks become complete (``ph="X"``) slices on a
per-thread track, sized by their front-end delivery cost;
mispredictions, squashes, DSB fills/evicts/flushes and store commits
become instant events layered on the same tracks.

Timestamps are microseconds by convention; one simulated cycle maps to
one microsecond so slice widths read directly as cycle counts.  Thread
fetch clocks reset between ``Core.call`` boundaries, so timestamps are
normalized per thread onto one continuous timeline: a fetch block
whose raw end-cycle regresses below its thread's high-water mark folds
the mark into that thread's offset (other event kinds reuse the
current offset -- their cycles come from the same clock domain but are
not themselves monotonic).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from .events import (
    BRANCH_RESOLVE,
    DSB_EVICT,
    DSB_FILL,
    DSB_FLUSH,
    FETCH_BLOCK,
    SQUASH,
    STORE_COMMIT,
    Event,
)

#: ``ph`` values this exporter emits.
_PHASES = ("X", "i", "M")

#: Instant-event renderings: event kind -> slice name.
_INSTANT_NAMES = {
    DSB_FILL: "dsb_fill",
    DSB_EVICT: "dsb_evict",
    DSB_FLUSH: "dsb_flush",
    SQUASH: "squash",
    STORE_COMMIT: "store_commit",
}


def chrome_trace(
    events: Iterable[Event],
    process_name: str = "repro-sim",
) -> Dict[str, object]:
    """Render an event stream as a Chrome trace-event document.

    Returns ``{"traceEvents": [...], "displayTimeUnit": "ms"}``.  The
    input is consumed in emission order; only the kinds this exporter
    understands contribute (others are ignored, so a full
    :class:`~repro.observe.events.TraceRecorder` capture can be passed
    straight in).
    """
    trace: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    offsets: Dict[int, int] = {}
    high_water: Dict[int, int] = {}
    threads_seen: List[int] = []

    for event in events:
        tid = event.thread if event.thread >= 0 else 0
        if tid not in offsets:
            offsets[tid] = 0
            high_water[tid] = 0
            threads_seen.append(tid)
            trace.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": f"hw thread {tid}"},
                }
            )
        kind = event.kind

        if kind == FETCH_BLOCK:
            raw_end = event.cycle
            if raw_end < high_water[tid]:
                # fetch clock reset at a Core.call boundary: splice onto
                # the continuous timeline at the thread's high-water mark
                offsets[tid] += high_water[tid]
            high_water[tid] = raw_end
            end = offsets[tid] + raw_end
            dur = int(event.data.get("cycles", 0))
            name = "{}:{}".format(
                event.data.get("source", "none"),
                _hexname(event.data.get("entry")),
            )
            args = {
                k: v
                for k, v in event.data.items()
                if k in ("entry", "kind", "source", "n_uops", "cycles")
            }
            if dur > 0:
                trace.append(
                    {
                        "name": name,
                        "ph": "X",
                        "ts": end - dur,
                        "dur": dur,
                        "pid": 0,
                        "tid": tid,
                        "args": args,
                    }
                )
            else:
                # fault blocks charge no cycles: render as an instant
                trace.append(_instant(name, end, tid, args))
            continue

        ts = offsets[tid] + event.cycle
        if kind == BRANCH_RESOLVE:
            if event.data.get("mispredicted"):
                trace.append(_instant("mispredict", ts, tid, dict(event.data)))
        elif kind in _INSTANT_NAMES:
            trace.append(
                _instant(_INSTANT_NAMES[kind], ts, tid, dict(event.data))
            )

    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def _instant(name: str, ts: int, tid: int, args: Dict) -> Dict[str, object]:
    return {
        "name": name,
        "ph": "i",
        "ts": ts,
        "pid": 0,
        "tid": tid,
        "s": "t",
        "args": args,
    }


def _hexname(entry) -> str:
    try:
        return hex(int(entry))
    except (TypeError, ValueError):
        return str(entry)


# ----------------------------------------------------------------------
# validation


def validate_chrome_trace(doc) -> List[str]:
    """Structural check against the Chrome trace-event shape.

    Returns a list of human-readable problems; an empty list means the
    document is loadable.  This is the same check CI runs on the
    exported artifact -- intentionally strict about the fields the
    format requires (``ph``/``pid``/``tid`` everywhere, ``ts`` on
    timed events, ``dur`` on complete events) and silent about
    optional extras.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing 'traceEvents' array"]
    if not events:
        errors.append("'traceEvents' is empty")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _PHASES:
            errors.append(f"{where}: ph={ph!r} not one of {_PHASES}")
            continue
        if not isinstance(ev.get("name"), str):
            errors.append(f"{where}: missing string 'name'")
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                errors.append(f"{where}: missing integer {field!r}")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: 'X' event needs non-negative dur")
        if ph == "i" and ev.get("s") not in (None, "g", "p", "t"):
            errors.append(f"{where}: instant scope {ev.get('s')!r} invalid")
    return errors


def write_chrome_trace(path, doc: Dict[str, object]) -> None:
    """Serialise ``doc`` to ``path`` (refusing structurally broken docs)."""
    problems = validate_chrome_trace(doc)
    if problems:
        raise ValueError(
            "refusing to write invalid chrome trace: " + "; ".join(problems[:3])
        )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
