"""Structured observability: event bus, occupancy heatmaps, counter
timeseries and Chrome-trace export.

The package the paper's characterization figures would have been built
with: :class:`EventBus` publishes structured events from the
simulator's hot paths (``Core.observe()`` attaches one lazily;
unobserved cores pay a single attribute check per site),
:class:`TraceRecorder` collects them, :class:`OccupancySnapshot`
freezes the micro-op cache's per-set/way state for tiger/zebra
conflict heatmaps, :class:`CounterSampler` folds events into Table
II-style windowed counter rows, and :func:`chrome_trace` renders a
run as a ``chrome://tracing``/Perfetto-loadable timeline.
"""

from .capture import TRACE_TARGETS, capture_trace
from .chrometrace import chrome_trace, validate_chrome_trace, write_chrome_trace
from .events import (
    ALL_KINDS,
    BRANCH_PREDICT,
    BRANCH_RESOLVE,
    DSB_EVICT,
    DSB_FILL,
    DSB_FLUSH,
    FETCH_BLOCK,
    ITLB_FILL,
    SB_DRAIN,
    SQUASH,
    STORE_COMMIT,
    Event,
    EventBus,
    TraceRecorder,
)
from .heatmap import HEATMAP_SCHEMA, LineView, OccupancySnapshot, owner_classifier
from .timeseries import WINDOW_COUNTERS, CounterSampler

__all__ = [
    "ALL_KINDS",
    "TRACE_TARGETS",
    "capture_trace",
    "BRANCH_PREDICT",
    "BRANCH_RESOLVE",
    "DSB_EVICT",
    "DSB_FILL",
    "DSB_FLUSH",
    "FETCH_BLOCK",
    "ITLB_FILL",
    "SB_DRAIN",
    "SQUASH",
    "STORE_COMMIT",
    "Event",
    "EventBus",
    "TraceRecorder",
    "HEATMAP_SCHEMA",
    "LineView",
    "OccupancySnapshot",
    "owner_classifier",
    "WINDOW_COUNTERS",
    "CounterSampler",
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
