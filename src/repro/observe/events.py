"""The structured event bus: low-overhead subscriber hooks on the
simulator's hot paths.

The paper's characterization (Figures 3-7, Table II) is an
*observability* exercise -- reading per-source micro-op delivery, DSB
switch penalties and set-level occupancy the way uops.info does with
hardware counters.  This module is the simulator-side equivalent: the
core, front end, micro-op cache and store buffers publish structured
events onto an :class:`EventBus`, and anything -- trace recorders,
heatmap capturers, windowed counter samplers, Chrome-trace exporters --
subscribes.

Pay-for-what-you-use is the design contract.  A core that never calls
``Core.observe()`` carries no bus at all: every hook site guards on a
single ``observer is not None`` attribute check, so the no-subscriber
cost is one pointer comparison per site (the covert-trial throughput
benchmark enforces this stays within noise).  Sites with non-trivial
payloads additionally check :meth:`EventBus.wants` so event dicts are
only built for kinds somebody listens to.

Event kinds:

========================  =====================================================
``fetch_block``           one front-end fetch/delivery step (entry, kind,
                          source, n_uops, cycles)
``dsb_fill``              a decoded region installed into the micro-op cache
``dsb_evict``             a line evicted (cause: conflict / noise / inclusion)
``dsb_flush``             the whole structure dropped (iTLB flush, SMT
                          repartition, domain crossing)
``branch_predict``        a front-end prediction attached to a control uop
``branch_resolve``        a branch's functional outcome vs its prediction
``squash``                a pending misprediction fired: wrong path rolled back
``store_commit``          a store buffer entry drained to memory
``itlb_fill``             an instruction fetch missed the iTLB and walked a
                          new page translation in (entry, page)
``sb_drain``              a store entered the store-buffer drain pipeline
                          (pc, addr, occupancy, stall cycles)
========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: Event-kind constants (string-typed so payloads stay JSON-friendly).
FETCH_BLOCK = "fetch_block"
DSB_FILL = "dsb_fill"
DSB_EVICT = "dsb_evict"
DSB_FLUSH = "dsb_flush"
BRANCH_PREDICT = "branch_predict"
BRANCH_RESOLVE = "branch_resolve"
SQUASH = "squash"
STORE_COMMIT = "store_commit"
ITLB_FILL = "itlb_fill"
SB_DRAIN = "sb_drain"

#: Every kind the simulator emits, in rough pipeline order.
ALL_KINDS: Tuple[str, ...] = (
    FETCH_BLOCK,
    ITLB_FILL,
    DSB_FILL,
    DSB_EVICT,
    DSB_FLUSH,
    BRANCH_PREDICT,
    BRANCH_RESOLVE,
    SQUASH,
    SB_DRAIN,
    STORE_COMMIT,
)


@dataclass(slots=True)
class Event:
    """One structured simulator event.

    ``cycle`` is the emitting thread's clock at the event (fetch clock
    for front-end events, scoreboard resolution cycle for
    branch-resolve/squash); ``thread`` the hardware thread id (-1 when
    not attributable); ``data`` the kind-specific payload, all values
    JSON-serialisable.
    """

    kind: str
    cycle: int
    thread: int
    data: Dict[str, object] = field(default_factory=dict)

    def get(self, name: str, default=None):
        """Payload field access shorthand."""
        return self.data.get(name, default)

    def as_dict(self) -> Dict[str, object]:
        """Flat JSON-ready rendering."""
        rec: Dict[str, object] = {
            "kind": self.kind,
            "cycle": self.cycle,
            "thread": self.thread,
        }
        rec.update(self.data)
        return rec


class EventBus:
    """Per-kind subscriber registry with constant-time emit gating.

    Subscribers are plain callables taking one :class:`Event`.  The
    emitting hot paths call :meth:`wants` before building a payload, so
    an attached-but-idle bus costs one dict lookup per site.

    By default the bus speaks the simulator vocabulary
    (:data:`ALL_KINDS`); other layers can reuse the machinery for their
    own event families by passing an explicit ``kinds`` tuple (the
    serving layer's :mod:`repro.serve.metrics` publishes job-lifecycle
    events this way).
    """

    __slots__ = ("_subs", "kinds")

    def __init__(self, kinds: Optional[Sequence[str]] = None) -> None:
        self._subs: Dict[str, List[Callable[[Event], None]]] = {}
        self.kinds: Tuple[str, ...] = (
            tuple(kinds) if kinds is not None else ALL_KINDS
        )

    # ------------------------------------------------------------------
    # subscription

    def subscribe(
        self,
        fn: Callable[[Event], None],
        kinds: Optional[Sequence[str]] = None,
    ) -> Callable[[Event], None]:
        """Attach ``fn`` for ``kinds`` (default: every kind).

        Returns ``fn`` so the caller can hold it for
        :meth:`unsubscribe`.  Unknown kind names raise ``ValueError``
        -- a misspelled kind would otherwise silently record nothing.
        """
        targets = self.kinds if kinds is None else tuple(kinds)
        for kind in targets:
            if kind not in self.kinds:
                raise ValueError(
                    f"unknown event kind {kind!r}; valid: {self.kinds}"
                )
            self._subs.setdefault(kind, []).append(fn)
        return fn

    def unsubscribe(self, fn: Callable[[Event], None]) -> None:
        """Detach ``fn`` from every kind it subscribed to."""
        for kind in list(self._subs):
            subs = self._subs[kind]
            while fn in subs:
                subs.remove(fn)
            if not subs:
                del self._subs[kind]

    @property
    def active(self) -> bool:
        """True when at least one subscriber is attached."""
        return bool(self._subs)

    def wants(self, kind: str) -> bool:
        """True when ``kind`` has at least one subscriber (emit gate)."""
        return kind in self._subs

    # ------------------------------------------------------------------
    # emission

    def emit(self, _kind: str, _cycle: int, _thread: int, **data) -> None:
        """Publish one event to the subscribers of ``_kind``.

        Positional parameters are underscore-prefixed so payload keys
        like ``kind`` stay usable as keywords.  No-op (without building
        anything) when nobody listens; hot paths should still pre-gate
        with :meth:`wants` to skip payload construction.
        """
        subs = self._subs.get(_kind)
        if not subs:
            return
        event = Event(_kind, _cycle, _thread, data)
        for fn in subs:
            fn(event)


class TraceRecorder:
    """Event collector with a connect/close lifecycle.

    The standard observability consumer: connect it to a core, run the
    workload, and the structured events land in :attr:`events` in
    emission order.  ``kinds`` restricts collection (default: all).

    ::

        rec = TraceRecorder().connect(core)
        core.call("main")
        rec.close()
        print(rec.counts())

    Also usable as a context manager over an already-targeted core::

        with TraceRecorder(core=core) as rec:
            core.call("main")
    """

    def __init__(
        self,
        kinds: Optional[Sequence[str]] = None,
        core=None,
    ) -> None:
        self.kinds = tuple(kinds) if kinds is not None else None
        self.events: List[Event] = []
        self._core = core

    # ------------------------------------------------------------------
    # lifecycle

    def connect(self, core=None) -> "TraceRecorder":
        """Subscribe to ``core``'s event bus (creating it on demand)."""
        if core is not None:
            self._core = core
        if self._core is None:
            raise ValueError("no core to connect to")
        self._core.observe().subscribe(self._on_event, self.kinds)
        return self

    def close(self) -> "TraceRecorder":
        """Unsubscribe; collected events stay available."""
        if self._core is not None and self._core.observer is not None:
            self._core.observer.unsubscribe(self._on_event)
        return self

    def __enter__(self) -> "TraceRecorder":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    def _on_event(self, event: Event) -> None:
        self.events.append(event)

    # ------------------------------------------------------------------
    # views

    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        """Drop collected events (keep the subscription)."""
        self.events.clear()

    def of(self, kind: str) -> List[Event]:
        """Events of one kind, in emission order."""
        return [e for e in self.events if e.kind == kind]

    def counts(self) -> Dict[str, int]:
        """Event count per kind (only kinds actually seen)."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def uops_by_source(self) -> Dict[str, int]:
        """Delivered micro-ops per front-end source, from fetch events."""
        out: Dict[str, int] = {}
        for event in self.events:
            if event.kind != FETCH_BLOCK:
                continue
            source = event.data.get("source", "none")
            out[source] = out.get(source, 0) + int(event.data.get("n_uops", 0))
        return out

    def as_records(self) -> List[Dict[str, object]]:
        """JSON-ready flat dicts, one per event."""
        return [event.as_dict() for event in self.events]
