"""``repro.contention``: multi-resource SMT contention suite.

The paper's attack lives in the micro-op cache, but its *methodology*
-- co-resident attacker/victim pairs whose footprints are constructed
to conflict or to be provably disjoint, timed against a baseline --
applies to every shared front-end and memory structure.  This package
generates such pairs for seven resources (micro-op cache, iTLB, dTLB,
L1i, L1d, store buffer, branch direction predictor), measures a
resource x sharing-mode slowdown matrix through the batch harness, and
mounts two new covert channels on the non-DSB resources (iTLB and
store buffer) in the same Table-I format as the paper's channels.

- :mod:`repro.contention.templates` -- the pair generator
  (:func:`generate_pair`), emitting lint-claim-carrying programs;
- :mod:`repro.contention.session` -- :class:`ContentionSession`, one
  matrix cell (resource, mode, variant) as an AttackSession;
- :mod:`repro.contention.channels` -- :class:`ITLBChannel` and
  :class:`StoreBufferChannel`, the two new covert channels.
"""

from repro.contention.channels import (
    ITLBChannel,
    ITLBChannelParams,
    StoreBufferChannel,
    StoreBufferChannelParams,
)
from repro.contention.session import CellResult, ContentionSession, MODES
from repro.contention.templates import (
    RESOURCES,
    VARIANTS,
    GeneratedPair,
    contention_config,
    generate_pair,
)

__all__ = [
    "CellResult",
    "ContentionSession",
    "GeneratedPair",
    "ITLBChannel",
    "ITLBChannelParams",
    "MODES",
    "RESOURCES",
    "StoreBufferChannel",
    "StoreBufferChannelParams",
    "VARIANTS",
    "contention_config",
    "generate_pair",
]
