"""Template-driven attacker/victim pair generation, one template per
shared resource.

Every pair follows the paper's measurement discipline (Section IV):
the *victim* runs a fixed, self-timed workload (RDTSC-bracketed, the
delta stored to ``victim_result``); the *attacker* exercises the
target resource either on the victim's index points (``"conflict"``)
or on provably different ones (``"disjoint"``, the negative control).
The generator also emits an ``attacker_idle`` spin loop used as the
baseline SMT partner, so baseline and contended runs differ only in
*which* co-runner executes -- never in whether one exists.

Each template returns a :class:`GeneratedPair` carrying the assembled
program plus the lint claims that make the layout *verifiable*:
:class:`~repro.lint.gadgets.ChainClaim`/:class:`~repro.lint.gadgets.PairClaim`
for the micro-op cache template and the per-resource claims of
:mod:`repro.lint.resources` (iTLB page sets, store-site counts,
capacity-checked pair relations) for the others.  A pair that claims
``disjoint`` but overlaps fails lint at generation time, not after a
flat experiment.

Resource notes (what the knob means per template):

- ``uop_cache``  -- striped DSB sets, 6+6 ways vs 8 (Figure 8 tiger);
- ``itlb``       -- instruction pages chained by jumps, 25 vs 16 entries;
- ``dtlb``       -- data pages touched by loads, 24+8 vs 16 entries;
- ``l1i``        -- instruction lines, 16+2 ways vs 8 in shared sets;
- ``l1d``        -- data lines, 16+2 ways vs 8 in shared sets;
- ``store_buffer`` -- drain-port pressure; SMT-only by design (the
  simulator rebases store-drain state per serial call);
- ``btb``        -- bimodal direction slots (pc & 4095) aliased across
  arenas; *serial-only* by design (predictors are per-thread).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.exploitgen import (
    FootprintSpec,
    _emit_regions,
    neutral_set,
    striped_sets,
)
from repro.cpu.config import CPUConfig
from repro.errors import ConfigError
from repro.isa import encodings as enc
from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.lint.gadgets import ChainClaim, PairClaim
from repro.lint.resources import ITLBClaim, ResourcePairClaim, StoreClaim

PAGE = 4096

#: Code arenas.  All are 4096-aligned (so bimodal slots ``pc & 4095``
#: alias across arenas by construction) and 1024-aligned (FootprintSpec
#: requirement).
VICTIM_ARENA = 0x44_0000
STUB_ARENA = 0x52_0000
ATTACKER_ARENA = 0x54_0000
IDLE_ARENA = 0x70_0000
KERNEL_BASE = 0xC0_0000
KERNEL_ATTACKER_ARENA = 0xC4_0000
KERNEL_END = 0xD8_0000

RESOURCES = (
    "uop_cache",
    "itlb",
    "dtlb",
    "l1i",
    "l1d",
    "store_buffer",
    "btb",
)
VARIANTS = ("conflict", "disjoint")
DOMAINS = ("user", "kernel")


def contention_config(resource: str) -> CPUConfig:
    """The measurement configuration for one resource's template.

    The micro-op cache template runs on Zen (competitive DSB sharing;
    Skylake's static partition hides cross-thread DSB contention).
    TLB and store-buffer capacities are shrunk so conflict footprints
    stay small enough to assemble and lint quickly.
    """
    if resource == "uop_cache":
        return CPUConfig.zen()
    if resource == "itlb":
        return CPUConfig.skylake(itlb_entries=16)
    if resource == "dtlb":
        return CPUConfig.skylake(dtlb_enabled=True, dtlb_entries=16)
    if resource == "store_buffer":
        return CPUConfig.skylake(store_buffer_entries=16)
    if resource in ("l1i", "l1d", "btb"):
        return CPUConfig.skylake()
    raise ConfigError(f"unknown contention resource {resource!r}")


@dataclass
class GeneratedPair:
    """One generated attacker/victim pair plus its verifiable claims."""

    resource: str
    variant: str
    domain: str
    program: Program
    config: CPUConfig
    victim_label: str = "victim_work"
    attacker_label: str = "attacker_work"
    idle_label: str = "attacker_idle"
    result_label: str = "victim_result"
    chains: List[ChainClaim] = field(default_factory=list)
    pairs: List[PairClaim] = field(default_factory=list)
    resources: List[object] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)


# ----------------------------------------------------------------------
# shared emission helpers


def _epilogue(asm: Assembler, result_label: str = "victim_result") -> None:
    """Close the victim's RDTSC bracket (opened into r14) and store the
    delta.  RDTSC serialises against in-flight loads/stores, so memory
    latencies land inside the bracket."""
    asm.emit(enc.rdtsc("r15"))
    asm.emit(enc.alu("sub", "r15", "r14"))
    asm.emit(enc.mov_imm("r13", asm.resolve(result_label), width=64))
    asm.emit(enc.store("r15", "r13"))
    asm.emit(enc.halt())


def _emit_idle(asm: Assembler, iterations: int = 16) -> None:
    """The baseline SMT partner: a short PAUSE spin touching nothing
    the templates contend on (own page, own DSB sets, no memory)."""
    asm.org(IDLE_ARENA)
    asm.label("attacker_idle")
    asm.emit(enc.mov_imm("r2", iterations))
    asm.label("idle_loop")
    asm.emit(enc.pause())
    asm.emit(enc.dec("r2"))
    asm.emit(enc.jcc("nz", "idle_loop"))
    asm.emit(enc.halt())


def _emit_stub(asm: Assembler) -> None:
    """User-mode entry stub for cross-domain pairs: SYSCALL into the
    kernel-resident attacker (``kernel_entry``)."""
    asm.org(STUB_ARENA)
    asm.label("attacker_enter")
    asm.emit(enc.syscall())
    asm.emit(enc.halt())


def _attacker_arena(domain: str) -> int:
    return KERNEL_ATTACKER_ARENA if domain == "kernel" else ATTACKER_ARENA


def _attacker_entry(asm: Assembler, domain: str) -> None:
    """Label the attacker body; kernel-domain attackers double as the
    SYSCALL target."""
    if domain == "kernel":
        asm.label("kernel_entry")
    asm.label("attacker_work")


def _attacker_exit(asm: Assembler, domain: str) -> None:
    asm.emit(enc.sysret() if domain == "kernel" else enc.halt())


def _attacker_call_label(domain: str) -> str:
    return "attacker_enter" if domain == "kernel" else "attacker_work"


def _assemble(asm: Assembler, domain: str) -> Program:
    program = asm.assemble(entry="victim_work")
    if domain == "kernel":
        program.kernel_ranges.append((KERNEL_BASE, KERNEL_END))
    return program


# ----------------------------------------------------------------------
# per-resource templates


def _build_uop_cache(
    variant: str, domain: str, size: Optional[int], stride: Optional[int],
    config: Optional[CPUConfig], passes: Optional[int],
) -> GeneratedPair:
    """Striped-set DSB contention (the paper's tiger/zebra geometry)."""
    config = config or contention_config("uop_cache")
    nsets = size or 8
    offset = stride or 2
    passes, loops = passes or 2, 4
    v_sets = striped_sets(nsets)
    a_sets = v_sets if variant == "conflict" else striped_sets(
        nsets, offset=offset
    )
    a_arena = _attacker_arena(domain)
    v_spec = FootprintSpec(v_sets, 6, VICTIM_ARENA)
    a_spec = FootprintSpec(a_sets, 6, a_arena)

    asm = Assembler()
    asm.reserve("victim_result", 8)

    prolog = VICTIM_ARENA + 9 * v_spec.way_stride + neutral_set(v_spec) * 32
    asm.org(prolog)
    asm.label("victim_work")
    asm.emit(enc.rdtsc("r14"))
    asm.emit(enc.mov_imm("r12", passes))
    asm.label("victim_loop")
    asm.emit(enc.jmp("victim_work_r0"))
    _emit_regions(asm, "victim_work", v_spec, "victim_chk")
    asm.org(prolog + v_spec.way_stride)
    asm.label("victim_chk")
    asm.emit(enc.dec("r12"))
    asm.emit(enc.jcc("nz", "victim_loop"))
    _epilogue(asm)

    a_prolog = a_arena + 9 * a_spec.way_stride + neutral_set(a_spec) * 32
    asm.org(a_prolog)
    _attacker_entry(asm, domain)
    asm.emit(enc.mov_imm("r2", loops))
    asm.label("attacker_loop")
    asm.emit(enc.jmp("attacker_work_r0"))
    _emit_regions(asm, "attacker_work", a_spec, "attacker_chk")
    asm.org(a_prolog + a_spec.way_stride)
    asm.label("attacker_chk")
    asm.emit(enc.dec("r2"))
    asm.emit(enc.jcc("nz", "attacker_loop"))
    _attacker_exit(asm, domain)

    _emit_idle(asm)
    if domain == "kernel":
        _emit_stub(asm)
    program = _assemble(asm, domain)
    return GeneratedPair(
        resource="uop_cache",
        variant=variant,
        domain=domain,
        program=program,
        config=config,
        attacker_label=_attacker_call_label(domain),
        chains=[
            ChainClaim("victim_work", v_spec, "probe"),
            ChainClaim("attacker_work", a_spec, "tiger"),
        ],
        pairs=[PairClaim("attacker_work", "victim_work", variant)],
        meta={
            "victim_sets": list(v_sets),
            "attacker_sets": list(a_sets),
            "ways_demand": v_spec.ways + a_spec.ways,
            "cache_ways": config.uop_cache_ways,
            "passes": passes,
            "loops": loops,
        },
    )


def _emit_page_chain(
    asm: Assembler,
    name: str,
    base: int,
    npages: int,
    step: int,
    line_offset,
    exit_label: str,
) -> Set[int]:
    """PAUSE+JMP blocks, one per page, chained ``{name}_c0`` ->
    ``exit_label``.  ``line_offset(i)`` staggers the within-page byte
    offset so blocks land in distinct L1i sets (keeping the L1i out of
    an iTLB experiment).  Returns the set of page numbers touched."""
    pages: Set[int] = set()
    for i in range(npages):
        addr = base + (i + 1) * step + line_offset(i) * 64
        asm.org(addr)
        asm.label(f"{name}_c{i}")
        asm.emit(enc.pause())
        nxt = f"{name}_c{i + 1}" if i + 1 < npages else exit_label
        asm.emit(enc.jmp(nxt))
        pages.add(addr // PAGE)
    return pages


def _build_itlb(
    variant: str, domain: str, size: Optional[int], stride: Optional[int],
    config: Optional[CPUConfig], passes: Optional[int],
) -> GeneratedPair:
    """Instruction-page pressure: jump chains spanning many pages.

    The victim walks ``size`` pages per pass; the conflict attacker
    walks 24 pages (9 + 25 > 16 iTLB entries -> victim re-walks every
    pass), the disjoint attacker only 2 (total 12 <= 16 -> no
    evictions).  Attacker loop counts are balanced so both variants
    visit the same number of blocks."""
    config = config or contention_config("itlb")
    npages_v = size or 8
    step = stride or PAGE
    n_att = 24 if variant == "conflict" else 2
    visits = 144
    loops = visits // n_att
    passes = passes or 3
    a_arena = _attacker_arena(domain)

    asm = Assembler()
    asm.reserve("victim_result", 8)

    vb = VICTIM_ARENA
    asm.org(vb)
    asm.label("victim_work")
    asm.emit(enc.rdtsc("r14"))
    asm.emit(enc.mov_imm("r12", passes))
    asm.label("victim_loop")
    asm.emit(enc.jmp("victim_c0"))
    asm.org(vb + 64)
    asm.label("victim_chk")
    asm.emit(enc.dec("r12"))
    asm.emit(enc.jcc("nz", "victim_loop"))
    _epilogue(asm)
    # victim chain blocks stagger over L1i sets 0..7; the attacker's
    # take 8..55, so the iTLB cell carries no L1i eviction confound.
    v_pages = {vb // PAGE} | _emit_page_chain(
        asm, "victim", vb, npages_v, step, lambda i: i % 8, "victim_chk"
    )

    asm.org(a_arena)
    _attacker_entry(asm, domain)
    asm.emit(enc.mov_imm("r2", loops))
    asm.label("attacker_loop")
    asm.emit(enc.jmp("attacker_c0"))
    asm.org(a_arena + 64)
    asm.label("attacker_chk")
    asm.emit(enc.dec("r2"))
    asm.emit(enc.jcc("nz", "attacker_loop"))
    _attacker_exit(asm, domain)
    a_pages = {a_arena // PAGE} | _emit_page_chain(
        asm, "attacker", a_arena, n_att, PAGE,
        lambda i: 8 + (i % 48), "attacker_chk",
    )

    _emit_idle(asm)
    if domain == "kernel":
        _emit_stub(asm)
        a_pages.add(STUB_ARENA // PAGE)
    program = _assemble(asm, domain)
    return GeneratedPair(
        resource="itlb",
        variant=variant,
        domain=domain,
        program=program,
        config=config,
        attacker_label=_attacker_call_label(domain),
        resources=[
            ITLBClaim("victim", "victim_work", tuple(sorted(v_pages))),
            ITLBClaim(
                "attacker",
                _attacker_call_label(domain),
                tuple(sorted(a_pages)),
            ),
            ResourcePairClaim("attacker", "victim", "itlb", variant),
        ],
        meta={
            "victim_pages": len(v_pages),
            "attacker_pages": len(a_pages),
            "itlb_entries": config.itlb_entries,
            "passes": passes,
            "loops": loops,
        },
    )


def _build_dtlb(
    variant: str, domain: str, size: Optional[int], stride: Optional[int],
    config: Optional[CPUConfig], passes: Optional[int],
) -> GeneratedPair:
    """Data-page pressure: a pointer chase spanning many pages.

    The victim *chases* a circular pointer chain (each load's address
    is the previous load's result), so translation latency serialises
    instead of hiding under the out-of-order window; the attacker uses
    independent unrolled loads (parallel eviction is faster and its
    own latency is irrelevant).  The chain lives in data memory and is
    installed by :meth:`ContentionSession.setup` from
    ``meta["pointer_chain"]``.

    No static page claims here -- load targets are register-indirect,
    outside the static analyzer's reach; disjointness holds by
    construction because the two data arenas are separate
    reservations."""
    config = config or contention_config("dtlb")
    npages_v = size or 8
    step = stride or PAGE
    n_att = 24 if variant == "conflict" else 2
    visits = 192
    loops = visits // n_att
    passes = passes or 2

    asm = Assembler()
    asm.reserve("victim_result", 8)
    asm.reserve("victim_darena", npages_v * max(step, PAGE), align=PAGE)
    asm.reserve("attacker_darena", (n_att + 1) * PAGE, align=PAGE)

    asm.org(VICTIM_ARENA)
    asm.label("victim_work")
    asm.emit(enc.rdtsc("r14"))
    asm.emit(enc.mov_imm("r13", asm.resolve("victim_darena"), width=64))
    asm.emit(enc.mov_imm("r12", passes))
    asm.label("victim_loop")
    # dependent chase: r13 <- mem[r13], one hop per victim page; the
    # chain is circular so every pass restarts at the arena base
    for _ in range(npages_v):
        asm.emit(enc.load("r13", "r13"))
    asm.emit(enc.dec("r12"))
    asm.emit(enc.jcc("nz", "victim_loop"))
    _epilogue(asm)
    # victim chain nodes stagger over L1d sets 0..7, attacker loads
    # over 8..55: dTLB contention without an L1d eviction confound.
    darena = asm.resolve("victim_darena")
    chain = [
        darena + i * step + (i % 8) * 64 for i in range(npages_v)
    ]

    asm.org(_attacker_arena(domain))
    _attacker_entry(asm, domain)
    asm.emit(enc.mov_imm("r4", asm.resolve("attacker_darena"), width=64))
    asm.emit(enc.mov_imm("r2", loops))
    asm.label("attacker_loop")
    for i in range(n_att):
        asm.emit(enc.load("r5", "r4", disp=i * PAGE + (8 + (i % 48)) * 64))
    asm.emit(enc.dec("r2"))
    asm.emit(enc.jcc("nz", "attacker_loop"))
    _attacker_exit(asm, domain)

    _emit_idle(asm)
    if domain == "kernel":
        _emit_stub(asm)
    program = _assemble(asm, domain)
    return GeneratedPair(
        resource="dtlb",
        variant=variant,
        domain=domain,
        program=program,
        config=config,
        attacker_label=_attacker_call_label(domain),
        meta={
            "victim_pages": npages_v,
            "attacker_pages": n_att,
            "dtlb_entries": config.dtlb_entries,
            "passes": passes,
            "loops": loops,
            "pointer_chain": chain,
        },
    )


def _emit_way_blocks(
    asm: Assembler,
    name: str,
    base: int,
    sets,
    ways: int,
    exit_label: str,
) -> int:
    """PAUSE+JMP blocks at ``base + way*PAGE + set*64``: ``ways`` lines
    in each claimed L1i set.  Returns the block count."""
    order = [(s, w) for s in sets for w in range(ways)]
    for i, (s, w) in enumerate(order):
        asm.org(base + w * PAGE + s * 64)
        asm.label(f"{name}_c{i}")
        asm.emit(enc.pause())
        nxt = f"{name}_c{i + 1}" if i + 1 < len(order) else exit_label
        asm.emit(enc.jmp(nxt))
    return len(order)


def _build_l1i(
    variant: str, domain: str, size: Optional[int], stride: Optional[int],
    config: Optional[CPUConfig], passes: Optional[int],
) -> GeneratedPair:
    """L1 instruction cache pressure: 16 attacker ways vs 8-way sets."""
    config = config or contention_config("l1i")
    nsets = size or 4
    off = stride or 8
    base_sets = [i * (64 // nsets) for i in range(nsets)]
    a_sets = base_sets if variant == "conflict" else [
        (s + off) % 64 for s in base_sets
    ]
    v_ways, a_ways = 2, 16
    passes, loops = passes or 4, 2
    vb, ab = VICTIM_ARENA, _attacker_arena(domain)

    asm = Assembler()
    asm.reserve("victim_result", 8)

    # scaffolds park on L1i sets 62/63, away from every block set
    asm.org(vb + 62 * 64)
    asm.label("victim_work")
    asm.emit(enc.rdtsc("r14"))
    asm.emit(enc.mov_imm("r12", passes))
    asm.label("victim_loop")
    asm.emit(enc.jmp("victim_c0"))
    asm.org(vb + 63 * 64)
    asm.label("victim_chk")
    asm.emit(enc.dec("r12"))
    asm.emit(enc.jcc("nz", "victim_loop"))
    _epilogue(asm)
    _emit_way_blocks(asm, "victim", vb, base_sets, v_ways, "victim_chk")

    asm.org(ab + 62 * 64)
    _attacker_entry(asm, domain)
    asm.emit(enc.mov_imm("r2", loops))
    asm.label("attacker_loop")
    asm.emit(enc.jmp("attacker_c0"))
    asm.org(ab + 63 * 64)
    asm.label("attacker_chk")
    asm.emit(enc.dec("r2"))
    asm.emit(enc.jcc("nz", "attacker_loop"))
    _attacker_exit(asm, domain)
    n_att = _emit_way_blocks(asm, "attacker", ab, a_sets, a_ways,
                             "attacker_chk")

    _emit_idle(asm)
    if domain == "kernel":
        _emit_stub(asm)
    program = _assemble(asm, domain)
    return GeneratedPair(
        resource="l1i",
        variant=variant,
        domain=domain,
        program=program,
        config=config,
        attacker_label=_attacker_call_label(domain),
        meta={
            "victim_sets": base_sets,
            "attacker_sets": a_sets,
            "victim_ways": v_ways,
            "attacker_ways": a_ways,
            "attacker_blocks": n_att,
            "passes": passes,
            "loops": loops,
        },
    )


def _build_l1d(
    variant: str, domain: str, size: Optional[int], stride: Optional[int],
    config: Optional[CPUConfig], passes: Optional[int],
) -> GeneratedPair:
    """L1 data cache pressure: same way-vs-associativity geometry as
    the L1i template, expressed through data accesses.

    Like the dTLB template the victim pointer-chases (see
    ``meta["pointer_chain"]``) so each L1d miss's latency serialises;
    the attacker evicts with independent unrolled loads."""
    config = config or contention_config("l1d")
    nsets = size or 4
    off = stride or 8
    base_sets = [i * (64 // nsets) for i in range(nsets)]
    a_sets = base_sets if variant == "conflict" else [
        (s + off) % 64 for s in base_sets
    ]
    v_ways, a_ways = 2, 16
    passes, loops = passes or 3, 4

    asm = Assembler()
    asm.reserve("victim_result", 8)
    asm.reserve("victim_darena", v_ways * PAGE, align=PAGE)
    asm.reserve("attacker_darena", a_ways * PAGE, align=PAGE)

    asm.org(VICTIM_ARENA)
    asm.label("victim_work")
    asm.emit(enc.rdtsc("r14"))
    asm.emit(enc.mov_imm("r13", asm.resolve("victim_darena"), width=64))
    asm.emit(enc.mov_imm("r12", passes))
    asm.label("victim_loop")
    for _ in range(v_ways * len(base_sets)):
        asm.emit(enc.load("r13", "r13"))
    asm.emit(enc.dec("r12"))
    asm.emit(enc.jcc("nz", "victim_loop"))
    _epilogue(asm)
    darena = asm.resolve("victim_darena")
    chain = [
        darena + w * PAGE + s * 64
        for w in range(v_ways) for s in base_sets
    ]

    asm.org(_attacker_arena(domain))
    _attacker_entry(asm, domain)
    asm.emit(enc.mov_imm("r4", asm.resolve("attacker_darena"), width=64))
    asm.emit(enc.mov_imm("r2", loops))
    asm.label("attacker_loop")
    for w in range(a_ways):
        for s in a_sets:
            asm.emit(enc.load("r5", "r4", disp=w * PAGE + s * 64))
    asm.emit(enc.dec("r2"))
    asm.emit(enc.jcc("nz", "attacker_loop"))
    _attacker_exit(asm, domain)

    _emit_idle(asm)
    if domain == "kernel":
        _emit_stub(asm)
    program = _assemble(asm, domain)
    return GeneratedPair(
        resource="l1d",
        variant=variant,
        domain=domain,
        program=program,
        config=config,
        attacker_label=_attacker_call_label(domain),
        meta={
            "victim_sets": base_sets,
            "attacker_sets": a_sets,
            "victim_ways": v_ways,
            "attacker_ways": a_ways,
            "passes": passes,
            "loops": loops,
            "pointer_chain": chain,
        },
    )


def _build_store_buffer(
    variant: str, domain: str, size: Optional[int], stride: Optional[int],
    config: Optional[CPUConfig], passes: Optional[int],
) -> GeneratedPair:
    """Store-buffer drain-port pressure.

    The victim issues one unpaced burst of ``size`` stores (well past
    the 16-entry buffer, so its *baseline* already includes its own
    capacity stalls); the conflict attacker floods the shared drain
    port with looped back-to-back stores.  The disjoint attacker
    issues only 4 stores *total* before settling into a PAUSE loop --
    pacing must be by count, not by interleaved delays, because the
    out-of-order window issues independent stores past any PAUSE.
    SMT-only by design: serial calls rebase drain state, so
    time-sliced/cross-domain cells read ~zero -- that asymmetry is
    itself the measured fact."""
    config = config or contention_config("store_buffer")
    k = size or 48
    n_att = 32 if variant == "conflict" else 4
    loops = 8 if variant == "conflict" else 16

    asm = Assembler()
    asm.reserve("victim_result", 8)
    asm.reserve("victim_sbuf", 64)
    asm.reserve("attacker_sbuf", 64)

    asm.org(VICTIM_ARENA)
    asm.label("victim_work")
    asm.emit(enc.rdtsc("r14"))
    asm.emit(enc.mov_imm("r13", asm.resolve("victim_sbuf"), width=64))
    for i in range(k):
        asm.emit(enc.store("r12", "r13", disp=(i % 8) * 8))
    _epilogue(asm)

    asm.org(_attacker_arena(domain))
    _attacker_entry(asm, domain)
    asm.emit(enc.mov_imm("r4", asm.resolve("attacker_sbuf"), width=64))
    asm.emit(enc.mov_imm("r2", loops))
    if variant == "conflict":
        asm.label("attacker_loop")
        for i in range(n_att):
            asm.emit(enc.store("r5", "r4", disp=(i % 8) * 8))
    else:
        for i in range(n_att):
            asm.emit(enc.store("r5", "r4", disp=(i % 8) * 8))
        asm.label("attacker_loop")
        asm.emit(enc.pause())
    asm.emit(enc.dec("r2"))
    asm.emit(enc.jcc("nz", "attacker_loop"))
    _attacker_exit(asm, domain)

    _emit_idle(asm)
    if domain == "kernel":
        _emit_stub(asm)
    program = _assemble(asm, domain)
    return GeneratedPair(
        resource="store_buffer",
        variant=variant,
        domain=domain,
        program=program,
        config=config,
        attacker_label=_attacker_call_label(domain),
        resources=[
            StoreClaim("victim", "victim_work", k + 1),
            StoreClaim("attacker", _attacker_call_label(domain), n_att),
            ResourcePairClaim("attacker", "victim", "store_buffer", variant),
        ],
        meta={
            "victim_stores": k + 1,
            "attacker_stores": n_att,
            "sb_entries": config.store_buffer_entries,
            "loops": loops,
        },
    )


def _emit_jcc_blocks(
    asm: Assembler,
    name: str,
    base: int,
    nblocks: int,
    cond: str,
    exit_label: str,
    in_region_off: int = 0,
) -> None:
    """TEST+JCC+JMP blocks at 64-byte steps from ``base + 256``.

    Both JCC and JMP target the next block, so either branch outcome
    lands somewhere valid; with r3=1 the ``nz`` chain runs taken and
    the ``z`` chain runs not-taken.  ``in_region_off`` shifts the whole
    block (hence its ``pc & 4095`` bimodal slot) for disjoint layouts.
    """
    for i in range(nblocks):
        asm.org(base + 256 + i * 64 + in_region_off)
        asm.label(f"{name}_b{i}")
        asm.emit(enc.test_reg("r3", "r3"))
        nxt = f"{name}_b{i + 1}" if i + 1 < nblocks else exit_label
        asm.emit(enc.jcc(cond, nxt))
        asm.emit(enc.jmp(nxt))


def _build_btb(
    variant: str, domain: str, size: Optional[int], stride: Optional[int],
    config: Optional[CPUConfig], passes: Optional[int],
) -> GeneratedPair:
    """Branch direction-predictor aliasing over the bimodal slot
    (``pc & 4095``).

    The victim's chain branches are always-taken; the conflict
    attacker's branches sit at the *same* slots (arenas are 4096-
    aligned, blocks byte-identical in shape) but resolve never-taken,
    driving the shared counters to predict not-taken.  Serial-only by
    design: predictors are per-thread, so the SMT cell is a built-in
    negative control."""
    config = config or contention_config("btb")
    nblocks = size or 16
    off = stride or 32
    passes, loops = passes or 2, 4
    vb, ab = VICTIM_ARENA, _attacker_arena(domain)

    asm = Assembler()
    asm.reserve("victim_result", 8)

    asm.org(vb)
    asm.label("victim_work")
    asm.emit(enc.rdtsc("r14"))
    asm.emit(enc.mov_imm("r3", 1))
    asm.emit(enc.mov_imm("r12", passes))
    asm.label("victim_loop")
    asm.emit(enc.jmp("victim_b0"))
    asm.org(vb + 64)
    asm.label("victim_chk")
    asm.emit(enc.dec("r12"))
    asm.emit(enc.jcc("nz", "victim_loop"))
    _epilogue(asm)
    _emit_jcc_blocks(asm, "victim", vb, nblocks, "nz", "victim_chk")

    a_off = 0 if variant == "conflict" else off
    # the attacker scaffold sits past the block array so its own
    # control branches cannot alias the victim's slots
    scaffold = ab + 256 + nblocks * 64 + 64
    asm.org(scaffold)
    _attacker_entry(asm, domain)
    asm.emit(enc.mov_imm("r3", 1))
    asm.emit(enc.mov_imm("r2", loops))
    asm.label("attacker_loop")
    asm.emit(enc.jmp("attacker_b0"))
    asm.org(scaffold + 64)
    asm.label("attacker_chk")
    asm.emit(enc.dec("r2"))
    asm.emit(enc.jcc("nz", "attacker_loop"))
    _attacker_exit(asm, domain)
    _emit_jcc_blocks(asm, "attacker", ab, nblocks, "z", "attacker_chk",
                     in_region_off=a_off)

    _emit_idle(asm)
    if domain == "kernel":
        _emit_stub(asm)
    program = _assemble(asm, domain)
    v_slots = [(256 + i * 64 + 3) & 4095 for i in range(nblocks)]
    a_slots = [(256 + i * 64 + a_off + 3) & 4095 for i in range(nblocks)]
    return GeneratedPair(
        resource="btb",
        variant=variant,
        domain=domain,
        program=program,
        config=config,
        attacker_label=_attacker_call_label(domain),
        meta={
            "victim_slots": v_slots,
            "attacker_slots": a_slots,
            "mispredict_penalty": config.mispredict_penalty,
            "passes": passes,
            "loops": loops,
        },
    )


_BUILDERS = {
    "uop_cache": _build_uop_cache,
    "itlb": _build_itlb,
    "dtlb": _build_dtlb,
    "l1i": _build_l1i,
    "l1d": _build_l1d,
    "store_buffer": _build_store_buffer,
    "btb": _build_btb,
}


#: Per-resource sampling ranges :func:`generate_pair` draws from when
#: handed an ``rng`` and the knob was left unspecified.  Every value in
#: these ranges assembles and lints clean (the template sampling test
#: sweeps them), so a seeded sampler can never produce a broken pair.
_SAMPLE_SPACE: Dict[str, Dict[str, Tuple[int, ...]]] = {
    "uop_cache": {"size": (4, 8, 16)},
    "itlb": {"size": (4, 6, 8, 10), "passes": (2, 3, 4)},
    "dtlb": {"size": (4, 6, 8, 10), "passes": (2, 3)},
    "l1i": {"size": (2, 4, 8), "stride": (4, 8, 16), "passes": (2, 3, 4)},
    "l1d": {"size": (2, 4, 8), "stride": (4, 8, 16), "passes": (2, 3)},
    "store_buffer": {"size": (32, 40, 48, 56, 64)},
    "btb": {"size": (8, 16, 24), "passes": (2, 3)},
}


def generate_pair(
    resource: str,
    variant: str = "conflict",
    domain: str = "user",
    size: Optional[int] = None,
    stride: Optional[int] = None,
    config: Optional[CPUConfig] = None,
    passes: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> GeneratedPair:
    """Generate one attacker/victim pair for ``resource``.

    ``variant``: ``"conflict"`` (contending footprints) or
    ``"disjoint"`` (the negative control).  ``domain``: ``"user"``
    (both same privilege) or ``"kernel"`` (attacker kernel-resident,
    entered through a SYSCALL stub -- the cross-domain scenario).
    ``size``/``stride`` scale the footprint and its displacement; each
    template documents its own interpretation.  ``passes`` overrides
    the victim's timed-loop iteration count (SMT cells need enough
    victim work to overlap the concurrent attacker's warm-up; see
    :data:`repro.contention.session.SMT_PASSES`).  ``config``
    overrides :func:`contention_config`.

    ``rng`` turns the generator into a *seeded sampler*: knobs the
    caller left ``None`` are drawn deterministically from the
    per-resource :data:`_SAMPLE_SPACE`, so the synthesis layer gets
    reproducible template populations (same ``random.Random`` state,
    same pair -- and therefore the same harness job key) while explicit
    knobs still win.  Without ``rng`` the historical fixed defaults
    apply unchanged.
    """
    if resource not in _BUILDERS:
        raise ConfigError(
            f"unknown contention resource {resource!r}; "
            f"choose from {RESOURCES}"
        )
    if variant not in VARIANTS:
        raise ConfigError(
            f"unknown variant {variant!r}; choose from {VARIANTS}"
        )
    if domain not in DOMAINS:
        raise ConfigError(
            f"unknown domain {domain!r}; choose from {DOMAINS}"
        )
    if rng is not None:
        space = _SAMPLE_SPACE[resource]
        if size is None and "size" in space:
            size = rng.choice(space["size"])
        if stride is None and "stride" in space:
            stride = rng.choice(space["stride"])
        if resource == "uop_cache" and stride is None:
            # the striped-set displacement must stay below the stripe
            # stride (32 DSB sets / nsets), which depends on the size
            # just drawn
            stride = rng.randrange(1, max(2, 32 // (size or 8)))
        if passes is None and "passes" in space:
            passes = rng.choice(space["passes"])
    return _BUILDERS[resource](variant, domain, size, stride, config, passes)
