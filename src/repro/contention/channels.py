"""Two covert channels on non-DSB shared resources (Section VIII's
observation that the micro-op cache is one instance of a family).

Both follow the SMT channel protocol of
:class:`repro.core.smtchannel.SMTChannel` verbatim -- one concurrent
SMT episode per bit, receiver self-timing a fixed number of probe
passes, first pass dropped as warm-up, threshold fitted by calibration
-- but replace the contended medium:

- :class:`ITLBChannel`: the Trojan's one-bit walks 24 instruction
  pages, blowing the (shrunk, 16-entry) iTLB past capacity so the
  receiver's 8-page probe chain re-walks page translations; the
  zero-bit idles in a PAUSE loop touching one page.
- :class:`StoreBufferChannel`: the Trojan's one-bit floods the shared
  store-drain port with back-to-back stores, inflating the receiver's
  own store-burst drain time; the zero-bit idles storing nothing.

Both run on Skylake-like configurations: the DSB is statically
partitioned there, so the signal cannot be a disguised micro-op cache
channel -- these leak through structures the DSB partition does not
protect.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.covert import ChannelReport, _bytes_to_bits
from repro.core.timing import ProbeTiming
from repro.cpu.config import CPUConfig
from repro.cpu.noise import NoiseModel
from repro.isa import encodings as enc
from repro.isa.assembler import Assembler
from repro.lint.resources import ITLBClaim, ResourcePairClaim, StoreClaim
from repro.lint.taint import SecretClaim
from repro.session import AttackSession

PAGE = 4096
RX_ARENA = 0x44_0000
TX_ARENA = 0x54_0000
TZ_ARENA = 0x64_0000


class _EpisodeChannel(AttackSession):
    """Shared episode/calibration/transmit protocol (the SMT-channel
    discipline, medium-agnostic).  Subclasses build the program with
    ``rx_epoch`` / ``tx_one`` / ``tx_zero`` entry points and a
    ``rx_results`` delta array of ``probe_passes`` slots."""

    def _episode(self, bit: int) -> float:
        label = "tx_one" if bit else "tx_zero"
        self._run_smt(("rx_epoch", label))
        base = self.core.addr_of("rx_results")
        times = [
            self._elapsed(base + 8 * i)
            for i in range(self.params.probe_passes)
        ]
        return statistics.fmean(times[1:]) if len(times) > 1 else times[0]

    def calibrate(self) -> ProbeTiming:
        """Measure both episode kinds to fit the threshold."""
        hits, misses = [], []
        for _ in range(self.params.calibration_rounds):
            hits.append(self._episode(0))
            misses.append(self._episode(1))
        return self._fit(hits, misses)

    def send_bits(self, bits: Sequence[int]) -> List[int]:
        """Transmit bits, one SMT episode each."""
        if self.classifier is None:
            self.calibrate()
        return [
            self.classifier.classify_bit(self._episode(bit)) for bit in bits
        ]

    def transmit(self, payload: bytes) -> ChannelReport:
        """Send ``payload``; report Table-I-style statistics."""
        if self.classifier is None:
            self.calibrate()
        self.total_cycles = 0
        sent = _bytes_to_bits(payload)
        received = self.send_bits(sent)
        errors = sum(1 for a, b in zip(sent, received) if a != b)
        return ChannelReport(
            bits_sent=len(sent),
            bit_errors=errors,
            total_cycles=self.total_cycles,
            freq_ghz=self.config.freq_ghz,
            payload_bytes=len(payload),
            timing=self.timing,
        )


@dataclass
class ITLBChannelParams:
    """Episode sizing for the iTLB channel."""

    rx_pages: int = 8  # receiver probe chain length (pages)
    tx_pages: int = 24  # one-bit Trojan chain length (pages)
    probe_passes: int = 4  # timed receiver passes per bit episode
    sender_loops: int = 4  # Trojan chain walks per one-bit
    delay_iters: int = 150  # receiver spin before probing (see below)
    calibration_rounds: int = 6


class ITLBChannel(_EpisodeChannel):
    """Covert channel through iTLB capacity contention.

    Runs on a Skylake-like config with a 16-entry iTLB: the receiver's
    9 pages plus the Trojan's 25 exceed capacity (one-bit -> receiver
    re-walks), while receiver plus idle page stay comfortably under
    (zero-bit -> all probe translations hit).

    The receiver spins for ``delay_iters`` PAUSE iterations before its
    timed passes: a one-bit Trojan needs hundreds of cycles to walk
    deep enough into its chain to start evicting, and the probe loop
    alone finishes first.  The first timed pass is still dropped as
    warm-up -- it also clears any translations the *previous* episode
    left behind, which would otherwise leak inter-symbol interference
    into the measurement.
    """

    def __init__(
        self,
        params: Optional[ITLBChannelParams] = None,
        config: Optional[CPUConfig] = None,
        noise: Optional[NoiseModel] = None,
    ):
        self.params = params or ITLBChannelParams()
        super().__init__(
            config or CPUConfig.skylake(itlb_entries=16), noise
        )

    def build_program(self):
        p = self.params
        asm = Assembler()
        asm.reserve("rx_results", 8 * (p.probe_passes + 1))

        # Receiver: a delay spin, then timed passes over a chain of
        # single-block pages.
        asm.org(RX_ARENA)
        asm.label("rx_epoch")
        asm.emit(enc.mov_imm("r12", p.probe_passes))
        asm.emit(enc.mov_imm("r11", asm.resolve("rx_results"), width=64))
        asm.emit(enc.mov_imm("r10", p.delay_iters))
        asm.label("rx_delay")
        asm.emit(enc.pause())
        asm.emit(enc.dec("r10"))
        asm.emit(enc.jcc("nz", "rx_delay"))
        asm.label("rx_loop")
        asm.emit(enc.rdtsc("r14"))
        asm.emit(enc.jmp("rx_c0"))
        asm.org(RX_ARENA + 128)
        asm.label("rx_end")
        asm.emit(enc.rdtsc("r15"))
        asm.emit(enc.alu("sub", "r15", "r14"))
        asm.emit(enc.store("r15", "r11"))
        asm.emit(enc.alu_imm("add", "r11", 8))
        asm.emit(enc.dec("r12"))
        asm.emit(enc.jcc("nz", "rx_loop"))
        asm.emit(enc.halt())
        rx_pages = {RX_ARENA // PAGE}
        # Receiver blocks stagger over L1i sets 0..7, Trojan blocks
        # over 8..55: the signal is page walks, not L1i evictions.
        for i in range(p.rx_pages):
            addr = RX_ARENA + (i + 1) * PAGE + (i % 8) * 64
            asm.org(addr)
            asm.label(f"rx_c{i}")
            asm.emit(enc.pause())
            nxt = f"rx_c{i + 1}" if i + 1 < p.rx_pages else "rx_end"
            asm.emit(enc.jmp(nxt))
            rx_pages.add(addr // PAGE)

        # Trojan one-bit: a looped walk over tx_pages further pages.
        asm.org(TX_ARENA)
        asm.label("tx_one")
        asm.emit(enc.mov_imm("r2", p.sender_loops))
        asm.label("tx_loop")
        asm.emit(enc.jmp("tx_c0"))
        asm.org(TX_ARENA + 64)
        asm.label("tx_chk")
        asm.emit(enc.dec("r2"))
        asm.emit(enc.jcc("nz", "tx_loop"))
        asm.emit(enc.halt())
        tx_pages = {TX_ARENA // PAGE}
        for i in range(p.tx_pages):
            addr = TX_ARENA + (i + 1) * PAGE + (8 + (i % 48)) * 64
            asm.org(addr)
            asm.label(f"tx_c{i}")
            asm.emit(enc.pause())
            nxt = f"tx_c{i + 1}" if i + 1 < p.tx_pages else "tx_chk"
            asm.emit(enc.jmp(nxt))
            tx_pages.add(addr // PAGE)

        # Trojan zero-bit: PAUSE on a single page.
        asm.org(TZ_ARENA)
        asm.label("tx_zero")
        asm.emit(enc.mov_imm("r2", p.sender_loops * 16))
        asm.label("tx_idle")
        asm.emit(enc.pause())
        asm.emit(enc.dec("r2"))
        asm.emit(enc.jcc("nz", "tx_idle"))
        asm.emit(enc.halt())

        self._lint_resources = [
            ITLBClaim("rx", "rx_epoch", tuple(sorted(rx_pages))),
            ITLBClaim("tx_one", "tx_one", tuple(sorted(tx_pages))),
            ITLBClaim("tx_zero", "tx_zero", (TZ_ARENA // PAGE,)),
            ResourcePairClaim("tx_one", "rx", "itlb", "conflict"),
            ResourcePairClaim("tx_zero", "rx", "itlb", "disjoint"),
        ]
        # The Trojan's bit is the choice between the page-walking chain
        # and the single-page idle loop; the secret-dependent surface
        # is the tx chain's pages (and fetch regions).
        self._lint_secrets = [
            SecretClaim(
                name="bit", entries=("tx_one", "tx_zero"),
                leaks_to=("dsb", "itlb"),
            )
        ]
        return asm.assemble(entry="rx_epoch")


@dataclass
class StoreBufferChannelParams:
    """Episode sizing for the store-buffer channel."""

    rx_stores: int = 48  # receiver burst length (entries: 16)
    tx_stores: int = 64  # one-bit Trojan flood per loop
    probe_passes: int = 4  # timed receiver passes per bit episode
    sender_loops: int = 8  # Trojan flood loops per one-bit
    calibration_rounds: int = 6


class StoreBufferChannel(_EpisodeChannel):
    """Covert channel through store-buffer drain-port contention.

    Runs on a Skylake-like config with a 16-entry store buffer: the
    receiver's 48-store burst always pays its own capacity stalls (the
    baseline), and the Trojan's one-bit flood halves the receiver's
    effective drain rate, inflating the burst time.
    """

    def __init__(
        self,
        params: Optional[StoreBufferChannelParams] = None,
        config: Optional[CPUConfig] = None,
        noise: Optional[NoiseModel] = None,
    ):
        self.params = params or StoreBufferChannelParams()
        super().__init__(
            config or CPUConfig.skylake(store_buffer_entries=16), noise
        )

    def build_program(self):
        p = self.params
        asm = Assembler()
        asm.reserve("rx_results", 8 * (p.probe_passes + 1))
        asm.reserve("rx_sbuf", 64)
        asm.reserve("tx_sbuf", 64)

        # Receiver: timed passes, each one unpaced store burst.
        asm.org(RX_ARENA)
        asm.label("rx_epoch")
        asm.emit(enc.mov_imm("r12", p.probe_passes))
        asm.emit(enc.mov_imm("r11", asm.resolve("rx_results"), width=64))
        asm.emit(enc.mov_imm("r13", asm.resolve("rx_sbuf"), width=64))
        asm.label("rx_loop")
        asm.emit(enc.rdtsc("r14"))
        for i in range(p.rx_stores):
            asm.emit(enc.store("r2", "r13", disp=(i % 8) * 8))
        asm.emit(enc.rdtsc("r15"))
        asm.emit(enc.alu("sub", "r15", "r14"))
        asm.emit(enc.store("r15", "r11"))
        asm.emit(enc.alu_imm("add", "r11", 8))
        asm.emit(enc.dec("r12"))
        asm.emit(enc.jcc("nz", "rx_loop"))
        asm.emit(enc.halt())

        # Trojan one-bit: back-to-back stores monopolising the port.
        asm.org(TX_ARENA)
        asm.label("tx_one")
        asm.emit(enc.mov_imm("r4", asm.resolve("tx_sbuf"), width=64))
        asm.emit(enc.mov_imm("r2", p.sender_loops))
        asm.label("tx_loop")
        for i in range(p.tx_stores):
            asm.emit(enc.store("r5", "r4", disp=(i % 8) * 8))
        asm.emit(enc.dec("r2"))
        asm.emit(enc.jcc("nz", "tx_loop"))
        asm.emit(enc.halt())

        # Trojan zero-bit: PAUSE, no stores.
        asm.org(TZ_ARENA)
        asm.label("tx_zero")
        asm.emit(enc.mov_imm("r2", p.sender_loops * 8))
        asm.label("tx_idle")
        asm.emit(enc.pause())
        asm.emit(enc.dec("r2"))
        asm.emit(enc.jcc("nz", "tx_idle"))
        asm.emit(enc.halt())

        self._lint_resources = [
            StoreClaim("rx", "rx_epoch", p.rx_stores + 1),
            StoreClaim("tx_one", "tx_one", p.tx_stores),
            StoreClaim("tx_zero", "tx_zero", 0),
            ResourcePairClaim("tx_one", "rx", "store_buffer", "conflict"),
            ResourcePairClaim("tx_zero", "rx", "store_buffer", "disjoint"),
        ]
        # The one-bit is a store flood: the secret-dependent surface
        # includes the flood's store sites, not just its fetch regions.
        self._lint_secrets = [
            SecretClaim(
                name="bit", entries=("tx_one", "tx_zero"),
                leaks_to=("dsb", "itlb", "sb"),
            )
        ]
        return asm.assemble(entry="rx_epoch")
