"""One contention-matrix cell as an :class:`AttackSession`.

A cell is (resource, sharing mode, variant).  The sharing modes map
the paper's three attack scenarios (Section IV-B):

- ``"smt"``         -- attacker and victim co-resident on the two SMT
  threads of one physical core (``Core.run_smt``);
- ``"cross_domain"`` -- attacker kernel-resident, entered from user
  mode through a SYSCALL stub, serialised with the victim on thread 0;
- ``"time_sliced"`` -- attacker and victim time-share thread 0 at the
  same privilege.

The measurement discipline keeps baseline and contended runs
structurally identical: in SMT mode the baseline partner is the
generated ``attacker_idle`` spin loop (so SMT-mode fixed costs, e.g.
shared-decoder serialisation, cancel in the ratio); in the serial
modes the baseline run is preceded by an idle call just as the
contended run is preceded by the attacker call.  The *slowdown* is the
signed relative excess ``(contended - baseline) / baseline`` --
negative values are reported as-is, a disjoint cell hovering around
zero is the negative control working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import fmean
from typing import List, Optional, Tuple

from repro.contention.templates import GeneratedPair, generate_pair
from repro.cpu.config import CPUConfig
from repro.cpu.noise import NoiseModel
from repro.errors import ConfigError
from repro.isa.program import Program
from repro.session.base import AttackSession

MODES = ("smt", "cross_domain", "time_sliced")

#: Victim timed-loop iterations used under SMT sharing.  A concurrent
#: attacker needs hundreds of cycles to warm the contended structure
#: (MITE-decoding its footprint, walking its pages), so the victim
#: must still be running when the pressure arrives; serial modes keep
#: the templates' small defaults because the attacker runs to
#: completion *before* the victim is timed.
SMT_PASSES = {
    "uop_cache": 10,
    "itlb": 24,
    "dtlb": 16,
    "l1i": 16,
    "l1d": 16,
}


@dataclass
class CellResult:
    """Measured outcome of one (resource, mode, variant) cell."""

    resource: str
    mode: str
    variant: str
    baseline_cycles: float
    contended_cycles: float
    #: Signed relative excess; ~0 for working negative controls.
    slowdown: float
    trials: int
    #: Per-trial (baseline, contended) cycle pairs.
    samples: List[Tuple[int, int]] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "resource": self.resource,
            "mode": self.mode,
            "variant": self.variant,
            "baseline_cycles": self.baseline_cycles,
            "contended_cycles": self.contended_cycles,
            "slowdown": self.slowdown,
            "trials": self.trials,
            "samples": [list(s) for s in self.samples],
        }


class ContentionSession(AttackSession):
    """Drive one generated pair under one sharing mode."""

    def __init__(
        self,
        resource: str,
        mode: str,
        variant: str = "conflict",
        size: Optional[int] = None,
        stride: Optional[int] = None,
        trials: int = 3,
        passes: Optional[int] = None,
        config: Optional[CPUConfig] = None,
        noise: Optional[NoiseModel] = None,
    ):
        if mode not in MODES:
            raise ConfigError(
                f"unknown sharing mode {mode!r}; choose from {MODES}"
            )
        self.resource = resource
        self.mode = mode
        self.variant = variant
        self.trials = trials
        domain = "kernel" if mode == "cross_domain" else "user"
        if passes is None and mode == "smt":
            passes = SMT_PASSES.get(resource)
        self.pair: GeneratedPair = generate_pair(
            resource, variant=variant, domain=domain,
            size=size, stride=stride, config=config, passes=passes,
        )
        super().__init__(self.pair.config, noise)

    def build_program(self) -> Program:
        self._lint_claims = list(self.pair.chains)
        self._lint_pairs = list(self.pair.pairs)
        self._lint_resources = list(self.pair.resources)
        return self.pair.program

    def setup(self) -> None:
        """Install the victim's circular pointer chain (dTLB/L1d
        templates), re-applied after every reset."""
        chain = self.pair.meta.get("pointer_chain")
        if chain:
            for i, addr in enumerate(chain):
                self.core.write_mem(addr, chain[(i + 1) % len(chain)])

    # ------------------------------------------------------------------

    def _victim_time(self, partner: str) -> int:
        """One victim run against ``partner``, returning its self-timed
        cycle count (the stored RDTSC delta)."""
        if self.mode == "smt":
            self._run_smt(("victim_work", partner))
        else:
            self._call(partner)
            self._call("victim_work")
        return self._elapsed(self.core.addr_of(self.pair.result_label))

    def measure(self, trials: Optional[int] = None) -> CellResult:
        """Measure the cell: per trial, reset, then time the victim in
        the *steady state* of each pairing -- one untimed warm run
        before each timed one, so the measured runs compare
        established footprints rather than the partner's one-off
        decode/fill costs (the paper's co-running loops measure the
        same steady state)."""
        n = trials if trials is not None else self.trials
        idle = self.pair.idle_label
        attacker = self.pair.attacker_label
        t0s: List[int] = []
        t1s: List[int] = []
        samples: List[Tuple[int, int]] = []
        for _ in range(n):
            self.reset()
            self._victim_time(idle)  # warm victim + baseline partner
            t0 = self._victim_time(idle)
            self._victim_time(attacker)  # warm the attacker's footprint
            t1 = self._victim_time(attacker)
            t0s.append(t0)
            t1s.append(t1)
            samples.append((t0, t1))
        baseline = fmean(t0s)
        contended = fmean(t1s)
        slowdown = (contended - baseline) / baseline if baseline else 0.0
        return CellResult(
            resource=self.resource,
            mode=self.mode,
            variant=self.variant,
            baseline_cycles=baseline,
            contended_cycles=contended,
            slowdown=slowdown,
            trials=n,
            samples=samples,
        )
