"""One micro-op cache line."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.isa.instruction import MicroOp


@dataclass(slots=True)
class UopCacheLine:
    """A single way's worth of cached micro-ops.

    ``entry`` is the fetch address whose decode produced this region's
    lines (tag); ``seq`` orders the (up to three) lines of one region;
    ``slots`` counts occupied micro-op slots (<= uops_per_line, with
    64-bit-immediate micro-ops counting twice); ``hotness`` is the
    replacement-policy counter.
    """

    thread: int
    entry: int  # tag: fetch entry address of the region
    seq: int  # 0..2 within the region
    uops: Tuple[MicroOp, ...]
    slots: int
    msrom: bool = False
    hotness: int = 1
    lru_tick: int = 0
    region_lines: int = 1  # total lines in this region's packing

    @property
    def uop_count(self) -> int:
        """Number of micro-ops streamed from this line."""
        return len(self.uops)

    def key(self) -> Tuple[int, int, int]:
        """Identity of the line: (thread, entry, seq)."""
        return (self.thread, self.entry, self.seq)
