"""Placement rules: packing a decoded 32-byte region into cache lines.

Section II-B documents the rules this module enforces:

1. a 32-byte code region may consume at most 3 lines (18 micro-ops);
2. micro-ops delivered from the MSROM consume an entire line;
3. micro-ops of one macro-op may not span a line boundary;
4. an unconditional branch, if present, is always the last micro-op of
   its line;
5. a line may contain at most two branches;
6. a 64-bit immediate consumes two micro-op slots.

Rule 6 is encoded in :attr:`MicroOp.slots`; the rest are applied here.
A region that violates rule 1 is simply *not cacheable* -- Figure 4
shows micro-op delivery falling off a cliff past 18 micro-ops per
region, which is exactly this rule firing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.isa.instruction import MacroOp, MicroOp


class PlacementError(Exception):
    """Raised on internal placement inconsistencies (not for
    uncacheable regions, which are a normal outcome)."""


@dataclass
class LineSpec:
    """A packed line before insertion: micro-ops + slot count."""

    uops: Tuple[MicroOp, ...]
    slots: int
    msrom: bool = False


def build_lines(
    macros: Sequence[MacroOp],
    uops_per_line: int = 6,
    max_lines_per_region: int = 3,
    max_branches_per_line: int = 2,
) -> Optional[List[LineSpec]]:
    """Pack a region's decoded macro-ops into cache lines.

    ``macros`` must be the instructions decoded for one 32-byte region,
    in fetch order.  Returns the packed lines, or ``None`` when the
    region cannot be cached (placement-rule overflow, or it contains an
    instruction observed not to enter the cache, e.g. PAUSE).
    """
    if not macros:
        return None
    if any(not m.cacheable for m in macros):
        return None

    lines: List[LineSpec] = []
    cur_uops: List[MicroOp] = []
    cur_slots = 0
    cur_branches = 0

    def close_line(msrom: bool = False) -> None:
        nonlocal cur_uops, cur_slots, cur_branches
        if cur_uops:
            lines.append(LineSpec(tuple(cur_uops), cur_slots, msrom))
        cur_uops = []
        cur_slots = 0
        cur_branches = 0

    for macro in macros:
        if macro.msrom:
            # Rule 2: an MSROM instruction takes a whole line by itself.
            close_line()
            lines.append(
                LineSpec(tuple(macro.uops), uops_per_line, msrom=True)
            )
            continue

        slots_needed = macro.slot_count
        branches_needed = sum(1 for u in macro.uops if u.is_branch)
        if slots_needed > uops_per_line:
            # A single macro-op wider than a line cannot be cached at
            # all (it would have to span a boundary, violating rule 3).
            return None
        # Rule 3 (no spanning) and rule 5 (branch limit): open a fresh
        # line when this macro-op doesn't fit in the current one.
        if (
            cur_slots + slots_needed > uops_per_line
            or cur_branches + branches_needed > max_branches_per_line
        ):
            close_line()
        cur_uops.extend(macro.uops)
        cur_slots += slots_needed
        cur_branches += branches_needed
        # Rule 4: an unconditional branch terminates the line.
        if any(u.is_unconditional for u in macro.uops):
            close_line()

    close_line()

    if len(lines) > max_lines_per_region:
        # Rule 1: region too big for the cache -- not cached at all.
        return None
    if not lines:
        return None
    for spec in lines:
        if spec.slots > uops_per_line and not spec.msrom:
            raise PlacementError("packed line exceeds slot capacity")
    return lines
