"""Replacement policies for the micro-op cache.

The paper's Figure 5 experiment shows the real policy is driven by
*hotness*, not recency: an evicting loop only displaces a resident loop
once its iteration count is commensurate with the resident loop's, and
displacement is gradual rather than all-at-once.  The mechanism is
undocumented; :class:`HotnessPolicy` is our hypothesis that reproduces
the observed matrix (see DESIGN.md): saturating per-line access
counters worn down by a rotating decrement hand on misses, with
eviction only of fully-cooled lines.  :class:`LRUPolicy` exists for the
ablation benchmark, and demonstrates how much *more* a hotness policy
leaks -- occupancy under hotness encodes access *counts*, not just
access facts.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.uopcache.line import UopCacheLine


class ReplacementPolicy:
    """Interface: decides hit bookkeeping and victims for fills.

    ``state`` is a per-set scratch dict owned by the policy (e.g. the
    CLOCK hand); the cache passes the same dict for every call about
    one set.
    """

    name = "abstract"

    def touch_set(self, ways: List[UopCacheLine], tick: int, state: Dict) -> None:
        """Called once per set access (lookup or fill), before the
        access is served -- the hook aging policies use."""

    def on_hit(self, line: UopCacheLine, tick: int) -> None:
        """Bookkeeping when ``line`` is streamed."""
        raise NotImplementedError

    def on_fill(self, line: UopCacheLine, tick: int) -> None:
        """Bookkeeping when ``line`` is installed."""
        raise NotImplementedError

    def choose_victim(
        self, ways: List[UopCacheLine], tick: int, state: Dict
    ) -> Optional[UopCacheLine]:
        """Pick a line to evict from a full set.

        Returning ``None`` means "refuse this fill for now"; the policy
        may still age the set as a side effect, which is how wear-down
        works.
        """
        raise NotImplementedError

    def on_evict(self, line: UopCacheLine, state: Dict) -> None:
        """Bookkeeping when ``line`` leaves the set -- whether as a
        fill victim or through external interference
        (:meth:`UopCache.evict_random`).

        The default is a no-op: both bundled policies keep per-line
        state on the line itself, and the CLOCK hand is taken modulo
        the live way count, so a disappearing way needs no repair.
        Stateful policies (e.g. tree-PLRU over way indices) override
        this to keep their ``state`` dict consistent.
        """


class HotnessPolicy(ReplacementPolicy):
    """Saturating-counter hotness replacement with rotating wear-down.

    - every streaming hit increments the line's counter (saturating at
      ``cap``);
    - a conflicting fill first looks for a fully-cooled line
      (counter 0) and evicts the stalest one if found;
    - otherwise it decrements the line under a per-set rotating hand
      and *bypasses* the fill.

    The rotation distributes wear across all ways, so an evicting loop
    with E iterations removes a resident loop of M iterations only as
    E approaches M -- the diagonal structure of Figure 5.  It also
    means occupancy after an attack encodes *how many times* the victim
    executed, the amplified leak the paper highlights.
    """

    name = "hotness"

    def __init__(self, cap: int = 8, initial: int = 1,
                 decay_interval: int = 96):
        self.cap = cap
        self.initial = initial
        self.decay_interval = decay_interval

    def touch_set(self, ways: List[UopCacheLine], tick: int, state: Dict) -> None:
        """Age the set: counters halve every ``decay_interval`` set
        accesses, so hotness reflects *recent* streaming frequency
        rather than all-time totals.  Applied lazily per set."""
        if self.decay_interval <= 0:
            return
        last = state.get("decayed_at", 0)
        halvings = (tick - last) // self.decay_interval
        if halvings:
            shift = min(halvings, 8)
            for line in ways:
                line.hotness >>= shift
            state["decayed_at"] = tick

    def on_hit(self, line: UopCacheLine, tick: int) -> None:
        """Streaming hit: bump the saturating counter."""
        line.hotness = min(self.cap, line.hotness + 1)
        line.lru_tick = tick

    def on_fill(self, line: UopCacheLine, tick: int) -> None:
        """Fresh fill: start at the initial hotness."""
        line.hotness = self.initial
        line.lru_tick = tick

    def choose_victim(
        self, ways: List[UopCacheLine], tick: int, state: Dict
    ) -> Optional[UopCacheLine]:
        """Evict the stalest cooled line, else wear one down and
        refuse the fill."""
        cooled = [l for l in ways if l.hotness <= 0]
        if cooled:
            return min(cooled, key=lambda l: l.lru_tick)
        hand = state.get("hand", 0)
        ways[hand % len(ways)].hotness -= 1
        state["hand"] = hand + 1
        return None


class LRUPolicy(ReplacementPolicy):
    """Classic least-recently-used replacement (ablation baseline).

    Always admits the fill, evicting the least recently streamed line.
    Under LRU a *single* conflicting fetch evicts a resident line, so a
    probe only learns "was it accessed", not "how many times".
    """

    name = "lru"

    def on_hit(self, line: UopCacheLine, tick: int) -> None:
        """Refresh recency."""
        line.lru_tick = tick

    def on_fill(self, line: UopCacheLine, tick: int) -> None:
        """Record insertion recency."""
        line.lru_tick = tick

    def choose_victim(
        self, ways: List[UopCacheLine], tick: int, state: Dict
    ) -> Optional[UopCacheLine]:
        """Always evict the least recently streamed line."""
        return min(ways, key=lambda l: l.lru_tick)


def make_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Factory: ``"hotness"`` or ``"lru"``."""
    if name == "hotness":
        return HotnessPolicy(**kwargs)
    if name == "lru":
        return LRUPolicy(**kwargs)
    raise ValueError(f"unknown replacement policy {name!r}")
