"""The micro-op cache proper: sets, ways, streaming, partitioning."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instruction import region_of
from repro.observe.events import DSB_EVICT, DSB_FILL, DSB_FLUSH
from repro.uopcache.line import UopCacheLine
from repro.uopcache.placement import LineSpec
from repro.uopcache.policies import HotnessPolicy, ReplacementPolicy


@dataclass
class UopCacheStats:
    """Micro-op cache event counters."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    fills: int = 0  # fill *attempts* (regions)
    lines_filled: int = 0
    fill_rejects: int = 0  # lines bypassed by the wear-down policy
    evictions: int = 0
    streamed_uops: int = 0
    flushes: int = 0

    @property
    def hit_rate(self) -> float:
        """Region-granular hit rate."""
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        """Zero every counter."""
        for name in vars(self):
            setattr(self, name, 0)


class UopCache:
    """Set-associative streaming micro-op cache.

    Entries are tagged by *fetch entry address* and grouped per 32-byte
    region; a lookup hits only when every line of the region's packing
    is resident, and then streams them all (Section II-B's streaming
    behaviour).

    Sharing modes (Section III, "Partitioning Policy"):

    - ``"static"`` (Intel): with SMT active, each thread owns a private
      half organised as ``sets/2`` full-associativity-preserving 8-way
      sets (Figure 7's finding).  Single-threaded mode uses all sets.
    - ``"competitive"`` (AMD): both threads index the full cache and
      evict each other -- the property the cross-SMT channel needs.

    ``privilege_partition`` implements the Section VIII countermeasure:
    user and kernel code index disjoint halves.
    """

    def __init__(
        self,
        sets: int = 32,
        ways: int = 8,
        uops_per_line: int = 6,
        max_lines_per_region: int = 3,
        policy: Optional[ReplacementPolicy] = None,
        sharing: str = "static",
        privilege_partition: bool = False,
        region_bytes: int = 32,
    ):
        if sets & (sets - 1):
            raise ValueError("sets must be a power of two")
        if sharing not in ("static", "competitive"):
            raise ValueError(f"unknown sharing mode {sharing!r}")
        self.sets = sets
        self.ways = ways
        self.uops_per_line = uops_per_line
        self.max_lines_per_region = max_lines_per_region
        self.policy = policy if policy is not None else HotnessPolicy()
        self.sharing = sharing
        self.privilege_partition = privilege_partition
        self.region_bytes = region_bytes
        self.smt_active = False
        self.stats = UopCacheStats()
        self._sets: List[List[UopCacheLine]] = [[] for _ in range(sets)]
        self._set_state: List[Dict] = [{} for _ in range(sets)]
        self._tick = 0
        #: Observability: an :class:`repro.observe.events.EventBus` (set
        #: by ``Core.observe()``; None means no hooks fire) plus the
        #: cycle/thread attribution hints the core refreshes before
        #: each pipeline step -- the cache itself has no clock.
        self.observer = None
        self.obs_cycle = 0
        self.obs_thread = -1

    # ------------------------------------------------------------------
    # geometry

    @property
    def capacity_uops(self) -> int:
        """Maximum micro-ops the cache can hold."""
        return self.sets * self.ways * self.uops_per_line

    @property
    def capacity_lines(self) -> int:
        """Total number of lines."""
        return self.sets * self.ways

    def set_index(self, entry: int, thread: int, privilege: int = 3) -> int:
        """Set selected for a fetch entry address.

        Base index is bits 5-9 of the address (for 32 sets / 32-byte
        regions); partitioning folds it into the thread's and/or
        privilege level's share.
        """
        bits = entry // self.region_bytes
        frac = self.sets
        offset = 0
        if self.smt_active and self.sharing == "static":
            frac //= 2
            offset += frac * (thread & 1)
        if self.privilege_partition:
            frac //= 2
            offset += frac * (0 if privilege == 0 else 1)
        return offset + (bits % frac)

    # ------------------------------------------------------------------
    # SMT mode

    def set_smt_active(self, active: bool) -> None:
        """Toggle SMT mode; repartitioning flushes the structure."""
        if active != self.smt_active:
            self.smt_active = active
            if self.sharing == "static":
                self.flush()

    # ------------------------------------------------------------------
    # lookup / fill

    def lookup(
        self, thread: int, entry: int, privilege: int = 3
    ) -> Optional[List[UopCacheLine]]:
        """Stream the region entered at ``entry`` if fully resident.

        Returns the ordered lines on a hit (updating replacement
        state), or ``None`` on a miss.
        """
        self._tick += 1
        self.stats.lookups += 1
        idx = self.set_index(entry, thread, privilege)
        ways = self._sets[idx]
        self.policy.touch_set(ways, self._tick, self._set_state[idx])
        lines = sorted(
            (l for l in ways if l.thread == thread and l.entry == entry),
            key=lambda l: l.seq,
        )
        if not lines or len(lines) != lines[0].region_lines:
            self.stats.misses += 1
            return None
        if [l.seq for l in lines] != list(range(len(lines))):
            self.stats.misses += 1
            return None
        for line in lines:
            self.policy.on_hit(line, self._tick)
            self.stats.streamed_uops += line.uop_count
        self.stats.hits += 1
        return lines

    def fill(
        self,
        thread: int,
        entry: int,
        specs: Sequence[LineSpec],
        privilege: int = 3,
    ) -> bool:
        """Install a decoded region (from :func:`build_lines` output).

        Returns True only if *every* line was admitted; under the
        hotness policy a fill may be (partially) bypassed, wearing down
        the resident lines instead -- subsequent misses retry and
        eventually displace them.
        """
        if not specs or len(specs) > self.max_lines_per_region:
            return False
        self._tick += 1
        self.stats.fills += 1
        idx = self.set_index(entry, thread, privilege)
        ways = self._sets[idx]
        state = self._set_state[idx]
        self.policy.touch_set(ways, self._tick, state)
        all_in = True
        admitted = 0
        total = len(specs)
        for seq, spec in enumerate(specs):
            line = UopCacheLine(
                thread=thread,
                entry=entry,
                seq=seq,
                uops=spec.uops,
                slots=spec.slots,
                msrom=spec.msrom,
                region_lines=total,
            )
            if self._insert(ways, state, line, idx):
                admitted += 1
            else:
                all_in = False
        obs = self.observer
        if obs is not None and obs.wants(DSB_FILL):
            obs.emit(
                DSB_FILL,
                self.obs_cycle,
                self.obs_thread,
                entry=entry,
                set=idx,
                lines=total,
                admitted=admitted,
            )
        return all_in

    def _insert(
        self, ways: List[UopCacheLine], state: Dict, line: UopCacheLine, idx: int
    ) -> bool:
        for existing in ways:
            if existing.key() == line.key():
                ways.remove(existing)
                break
        if len(ways) < self.ways:
            self.policy.on_fill(line, self._tick)
            ways.append(line)
            self.stats.lines_filled += 1
            return True
        victim = self.policy.choose_victim(ways, self._tick, state)
        if victim is None:
            self.stats.fill_rejects += 1
            return False
        ways.remove(victim)
        self.policy.on_evict(victim, state)
        self.stats.evictions += 1
        obs = self.observer
        if obs is not None and obs.wants(DSB_EVICT):
            obs.emit(
                DSB_EVICT,
                self.obs_cycle,
                self.obs_thread,
                entry=victim.entry,
                victim_thread=victim.thread,
                seq=victim.seq,
                set=idx,
                cause="conflict",
            )
        self.policy.on_fill(line, self._tick)
        ways.append(line)
        self.stats.lines_filled += 1
        return True

    def evict_random(self, rng: random.Random) -> bool:
        """Evict one uniformly random resident line.

        Models external interference (unrelated code sharing the
        structure): a random occupied set is chosen, then a random way
        within it, and the victim is retired through the replacement
        policy's ``on_evict`` bookkeeping.  This is the public path
        :class:`repro.cpu.noise.NoiseModel` uses; nothing outside this
        module should touch ``_sets`` directly.

        Returns True if a line was evicted, False if the cache is empty.
        """
        occupied = [i for i in range(self.sets) if self._sets[i]]
        if not occupied:
            return False
        idx = rng.choice(occupied)
        ways = self._sets[idx]
        victim = ways.pop(rng.randrange(len(ways)))
        self.policy.on_evict(victim, self._set_state[idx])
        self.stats.evictions += 1
        obs = self.observer
        if obs is not None and obs.wants(DSB_EVICT):
            obs.emit(
                DSB_EVICT,
                self.obs_cycle,
                self.obs_thread,
                entry=victim.entry,
                victim_thread=victim.thread,
                seq=victim.seq,
                set=idx,
                cause="noise",
            )
        return True

    # ------------------------------------------------------------------
    # invalidation / inclusion

    def flush(self) -> None:
        """Drop every line (iTLB flush / domain-crossing mitigation)."""
        self.stats.flushes += 1
        dropped = sum(len(ways) for ways in self._sets)
        for ways in self._sets:
            ways.clear()
        for state in self._set_state:
            state.clear()
        obs = self.observer
        if obs is not None and obs.wants(DSB_FLUSH):
            obs.emit(
                DSB_FLUSH, self.obs_cycle, self.obs_thread, dropped=dropped
            )

    def reset(self) -> None:
        """Restore post-construction state: empty sets, zeroed stats.

        Unlike :meth:`flush` this does not count as a flush event and
        also rewinds the replacement tick and SMT mode -- it exists for
        ``Core.reset()``, where the whole structure must be
        indistinguishable from a freshly built one.
        """
        for ways in self._sets:
            ways.clear()
        for state in self._set_state:
            state.clear()
        self._tick = 0
        self.smt_active = False
        self.stats.reset()

    def invalidate_code_range(self, start: int, end: int) -> int:
        """Evict lines whose region overlaps [start, end).

        Called by the L1I eviction hook to maintain the documented
        inclusion property.  Returns the number of lines dropped.
        """
        dropped = 0
        lo = region_of(start, self.region_bytes)
        for ways in self._sets:
            keep = [
                line
                for line in ways
                if not lo <= region_of(line.entry, self.region_bytes) < end
            ]
            if len(keep) != len(ways):
                dropped += len(ways) - len(keep)
                ways[:] = keep
        if dropped:
            obs = self.observer
            if obs is not None and obs.wants(DSB_EVICT):
                obs.emit(
                    DSB_EVICT,
                    self.obs_cycle,
                    self.obs_thread,
                    cause="inclusion",
                    dropped=dropped,
                    start=start,
                    end=end,
                )
        return dropped

    # ------------------------------------------------------------------
    # inspection (tests and characterization)

    def occupancy(self) -> int:
        """Number of valid lines."""
        return sum(len(ways) for ways in self._sets)

    def resident_entries(self, thread: Optional[int] = None) -> List[int]:
        """Distinct resident entry addresses (optionally one thread's)."""
        seen = set()
        for ways in self._sets:
            for line in ways:
                if thread is None or line.thread == thread:
                    seen.add(line.entry)
        return sorted(seen)

    def set_occupancy(self, idx: int) -> int:
        """Valid lines in set ``idx``."""
        return len(self._sets[idx])

    def lines_in_set(self, idx: int) -> List[UopCacheLine]:
        """Copy of the lines in set ``idx`` (inspection only)."""
        return list(self._sets[idx])
