"""The micro-op cache (DSB) model.

Implements the organisation reverse-engineered in Sections II-B/III of
the paper:

- 32 sets x 8 ways, 6 micro-op slots per line (Skylake numbers;
  parameterisable for Zen and Sunny Cove);
- set index taken from bits 5-9 of the instruction address, so one
  aligned 32-byte code region always maps to one set;
- all documented placement rules (3-line/18-slot region cap, MSROM
  lines, unconditional-jump line termination, two-branch limit,
  double-slot 64-bit immediates);
- streaming delivery of all of a region's lines on a hit;
- the *hotness*-based replacement the paper reverse-engineers
  (Figure 5), with LRU available for ablation;
- Intel static SMT partitioning (16 private 8-way sets per thread,
  Figure 7) versus AMD competitive sharing;
- inclusion in the L1I and the iTLB (evictions/flushes propagate in).
"""

from repro.uopcache.line import UopCacheLine
from repro.uopcache.placement import PlacementError, build_lines
from repro.uopcache.policies import HotnessPolicy, LRUPolicy, ReplacementPolicy
from repro.uopcache.cache import UopCache, UopCacheStats

__all__ = [
    "HotnessPolicy",
    "LRUPolicy",
    "PlacementError",
    "ReplacementPolicy",
    "UopCache",
    "UopCacheLine",
    "UopCacheStats",
    "build_lines",
]
