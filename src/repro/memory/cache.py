"""Generic set-associative cache with true-LRU replacement.

Used for L1I, L1D, L2, LLC and (with page-granularity "lines") the
iTLB.  The micro-op cache is *not* built on this class -- its streaming
organisation, placement rules and hotness replacement are different
enough to deserve their own model (:mod:`repro.uopcache`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass(slots=True)
class CacheStats:
    """Reference/miss/eviction counters for one cache level."""

    refs: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0

    @property
    def hits(self) -> int:
        """Number of hitting references."""
        return self.refs - self.misses

    @property
    def miss_rate(self) -> float:
        """Miss ratio over all references (0.0 if never referenced)."""
        return self.misses / self.refs if self.refs else 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.refs = 0
        self.misses = 0
        self.evictions = 0
        self.flushes = 0


class Cache:
    """A set-associative cache storing line *tags* only.

    Data values live in :class:`~repro.memory.mainmem.MainMemory`; the
    cache tracks presence and recency, which is all timing needs.

    ``on_evict`` is called with the evicted line's base address -- the
    hook the micro-op cache uses for L1I inclusion.
    """

    __slots__ = ("name", "sets", "ways", "line_size", "latency",
                 "on_evict", "stats", "_lines")

    def __init__(
        self,
        name: str,
        sets: int,
        ways: int,
        line_size: int = 64,
        latency: int = 4,
        on_evict: Optional[Callable[[int], None]] = None,
    ):
        if sets <= 0 or (sets & (sets - 1)):
            raise ValueError(f"{name}: sets must be a power of two, got {sets}")
        if line_size <= 0 or (line_size & (line_size - 1)):
            raise ValueError(f"{name}: line_size must be a power of two")
        if ways <= 0:
            raise ValueError(f"{name}: ways must be positive")
        self.name = name
        self.sets = sets
        self.ways = ways
        self.line_size = line_size
        self.latency = latency
        self.on_evict = on_evict
        self.stats = CacheStats()
        # Per-set list of line base addresses, most-recently-used last.
        self._lines: List[List[int]] = [[] for _ in range(sets)]

    @property
    def capacity_bytes(self) -> int:
        """Total capacity in bytes."""
        return self.sets * self.ways * self.line_size

    def _index(self, addr: int) -> int:
        return (addr // self.line_size) % self.sets

    def line_base(self, addr: int) -> int:
        """Base address of the line containing ``addr``."""
        return addr & ~(self.line_size - 1)

    def lookup(self, addr: int) -> bool:
        """Reference ``addr``: returns True on hit and updates LRU.

        A miss does *not* allocate; call :meth:`fill` for that, so the
        hierarchy controls fill ordering and eviction hooks fire at the
        right moment.
        """
        base = self.line_base(addr)
        lines = self._lines[self._index(addr)]
        self.stats.refs += 1
        if base in lines:
            lines.remove(base)
            lines.append(base)
            return True
        self.stats.misses += 1
        return False

    def probe(self, addr: int) -> bool:
        """Presence check without touching LRU state or counters."""
        return self.line_base(addr) in self._lines[self._index(addr)]

    def fill(self, addr: int) -> Optional[int]:
        """Install the line containing ``addr``.

        Returns the base address of any line evicted to make room.
        """
        base = self.line_base(addr)
        lines = self._lines[self._index(addr)]
        if base in lines:
            lines.remove(base)
            lines.append(base)
            return None
        victim = None
        if len(lines) >= self.ways:
            victim = lines.pop(0)
            self.stats.evictions += 1
            if self.on_evict is not None:
                self.on_evict(victim)
        lines.append(base)
        return victim

    def invalidate(self, addr: int) -> bool:
        """Remove the line containing ``addr`` if present (no evict hook
        recursion beyond this level -- the hierarchy coordinates)."""
        base = self.line_base(addr)
        lines = self._lines[self._index(addr)]
        if base in lines:
            lines.remove(base)
            if self.on_evict is not None:
                self.on_evict(base)
            return True
        return False

    def flush(self) -> None:
        """Drop every line."""
        self.stats.flushes += 1
        for lines in self._lines:
            if self.on_evict is not None:
                for base in lines:
                    self.on_evict(base)
            lines.clear()

    def reset(self) -> None:
        """Restore post-construction state: empty sets, zeroed stats.

        Unlike :meth:`flush` this fires no eviction hooks and does not
        count as a flush -- it exists for ``Core.reset()``, where the
        downstream structures are being reset in the same breath.
        """
        for lines in self._lines:
            lines.clear()
        self.stats.reset()

    def resident_lines(self) -> List[int]:
        """Base addresses of all resident lines (for tests/inspection)."""
        out: List[int] = []
        for lines in self._lines:
            out.extend(lines)
        return out

    def occupancy(self) -> int:
        """Number of valid lines."""
        return sum(len(lines) for lines in self._lines)
