"""Instruction TLB model.

Only the properties the paper relies on are modelled:

- misses add a page-walk latency to an instruction fetch;
- a *flush* of the iTLB forces a flush of the entire micro-op cache
  (Section II-B: "In the event of an iTLB flush ... the entire micro-op
  cache is flushed"), which is both the SGX behaviour the paper notes
  and the flush-at-domain-crossing mitigation of Section VIII.
"""

from __future__ import annotations

from typing import Callable, List, Optional


class TLB:
    """Fully-associative translation buffer with LRU replacement."""

    __slots__ = ("entries", "page_size", "walk_latency", "on_flush",
                 "refs", "misses", "flushes", "_pages")

    def __init__(
        self,
        entries: int = 128,
        page_size: int = 4096,
        walk_latency: int = 30,
        on_flush: Optional[Callable[[], None]] = None,
    ):
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError("page_size must be a power of two")
        self.entries = entries
        self.page_size = page_size
        self.walk_latency = walk_latency
        self.on_flush = on_flush
        self.refs = 0
        self.misses = 0
        self.flushes = 0
        self._pages: List[int] = []  # LRU order, most recent last

    def page_of(self, addr: int) -> int:
        """Virtual page number containing ``addr``."""
        return addr // self.page_size

    def access(self, addr: int) -> int:
        """Translate ``addr``; returns added latency (0 on a TLB hit)."""
        page = self.page_of(addr)
        self.refs += 1
        if page in self._pages:
            self._pages.remove(page)
            self._pages.append(page)
            return 0
        self.misses += 1
        if len(self._pages) >= self.entries:
            self._pages.pop(0)
        self._pages.append(page)
        return self.walk_latency

    def flush(self) -> None:
        """Drop all translations and notify the micro-op cache."""
        self.flushes += 1
        self._pages.clear()
        if self.on_flush is not None:
            self.on_flush()

    def reset(self) -> None:
        """Restore post-construction state without firing ``on_flush``
        (``Core.reset()`` clears the micro-op cache itself)."""
        self._pages.clear()
        self.refs = 0
        self.misses = 0
        self.flushes = 0
