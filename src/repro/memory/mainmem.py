"""Sparse byte-addressable main memory."""

from __future__ import annotations

from typing import Dict


class MainMemory:
    """Backing store for simulated data memory.

    Byte-granular and sparse (unwritten bytes read as zero), which is
    convenient for the attacks' large, mostly-untouched probe arrays.
    Values are unsigned; multi-byte accesses are little-endian.

    Deliberately *not* slotted: the replay engine
    (:mod:`repro.cpu.engine`) shadows :meth:`write` with an instance
    attribute while recording a call segment, which needs ``__dict__``.
    """

    def __init__(self) -> None:
        self._bytes: Dict[int, int] = {}

    def read(self, addr: int, size: int = 8) -> int:
        """Read ``size`` bytes at ``addr`` as an unsigned integer."""
        value = 0
        for i in range(size):
            value |= self._bytes.get(addr + i, 0) << (8 * i)
        return value

    def write(self, addr: int, value: int, size: int = 8) -> None:
        """Write ``size`` low-order bytes of ``value`` at ``addr``."""
        for i in range(size):
            self._bytes[addr + i] = (value >> (8 * i)) & 0xFF

    def load_image(self, base: int, payload: bytes) -> None:
        """Bulk-initialise memory (used for Program data segments)."""
        for i, b in enumerate(payload):
            self._bytes[base + i] = b

    def clear(self) -> None:
        """Forget every written byte (``Core.reset()`` re-images the
        program's data segments afterwards)."""
        self._bytes.clear()

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Read a raw byte string (for harness-side result extraction)."""
        return bytes(self._bytes.get(addr + i, 0) for i in range(size))

    def footprint(self) -> int:
        """Number of bytes ever written (for tests)."""
        return len(self._bytes)
