"""Memory-system substrates: caches, the data/instruction hierarchy,
main memory, and the instruction TLB.

The paper's attacks need these for three reasons:

- the Spectre-v1 *baseline* of Table II transmits through the LLC via
  FLUSH+RELOAD, so a multi-level data hierarchy with ``clflush`` must
  exist;
- the micro-op cache is *inclusive* in the L1 instruction cache and the
  iTLB (Section II-B): L1I evictions and iTLB flushes must propagate;
- transient-window gadgets are built from loads that miss to DRAM.
"""

from repro.memory.cache import Cache, CacheStats
from repro.memory.hierarchy import AccessResult, MemoryHierarchy
from repro.memory.mainmem import MainMemory
from repro.memory.tlb import TLB

__all__ = [
    "AccessResult",
    "Cache",
    "CacheStats",
    "MainMemory",
    "MemoryHierarchy",
    "TLB",
]
