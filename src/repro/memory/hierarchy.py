"""Three-level cache hierarchy (split L1, unified L2, inclusive LLC).

Latency parameters approximate Coffee Lake and only need to preserve
*ordering*: L1 hit << LLC hit << DRAM, with enough separation for an
RDTSC-granularity FLUSH+RELOAD classifier to work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.memory.cache import Cache
from repro.memory.tlb import TLB


@dataclass(slots=True)
class AccessResult:
    """Outcome of one hierarchy access."""

    latency: int
    level: str  # "L1", "L2", "LLC", "DRAM"

    @property
    def hit_l1(self) -> bool:
        """True if the access was served by the first level."""
        return self.level == "L1"


class MemoryHierarchy:
    """L1I + L1D over a unified L2 over an inclusive LLC over DRAM.

    ``on_l1i_evict`` lets the micro-op cache maintain its documented
    inclusion in the L1I.  LLC evictions back-invalidate the L1s
    (inclusive LLC), so an attacker evicting an LLC set also evicts L1,
    as the Spectre-v1 baseline requires.
    """

    __slots__ = ("l1i", "l1d", "l2", "llc", "dram_latency", "itlb", "dtlb")

    def __init__(
        self,
        l1_latency: int = 4,
        l2_latency: int = 14,
        llc_latency: int = 44,
        dram_latency: int = 200,
        on_l1i_evict: Optional[Callable[[int], None]] = None,
        itlb_on_flush: Optional[Callable[[], None]] = None,
        itlb_entries: int = 128,
        itlb_walk_latency: int = 30,
        dtlb: Optional[TLB] = None,
    ):
        self.l1i = Cache("L1I", sets=64, ways=8, latency=l1_latency,
                         on_evict=on_l1i_evict)
        self.l1d = Cache("L1D", sets=64, ways=8, latency=l1_latency)
        self.l2 = Cache("L2", sets=1024, ways=4, latency=l2_latency)
        self.llc = Cache("LLC", sets=8192, ways=16, latency=llc_latency,
                         on_evict=self._back_invalidate)
        self.dram_latency = dram_latency
        self.itlb = TLB(entries=itlb_entries, walk_latency=itlb_walk_latency,
                        on_flush=itlb_on_flush)
        #: Optional data-side TLB (``None`` keeps the historical
        #: dTLB-less data path and its calibrations untouched).
        self.dtlb = dtlb

    def _back_invalidate(self, line_base: int) -> None:
        # Inclusive LLC: a victim leaving the LLC leaves the L1s/L2 too.
        self.l1i.invalidate(line_base)
        self.l1d.invalidate(line_base)
        self.l2.invalidate(line_base)

    def _access(self, l1: Cache, addr: int) -> AccessResult:
        if l1.lookup(addr):
            return AccessResult(l1.latency, "L1")
        if self.l2.lookup(addr):
            l1.fill(addr)
            return AccessResult(self.l2.latency, "L2")
        if self.llc.lookup(addr):
            self.l2.fill(addr)
            l1.fill(addr)
            return AccessResult(self.llc.latency, "LLC")
        self.llc.fill(addr)
        self.l2.fill(addr)
        l1.fill(addr)
        return AccessResult(self.dram_latency, "DRAM")

    def access_data(self, addr: int) -> AccessResult:
        """Load/store reference through L1D (adds dTLB latency when a
        data TLB is modelled)."""
        if self.dtlb is None:
            return self._access(self.l1d, addr)
        extra = self.dtlb.access(addr)
        result = self._access(self.l1d, addr)
        if extra:
            return AccessResult(result.latency + extra, result.level)
        return result

    def access_inst(self, addr: int) -> AccessResult:
        """Instruction fetch reference through L1I (adds iTLB latency)."""
        extra = self.itlb.access(addr)
        result = self._access(self.l1i, addr)
        if extra:
            return AccessResult(result.latency + extra, result.level)
        return result

    def clflush(self, addr: int) -> None:
        """Evict the line containing ``addr`` from every level."""
        self.llc.invalidate(addr)  # back-invalidates L1/L2 via hook
        self.l2.invalidate(addr)
        self.l1d.invalidate(addr)
        self.l1i.invalidate(addr)

    def reset(self) -> None:
        """Empty every level and zero its counters, silently.

        ``Cache.flush()`` fires eviction hooks (L1I inclusion, LLC
        back-invalidation) and bumps flush counters; a ``Core.reset()``
        wants neither -- the post-construction state is simply "empty".
        """
        self.l1i.reset()
        self.l1d.reset()
        self.l2.reset()
        self.llc.reset()
        self.itlb.reset()
        if self.dtlb is not None:
            self.dtlb.reset()

    def probe_data_latency(self, addr: int) -> int:
        """Latency a data access *would* see, without perturbing state.

        Used by harness-side classifiers in tests; attack code itself
        always uses real accesses plus RDTSC.
        """
        if self.l1d.probe(addr):
            return self.l1d.latency
        if self.l2.probe(addr):
            return self.l2.latency
        if self.llc.probe(addr):
            return self.llc.latency
        return self.dram_latency
