"""Direction, target, indirect and return-address predictors.

Deliberately simple structures: what the attacks require is not
prediction *accuracy* but faithful *trainability* -- an attacker must be
able to steer predictions with repeated executions, and a victim's
history must persist so it can be replayed transiently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.isa.instruction import BranchKind, MacroOp


@dataclass(slots=True)
class Prediction:
    """Front-end prediction for one control-flow macro-op."""

    taken: bool
    target: Optional[int]  # None => no target available (fetch must stall)


class Bimodal:
    """Per-address 2-bit saturating-counter direction predictor.

    Counter values: 0 strongly-not-taken .. 3 strongly-taken.  New
    branches start weakly-taken (2), matching the taken-biased static
    prediction of real front ends closely enough for mistraining
    experiments.
    """

    def __init__(self, entries: int = 4096):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self._mask = entries - 1
        self._counters: Dict[int, int] = {}

    def _slot(self, pc: int) -> int:
        return pc & self._mask

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc``."""
        return self._counters.get(self._slot(pc), 2) >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train with the resolved direction."""
        slot = self._slot(pc)
        counter = self._counters.get(slot, 2)
        counter = min(3, counter + 1) if taken else max(0, counter - 1)
        self._counters[slot] = counter


class BTB:
    """Branch target buffer: direct-branch target memo, tagged by PC."""

    def __init__(self, entries: int = 4096):
        self.entries = entries
        self._targets: Dict[int, int] = {}

    def predict(self, pc: int) -> Optional[int]:
        """Cached target for the branch at ``pc``."""
        return self._targets.get(pc)

    def update(self, pc: int, target: int) -> None:
        """Install/refresh a target."""
        if len(self._targets) >= self.entries and pc not in self._targets:
            # Evict an arbitrary old entry; capacity pressure is not
            # load-bearing for any experiment.
            self._targets.pop(next(iter(self._targets)))
        self._targets[pc] = target


class IndirectPredictor:
    """Last-target indirect branch/call predictor.

    Predicts that an indirect branch jumps where it last jumped -- the
    property variant-2 exploits: legitimate executions of
    ``fun[secret]()`` encode the secret-dependent target here, and a
    later *transient* execution replays it at fetch.

    Entries are indexed by the low bits of the branch PC and are *not*
    tagged, as on real hardware -- so a branch at an aliasing address
    trains the same slot.  That untagged indexing is what Spectre-v2
    (branch target injection) exploits, and what the paper's Section
    VI-A gadget-chaining remark relies on.
    """

    def __init__(self, entries: int = 1024):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self._mask = entries - 1
        self._targets: Dict[int, int] = {}

    def slot(self, pc: int) -> int:
        """Predictor slot selected by a branch PC (aliasable)."""
        return pc & self._mask

    def predict(self, pc: int) -> Optional[int]:
        """Predicted target, or None if the slot was never trained."""
        return self._targets.get(self.slot(pc))

    def update(self, pc: int, target: int) -> None:
        """Record the resolved target in the branch's slot."""
        self._targets[self.slot(pc)] = target


class ReturnStack:
    """Return stack buffer (RSB) for RET target prediction."""

    def __init__(self, depth: int = 16):
        self.depth = depth
        self._stack: List[int] = []

    def push(self, return_addr: int) -> None:
        """Record the return address of a CALL at fetch time."""
        if len(self._stack) >= self.depth:
            self._stack.pop(0)
        self._stack.append(return_addr)

    def pop(self) -> Optional[int]:
        """Predicted target for a RET (None when empty/underflowed)."""
        if self._stack:
            return self._stack.pop()
        return None

    def snapshot(self) -> List[int]:
        """Copy of the stack (checkpointed across speculation)."""
        return list(self._stack)

    def restore(self, snap: List[int]) -> None:
        """Restore a checkpointed stack after a squash."""
        self._stack = list(snap)


class BranchPredictor:
    """Front-end prediction unit tying the four structures together."""

    def __init__(self) -> None:
        self.bimodal = Bimodal()
        self.btb = BTB()
        self.indirect = IndirectPredictor()
        self.rsb = ReturnStack()
        self.lookups = 0
        self.mispredicts = 0

    def predict(self, instr: MacroOp) -> Prediction:
        """Predict direction and next fetch address for ``instr``.

        Fetch-time side effect: CALLs push their return address on the
        RSB and RETs pop it, mirroring hardware (and checkpointed by
        the core around speculation).
        """
        self.lookups += 1
        kind = instr.branch_kind
        if kind in (BranchKind.JMP, BranchKind.CALL):
            if kind is BranchKind.CALL:
                self.rsb.push(instr.end)
            return Prediction(taken=True, target=instr.target)
        if kind is BranchKind.JCC:
            taken = self.bimodal.predict(instr.addr)
            return Prediction(taken=taken, target=instr.target if taken else instr.end)
        if kind in (BranchKind.JMP_IND, BranchKind.CALL_IND):
            if kind is BranchKind.CALL_IND:
                self.rsb.push(instr.end)
            target = self.indirect.predict(instr.addr) or self.btb.predict(instr.addr)
            return Prediction(taken=True, target=target)
        if kind is BranchKind.RET:
            return Prediction(taken=True, target=self.rsb.pop())
        # SYSCALL/SYSRET redirect fetch but through architectural MSRs,
        # handled by the core, not predicted here.
        return Prediction(taken=True, target=None)

    def resolve(self, instr: MacroOp, taken: bool, target: int,
                mispredicted: bool) -> None:
        """Train all structures with the architectural outcome."""
        if mispredicted:
            self.mispredicts += 1
        if instr.branch_kind is BranchKind.JCC:
            self.bimodal.update(instr.addr, taken)
            if taken and instr.target is not None:
                self.btb.update(instr.addr, instr.target)
        elif instr.branch_kind in (BranchKind.JMP_IND, BranchKind.CALL_IND):
            self.indirect.update(instr.addr, target)
            self.btb.update(instr.addr, target)
        elif instr.branch_kind in (BranchKind.JMP, BranchKind.CALL):
            self.btb.update(instr.addr, target)
