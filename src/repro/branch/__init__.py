"""Branch-prediction substrate.

Transient-execution attacks are *built out of* predictor (mis)training:
Spectre-v1 mistrains a conditional direction predictor to bypass a
bounds check, and variant-2 relies on an indirect-target predictor that
has legitimately learned a secret-correlated target.  This package
provides the minimal structures with the training dynamics those
attacks need: a 2-bit bimodal direction predictor, a branch target
buffer, an indirect target predictor, and a return stack buffer.
"""

from repro.branch.predictor import (
    BranchPredictor,
    Bimodal,
    BTB,
    IndirectPredictor,
    Prediction,
    ReturnStack,
)

__all__ = [
    "BTB",
    "Bimodal",
    "BranchPredictor",
    "IndirectPredictor",
    "Prediction",
    "ReturnStack",
]
