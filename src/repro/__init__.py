"""repro: reproduction of "I See Dead uops: Leaking Secrets via
Intel/AMD Micro-Op Caches" (Ren et al., ISCA 2021).

The package is layered:

- substrates: :mod:`repro.isa`, :mod:`repro.memory`, :mod:`repro.branch`,
  :mod:`repro.uopcache`, :mod:`repro.frontend`, :mod:`repro.backend`,
  :mod:`repro.cpu`, :mod:`repro.coding`;
- the paper's contribution: :mod:`repro.core` (characterization,
  tiger/zebra exploit generation, covert channels, transient-execution
  attacks, mitigations).

Quick start::

    from repro import Assembler, Core, CPUConfig, encodings as enc

    asm = Assembler()
    asm.label("main")
    asm.emit(enc.nop(15), enc.nop(15), enc.nop(2))
    asm.emit(enc.halt())
    core = Core(CPUConfig.skylake(), asm.assemble(entry="main"))
    counters = core.call("main")
"""

from repro.cpu.config import CPUConfig
from repro.cpu.core import Core
from repro.cpu.counters import PerfCounters
from repro.cpu.noise import NoiseModel
from repro.isa import encodings
from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.errors import ConfigError, ReproError, SimFault

__version__ = "1.0.0"

__all__ = [
    "Assembler",
    "CPUConfig",
    "ConfigError",
    "Core",
    "NoiseModel",
    "PerfCounters",
    "Program",
    "ReproError",
    "SimFault",
    "encodings",
    "__version__",
]
