"""Functional-first execution with scoreboard timing.

Each fetched micro-op is processed exactly once, in fetch (i.e.
speculative program) order.  Processing does two things:

1. **Functional execution** against the thread's architectural
   registers and the store buffer, rolled forward eagerly.  On a
   squash, the core restores a checkpoint, rewinding these effects.
2. **Timing** via a register scoreboard: a micro-op starts executing
   at ``max(dispatch slot, operand readiness, fence floor)`` -- an
   out-of-order dataflow model.  Branch *resolution time* is the
   branch micro-op's completion time, which is what opens transient
   windows when the branch's operands arrive late (e.g. a flushed
   bounds variable missing to DRAM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.backend.storebuffer import StoreBuffer
from repro.cpu.config import CPUConfig
from repro.cpu.thread import KERNEL_PRIV, ThreadContext, USER_PRIV
from repro.frontend.pipeline import FetchedUop
from repro.isa.instruction import UopKind
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.mainmem import MainMemory
from repro.observe.events import SB_DRAIN

_MASK64 = (1 << 64) - 1

# flags bitfield
_ZF = 1
_SF = 2
_CF = 4


def _signed(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value >> 63 else value


def _compare_flags(a: int, b: int) -> int:
    """Flags from ``a - b`` (ZF/SF/CF subset)."""
    flags = 0
    if (a - b) & _MASK64 == 0:
        flags |= _ZF
    if _signed(a) - _signed(b) < 0:
        flags |= _SF
    if (a & _MASK64) < (b & _MASK64):
        flags |= _CF
    return flags


def _eval_cond(cond: str, flags: int) -> bool:
    if cond == "z":
        return bool(flags & _ZF)
    if cond == "nz":
        return not flags & _ZF
    if cond == "b":
        return bool(flags & _CF)
    if cond == "ae":
        return not flags & _CF
    if cond in ("l", "s"):
        return bool(flags & _SF)
    if cond in ("ge", "ns"):
        return not flags & _SF
    raise ValueError(f"unknown condition code {cond!r}")


def _alu(op: str, a: int, b: int) -> int:
    if op == "add":
        return (a + b) & _MASK64
    if op == "sub":
        return (a - b) & _MASK64
    if op == "and":
        return a & b & _MASK64
    if op == "or":
        return (a | b) & _MASK64
    if op == "xor":
        return (a ^ b) & _MASK64
    if op == "shl":
        return (a << (b & 63)) & _MASK64
    if op == "shr":
        return (a & _MASK64) >> (b & 63)
    if op == "imul":
        return (a * b) & _MASK64
    raise ValueError(f"unknown ALU op {op!r}")


@dataclass(slots=True)
class ResolveInfo:
    """Outcome of a control-flow micro-op, produced at execution."""

    dynuop: FetchedUop
    taken: bool
    actual_target: Optional[int]
    resolve_cycle: int


class Backend:
    """Executes micro-ops for all threads of one core."""

    __slots__ = ("config", "memory", "hierarchy", "rdtsc_jitter",
                 "store_buffers", "observer", "_sb_commits",
                 "_sb_port_free")

    def __init__(
        self,
        config: CPUConfig,
        memory: MainMemory,
        hierarchy: MemoryHierarchy,
        rdtsc_jitter: Optional[Callable[[], int]] = None,
    ):
        self.config = config
        self.memory = memory
        self.hierarchy = hierarchy
        self.rdtsc_jitter = rdtsc_jitter
        self.store_buffers = {0: StoreBuffer(), 1: StoreBuffer()}
        #: Observability bus (wired by ``Core.observe``; ``None`` keeps
        #: the hot path at one attribute check).
        self.observer = None
        # Store-drain timing model (see ``_store_timing``): per-thread
        # scheduled commit-completion cycles, plus the next-free cycle
        # of each L1D write port.  Under "competitive" sharing both
        # threads drain through port 0.
        self._sb_commits = {0: [], 1: []}
        self._sb_port_free = [0, 0]

    # ------------------------------------------------------------------

    def reset_store_timing(self) -> None:
        """Rebase the store-drain schedule (call boundaries, resets).

        The schedule is expressed in pipeline-clock cycles; whenever
        those clocks rebase (``Core.call`` / ``Core.run_smt`` with
        ``reset_clocks``, ``Core.reset``) the in-flight commit times
        from the previous clock domain are meaningless and dropped.
        """
        self._sb_commits[0].clear()
        self._sb_commits[1].clear()
        self._sb_port_free[0] = 0
        self._sb_port_free[1] = 0

    def _store_timing(self, thread_id: int, start: int) -> "tuple[int, int, int]":
        """Charge one store against the bounded drain model.

        Timing-only companion of the functional :class:`StoreBuffer`
        (which stays unbounded and squash-aware): each store occupies a
        buffer entry from ``start`` until its commit completes through
        an L1D write port at one commit per ``store_drain_interval``
        cycles.  A store arriving at a full buffer stalls until the
        oldest outstanding commit frees an entry -- the back-pressure
        the store-buffer contention channel measures.

        Returns ``(stall, occupancy, commit_done)``.
        """
        config = self.config
        queue = self._sb_commits[thread_id]
        # Retire commits that completed before this store arrived.
        done = 0
        for t in queue:
            if t > start:
                break
            done += 1
        if done:
            del queue[:done]
        stall = 0
        capacity = config.store_buffer_entries
        if len(queue) >= capacity:
            # Wait for enough older commits to complete that an entry
            # is free when this store retires into the buffer.
            free_at = queue[len(queue) - capacity]
            stall = max(0, free_at - start)
            del queue[: len(queue) - capacity + 1]
        port = 0 if config.store_buffer_sharing == "competitive" else thread_id
        begin = max(start + stall, self._sb_port_free[port])
        commit_done = begin + config.store_drain_interval
        self._sb_port_free[port] = commit_done
        queue.append(commit_done)  # port times are monotonic: stays sorted
        return stall, len(queue), commit_done

    def _dispatch(self, du: FetchedUop, thread: ThreadContext) -> int:
        """Assign a dispatch cycle respecting the dispatch width."""
        cycle = max(du.fetch_cycle, thread.dispatch_cycle)
        if cycle > thread.dispatch_cycle:
            thread.dispatch_cycle = cycle
            thread.dispatch_slots_used = 0
        thread.dispatch_slots_used += 1
        if thread.dispatch_slots_used > self.config.dispatch_width:
            thread.dispatch_cycle += 1
            thread.dispatch_slots_used = 1
        du.dispatch_cycle = thread.dispatch_cycle
        return thread.dispatch_cycle

    def _address(self, uop, regs) -> int:
        addr = regs[uop.base] + uop.disp if uop.base else uop.disp
        if uop.index is not None:
            addr += regs[uop.index] * uop.scale
        return addr & _MASK64

    def process(
        self,
        du: FetchedUop,
        thread: ThreadContext,
        kill_time: Optional[int] = None,
        suppress_data: bool = False,
    ) -> Optional[ResolveInfo]:
        """Execute one micro-op functionally and time it.

        ``kill_time`` is the earliest resolution cycle of an *older*
        already-discovered misprediction: a micro-op whose execution
        would only begin at or after that cycle never issues on real
        hardware, so its microarchitectural side effects (data-cache
        accesses, CLFLUSH) are suppressed -- this is what makes LFENCE
        actually block Spectre-v1's disclosure loads while leaving the
        *front-end* (micro-op cache) effects of fetch fully intact.
        Functional effects still roll forward; the squash discards
        them.

        Returns branch-resolution info for control micro-ops so the
        core can verify the front end's prediction.
        """
        uop = du.uop
        regs = thread.regs
        reg_ready = thread.reg_ready
        sbuf = self.store_buffers[thread.thread_id]
        counters = thread.counters

        dispatch = self._dispatch(du, thread)
        ready = dispatch
        for reg in uop.reads():
            t = reg_ready.get(reg, 0)
            if t > ready:
                ready = t
        start = max(ready, thread.exec_floor)

        kind = uop.kind
        latency = uop.latency
        taken = True
        actual_target: Optional[int] = None
        resolve: Optional[ResolveInfo] = None

        if kind in (UopKind.LFENCE, UopKind.MFENCE, UopKind.RDTSC, UopKind.CPUID):
            # Serialise against all older in-flight completions.
            start = max(start, thread.oldest_inflight_done)

        suppressed = kill_time is not None and start >= kill_time
        du.squashed = suppressed
        # data-side invisibility may be forced by an invisible-
        # speculation defense even for uops that would issue in time
        data_hidden = suppressed or suppress_data

        if kind in (UopKind.NOP, UopKind.PAUSE, UopKind.MSROM_FLOW):
            pass
        elif kind is UopKind.MOV_IMM:
            regs[uop.dst] = uop.imm & _MASK64
        elif kind is UopKind.MOV:
            regs[uop.dst] = regs[uop.srcs[0]]
        elif kind is UopKind.ALU:
            a, b = regs[uop.srcs[0]], regs[uop.srcs[1]]
            value = _alu(uop.alu_op, a, b)
            regs[uop.dst] = value
            if uop.sets_flags:
                regs["flags"] = _compare_flags(value, 0)
        elif kind is UopKind.ALU_IMM:
            value = _alu(uop.alu_op, regs[uop.srcs[0]], uop.imm)
            regs[uop.dst] = value
            if uop.sets_flags:
                regs["flags"] = _compare_flags(value, 0)
        elif kind is UopKind.CMP:
            b = regs[uop.srcs[1]] if len(uop.srcs) > 1 else uop.imm
            regs["flags"] = _compare_flags(regs[uop.srcs[0]], b)
        elif kind is UopKind.TEST:
            b = regs[uop.srcs[1]] if len(uop.srcs) > 1 else uop.imm
            regs["flags"] = _compare_flags(regs[uop.srcs[0]] & b, 0)
        elif kind is UopKind.LEA:
            regs[uop.dst] = self._address(uop, regs)
        elif kind is UopKind.LOAD:
            addr = self._address(uop, regs)
            regs[uop.dst] = sbuf.read(addr, uop.mem_size, self.memory)
            if data_hidden:
                latency = (
                    self.hierarchy.l1d.latency
                    if suppressed
                    else self.hierarchy.probe_data_latency(addr)
                )
            else:
                latency = self._data_access(addr, counters)
        elif kind is UopKind.STORE:
            addr = self._address(uop, regs)
            sbuf.write(du.seq, addr, regs[uop.srcs[0]], uop.mem_size)
            latency = 1
            if not suppressed:
                # Suppressed stores never issue, so they neither occupy
                # a drain slot nor pay back-pressure.  CALL-side stack
                # pushes bypass the model too (they go through the
                # CALL/CALL_IND uop kinds), keeping the drain count an
                # exact mirror of the STORE uops lint can see.
                stall, occupancy, commit_done = self._store_timing(
                    thread.thread_id, start
                )
                latency += stall
                obs = self.observer
                if obs is not None and obs.wants(SB_DRAIN):
                    obs.emit(
                        SB_DRAIN,
                        start,
                        thread.thread_id,
                        pc=du.macro.addr,
                        addr=addr,
                        occupancy=occupancy,
                        stall=stall,
                        commit_done=commit_done,
                    )
        elif kind is UopKind.JCC:
            taken = _eval_cond(uop.cond, regs["flags"])
            actual_target = (
                uop.target if taken else du.macro.end
            )
        elif kind is UopKind.JMP:
            actual_target = uop.target
        elif kind is UopKind.JMP_IND:
            actual_target = regs[uop.srcs[0]]
        elif kind is UopKind.CALL:
            regs["rsp"] = (regs["rsp"] - 8) & _MASK64
            sbuf.write(du.seq, regs["rsp"], du.macro.end, 8)
            actual_target = uop.target
        elif kind is UopKind.CALL_IND:
            actual_target = regs[uop.srcs[0]]
            regs["rsp"] = (regs["rsp"] - 8) & _MASK64
            sbuf.write(du.seq, regs["rsp"], du.macro.end, 8)
        elif kind is UopKind.RET:
            actual_target = sbuf.read(regs["rsp"], 8, self.memory)
            regs["rsp"] = (regs["rsp"] + 8) & _MASK64
        elif kind is UopKind.RDTSC:
            value = start
            if self.rdtsc_jitter is not None:
                # Hardware TSCs never run backwards: jitter that would
                # drop a read below the previous one (making short probe
                # deltas negative) is clamped to the last value.
                value = max(thread.last_rdtsc, value + self.rdtsc_jitter())
            thread.last_rdtsc = value
            regs[uop.dst] = value
        elif kind is UopKind.CLFLUSH:
            if not data_hidden:
                self.hierarchy.clflush(self._address(uop, regs))
        elif kind is UopKind.SYSCALL:
            thread.privilege = KERNEL_PRIV
            actual_target = None  # fetch-side linkage decides the target
        elif kind is UopKind.SYSRET:
            thread.privilege = USER_PRIV
            actual_target = None
        elif kind in (UopKind.LFENCE, UopKind.MFENCE, UopKind.CPUID):
            pass
        elif kind is UopKind.HALT:
            pass
        else:  # pragma: no cover - template/backend mismatch guard
            raise NotImplementedError(f"uop kind {kind}")

        done = start + latency
        du.exec_start = start
        du.exec_done = done
        for reg in uop.writes():
            reg_ready[reg] = done
        if done > thread.oldest_inflight_done:
            thread.oldest_inflight_done = done
        if kind in (UopKind.LFENCE, UopKind.MFENCE):
            thread.exec_floor = max(thread.exec_floor, done)
        thread.last_retire = max(thread.last_retire, done)
        counters.retired_uops += 1

        if uop.is_branch and kind not in (UopKind.SYSCALL, UopKind.SYSRET):
            resolve = ResolveInfo(du, taken, actual_target, done)
        return resolve

    def _data_access(self, addr: int, counters) -> int:
        """Access the data hierarchy and update data-side counters."""
        result = self.hierarchy.access_data(addr)
        counters.l1d_refs += 1
        if result.level != "L1":
            counters.l1d_misses += 1
        if result.level in ("LLC", "DRAM"):
            counters.llc_refs += 1
            if result.level == "DRAM":
                counters.llc_misses += 1
        return result.latency

    # ------------------------------------------------------------------

    def store_buffer(self, thread_id: int) -> StoreBuffer:
        """Store buffer of one hardware thread."""
        return self.store_buffers[thread_id]
