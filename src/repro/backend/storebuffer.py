"""Speculative store buffer with byte-granular forwarding.

Stores executed along a speculative path must not reach memory until
the path is known-correct; loads must still observe them (store-to-load
forwarding).  A squash truncates the buffer at the checkpoint's
sequence number, which is how transiently "written" state vanishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.memory.mainmem import MainMemory


@dataclass(slots=True)
class _Entry:
    seq: int
    addr: int
    size: int
    value: int


class StoreBuffer:
    """Ordered pending stores for one hardware thread."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: List[_Entry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def write(self, seq: int, addr: int, value: int, size: int = 8) -> None:
        """Buffer a store by the micro-op with sequence number ``seq``."""
        self._entries.append(_Entry(seq, addr, size, value))

    def read(self, addr: int, size: int, memory: MainMemory) -> int:
        """Load ``size`` bytes at ``addr``, forwarding buffered bytes.

        Memory provides the base value; buffered stores overlay it in
        program order (oldest first), so the youngest store to each
        byte wins -- exactly store-to-load forwarding semantics.
        """
        data = list(memory.read_bytes(addr, size))
        for entry in self._entries:
            lo = max(addr, entry.addr)
            hi = min(addr + size, entry.addr + entry.size)
            for byte_addr in range(lo, hi):
                shift = 8 * (byte_addr - entry.addr)
                data[byte_addr - addr] = (entry.value >> shift) & 0xFF
        value = 0
        for i, b in enumerate(data):
            value |= b << (8 * i)
        return value

    def clear(self) -> None:
        """Drop every pending store without committing it."""
        self._entries.clear()

    def truncate(self, seq: int) -> int:
        """Discard entries younger than ``seq`` (squash); returns count."""
        before = len(self._entries)
        self._entries = [e for e in self._entries if e.seq <= seq]
        return before - len(self._entries)

    def drain_upto(self, seq: int, memory: MainMemory, on_commit=None) -> None:
        """Commit entries with sequence <= ``seq`` to memory.

        ``on_commit``, when given, is invoked with each committed entry
        (the observability layer's store-commit hook).
        """
        remaining: List[_Entry] = []
        for entry in self._entries:
            if entry.seq <= seq:
                memory.write(entry.addr, entry.value, entry.size)
                if on_commit is not None:
                    on_commit(entry)
            else:
                remaining.append(entry)
        self._entries = remaining

    def drain_all(self, memory: MainMemory, on_commit=None) -> None:
        """Commit everything (end of a non-speculative run)."""
        for entry in self._entries:
            memory.write(entry.addr, entry.value, entry.size)
            if on_commit is not None:
                on_commit(entry)
        self._entries.clear()
