"""Execution backend: a functional-first, scoreboard-timed dataflow
model with speculative stores buffered until retirement.

The property the attacks need from the backend is precise: a micro-op
executes as soon as its operands are ready (no in-order constraint), a
mispredicted branch is only *discovered* when it executes, and
everything younger is then squashed -- discarding architectural effects
(registers, buffered stores) while leaving microarchitectural effects
(data caches, micro-op cache fills, predictor training) in place.
"""

from repro.backend.execute import Backend, ResolveInfo
from repro.backend.storebuffer import StoreBuffer

__all__ = ["Backend", "ResolveInfo", "StoreBuffer"]
