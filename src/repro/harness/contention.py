"""Harness-native contention matrix: resource x sharing-mode grid.

Registers one job per matrix *cell* -- a (resource, mode, variant)
triple measured by :class:`repro.contention.session.ContentionSession`
-- and provides drivers that expand the full grid (7 resources x 3
sharing modes x conflict/disjoint) into one job list for
:func:`repro.harness.executor.run_jobs`.  Each cell is an independent
deterministic simulation, so the grid is embarrassingly parallel and
content-addressed: a warm cache reproduces the whole matrix without
executing a single job (``python -m repro batch contention`` twice ->
second run reports 0 executed).

The ``variant`` axis is the built-in negative control: ``conflict``
cells share the contended structure by construction, ``disjoint``
cells provably do not (the lint layer verifies both claims before any
cell runs), so true cross-thread contention separates from
self-interference within one grid.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cpu.config import CPUConfig
from repro.harness.executor import JobOutcome, RunSummary, run_jobs
from repro.harness.job import Job, register

#: Reduced grid for smoke tests and CI: three resources spanning the
#: front-end (micro-op cache), translation (iTLB) and memory
#: (store buffer) families, under the two cheap sharing modes.
FAST_RESOURCES = ("uop_cache", "itlb", "store_buffer")
FAST_MODES = ("smt", "time_sliced")


@register("contention.cell")
def _job_contention_cell(
    config: CPUConfig,
    seed: int,
    resource: str,
    mode: str,
    variant: str,
    trials: int,
    size: Optional[int] = None,
    stride: Optional[int] = None,
) -> Dict[str, Any]:
    """Measure one contention-matrix cell."""
    from repro.contention.session import ContentionSession

    session = ContentionSession(
        resource, mode, variant=variant,
        size=size, stride=stride, trials=trials, config=config,
    )
    return session.measure().as_dict()


def contention_jobs(
    fast: bool = False,
    trials: int = 2,
    resources: Optional[Sequence[str]] = None,
    modes: Optional[Sequence[str]] = None,
    variants: Optional[Sequence[str]] = None,
    engine: Optional[str] = None,
) -> List[Job]:
    """The contention matrix as a job list, grid order
    (resource, mode, variant).

    Each cell carries its resource's tuned configuration
    (:func:`repro.contention.templates.contention_config`), so the
    config participates in the cache key and per-resource retunes
    invalidate exactly the affected cells.  ``engine`` selects the
    stepping backend on top of each tuned config.
    """
    from repro.contention.session import MODES
    from repro.contention.templates import (
        RESOURCES,
        VARIANTS,
        contention_config,
    )

    if resources is None:
        resources = FAST_RESOURCES if fast else RESOURCES
    if modes is None:
        modes = FAST_MODES if fast else MODES
    variants = variants or VARIANTS

    def cell_config(resource: str) -> CPUConfig:
        config = contention_config(resource)
        if engine is not None:
            config = config.with_options(engine=engine)
        return config

    return [
        Job(
            "contention.cell",
            config=cell_config(resource),
            params={
                "resource": resource,
                "mode": mode,
                "variant": variant,
                "trials": trials,
            },
            tag=f"contention[{resource}/{mode}/{variant}]",
        )
        for resource in resources
        for mode in modes
        for variant in variants
    ]


def run_contention(
    fast: bool = False,
    trials: int = 2,
    resources: Optional[Sequence[str]] = None,
    modes: Optional[Sequence[str]] = None,
    variants: Optional[Sequence[str]] = None,
    engine: Optional[str] = None,
    **runner_kwargs,
) -> Tuple[Dict[str, Dict[str, Dict[str, Dict[str, Any]]]],
           List[JobOutcome], RunSummary]:
    """Run the contention matrix through the harness.

    Returns ``(matrix, outcomes, summary)`` where ``matrix`` nests
    ``resource -> mode -> variant -> cell dict`` (the
    :meth:`CellResult.as_dict` fields, ``slowdown`` signed).
    """
    jobs = contention_jobs(fast, trials, resources, modes, variants,
                           engine=engine)
    outcomes, summary = run_jobs(jobs, **runner_kwargs)
    failures = [o for o in outcomes if not o.ok]
    if failures:
        first = failures[0]
        raise RuntimeError(
            f"{len(failures)} contention job(s) failed; first: "
            f"{first.job.label}: {first.error}"
        )
    matrix: Dict[str, Dict[str, Dict[str, Dict[str, Any]]]] = {}
    for outcome in outcomes:
        cell = outcome.result
        matrix.setdefault(cell["resource"], {}) \
              .setdefault(cell["mode"], {})[cell["variant"]] = cell
    return matrix, outcomes, summary


def format_matrix(
    matrix: Dict[str, Dict[str, Dict[str, Dict[str, Any]]]]
) -> str:
    """Render the matrix as an aligned text table, one row per
    resource x variant, one slowdown column per mode."""
    from repro.core.report import format_table

    modes: List[str] = []
    for per_mode in matrix.values():
        for mode in per_mode:
            if mode not in modes:
                modes.append(mode)
    header = ["resource", "variant"] + [f"{m} slowdown" for m in modes]
    rows = []
    for resource, per_mode in matrix.items():
        variants = []
        for cells in per_mode.values():
            for variant in cells:
                if variant not in variants:
                    variants.append(variant)
        for variant in variants:
            row: List[object] = [resource, variant]
            for mode in modes:
                cell = per_mode.get(mode, {}).get(variant)
                row.append(
                    f"{cell['slowdown']:+.3f}" if cell else "-"
                )
            rows.append(row)
    return format_table(header, rows)
