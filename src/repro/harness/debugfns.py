"""Synthetic experiment callables: ``debug.*`` jobs.

Real experiments are deterministic and (mostly) well-behaved, which
makes them useless for exercising the harness's failure machinery and
awkward for load-testing the serving layer.  These registered jobs
fill that gap:

- ``debug.echo``   -- returns its parameters (wiring checks);
- ``debug.spin``   -- a bounded CPU burn (load generation);
- ``debug.sleep``  -- wall-clock stall (timeout paths, coalescing
  windows);
- ``debug.flaky``  -- fails transiently N times before succeeding,
  counting attempts in a sentinel file so retries are observable
  across process boundaries (retry paths).

All parameters enter the content hash like any other job's, so
``debug.sleep`` with a fresh ``token`` is a cache miss and a repeat is
a hit -- exactly the cold/warm split ``benchmarks/serve_load.py``
measures.
"""

from __future__ import annotations

import time
from typing import Any, Dict

from repro.cpu.config import CPUConfig
from repro.harness.executor import TransientJobError
from repro.harness.job import register


@register("debug.echo")
def _job_echo(config: CPUConfig, seed: int, **params) -> Dict[str, Any]:
    return {"seed": seed, **params}


@register("debug.spin")
def _job_spin(
    config: CPUConfig, seed: int, n: int, token: int = 0
) -> Dict[str, Any]:
    acc = seed & 0x7FFFFFFF
    for i in range(int(n)):
        acc = (acc * 1103515245 + i) % 2147483647
    return {"acc": acc, "n": int(n), "token": token}


@register("debug.sleep")
def _job_sleep(
    config: CPUConfig, seed: int, seconds: float, token: int = 0
) -> Dict[str, Any]:
    time.sleep(float(seconds))
    return {"slept": float(seconds), "token": token}


@register("debug.flaky")
def _job_flaky(
    config: CPUConfig, seed: int, sentinel: str, fail_times: int,
    value: int = 42,
) -> Dict[str, Any]:
    """Raise :class:`TransientJobError` on the first ``fail_times``
    attempts, then succeed.  ``sentinel`` is an attempt-count file
    shared by every attempt (one line appended per call), so the
    schedule holds even when retries land in different worker
    processes."""
    with open(sentinel, "a+", encoding="utf-8") as fh:
        fh.seek(0)
        attempts = len(fh.read().splitlines())
        fh.write("attempt\n")
    if attempts < int(fail_times):
        raise TransientJobError(
            f"flaky attempt {attempts + 1}/{fail_times} (scheduled failure)"
        )
    return {"value": value, "attempts": attempts + 1}
