"""Harness-native attack jobs: the evaluation tables as job grids.

Registers one job per attack measurement -- the Table II Spectre
comparison rows, the key-extraction runs (Section VI-B), the
branch-target-injection and jump-table variants, and the Figure 10
fence signals -- and provides drivers that expand them into job lists
for :func:`repro.harness.executor.run_jobs`.  Together with the
Table I jobs in :mod:`repro.harness.experiments` this makes the whole
attack evaluation (``python -m repro batch attacks``) parallel and
content-addressed: a warm cache answers every row without running a
single simulation.

Each job builds its attack driver through the session layer
(:mod:`repro.session`), and each delegates to the same code path the
serial commands use (``repro.core.report.table2`` &c), so the two
paths agree bit-for-bit; ``tests/test_harness_attacks.py`` enforces
that.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cpu.config import CPUConfig
from repro.harness.executor import JobOutcome, RunSummary, run_jobs
from repro.harness.job import Job, register

#: Default Table II secret (matches ``repro.core.report.table2``).
TABLE2_SECRET = b"\xa5\x3c\x5a\xc3"

#: Default key-extraction grid: 16-bit exponents with the MSB set.
KEYEXTRACT_KEYS = (0xB5A3, 0x9C3D, 0xF00F)


# ----------------------------------------------------------------------
# Job functions


@register("attacks.table2_row")
def _job_table2_row(
    config: CPUConfig, seed: int, attack: str, secret_hex: str
) -> Dict[str, Any]:
    """One row of Table II (classic vs micro-op-cache Spectre)."""
    from repro.core.transient import ClassicSpectreV1, UopCacheSpectreV1

    secret = bytes.fromhex(secret_hex)
    if attack == "classic":
        name, driver = "Spectre (original)", ClassicSpectreV1(
            secret=secret, config=config)
    elif attack == "uop_cache":
        name, driver = "Spectre (uop cache)", UopCacheSpectreV1(
            secret=secret, config=config)
    else:
        raise ValueError(f"unknown Table II attack {attack!r}")
    stats = driver.leak()
    return {
        "attack": name,
        "seconds": stats.seconds,
        "llc_references": stats.counters.llc_refs,
        "llc_misses": stats.counters.llc_misses,
        "uop_cache_penalty_cycles": stats.counters.dsb_miss_penalty_cycles,
        "byte_accuracy": stats.byte_accuracy,
        "leaked_hex": stats.leaked.hex(),
    }


@register("attacks.keyextract")
def _job_keyextract(
    config: CPUConfig, seed: int, nbits: int, key: int
) -> Dict[str, Any]:
    """One key-recovery run through the SMT spy (Section VI-B)."""
    from repro.core.keyextract import KeyExtractor

    result = KeyExtractor(nbits=nbits, config=config).extract(key)
    return {
        "nbits": result.nbits,
        "true_key": result.true_key,
        "recovered_key": result.recovered_key,
        "exact": result.exact,
        "bit_errors": result.bit_errors,
    }


@register("attacks.bti")
def _job_bti(
    config: CPUConfig, seed: int, secret_hex: str
) -> Dict[str, Any]:
    """Branch-target injection leak (Spectre-v2 disclosure)."""
    from repro.core.bti import BranchTargetInjection

    stats = BranchTargetInjection(
        secret=bytes.fromhex(secret_hex), config=config).leak()
    return {
        "leaked_hex": stats.leaked.hex(),
        "byte_accuracy": stats.byte_accuracy,
        "bit_errors": stats.bit_errors,
        "seconds": stats.seconds,
    }


@register("attacks.jumptable")
def _job_jumptable(
    config: CPUConfig, seed: int, secret_hex: str, bits_per_symbol: int
) -> Dict[str, Any]:
    """Multi-bit jump-table variant-1 leak."""
    from repro.core.transient_multibit import JumpTableSpectre

    stats = JumpTableSpectre(
        secret=bytes.fromhex(secret_hex),
        bits_per_symbol=bits_per_symbol,
        config=config,
    ).leak()
    return {
        "leaked_hex": stats.leaked.hex(),
        "byte_accuracy": stats.byte_accuracy,
        "bit_errors": stats.bit_errors,
        "seconds": stats.seconds,
    }


@register("attacks.lfence_signal")
def _job_lfence_signal(
    config: CPUConfig, seed: int, fence: str, rounds: int
) -> Dict[str, Any]:
    """Figure 10 probe-time signal for one fence primitive."""
    from repro.core.transient import LfenceBypass

    signal = LfenceBypass(config=config).measure(fence, rounds=rounds)
    return {
        "fence": signal.fence,
        "signal": signal.signal,
        "threshold": signal.timing.threshold,
    }


# ----------------------------------------------------------------------
# Job-grid builders


def table2_jobs(
    secret: bytes = TABLE2_SECRET,
    config: Optional[CPUConfig] = None,
) -> List[Job]:
    """One job per Table II row, in paper order."""
    config = config or CPUConfig.skylake()
    return [
        Job("attacks.table2_row", config=config,
            params={"attack": attack, "secret_hex": secret.hex()},
            tag=f"table2[{attack}]")
        for attack in ("classic", "uop_cache")
    ]


def keyextract_jobs(
    keys: Sequence[int] = KEYEXTRACT_KEYS,
    nbits: int = 16,
    config: Optional[CPUConfig] = None,
) -> List[Job]:
    """One job per key in the extraction grid."""
    config = config or CPUConfig.zen()
    return [
        Job("attacks.keyextract", config=config,
            params={"nbits": nbits, "key": key},
            tag=f"keyextract[{key:#x}]")
        for key in keys
    ]


def attack_jobs(
    payload: bytes = b"uop cache leaks!",
    secret: bytes = TABLE2_SECRET,
    keys: Sequence[int] = KEYEXTRACT_KEYS,
    nbits: int = 16,
    noise_seed: int = 17,
    lfence_rounds: int = 8,
    config: Optional[CPUConfig] = None,
    engine: Optional[str] = None,
) -> Dict[str, List[Job]]:
    """The full attack evaluation as named job groups.

    Keys (in display order): ``table1``, ``contention``, ``table2``,
    ``keyextract``, ``bti``, ``jumptable``, ``lfence``.  The Table I
    group reuses the ``covert.table1_row`` jobs from
    :mod:`repro.harness.experiments`, so its cache keys are shared
    with ``batch covert``; the ``contention`` group adds the two
    non-DSB covert channels (iTLB, store buffer) from
    :mod:`repro.contention.channels` as extra Table-I-format rows
    through the same job function.

    ``engine`` selects the stepping backend for *every* group,
    including the key-extraction group's internal Zen config (the
    engine-parity tests drive the whole evaluation through both
    backends this way).
    """
    from repro.core.report import CONTENTION_MODES
    from repro.harness.experiments import table1_jobs
    from repro.harness.sweep import Sweep

    skl = config or CPUConfig.skylake()
    zen = None
    if engine is not None:
        skl = skl.with_options(engine=engine)
        zen = CPUConfig.zen(engine=engine)
    return {
        "table1": table1_jobs(payload, noise_seed, config=skl),
        "contention": Sweep(
            "covert.table1_row",
            axes={"mode": list(CONTENTION_MODES)},
            base={"payload_hex": payload.hex()},
            config=skl,
            seed=noise_seed,
            tag="contention",
        ).jobs(),
        "table2": table2_jobs(secret, config=skl),
        "keyextract": keyextract_jobs(keys, nbits, config=zen),
        "bti": [Job("attacks.bti", config=skl,
                    params={"secret_hex": secret.hex()}, tag="bti")],
        "jumptable": [Job("attacks.jumptable", config=skl,
                          params={"secret_hex": secret.hex(),
                                  "bits_per_symbol": 2},
                          tag="jumptable")],
        "lfence": [Job("attacks.lfence_signal", config=skl,
                       params={"fence": fence, "rounds": lfence_rounds},
                       tag=f"lfence[{fence}]")
                   for fence in ("nf", "lf", "cp")],
    }


# ----------------------------------------------------------------------
# Drivers


def run_table2(
    secret: bytes = TABLE2_SECRET,
    **runner_kwargs,
) -> Tuple[List[Any], List[JobOutcome], RunSummary]:
    """Regenerate Table II via the harness; rows in paper order.

    Returns ``(rows, outcomes, summary)`` with :class:`Table2Row`
    instances identical to ``repro.core.report.table2``.
    """
    from repro.core.report import Table2Row

    outcomes, summary = run_jobs(table2_jobs(secret), **runner_kwargs)
    rows = []
    for outcome in outcomes:
        if not outcome.ok:
            raise RuntimeError(
                f"Table II job failed: {outcome.job.label}: {outcome.error}"
            )
        fields = dict(outcome.result)
        fields.pop("leaked_hex", None)
        rows.append(Table2Row(**fields))
    return rows, outcomes, summary


def run_attacks(
    payload: bytes = b"uop cache leaks!",
    secret: bytes = TABLE2_SECRET,
    keys: Sequence[int] = KEYEXTRACT_KEYS,
    nbits: int = 16,
    noise_seed: int = 17,
    fast: bool = False,
    engine: Optional[str] = None,
    **runner_kwargs,
) -> Tuple[Dict[str, List[Any]], List[JobOutcome], RunSummary]:
    """Run the whole attack evaluation through the harness.

    All groups go into one job list so a parallel run keeps every
    worker busy across group boundaries.  ``fast`` shrinks each group
    to a single cheap point (1-byte payloads, an 8-bit key) for smoke
    tests.  ``engine`` selects the stepping backend for every job.
    Returns ``(results, outcomes, summary)`` where ``results``
    maps each group name to its per-job result dicts (Table I/II
    groups get :class:`Table1Row` / :class:`Table2Row` instances).
    """
    from repro.core.report import Table1Row, Table2Row

    if fast:
        payload, secret = b"u", b"\xa5"
        keys, nbits = (0xAAA,), 12  # pattern key: recovers exactly
        groups = attack_jobs(payload, secret, keys, nbits, noise_seed,
                             lfence_rounds=2, engine=engine)
    else:
        groups = attack_jobs(payload, secret, keys, nbits, noise_seed,
                             engine=engine)

    jobs, spans = [], {}
    for name, batch in groups.items():
        spans[name] = (len(jobs), len(jobs) + len(batch))
        jobs.extend(batch)

    outcomes, summary = run_jobs(jobs, **runner_kwargs)
    failures = [o for o in outcomes if not o.ok]
    if failures:
        first = failures[0]
        raise RuntimeError(
            f"{len(failures)} attack job(s) failed; first: "
            f"{first.job.label}: {first.error}"
        )

    results: Dict[str, List[Any]] = {}
    for name, (start, stop) in spans.items():
        rows = [outcomes[i].result for i in range(start, stop)]
        if name in ("table1", "contention"):
            rows = [Table1Row(**row) for row in rows]
        elif name == "table2":
            rows = [
                Table2Row(**{k: v for k, v in row.items()
                             if k != "leaked_hex"})
                for row in rows
            ]
        results[name] = rows
    return results, outcomes, summary
