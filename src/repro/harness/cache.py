"""Content-addressed on-disk result store.

Layout (all JSON, human-inspectable)::

    <root>/objects/<key[:2]>/<key>.json

where ``key`` is the job's content hash (:meth:`repro.harness.job.Job.key`).
Because the schema version is baked into the hash, a version bump
simply stops finding old entries; :meth:`ResultCache.get` additionally
verifies the stored schema/key so a corrupt or foreign file degrades
to a miss, never to a wrong result.

Writes are atomic (temp file in the destination directory, then
``os.replace``), so concurrent writers -- e.g. two batch runs sharing
a cache -- can only ever race to install identical bytes.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from repro.harness.job import CACHE_SCHEMA_VERSION, canonical_json

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Resolve the cache root: ``$REPRO_CACHE_DIR``, else
    ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


@dataclass
class CacheStats:
    """Summary of what the store currently holds (results and named
    artifacts are counted separately)."""

    root: str
    entries: int
    total_bytes: int
    artifacts: int = 0
    artifact_bytes: int = 0

    def format(self) -> str:
        """One-line human rendering."""
        kib = self.total_bytes / 1024
        akib = self.artifact_bytes / 1024
        return (
            f"{self.entries} cached result(s), {kib:.1f} KiB + "
            f"{self.artifacts} artifact(s), {akib:.1f} KiB "
            f"under {self.root} (schema v{CACHE_SCHEMA_VERSION})"
        )


def _unlink_quiet(path) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


def _atomic_write(path: Path, blob: bytes) -> Path:
    """Install ``blob`` at ``path`` atomically (temp file in the
    destination directory, then ``os.replace``).

    Safe under concurrent multi-process writers: two processes racing
    on one key each write a private temp file and the final rename is
    atomic, so readers only ever see a complete record.  A concurrent
    ``clear()`` can delete the parent directory between our ``mkdir``
    and the write/rename -- that surfaces as ``FileNotFoundError``, and
    we simply re-create the directory and retry.
    """
    last_error: Optional[BaseException] = None
    for _ in range(5):
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
        except FileExistsError as exc:
            # exist_ok's own is_dir() recheck races against a
            # concurrent clear(): treat it like any other retryable
            # directory churn.
            last_error = exc
            continue
        try:
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        except FileNotFoundError as exc:  # parent raced away: retry
            last_error = exc
            continue
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
            return path
        except FileNotFoundError as exc:  # ditto, between mkstemp/replace
            _unlink_quiet(tmp)
            last_error = exc
            continue
        except BaseException:
            _unlink_quiet(tmp)
            raise
    raise last_error  # repeated strikes: the directory will not stay put


class ResultCache:
    """Content-addressed JSON blob store keyed by job hash."""

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    @property
    def objects_dir(self) -> Path:
        """Directory holding the sharded result blobs."""
        return self.root / "objects"

    def path_for(self, key: str) -> Path:
        """Blob path for a job hash."""
        return self.objects_dir / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """Cached result for ``key``, or ``None`` on any kind of miss
        (absent, unreadable, wrong schema, wrong key)."""
        path = self.path_for(key)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict):
            return None
        if record.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        if record.get("key") != key:
            return None
        if "result" not in record:
            return None
        return record["result"]

    def put(self, key: str, fn: str, result: Any) -> Path:
        """Atomically store ``result`` under ``key``.

        The record is canonical JSON of deterministic fields only, so
        the same job always produces a byte-identical blob regardless
        of which process or machine computed it.
        """
        record = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "fn": fn,
            "result": result,
        }
        blob = canonical_json(record)
        return _atomic_write(self.path_for(key), blob)

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    # ------------------------------------------------------------------
    # artifacts: named blobs riding alongside a keyed result (traces,
    # heatmaps, Chrome exports) -- opaque bytes, not schema-checked

    @property
    def artifacts_dir(self) -> Path:
        """Directory holding per-key artifact files."""
        return self.root / "artifacts"

    def artifact_path(self, key: str, name: str) -> Path:
        """On-disk path of artifact ``name`` for result ``key``."""
        if "/" in name or name.startswith("."):
            raise ValueError(f"invalid artifact name {name!r}")
        return self.artifacts_dir / key[:2] / key / name

    def put_artifact(self, key: str, name: str, data) -> Path:
        """Atomically store an artifact (``bytes`` or ``str``)."""
        if isinstance(data, str):
            data = data.encode("utf-8")
        return _atomic_write(self.artifact_path(key, name), data)

    def get_artifact(self, key: str, name: str) -> Optional[bytes]:
        """Stored artifact bytes, or ``None`` when absent/unreadable."""
        try:
            return self.artifact_path(key, name).read_bytes()
        except OSError:
            return None

    # ------------------------------------------------------------------

    @staticmethod
    def _walk(base: Path, pattern: str):
        """``base.rglob(pattern)``, tolerant of directories a concurrent
        ``clear()`` deletes mid-walk (pathlib only swallows
        ``PermissionError``; a vanished directory must be a no-op too)."""
        try:
            yield from sorted(base.rglob(pattern))
        except FileNotFoundError:
            return

    def _artifact_files(self):
        if not self.artifacts_dir.is_dir():
            return
        for path in self._walk(self.artifacts_dir, "*"):
            if path.is_file() and path.suffix != ".tmp":
                yield path

    def _stray_tmp_files(self):
        """Orphaned ``.tmp`` files (a writer died mid-``put``)."""
        for base in (self.objects_dir, self.artifacts_dir):
            if not base.is_dir():
                continue
            for path in self._walk(base, "*.tmp"):
                if path.is_file():
                    yield path

    def _blobs(self):
        if not self.objects_dir.is_dir():
            return
        try:
            shards = sorted(self.objects_dir.iterdir())
        except FileNotFoundError:
            return
        for shard in shards:
            if not shard.is_dir():
                continue
            for blob in self._walk(shard, "*.json"):
                yield blob

    def stats(self) -> CacheStats:
        """Entry/artifact counts and on-disk footprint."""
        entries = 0
        total = 0
        for blob in self._blobs():
            try:
                total += blob.stat().st_size
            except OSError:
                continue
            entries += 1
        artifacts = 0
        artifact_bytes = 0
        for path in self._artifact_files():
            try:
                artifact_bytes += path.stat().st_size
            except OSError:
                continue
            artifacts += 1
        return CacheStats(str(self.root), entries, total,
                          artifacts, artifact_bytes)

    def clear(self) -> int:
        """Delete every stored result and artifact (plus any orphaned
        temp files); returns the count of files removed."""
        removed = 0
        for blob in list(self._blobs()):
            try:
                blob.unlink()
            except OSError:
                continue
            removed += 1
        for path in list(self._artifact_files()):
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        for path in list(self._stray_tmp_files()):
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        if self.objects_dir.is_dir():
            for shard in reversed(list(self._walk(self.objects_dir, "*"))):
                try:
                    shard.rmdir()
                except OSError:
                    pass
        if self.artifacts_dir.is_dir():
            # prune now-empty <shard>/<key> directories bottom-up
            for directory in reversed(list(self._walk(self.artifacts_dir,
                                                      "*"))):
                try:
                    directory.rmdir()
                except OSError:
                    pass
        return removed


class NullCache:
    """Cache stand-in that never hits and never stores (``--no-cache``)."""

    def get(self, key: str):  # noqa: D102 -- trivial
        return None

    def put(self, key: str, fn: str, result: Any):  # noqa: D102
        return None

    def put_artifact(self, key: str, name: str, data):  # noqa: D102
        return None

    def get_artifact(self, key: str, name: str):  # noqa: D102
        return None

    def __contains__(self, key: str) -> bool:
        return False
