"""Content-addressed on-disk result store.

Layout (all JSON, human-inspectable)::

    <root>/objects/<key[:2]>/<key>.json

where ``key`` is the job's content hash (:meth:`repro.harness.job.Job.key`).
Because the schema version is baked into the hash, a version bump
simply stops finding old entries; :meth:`ResultCache.get` additionally
verifies the stored schema/key so a corrupt or foreign file degrades
to a miss, never to a wrong result.

Writes are atomic (temp file in the destination directory, then
``os.replace``), so concurrent writers -- e.g. two batch runs sharing
a cache -- can only ever race to install identical bytes.

A blob that fails validation anyway (a crashed writer on a filesystem
without atomic-rename durability, a truncating copy, a flipped bit)
is **quarantined**: moved aside into ``<root>/quarantine/`` and
counted as a miss, so the serve worker never re-trips on the same
corrupt file and an operator can inspect what went wrong.  Artifacts
get the same treatment via a ``<name>.sha256`` sidecar written next
to every artifact blob.

:class:`TieredResultCache` stacks the stores for the cluster tier:
an in-memory hot LRU in front of the local disk store, with an
optional *shared* read-through store (a network/shared directory all
nodes mount) behind it -- gets promote hits forward, puts write
through every tier.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from repro.harness.job import CACHE_SCHEMA_VERSION, canonical_json

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Resolve the cache root: ``$REPRO_CACHE_DIR``, else
    ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


@dataclass
class CacheStats:
    """Summary of what the store currently holds (results and named
    artifacts are counted separately)."""

    root: str
    entries: int
    total_bytes: int
    artifacts: int = 0
    artifact_bytes: int = 0

    def format(self) -> str:
        """One-line human rendering."""
        kib = self.total_bytes / 1024
        akib = self.artifact_bytes / 1024
        return (
            f"{self.entries} cached result(s), {kib:.1f} KiB + "
            f"{self.artifacts} artifact(s), {akib:.1f} KiB "
            f"under {self.root} (schema v{CACHE_SCHEMA_VERSION})"
        )


def _unlink_quiet(path) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


def _atomic_write(path: Path, blob: bytes) -> Path:
    """Install ``blob`` at ``path`` atomically (temp file in the
    destination directory, then ``os.replace``).

    Safe under concurrent multi-process writers: two processes racing
    on one key each write a private temp file and the final rename is
    atomic, so readers only ever see a complete record.  A concurrent
    ``clear()`` can delete the parent directory between our ``mkdir``
    and the write/rename -- that surfaces as ``FileNotFoundError``, and
    we simply re-create the directory and retry.
    """
    last_error: Optional[BaseException] = None
    for _ in range(5):
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
        except FileExistsError as exc:
            # exist_ok's own is_dir() recheck races against a
            # concurrent clear(): treat it like any other retryable
            # directory churn.
            last_error = exc
            continue
        try:
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        except FileNotFoundError as exc:  # parent raced away: retry
            last_error = exc
            continue
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
            return path
        except FileNotFoundError as exc:  # ditto, between mkstemp/replace
            _unlink_quiet(tmp)
            last_error = exc
            continue
        except BaseException:
            _unlink_quiet(tmp)
            raise
    raise last_error  # repeated strikes: the directory will not stay put


class ResultCache:
    """Content-addressed JSON blob store keyed by job hash."""

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    @property
    def objects_dir(self) -> Path:
        """Directory holding the sharded result blobs."""
        return self.root / "objects"

    def path_for(self, key: str) -> Path:
        """Blob path for a job hash."""
        return self.objects_dir / key[:2] / f"{key}.json"

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt blobs are moved aside for inspection."""
        return self.root / "quarantine"

    def _quarantine(self, path: Path) -> None:
        """Move a failed-validation file out of the lookup path so it
        reads as a clean miss forever after (best-effort: a concurrent
        quarantine of the same file wins the rename race).  The
        destination name folds in the parent directories so artifacts
        named identically under different keys cannot collide."""
        try:
            relative = path.relative_to(self.root)
        except ValueError:
            relative = Path(path.name)
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / "_".join(relative.parts))
        except OSError:
            pass

    # ------------------------------------------------------------------

    def get_record(self, key: str) -> Optional[Dict[str, Any]]:
        """Full validated cache record for ``key`` (``schema``/``key``/
        ``fn``/``result``), or ``None`` on a miss.  A file that exists
        but fails validation -- truncated JSON from a crashed writer,
        foreign schema, mismatched key -- is quarantined, never raised.
        """
        path = self.path_for(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            record = json.loads(raw)
        except ValueError:
            self._quarantine(path)
            return None
        if (not isinstance(record, dict)
                or record.get("schema") != CACHE_SCHEMA_VERSION
                or record.get("key") != key
                or "result" not in record):
            self._quarantine(path)
            return None
        return record

    def get(self, key: str) -> Optional[Any]:
        """Cached result for ``key``, or ``None`` on any kind of miss
        (absent, unreadable, corrupt -- corrupt blobs are quarantined)."""
        record = self.get_record(key)
        return None if record is None else record["result"]

    def put(self, key: str, fn: str, result: Any) -> Path:
        """Atomically store ``result`` under ``key``.

        The record is canonical JSON of deterministic fields only, so
        the same job always produces a byte-identical blob regardless
        of which process or machine computed it.
        """
        record = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "fn": fn,
            "result": result,
        }
        blob = canonical_json(record)
        return _atomic_write(self.path_for(key), blob)

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    # ------------------------------------------------------------------
    # artifacts: named blobs riding alongside a keyed result (traces,
    # heatmaps, Chrome exports) -- opaque bytes, not schema-checked

    @property
    def artifacts_dir(self) -> Path:
        """Directory holding per-key artifact files."""
        return self.root / "artifacts"

    def artifact_path(self, key: str, name: str) -> Path:
        """On-disk path of artifact ``name`` for result ``key``."""
        if "/" in name or name.startswith("."):
            raise ValueError(f"invalid artifact name {name!r}")
        return self.artifacts_dir / key[:2] / key / name

    #: Sidecar suffix carrying each artifact's content hash.
    ARTIFACT_DIGEST_SUFFIX = ".sha256"

    def put_artifact(self, key: str, name: str, data) -> Path:
        """Atomically store an artifact (``bytes`` or ``str``) plus a
        ``<name>.sha256`` integrity sidecar.

        Artifacts are opaque bytes, so unlike result blobs they carry
        no self-validating structure; the sidecar is what lets
        :meth:`get_artifact` tell a truncated blob (crashed writer,
        torn copy) from a healthy one."""
        if isinstance(data, str):
            data = data.encode("utf-8")
        path = self.artifact_path(key, name)
        _atomic_write(path, data)
        digest = hashlib.sha256(data).hexdigest()
        _atomic_write(path.with_name(name + self.ARTIFACT_DIGEST_SUFFIX),
                      digest.encode("ascii"))
        return path

    def get_artifact(self, key: str, name: str) -> Optional[bytes]:
        """Stored artifact bytes, or ``None`` when absent/unreadable.

        When an integrity sidecar exists and disagrees with the blob's
        actual hash, both files are quarantined and the read counts as
        a miss (pre-sidecar artifacts, with no sidecar at all, are
        served as-is)."""
        path = self.artifact_path(key, name)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        sidecar = path.with_name(name + self.ARTIFACT_DIGEST_SUFFIX)
        try:
            expected = sidecar.read_text(encoding="ascii").strip()
        except (OSError, UnicodeDecodeError):
            return blob  # no (readable) sidecar: legacy artifact
        if hashlib.sha256(blob).hexdigest() != expected:
            self._quarantine(path)
            self._quarantine(sidecar)
            return None
        return blob

    # ------------------------------------------------------------------

    @staticmethod
    def _walk(base: Path, pattern: str):
        """``base.rglob(pattern)``, tolerant of directories a concurrent
        ``clear()`` deletes mid-walk (pathlib only swallows
        ``PermissionError``; a vanished directory must be a no-op too)."""
        try:
            yield from sorted(base.rglob(pattern))
        except FileNotFoundError:
            return

    def _artifact_files(self, include_sidecars: bool = True):
        if not self.artifacts_dir.is_dir():
            return
        for path in self._walk(self.artifacts_dir, "*"):
            if not path.is_file() or path.suffix == ".tmp":
                continue
            if (not include_sidecars
                    and path.suffix == self.ARTIFACT_DIGEST_SUFFIX):
                continue
            yield path

    def _stray_tmp_files(self):
        """Orphaned ``.tmp`` files (a writer died mid-``put``)."""
        for base in (self.objects_dir, self.artifacts_dir):
            if not base.is_dir():
                continue
            for path in self._walk(base, "*.tmp"):
                if path.is_file():
                    yield path

    def _blobs(self):
        if not self.objects_dir.is_dir():
            return
        try:
            shards = sorted(self.objects_dir.iterdir())
        except FileNotFoundError:
            return
        for shard in shards:
            if not shard.is_dir():
                continue
            for blob in self._walk(shard, "*.json"):
                yield blob

    def stats(self) -> CacheStats:
        """Entry/artifact counts and on-disk footprint."""
        entries = 0
        total = 0
        for blob in self._blobs():
            try:
                total += blob.stat().st_size
            except OSError:
                continue
            entries += 1
        artifacts = 0
        artifact_bytes = 0
        for path in self._artifact_files(include_sidecars=False):
            try:
                artifact_bytes += path.stat().st_size
            except OSError:
                continue
            artifacts += 1
        return CacheStats(str(self.root), entries, total,
                          artifacts, artifact_bytes)

    def clear(self) -> int:
        """Delete every stored result and artifact (plus any orphaned
        temp files and quarantined blobs); returns the count of files
        removed (integrity sidecars ride along uncounted)."""
        removed = 0
        for blob in list(self._blobs()):
            try:
                blob.unlink()
            except OSError:
                continue
            removed += 1
        if self.quarantine_dir.is_dir():
            for path in list(self._walk(self.quarantine_dir, "*")):
                try:
                    path.unlink()
                except OSError:
                    continue
                removed += 1
            try:
                self.quarantine_dir.rmdir()
            except OSError:
                pass
        for path in list(self._artifact_files()):
            counted = path.suffix != self.ARTIFACT_DIGEST_SUFFIX
            try:
                path.unlink()
            except OSError:
                continue
            if counted:
                removed += 1
        for path in list(self._stray_tmp_files()):
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        if self.objects_dir.is_dir():
            for shard in reversed(list(self._walk(self.objects_dir, "*"))):
                try:
                    shard.rmdir()
                except OSError:
                    pass
        if self.artifacts_dir.is_dir():
            # prune now-empty <shard>/<key> directories bottom-up
            for directory in reversed(list(self._walk(self.artifacts_dir,
                                                      "*"))):
                try:
                    directory.rmdir()
                except OSError:
                    pass
        return removed


class TieredResultCache:
    """Three-tier store: in-memory hot LRU -> local disk -> shared.

    The cluster's cache hierarchy.  ``get`` walks the tiers in order
    and *promotes* hits forward (a shared-store hit is copied into the
    local store and pinned in the hot set, so the next read never
    leaves the node); ``put`` writes through every tier, which is what
    makes a result computed by one worker visible to the whole fleet
    via the shared directory.

    The memory tier is bounded (``memory_capacity`` entries, LRU) and
    thread-safe; the disk tiers inherit :class:`ResultCache`'s atomic
    multi-process-safe writes.  ``clear`` empties the node-local tiers
    only -- the shared store belongs to the fleet, not this node.

    Exposes the full :class:`ResultCache` surface (``get``/``put``/
    artifacts/``stats``/``clear``/``root``), so every existing
    consumer -- the serve fast path, the worker tier, ``run_jobs`` --
    can take one interchangeably.
    """

    def __init__(self, local: Optional[ResultCache] = None,
                 shared: Optional[ResultCache] = None,
                 memory_capacity: int = 512):
        self.local = local if local is not None else ResultCache()
        self.shared = shared
        self.memory_capacity = max(0, int(memory_capacity))
        self._hot: "OrderedDict[str, Any]" = OrderedDict()
        self._hot_lock = threading.Lock()
        self.tier_hits = {"memory": 0, "local": 0, "shared": 0}

    @classmethod
    def from_roots(cls, local_root: Optional[os.PathLike] = None,
                   shared_root: Optional[os.PathLike] = None,
                   memory_capacity: int = 512) -> "TieredResultCache":
        shared = ResultCache(shared_root) if shared_root is not None else None
        return cls(ResultCache(local_root), shared,
                   memory_capacity=memory_capacity)

    @property
    def root(self) -> Path:
        """The node-local root (what worker processes are handed)."""
        return self.local.root

    @property
    def shared_root(self) -> Optional[Path]:
        return None if self.shared is None else self.shared.root

    # ------------------------------------------------------------------
    # memory tier

    def _hot_get(self, key: str) -> Optional[Any]:
        if not self.memory_capacity:
            return None
        with self._hot_lock:
            try:
                self._hot.move_to_end(key)
            except KeyError:
                return None
            return self._hot[key]

    def _hot_put(self, key: str, result: Any) -> None:
        if not self.memory_capacity:
            return
        with self._hot_lock:
            self._hot[key] = result
            self._hot.move_to_end(key)
            while len(self._hot) > self.memory_capacity:
                self._hot.popitem(last=False)

    @property
    def hot_keys(self) -> int:
        with self._hot_lock:
            return len(self._hot)

    # ------------------------------------------------------------------
    # results

    def get(self, key: str) -> Optional[Any]:
        hit = self._hot_get(key)
        if hit is not None:
            self.tier_hits["memory"] += 1
            return hit
        record = self.local.get_record(key)
        if record is not None:
            self.tier_hits["local"] += 1
            self._hot_put(key, record["result"])
            return record["result"]
        if self.shared is not None:
            record = self.shared.get_record(key)
            if record is not None:
                self.tier_hits["shared"] += 1
                # promote: next read is local-disk (or memory) fast
                self.local.put(key, record.get("fn", "?"), record["result"])
                self._hot_put(key, record["result"])
                return record["result"]
        return None

    def put(self, key: str, fn: str, result: Any) -> Path:
        path = self.local.put(key, fn, result)
        if self.shared is not None:
            self.shared.put(key, fn, result)
        self._hot_put(key, result)
        return path

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    # ------------------------------------------------------------------
    # artifacts (disk tiers only -- artifacts can be megabytes)

    def put_artifact(self, key: str, name: str, data) -> Path:
        path = self.local.put_artifact(key, name, data)
        if self.shared is not None:
            self.shared.put_artifact(key, name, data)
        return path

    def get_artifact(self, key: str, name: str) -> Optional[bytes]:
        blob = self.local.get_artifact(key, name)
        if blob is not None:
            return blob
        if self.shared is not None:
            blob = self.shared.get_artifact(key, name)
            if blob is not None:
                self.local.put_artifact(key, name, blob)
        return blob

    def artifact_path(self, key: str, name: str) -> Path:
        return self.local.artifact_path(key, name)

    # ------------------------------------------------------------------

    def stats(self) -> CacheStats:
        """Node-local footprint (the shared store is the fleet's)."""
        return self.local.stats()

    def clear(self) -> int:
        """Clear the node-local tiers; the shared store is untouched."""
        with self._hot_lock:
            self._hot.clear()
        return self.local.clear()


class NullCache:
    """Cache stand-in that never hits and never stores (``--no-cache``)."""

    def get(self, key: str):  # noqa: D102 -- trivial
        return None

    def put(self, key: str, fn: str, result: Any):  # noqa: D102
        return None

    def put_artifact(self, key: str, name: str, data):  # noqa: D102
        return None

    def get_artifact(self, key: str, name: str):  # noqa: D102
        return None

    def __contains__(self, key: str) -> bool:
        return False
