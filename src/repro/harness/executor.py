"""Parallel job runner with caching, timeouts and bounded retries.

:func:`run_jobs` is the harness entry point: given a list of
:class:`~repro.harness.job.Job` specs it

1. answers every job it can from the :class:`ResultCache` (content
   hash lookup -- the simulator is deterministic, so a hit is exact);
2. fans the rest out over a ``ProcessPoolExecutor`` (``workers > 1``)
   or runs them inline (``workers == 1``, or whenever a pool cannot be
   created/breaks -- graceful degradation, never a hard failure);
3. enforces a per-job wall-clock timeout (``SIGALRM``-based, so it
   works inside single-threaded worker processes) and retries
   *transient* failures -- timeouts, :class:`TransientJobError`,
   ``OSError`` -- up to ``retries`` extra attempts;
4. reports a :class:`RunSummary` whose ``executed``/``cached`` split
   is the observable proof of cache effectiveness ("0 executed" on a
   warm re-run).

Results come back in job order, as :class:`JobOutcome` records.
"""

from __future__ import annotations

import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.harness.cache import NullCache, ResultCache
from repro.harness.job import Job


class TransientJobError(Exception):
    """Raise inside a job to request a retry (bounded by ``retries``)."""


class JobTimeoutError(TransientJobError):
    """A job exceeded its wall-clock budget."""


#: Exception types that qualify for a retry.
TRANSIENT_TYPES = (TransientJobError, OSError)


@dataclass
class JobOutcome:
    """What happened to one job."""

    job: Job
    key: str
    result: Any = None
    error: Optional[str] = None
    from_cache: bool = False
    attempts: int = 0

    @property
    def ok(self) -> bool:
        """True when a result is available (computed or cached)."""
        return self.error is None


@dataclass
class RunSummary:
    """Aggregate accounting for one :func:`run_jobs` invocation."""

    total: int = 0
    executed: int = 0
    cached: int = 0
    failed: int = 0
    retries: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    fallback_serial: bool = False

    def format(self) -> str:
        """One-line run report (printed by ``python -m repro batch``)."""
        mode = f"{self.workers} worker(s)"
        if self.fallback_serial and self.workers > 1:
            mode += ", degraded to serial"
        line = (
            f"{self.total} job(s): {self.executed} executed, "
            f"{self.cached} from cache, {self.failed} failed "
            f"({mode}, {self.wall_seconds:.1f}s)"
        )
        if self.retries:
            line += f" [{self.retries} retr{'y' if self.retries == 1 else 'ies'}]"
        return line


# ----------------------------------------------------------------------
# Timeout plumbing


@contextmanager
def _deadline(seconds: Optional[float]):
    """Raise :class:`JobTimeoutError` if the body outlives ``seconds``.

    Uses ``SIGALRM``/``setitimer``, which is only legal on the main
    thread of a process -- exactly where jobs run, both in worker
    processes and in the serial path.  Elsewhere (or without a budget)
    it is a no-op, trading enforcement for availability.
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise JobTimeoutError(f"job exceeded {seconds:.1f}s budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _execute(job: Job, timeout: Optional[float]):
    """Run one job under its deadline; returns ``(ok, payload, transient)``.

    Exceptions are flattened to strings here so nothing unpicklable
    ever crosses the process boundary back to the parent.
    """
    try:
        with _deadline(timeout):
            return True, job.run(), False
    except Exception as exc:  # noqa: BLE001 -- job code is arbitrary
        transient = isinstance(exc, TRANSIENT_TYPES)
        return False, f"{type(exc).__name__}: {exc}", transient


def _pool_entry(payload):
    """Top-level (hence picklable) worker entry point."""
    job, timeout = payload
    return _execute(job, timeout)


# ----------------------------------------------------------------------
# Runner


def run_jobs(
    jobs: Sequence[Job],
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    refresh: bool = False,
) -> tuple:
    """Execute ``jobs``; returns ``(outcomes, summary)`` in job order.

    ``cache=None`` disables caching entirely.  ``refresh=True`` skips
    cache lookups but still stores fresh results (forced recompute).
    """
    start = time.monotonic()
    store = cache if cache is not None else NullCache()
    summary = RunSummary(total=len(jobs), workers=max(1, int(workers)))
    outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)

    # Phase 1: cache lookups.  Duplicate keys within one batch are
    # computed once and fanned back out afterwards via `key_owners`.
    pending: List[int] = []
    for i, job in enumerate(jobs):
        key = job.key()
        hit = None if refresh else store.get(key)
        if hit is not None:
            outcomes[i] = JobOutcome(job, key, result=hit, from_cache=True)
            summary.cached += 1
        else:
            pending.append(i)

    key_owners: Dict[str, int] = {}
    unique_pending: List[int] = []
    duplicates: List[int] = []
    for i in pending:
        key = jobs[i].key()
        if key in key_owners:
            duplicates.append(i)
        else:
            key_owners[key] = i
            unique_pending.append(i)

    # Phase 2: compute.
    attempts = {i: 0 for i in unique_pending}
    budget = max(0, int(retries))

    def record(i: int, ok: bool, payload: Any) -> None:
        job = jobs[i]
        key = job.key()
        if ok:
            outcomes[i] = JobOutcome(
                job, key, result=payload, attempts=attempts[i]
            )
            summary.executed += 1
            store.put(key, job.fn, payload)
        else:
            outcomes[i] = JobOutcome(
                job, key, error=payload, attempts=attempts[i]
            )
            summary.failed += 1

    def run_serial(indices: Sequence[int]) -> None:
        for i in indices:
            while True:
                attempts[i] += 1
                ok, payload, transient = _execute(jobs[i], timeout)
                if ok or not transient or attempts[i] > budget:
                    record(i, ok, payload)
                    break
                summary.retries += 1

    if summary.workers > 1 and unique_pending:
        try:
            _run_pool(
                jobs, unique_pending, summary, attempts, budget,
                timeout, record,
            )
        except Exception:  # pool construction/teardown failed entirely
            summary.fallback_serial = True
            leftover = [i for i in unique_pending if outcomes[i] is None]
            run_serial(leftover)
    else:
        run_serial(unique_pending)

    # Phase 3: fan duplicate keys back out.
    for i in duplicates:
        owner = outcomes[key_owners[jobs[i].key()]]
        outcomes[i] = JobOutcome(
            jobs[i], owner.key, result=owner.result, error=owner.error,
            from_cache=owner.from_cache, attempts=owner.attempts,
        )
        if owner.ok:
            summary.cached += 1
        else:
            summary.failed += 1

    summary.wall_seconds = time.monotonic() - start
    return [o for o in outcomes if o is not None], summary


def _run_pool(jobs, indices, summary, attempts, budget, timeout, record):
    """Fan ``indices`` out over a process pool, resubmitting transient
    failures until each job succeeds, fails fatally, or exhausts its
    retry budget.  A broken pool degrades the remainder to serial."""
    with ProcessPoolExecutor(max_workers=summary.workers) as pool:
        futures = {}
        for i in indices:
            attempts[i] += 1
            futures[pool.submit(_pool_entry, (jobs[i], timeout))] = i
        while futures:
            try:
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
            except Exception:
                done = []
            if not done:
                raise RuntimeError("process pool wait failed")
            for fut in done:
                i = futures.pop(fut)
                try:
                    ok, payload, transient = fut.result()
                except Exception as exc:  # worker died (BrokenProcessPool &c)
                    ok, payload, transient = (
                        False,
                        f"{type(exc).__name__}: {exc}",
                        True,
                    )
                if not ok and transient and attempts[i] <= budget:
                    summary.retries += 1
                    attempts[i] += 1
                    try:
                        futures[pool.submit(_pool_entry, (jobs[i], timeout))] = i
                        continue
                    except Exception:
                        # Pool became unusable mid-run; everything not
                        # yet recorded reruns serially in the caller.
                        raise RuntimeError(
                            "process pool became unavailable"
                        ) from None
                record(i, ok, payload)
