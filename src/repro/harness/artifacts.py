"""Result artifact writers: JSON, JSONL and CSV.

Every writer takes the flat *record* form produced by
:func:`outcome_records` -- one dict per job with the parameters
inlined -- so a batch run can be replayed, joined or plotted without
touching the cache.  ``write_json`` is also reused by the ``--json``
flags of the ``workloads``/``characterize`` CLI subcommands.
"""

from __future__ import annotations

import csv
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence


def _atomic_write_text(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def write_json(path: os.PathLike, obj: Any) -> Path:
    """Write ``obj`` as pretty-printed, key-sorted JSON."""
    path = Path(path)
    _atomic_write_text(
        path, json.dumps(obj, indent=2, sort_keys=True, ensure_ascii=False) + "\n"
    )
    return path


def write_jsonl(path: os.PathLike, records: Iterable[Mapping[str, Any]]) -> Path:
    """Write one compact JSON object per line."""
    path = Path(path)
    lines = [
        json.dumps(dict(record), sort_keys=True, ensure_ascii=False)
        for record in records
    ]
    _atomic_write_text(path, "\n".join(lines) + ("\n" if lines else ""))
    return path


def write_csv(
    path: os.PathLike,
    records: Sequence[Mapping[str, Any]],
    fieldnames: Optional[Sequence[str]] = None,
) -> Path:
    """Write records as CSV; columns default to first-seen key order.

    Values that are not scalars are serialised as JSON so nothing is
    silently lost to ``str()`` formatting.
    """
    path = Path(path)
    if fieldnames is None:
        seen: Dict[str, None] = {}
        for record in records:
            for key in record:
                seen.setdefault(key, None)
        fieldnames = list(seen)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(fieldnames),
                                    extrasaction="ignore")
            writer.writeheader()
            for record in records:
                row = {}
                for key in fieldnames:
                    value = record.get(key, "")
                    if isinstance(value, (dict, list, tuple)):
                        value = json.dumps(value, sort_keys=True)
                    row[key] = value
                writer.writerow(row)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def outcome_records(outcomes) -> List[Dict[str, Any]]:
    """Flatten :class:`~repro.harness.executor.JobOutcome` objects into
    plain dicts: job identity, parameters, provenance and result.

    Dict results are inlined under ``result_<field>`` columns; scalar
    results land in a single ``result`` column.
    """
    records = []
    for outcome in outcomes:
        job = outcome.job
        record: Dict[str, Any] = {
            "fn": job.fn,
            "key": outcome.key,
            "config": job.config.name,
            "seed": job.seed,
            "cached": outcome.from_cache,
            "error": outcome.error,
        }
        for name, value in job.params.items():
            record[name] = value
        if isinstance(outcome.result, Mapping):
            for name, value in outcome.result.items():
                record[f"result_{name}"] = value
        else:
            record["result"] = outcome.result
        records.append(record)
    return records
