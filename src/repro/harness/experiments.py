"""Built-in experiment catalogue for the batch harness.

Registers one job function per *measurement point* of the headline
experiments -- the Section III characterization figures (3-7), the
Table I covert-channel comparison, and the benign workload suite --
and provides drivers that expand the paper's sweeps into job grids,
run them through :func:`repro.harness.executor.run_jobs`, and
reassemble the exact result objects the serial ``measure_*`` /
``table1`` / ``run_suite`` paths return.

Every job function delegates to the same per-point kernel the serial
path uses (``repro.core.characterize.size_point`` &c), so the two
paths agree bit-for-bit; the parity tests in
``tests/test_harness_parity.py`` enforce that.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core import characterize, microbench
from repro.core.characterize import (
    PartitionGeometryResult,
    PlacementResult,
    ReplacementResult,
    SeriesResult,
    SMTPartitionResult,
)
from repro.cpu.config import CPUConfig
from repro.harness.executor import JobOutcome, RunSummary, run_jobs
from repro.harness.job import register
from repro.harness.sweep import Sweep

# ----------------------------------------------------------------------
# Characterization point jobs (Figures 3-7)


@register(
    "characterize.size",
    program_builder=lambda c, p: microbench.size_loop(p["n"], p["iters"]),
)
def _job_size(config: CPUConfig, seed: int, n: int, iters: int) -> float:
    return characterize.size_point(config, n, iters)


@register(
    "characterize.associativity",
    program_builder=lambda c, p: microbench.assoc_loop(p["n"], p["iters"]),
)
def _job_assoc(config: CPUConfig, seed: int, n: int, iters: int) -> float:
    return characterize.associativity_point(config, n, iters)


@register(
    "characterize.placement",
    program_builder=lambda c, p: microbench.placement_loop(
        p["nregions"], p["uops"] - 1, p["iters"]
    ),
)
def _job_placement(
    config: CPUConfig, seed: int, nregions: int, uops: int, iters: int
) -> float:
    return characterize.placement_point(config, nregions, uops, iters)


@register(
    "characterize.replacement",
    program_builder=lambda c, p: microbench.replacement_pair(),
)
def _job_replacement(
    config: CPUConfig, seed: int, main_iters: int, evict_iters: int,
    rounds: int,
) -> float:
    return characterize.replacement_point(config, main_iters, evict_iters, rounds)


@register(
    "characterize.smt_partitioning",
    program_builder=lambda c, p: microbench.smt_pair(
        p["n"], p["iters"], t2_kind=p["t2_kind"]
    ),
)
def _job_smt(
    config: CPUConfig, seed: int, n: int, iters: int, t2_kind: str
) -> Dict[str, float]:
    return characterize.smt_partitioning_point(config, n, iters, t2_kind)


@register(
    "characterize.geometry_sweep",
    program_builder=lambda c, p: microbench.partition_probe_pair(
        t1_set=p["set_index"], iters=p["iters"]
    ),
)
def _job_geometry_sweep(
    config: CPUConfig, seed: int, set_index: int, iters: int
) -> Dict[str, float]:
    return characterize.geometry_sweep_point(config, set_index, iters)


@register(
    "characterize.geometry_groups",
    program_builder=lambda c, p: microbench.eight_block_regions(
        p["n_groups"], p["iters"]
    ),
)
def _job_geometry_groups(
    config: CPUConfig, seed: int, n_groups: int, iters: int
) -> Dict[str, float]:
    return characterize.geometry_groups_point(config, n_groups, iters)


# ----------------------------------------------------------------------
# Table I rows


@register("covert.table1_row")
def _job_table1_row(
    config: CPUConfig, seed: int, mode: str, payload_hex: str
) -> Dict[str, Any]:
    # Imported lazily: report pulls in every channel implementation,
    # which worker processes only need when they actually run this job.
    from repro.core.report import table1_row

    row = table1_row(mode, bytes.fromhex(payload_hex), noise_seed=seed)
    return {
        "mode": row.mode,
        "error_rate": row.error_rate,
        "bandwidth_kbps": row.bandwidth_kbps,
        "corrected_bandwidth_kbps": row.corrected_bandwidth_kbps,
    }


# ----------------------------------------------------------------------
# Workload suite


def _workload_program(config: CPUConfig, params) -> Any:
    from repro.workloads.suite import build_workload

    return build_workload(params["name"], params["scale"])


@register("workloads.run", program_builder=_workload_program)
def _job_workload(
    config: CPUConfig, seed: int, name: str, scale: int
) -> Dict[str, Any]:
    from repro.workloads.suite import run_workload

    result = run_workload(name, config, scale)
    return {
        "name": result.name,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "dsb_hit_rate": result.dsb_hit_rate,
        "dsb_uop_fraction": result.dsb_uop_fraction,
        "mispredict_rate": result.mispredict_rate,
        "counters": result.counters.as_dict(),
    }


# ----------------------------------------------------------------------
# Characterization driver


def characterize_sweeps(
    config: Optional[CPUConfig] = None, fast: bool = False
) -> Dict[str, Sweep]:
    """The Figure 3-7 grids, in figure order.

    ``fast`` matches ``python -m repro characterize --fast`` (the
    example script's coarser sweeps); the default matches its full
    resolution.  Both use the same per-point kernels as the serial
    path, so results are identical point-for-point.
    """
    config = config or CPUConfig.skylake()
    step = 32 if fast else 16
    smt_step = 64 if fast else 32
    return {
        "fig3a_size": Sweep(
            "characterize.size",
            axes={"n": list(range(step, 385, step))},
            base={"iters": 8},
            config=config,
        ),
        "fig3b_associativity": Sweep(
            "characterize.associativity",
            axes={"n": list(range(1, 15))},
            base={"iters": 8},
            config=config,
        ),
        "fig4_placement": Sweep(
            "characterize.placement",
            axes={"nregions": [2, 4, 8], "uops": list(range(2, 25, 2))},
            base={"iters": 8},
            config=config,
        ),
        "fig5_replacement": Sweep(
            "characterize.replacement",
            axes={
                "main_iters": [1, 2, 4, 8, 12],
                "evict_iters": [0, 2, 4, 8, 12],
            },
            base={"rounds": 10},
            config=config,
        ),
        "fig6_smt": Sweep(
            "characterize.smt_partitioning",
            axes={"n": list(range(64, 289, smt_step))},
            base={"iters": 8, "t2_kind": "pause"},
            config=config,
        ),
        "fig7_sweep": Sweep(
            "characterize.geometry_sweep",
            axes={"set_index": list(range(0, 32, 8))},
            base={"iters": 8},
            config=config,
        ),
        "fig7_groups": Sweep(
            "characterize.geometry_groups",
            axes={"n_groups": [8, 16, 20, 32, 36]},
            base={"iters": 8},
            config=config,
        ),
    }


def assemble_characterize(
    sweeps: Dict[str, Sweep], results: Dict[str, List[Any]]
) -> Dict[str, Any]:
    """Rebuild the serial-path result dataclasses from per-point
    results (one flat list per sweep, in grid order)."""
    figures: Dict[str, Any] = {}

    s = sweeps["fig3a_size"]
    figures["fig3a_size"] = SeriesResult(
        list(s.axes["n"]), results["fig3a_size"],
        "32-byte regions in loop", "legacy-decode uops/iter",
    )

    s = sweeps["fig3b_associativity"]
    figures["fig3b_associativity"] = SeriesResult(
        list(s.axes["n"]), results["fig3b_associativity"],
        "same-set regions in loop", "legacy-decode uops/iter",
    )

    s = sweeps["fig4_placement"]
    regions = list(s.axes["nregions"])
    uop_counts = list(s.axes["uops"])
    flat = results["fig4_placement"]
    figures["fig4_placement"] = PlacementResult(
        regions=regions,
        uops_per_region=uop_counts,
        dsb_uops={
            n: flat[i * len(uop_counts):(i + 1) * len(uop_counts)]
            for i, n in enumerate(regions)
        },
    )

    s = sweeps["fig5_replacement"]
    mains = list(s.axes["main_iters"])
    evicts = list(s.axes["evict_iters"])
    flat = results["fig5_replacement"]
    figures["fig5_replacement"] = ReplacementResult(
        mains, evicts,
        [flat[i * len(evicts):(i + 1) * len(evicts)] for i in range(len(mains))],
    )

    s = sweeps["fig6_smt"]
    points = results["fig6_smt"]
    figures["fig6_smt"] = SMTPartitionResult(
        list(s.axes["n"]),
        [p["single"] for p in points],
        [p["smt"] for p in points],
    )

    sweep_points = results["fig7_sweep"]
    group_points = results["fig7_groups"]
    figures["fig7_geometry"] = PartitionGeometryResult(
        list(sweeps["fig7_sweep"].axes["set_index"]),
        [p["t1"] for p in sweep_points],
        [p["t2"] for p in sweep_points],
        list(sweeps["fig7_groups"].axes["n_groups"]),
        [p["single"] for p in group_points],
        [p["smt"] for p in group_points],
    )
    return figures


def run_characterize(
    config: Optional[CPUConfig] = None,
    fast: bool = False,
    **runner_kwargs,
) -> Tuple[Dict[str, Any], List[JobOutcome], RunSummary]:
    """Run the full Figure 3-7 study through the harness.

    Every point of every figure goes into one job list, so a parallel
    run keeps all workers busy across figure boundaries instead of
    draining per figure.  Returns ``(figures, outcomes, summary)``
    where ``figures`` holds the same dataclasses the serial
    ``measure_*`` functions produce.
    """
    sweeps = characterize_sweeps(config, fast)
    jobs, spans = [], {}
    for name, sweep in sweeps.items():
        batch = sweep.jobs()
        spans[name] = (len(jobs), len(jobs) + len(batch))
        jobs.extend(batch)

    outcomes, summary = run_jobs(jobs, **runner_kwargs)
    failures = [o for o in outcomes if not o.ok]
    if failures:
        first = failures[0]
        raise RuntimeError(
            f"{len(failures)} characterization job(s) failed; first: "
            f"{first.job.label}: {first.error}"
        )
    results = {
        name: [outcomes[i].result for i in range(start, stop)]
        for name, (start, stop) in spans.items()
    }
    return assemble_characterize(sweeps, results), outcomes, summary


# ----------------------------------------------------------------------
# Table I driver


def table1_jobs(
    payload: bytes = b"uop cache leaks!",
    noise_seed: int = 17,
    config: Optional[CPUConfig] = None,
) -> List[Any]:
    """One job per Table I row (the four channel modes)."""
    from repro.core.report import TABLE1_MODES

    config = config or CPUConfig.skylake()
    return Sweep(
        "covert.table1_row",
        axes={"mode": list(TABLE1_MODES)},
        base={"payload_hex": payload.hex()},
        config=config,
        seed=noise_seed,
        tag="table1",
    ).jobs()


def run_table1(
    payload: bytes = b"uop cache leaks!",
    noise_seed: int = 17,
    **runner_kwargs,
) -> Tuple[List[Any], List[JobOutcome], RunSummary]:
    """Regenerate Table I via the harness; rows in paper order.

    Returns ``(rows, outcomes, summary)`` with :class:`Table1Row`
    instances identical to ``repro.core.report.table1``.
    """
    from repro.core.report import Table1Row

    outcomes, summary = run_jobs(table1_jobs(payload, noise_seed), **runner_kwargs)
    rows = []
    for outcome in outcomes:
        if not outcome.ok:
            raise RuntimeError(
                f"Table I job failed: {outcome.job.label}: {outcome.error}"
            )
        rows.append(Table1Row(**outcome.result))
    return rows, outcomes, summary


# ----------------------------------------------------------------------
# Workload-suite driver


def workload_jobs(
    config: Optional[CPUConfig] = None,
    scale: int = 1,
    names: Optional[Sequence[str]] = None,
) -> List[Any]:
    """One job per benign workload."""
    from repro.workloads.suite import WORKLOADS

    config = config or CPUConfig.skylake()
    return Sweep(
        "workloads.run",
        axes={"name": list(names or sorted(WORKLOADS))},
        base={"scale": scale},
        config=config,
        tag="workloads",
    ).jobs()


def run_workloads(
    config: Optional[CPUConfig] = None,
    scale: int = 1,
    names: Optional[Sequence[str]] = None,
    **runner_kwargs,
) -> Tuple[Dict[str, Dict[str, Any]], List[JobOutcome], RunSummary]:
    """Run the benign suite via the harness; results keyed by name."""
    outcomes, summary = run_jobs(
        workload_jobs(config, scale, names), **runner_kwargs
    )
    rows: Dict[str, Dict[str, Any]] = {}
    for outcome in outcomes:
        if not outcome.ok:
            raise RuntimeError(
                f"workload job failed: {outcome.job.label}: {outcome.error}"
            )
        rows[outcome.job.params["name"]] = outcome.result
    return rows, outcomes, summary


# ----------------------------------------------------------------------
# Attack jobs live in their own module; importing it here means
# ``resolve()``'s lazy load of this catalogue registers them too
# (worker processes start with an empty registry).  The ``debug.*``
# synthetic jobs ride along for the same reason: the serve worker tier
# and the load benchmarks resolve them inside fresh processes.

from repro.harness import attacks, contention, debugfns  # noqa: E402,F401  (registers)
from repro.synth import jobs as _synth_jobs  # noqa: E402,F401  (registers)
