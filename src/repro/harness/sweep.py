"""Parameter-grid expansion: declare sweeps, get job lists.

The characterization figures are all grids -- Figure 3a sweeps loop
size, Figure 4 sweeps (region count x uops/region), Figure 7 sweeps
partition geometry.  A :class:`Sweep` declares the grid once; the
harness expands it into one :class:`Job` per point, preserving axis
order so results come back in the same order a hand-written nested
loop would produce them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.cpu.config import CPUConfig
from repro.harness.job import Job


def grid(axes: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Cartesian product of named axes, later axes varying fastest.

    ``grid({"a": [1, 2], "b": [10, 20]})`` yields ``a=1,b=10``,
    ``a=1,b=20``, ``a=2,b=10``, ``a=2,b=20`` -- the iteration order of
    ``for a: for b:``.
    """
    names = list(axes)
    value_lists = [list(axes[name]) for name in names]
    return [
        dict(zip(names, values))
        for values in itertools.product(*value_lists)
    ]


@dataclass
class Sweep:
    """A declarative parameter grid over one registered experiment.

    ``axes`` vary per job; ``base`` params are shared by every point.
    A ``base`` key also present in ``axes`` is an error (ambiguous).
    """

    fn: str
    axes: Mapping[str, Sequence[Any]]
    base: Mapping[str, Any] = field(default_factory=dict)
    config: Optional[CPUConfig] = None
    seed: int = 0
    tag: str = ""

    def __post_init__(self) -> None:
        clash = set(self.axes) & set(self.base)
        if clash:
            raise ValueError(
                f"sweep axes and base params overlap: {sorted(clash)}"
            )

    def __len__(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(list(values))
        return total

    def points(self) -> List[Dict[str, Any]]:
        """Fully-merged parameter dict for every grid point."""
        return [dict(self.base, **point) for point in grid(self.axes)]

    def jobs(self) -> List[Job]:
        """One :class:`Job` per grid point, in grid order."""
        config = self.config or CPUConfig.skylake()
        label = self.tag or self.fn
        return [
            Job(
                fn=self.fn,
                config=config,
                params=params,
                seed=self.seed,
                tag=f"{label}[{i}]",
            )
            for i, params in enumerate(self.points())
        ]
