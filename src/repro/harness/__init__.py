"""Parallel experiment orchestration with content-addressed caching.

The harness turns every experiment in this reproduction into a
declarative :class:`Job` -- a registered callable name plus the full
``CPUConfig``, point parameters and a seed -- whose result is cached
on disk under a content hash.  Sweeps expand parameter grids into job
lists; the executor fans jobs out across processes (with per-job
timeouts and bounded retries) and answers repeats from the cache
without running a single simulation.

Quick start::

    from repro.harness import Sweep, ResultCache, run_jobs

    sweep = Sweep("characterize.size",
                  axes={"n": range(32, 385, 32)}, base={"iters": 8})
    outcomes, summary = run_jobs(sweep.jobs(), workers=4,
                                 cache=ResultCache())
    print(summary.format())   # "12 job(s): 12 executed, 0 from cache, ..."

or, from the shell::

    python -m repro batch characterize --fast --jobs 4
    python -m repro cache stats

See ``docs/ARCHITECTURE.md`` ("Experiment harness") for the job
model, the cache key schema and the invalidation rule.
"""

from repro.harness.artifacts import (
    outcome_records,
    write_csv,
    write_json,
    write_jsonl,
)
from repro.harness.cache import (
    CACHE_DIR_ENV,
    CacheStats,
    NullCache,
    ResultCache,
    TieredResultCache,
    default_cache_dir,
)
from repro.harness.executor import (
    JobOutcome,
    JobTimeoutError,
    RunSummary,
    TransientJobError,
    run_jobs,
)
from repro.harness.job import (
    CACHE_SCHEMA_VERSION,
    Job,
    canonical_json,
    fingerprint_program,
    register,
    registered_names,
    resolve,
)
from repro.harness.sweep import Sweep, grid

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "Job",
    "JobOutcome",
    "JobTimeoutError",
    "NullCache",
    "ResultCache",
    "RunSummary",
    "Sweep",
    "TieredResultCache",
    "TransientJobError",
    "canonical_json",
    "default_cache_dir",
    "fingerprint_program",
    "grid",
    "outcome_records",
    "register",
    "registered_names",
    "resolve",
    "run_jobs",
    "write_csv",
    "write_json",
    "write_jsonl",
]
