"""Declarative experiment jobs with stable content hashes.

A :class:`Job` names a registered experiment callable plus everything
that determines its output: the full :class:`CPUConfig`, the point
parameters, and a seed.  Because the simulator is deterministic, a
job's result is a pure function of those inputs, so a content hash
over them (plus, when the registry knows how to build it, the
assembled program itself) is a sound cache key: same hash, same
result, forever.

The hash covers, in order:

- a schema version (bump :data:`CACHE_SCHEMA_VERSION` to invalidate
  every previously cached result after a simulator-semantics change);
- the registered callable's name;
- every field of the ``CPUConfig``;
- the job parameters (canonical JSON, sorted keys);
- the seed;
- a fingerprint of the assembled program bytes, when the registry
  entry declares a ``program_builder``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

from repro.cpu.config import CPUConfig
from repro.errors import ConfigError
from repro.isa.program import Program

#: Version of the (hash input, cached record) schema.  Baked into every
#: job hash, so bumping it orphans -- never corrupts -- old entries.
#: v2: RDTSC reads are clamped monotonic under timer jitter, changing
#: noisy-run results (see repro.cpu.noise.NoiseModel.rdtsc_jitter).
#: v3: CPUConfig grew the ``engine`` stepping-backend field
#: (repro.cpu.engine), so every hash now names the backend that
#: produced the result -- reference and replay runs cache separately
#: even though the parity tests hold them bit-identical.
CACHE_SCHEMA_VERSION = 3


def canonical_json(obj: Any) -> bytes:
    """Canonical JSON encoding: sorted keys, no whitespace, UTF-8.

    This is the byte string that gets hashed and the byte string that
    gets stored, so two processes computing the same result always
    produce identical artifacts (the determinism tests rely on it).
    """
    try:
        text = json.dumps(
            obj,
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=False,
            allow_nan=False,
        )
    except (TypeError, ValueError) as exc:
        raise TypeError(
            f"job payloads must be JSON-serialisable (plain scalars, "
            f"lists, dicts): {exc}"
        ) from exc
    return text.encode("utf-8")


def fingerprint_program(program: Program) -> str:
    """SHA-256 over a canonical rendering of an assembled program.

    Covers every instruction (address, encoding length, prefixes,
    branch metadata and the full micro-op recipe), the data image, the
    entry point and the kernel ranges -- everything the simulator
    reads from a :class:`Program`.
    """
    h = hashlib.sha256()
    for addr in sorted(program.instructions):
        macro = program.instructions[addr]
        h.update(
            f"I|{addr:x}|{macro.mnemonic}|{macro.length}|{macro.lcp_count}|"
            f"{macro.branch_kind.value}|{macro.target}|{macro.msrom}|"
            f"{macro.cacheable}".encode()
        )
        for uop in macro.uops:
            h.update(
                f"U|{uop.kind.value}|{uop.dst}|{uop.srcs}|{uop.imm}|"
                f"{uop.alu_op}|{uop.cond}|{uop.base}|{uop.index}|"
                f"{uop.scale}|{uop.disp}|{uop.mem_size}|{uop.target}|"
                f"{uop.slots}|{uop.latency}|{uop.sets_flags}".encode()
            )
    for base in sorted(program.data):
        h.update(f"D|{base:x}|".encode() + program.data[base])
    h.update(f"E|{program.entry:x}".encode())
    for start, end in sorted(program.kernel_ranges):
        h.update(f"K|{start:x}|{end:x}".encode())
    return h.hexdigest()


# ----------------------------------------------------------------------
# Registry


@dataclass(frozen=True)
class RegisteredFn:
    """One experiment callable the harness knows how to run.

    ``fn(config, seed, **params)`` must return a JSON-serialisable
    value.  ``program_builder(config, params) -> Program``, when
    given, folds the assembled program bytes into the job hash.
    """

    name: str
    fn: Callable[..., Any]
    program_builder: Optional[Callable[[CPUConfig, Mapping[str, Any]], Program]] = None


_REGISTRY: Dict[str, RegisteredFn] = {}


def register(name: str, program_builder=None):
    """Decorator registering an experiment callable under ``name``."""

    def wrap(fn):
        if name in _REGISTRY:
            raise ConfigError(f"job function {name!r} registered twice")
        _REGISTRY[name] = RegisteredFn(name, fn, program_builder)
        return fn

    return wrap


def resolve(name: str) -> RegisteredFn:
    """Look up a registered callable, importing the built-in experiment
    catalogue on first miss (worker processes start with an empty
    registry)."""
    if name not in _REGISTRY:
        from repro.harness import experiments  # noqa: F401  (registers)
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown job function {name!r}; registered: "
            f"{sorted(_REGISTRY)}"
        ) from None


def registered_names() -> list:
    """Names currently in the registry (after loading built-ins)."""
    from repro.harness import experiments  # noqa: F401

    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# Job


@dataclass
class Job:
    """One unit of simulation work: ``fn(config, seed, **params)``.

    ``tag`` is a display label only -- it does not enter the hash, so
    relabelling a sweep never invalidates its cached results.
    """

    fn: str
    config: CPUConfig = field(default_factory=CPUConfig.skylake)
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    tag: str = ""

    _key: Optional[str] = field(default=None, repr=False, compare=False)

    def hash_payload(self) -> Dict[str, Any]:
        """The dict whose canonical JSON is hashed into the key."""
        entry = resolve(self.fn)
        payload: Dict[str, Any] = {
            "schema": CACHE_SCHEMA_VERSION,
            "fn": self.fn,
            "config": dataclasses.asdict(self.config),
            "params": dict(self.params),
            "seed": self.seed,
        }
        if entry.program_builder is not None:
            program = entry.program_builder(self.config, self.params)
            payload["program"] = fingerprint_program(program)
        return payload

    def key(self) -> str:
        """Stable content hash (hex SHA-256) identifying this job."""
        if self._key is None:
            digest = hashlib.sha256(canonical_json(self.hash_payload()))
            self._key = digest.hexdigest()
        return self._key

    def run(self) -> Any:
        """Execute the job in-process and return its (JSON-able) result."""
        entry = resolve(self.fn)
        return entry.fn(self.config, self.seed, **self.params)

    @property
    def label(self) -> str:
        """Human-readable identity for progress/error reporting."""
        if self.tag:
            return self.tag
        brief = ",".join(f"{k}={v}" for k, v in self.params.items())
        return f"{self.fn}({brief})"
