"""The generate -> lint -> submit -> score search loop.

One :func:`run_search` call is a seeded evolutionary search over the
genome space of :mod:`repro.synth.genome`:

1. **generate** -- generation 0 seeds from :func:`~repro.synth.genome.
   seed_population` (random genomes plus the paper's hand-written
   operating point); later generations breed the fittest measured
   candidates through the mutation/crossover operators, topped up with
   fresh random genomes for exploration.
2. **lint** -- every raw genome runs the free static stages
   (:func:`~repro.synth.candidate.evaluate_static`); non-assembling
   and lint-dirty candidates die here, which is most of them.
3. **submit** -- static survivors are ranked by the taint-derived
   static rate and the top finalists go to the evaluator (local
   harness pool or serve fleet).  Content-addressed job keys dedupe
   re-visited candidates across generations: a genome seen before
   reuses its measured row without a submission.
4. **score** -- the pluggable objective maps measured rows to fitness;
   the best measured candidate and per-generation statistics feed the
   final report.

Everything is a pure function of ``SynthConfig`` (one explicit
``random.Random``), so the same seed and budget replay the identical
search -- and a warm result cache answers every measurement without
executing a single new job.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.synth.candidate import Candidate, evaluate_static
from repro.synth.evaluate import (
    DEFAULT_PAYLOAD,
    DEFAULT_SEED,
    EvalStats,
    measure_job,
)
from repro.synth.genome import (
    Genome,
    baseline_genome,
    crossover,
    mutate,
    new_genome,
    seed_population,
)
from repro.synth.objectives import get_objective


@dataclass
class SynthConfig:
    """Everything that determines one search (and its checkpoints)."""

    objective: str = "bandwidth"
    budget: int = 200  # raw candidates drawn over the whole search
    population: int = 24  # raw candidates per generation
    finalists: int = 6  # measurements per generation
    elite: int = 4  # parents bred into the next generation
    fresh_fraction: float = 0.5  # per-gen exploration genomes
    seed: int = 2021  # search RNG (mutation, crossover, sampling)
    noise_seed: int = DEFAULT_SEED  # measurement noise (Table-I row's)
    payload: bytes = DEFAULT_PAYLOAD
    detector_bits: int = 8

    def as_dict(self) -> Dict[str, Any]:
        doc = dict(self.__dict__)
        doc["payload"] = self.payload.hex()
        return doc


@dataclass
class GenerationStats:
    """The staged-funnel counts of one generation."""

    generation: int
    raw: int = 0
    rejected_assembly: int = 0
    rejected_lint: int = 0
    static: int = 0
    deduped: int = 0  # finalists answered from earlier generations
    measured: int = 0
    best_fitness: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.__dict__)


@dataclass
class SynthResult:
    """Outcome of one search: the winner plus the full funnel."""

    config: SynthConfig
    best: Optional[Candidate]
    generations: List[GenerationStats]
    stats: EvalStats
    measured: List[Candidate] = field(default_factory=list)

    @property
    def raw_total(self) -> int:
        return sum(g.raw for g in self.generations)

    @property
    def rejected_total(self) -> int:
        return sum(g.rejected_assembly + g.rejected_lint
                   for g in self.generations)

    @property
    def static_reject_rate(self) -> float:
        """Fraction of raw candidates the free stages killed."""
        return self.rejected_total / self.raw_total if self.raw_total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "config": self.config.as_dict(),
            "best": self.best.as_dict() if self.best else None,
            "generations": [g.as_dict() for g in self.generations],
            "stats": self.stats.as_dict(),
            "raw_total": self.raw_total,
            "rejected_total": self.rejected_total,
            "static_reject_rate": self.static_reject_rate,
        }


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation (average ranks for ties; no SciPy)."""
    if len(xs) != len(ys) or len(xs) < 2:
        return 0.0

    def ranks(values: Sequence[float]) -> List[float]:
        order = sorted(range(len(values)), key=lambda i: values[i])
        result = [0.0] * len(values)
        i = 0
        while i < len(order):
            j = i
            while (j + 1 < len(order)
                   and values[order[j + 1]] == values[order[i]]):
                j += 1
            avg = (i + j) / 2.0 + 1.0
            for k in range(i, j + 1):
                result[order[k]] = avg
            i = j + 1
        return result

    rx, ry = ranks(xs), ranks(ys)
    mean = (len(xs) + 1) / 2.0
    cov = sum((a - mean) * (b - mean) for a, b in zip(rx, ry))
    var_x = sum((a - mean) ** 2 for a in rx)
    var_y = sum((b - mean) ** 2 for b in ry)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / (var_x * var_y) ** 0.5


def search_key(config: SynthConfig) -> str:
    """Content hash naming this search's checkpoint artifacts."""
    import hashlib

    from repro.harness.job import canonical_json

    return hashlib.sha256(
        canonical_json({"synth": 1, **config.as_dict()})
    ).hexdigest()


def _breed(parents: List[Candidate], rng: random.Random,
           count: int, fresh_fraction: float) -> List[Genome]:
    """Next generation's raw genomes from the measured elite."""
    genomes: List[Genome] = []
    fresh = max(1, int(count * fresh_fraction)) if count else 0
    while len(genomes) < count - fresh:
        a = rng.choice(parents).genome
        if len(parents) > 1 and rng.random() < 0.5:
            b = rng.choice(parents).genome
            genomes.append(crossover(a, b, rng))
        else:
            genomes.append(mutate(a, rng))
    while len(genomes) < count:
        genomes.append(new_genome(rng))
    return genomes


def _fitness(cand: Candidate) -> float:
    return cand.fitness if cand.fitness is not None else 0.0


def run_search(
    config: SynthConfig,
    evaluator,
    cache=None,
    log=None,
) -> SynthResult:
    """Run one seeded search to budget exhaustion.

    ``evaluator`` is a :class:`~repro.synth.evaluate.LocalEvaluator`
    or :class:`~repro.synth.evaluate.ServeEvaluator`; ``cache`` (a
    :class:`~repro.harness.cache.ResultCache`), when given, receives
    one population-checkpoint artifact per generation under
    :func:`search_key`.
    """
    objective = get_objective(config.objective)
    rng = random.Random(config.seed)
    visited: Dict[str, Candidate] = {}  # job key -> measured candidate
    generations: List[GenerationStats] = []
    parents: List[Candidate] = []
    raw_used = 0
    gen_index = 0
    ckpt_key = search_key(config)

    while raw_used < config.budget:
        size = min(config.population, config.budget - raw_used)
        if gen_index == 0:
            genomes = seed_population(rng, size)
        else:
            genomes = _breed(parents, rng, size, config.fresh_fraction)
        raw_used += len(genomes)

        stats = GenerationStats(generation=gen_index, raw=len(genomes))
        origin = "seed" if gen_index == 0 else f"gen{gen_index}"
        survivors: List[Candidate] = []
        for genome in genomes:
            cand = evaluate_static(genome, origin=origin)
            if cand.stage == "rejected-assembly":
                stats.rejected_assembly += 1
            elif cand.stage == "rejected-lint":
                stats.rejected_lint += 1
            else:
                survivors.append(cand)
        stats.static = len(survivors)

        # rank by the taint-derived static rate; measure the top
        # finalists we have not already paid for.  Generation 0 always
        # measures the hand-written operating point when it survived:
        # the search's anchor row, and the ancestor every later
        # generation must beat.
        survivors.sort(key=lambda c: (-c.static_rate_kbps,
                                      json.dumps(c.genome, sort_keys=True)))
        chosen: List[Candidate] = []
        if gen_index == 0:
            anchor = baseline_genome()
            chosen.extend(c for c in survivors if c.genome == anchor)
        for cand in survivors:
            if len(chosen) >= config.finalists:
                break
            if cand not in chosen:
                chosen.append(cand)
        to_measure: List[Candidate] = []
        for cand in chosen:
            cand.key = measure_job(
                cand.genome, config.noise_seed, config.payload,
                config.detector_bits,
            ).key()
            seen = visited.get(cand.key)
            if seen is not None:
                stats.deduped += 1
                cand.row = seen.row
                cand.fitness = seen.fitness
                cand.stage = seen.stage
                continue
            visited[cand.key] = cand
            to_measure.append(cand)

        evaluator.measure(to_measure, seed=config.noise_seed,
                          payload=config.payload,
                          detector_bits=config.detector_bits)
        for cand in to_measure:
            if cand.row is not None:
                cand.fitness = objective(cand.row)
        stats.measured = len([c for c in to_measure if c.row is not None])

        parents = sorted(
            (c for c in visited.values() if c.row is not None),
            key=lambda c: (-_fitness(c), c.key),
        )[: config.elite]
        if not parents:  # nothing measured yet: explore from scratch
            parents = [Candidate(genome=new_genome(rng))]
        stats.best_fitness = _fitness(parents[0]) if parents else 0.0
        generations.append(stats)
        if log:
            log(f"gen {gen_index}: raw={stats.raw} "
                f"rejected={stats.rejected_assembly + stats.rejected_lint} "
                f"static={stats.static} measured={stats.measured} "
                f"deduped={stats.deduped} "
                f"best={stats.best_fitness:.1f}")
        if cache is not None:
            cache.put_artifact(
                ckpt_key, f"gen-{gen_index:03d}.json",
                json.dumps({
                    "stats": stats.as_dict(),
                    "population": [c.as_dict() for c in survivors],
                }, sort_keys=True),
            )
        gen_index += 1

    measured = sorted(
        (c for c in visited.values() if c.row is not None),
        key=lambda c: (-_fitness(c), c.key),
    )
    best = measured[0] if measured else None
    return SynthResult(
        config=config,
        best=best,
        generations=generations,
        stats=evaluator.stats,
        measured=measured,
    )


# ----------------------------------------------------------------------
# reporting


def listing(genome: Genome, limit: int = 40) -> List[str]:
    """Assembly listing of a candidate's program (first ``limit``
    instructions), for the best-candidate report."""
    from repro.synth.candidate import _no_preflight, build_session

    with _no_preflight():
        program = build_session(genome).program
    lines = []
    for addr in sorted(program.instructions):
        macro = program.instructions[addr]
        target = f" -> {macro.target:#x}" if macro.target is not None else ""
        lines.append(f"{addr:#08x}: {macro.mnemonic}{target}")
        if len(lines) >= limit:
            lines.append(f"... ({len(program.instructions)} instructions)")
            break
    return lines


def best_report(result: SynthResult) -> Dict[str, Any]:
    """The best-candidate report the CLI emits: program listing plus
    the lint/taint summary and the measured row."""
    if result.best is None:
        return {"objective": result.config.objective, "best": None}
    best = result.best
    return {
        "objective": result.config.objective,
        "fitness": best.fitness,
        "key": best.key,
        "genome": dict(best.genome),
        "static": {
            "capacity_bits": best.capacity_bits,
            "static_rate_kbps": best.static_rate_kbps,
            "lint_findings": best.lint_findings,
        },
        "row": best.row,
        "listing": listing(best.genome),
        "funnel": {
            "raw": result.raw_total,
            "rejected": result.rejected_total,
            "static_reject_rate": result.static_reject_rate,
            "measured": len(result.measured),
            **result.stats.as_dict(),
        },
    }
