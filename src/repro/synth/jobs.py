"""The ``synth.measure`` harness job: one finalist, one cached row.

One registered job measures everything every objective needs -- raw
and error-corrected bandwidth plus the Table-II detector's view of the
transmission -- so a candidate revisited under a *different* objective
still hits the same cache entry.  The registry entry declares a
``program_builder`` (the candidate's assembled program), which folds
the program bytes into the job key: genomes that differ only in
non-structural genes but assemble identically share one key, and the
serve tier coalesces them for free.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.analysis.detector import roc_sweep
from repro.coding.reed_solomon import RSCodec, RSDecodeError
from repro.core.covert import _bits_to_bytes, _bytes_to_bits
from repro.cpu.config import CPUConfig
from repro.cpu.noise import NoiseModel
from repro.harness.job import register
from repro.session import AttackSession
from repro.synth.candidate import build_program, build_session

#: Noise operating point of the Table-I "Same address space" row
#: (:func:`repro.core.report.table1_row`): measured rows are directly
#: comparable to that baseline.
EVICT_PROB = 0.01
JITTER_SD = 25.0


def _benign_window(session: AttackSession) -> None:
    """Receiver-only activity: what the detector sees when nobody is
    transmitting (the channel's own footprint, sender silent)."""
    if session.genome["family"] == "covert":
        session._prime()
        session._probe_time()
    else:
        session._call("rx_epoch")


@register("synth.measure", program_builder=build_program)
def _job_measure(
    config: CPUConfig,
    seed: int,
    genome: Dict[str, Any],
    payload_hex: str,
    detector_bits: int = 8,
) -> Dict[str, Any]:
    """Measure one finalist: ECC transmission + detector windows.

    The genome rides in ``params`` (the session derives its own
    ``CPUConfig`` from the family, like ``covert.table1_row`` does);
    ``seed`` drives the noise model.  Returns a flat JSON row every
    objective can score.
    """
    payload = bytes.fromhex(payload_hex)
    noise = NoiseModel(evict_prob=EVICT_PROB, jitter_sd=JITTER_SD, seed=seed)
    session = build_session(genome, noise=noise)

    # Reed-Solomon framing, same sizing rule as CovertChannel.transmit
    # (the episode channels lack an ecc path, so the framing lives here
    # and both families go through the identical send_bits protocol).
    nsym = max(4, min(32, -(-len(payload) // 5)))
    codec = RSCodec(nsym=nsym, block=min(255, nsym + len(payload)))
    wire = codec.encode(payload)
    sent = _bytes_to_bits(wire)

    session.calibrate()
    cycles_before = session.total_cycles
    received = session.send_bits(sent)
    cycles = session.total_cycles - cycles_before
    errors = sum(1 for a, b in zip(sent, received) if a != b)
    try:
        corrected_ok = codec.decode(_bits_to_bytes(received)) == payload
    except RSDecodeError:
        corrected_ok = False

    # Table-II detector's view: DSB-miss counts per observation window,
    # benign (receiver idling) vs. attack (one bit on the wire).
    benign, attack = [], []
    for i in range(max(2, detector_bits)):
        before = session.core.counters().snapshot()
        _benign_window(session)
        benign.append(session.core.counters().delta(before).dsb_misses)
        before = session.core.counters().snapshot()
        session.send_bits([i & 1])
        attack.append(session.core.counters().delta(before).dsb_misses)
    auc = roc_sweep(benign, attack).auc

    seconds = cycles / (session.config.freq_ghz * 1e9)
    bandwidth = len(sent) / seconds / 1e3 if seconds else 0.0
    overhead = len(wire) / len(payload)
    return {
        "family": genome["family"],
        "resource": genome.get("resource"),
        "bits_sent": len(sent),
        "bit_errors": errors,
        "error_rate": errors / len(sent) if sent else 0.0,
        "total_cycles": cycles,
        "bandwidth_kbps": bandwidth,
        "ecc_overhead": overhead,
        "corrected_ok": corrected_ok,
        "corrected_bandwidth_kbps": bandwidth / overhead,
        "detector_auc": auc,
        "payload_bytes": len(payload),
    }
