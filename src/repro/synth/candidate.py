"""Candidates: genome -> program -> staged static fitness.

The pipeline mirrors uGen's validate-before-run discipline.  A raw
genome passes through three free stages before any simulation:

1. **assemble** -- the program builder runs the same constructive
   validation every hand-written driver gets
   (:class:`~repro.core.exploitgen.FootprintSpec` bounds,
   :class:`~repro.core.covert.ChannelParams` ranges, striped-set
   geometry).  A :class:`~repro.errors.ConfigError` or assembler
   failure rejects the candidate in microseconds.
2. **lint** -- the :class:`~repro.session.AttackSession` preflight
   statically verifies the candidate's own claims (chain footprints,
   tiger/zebra disjointness, resource capacities).  A
   :class:`~repro.lint.LintError` rejects it.
3. **taint** -- the secret-flow analysis runs inside the same
   preflight; survivors carry a
   :class:`~repro.lint.taint.TaintReport` whose ``capacity_bits``,
   normalised by a statically estimated per-symbol cost, ranks them
   (:func:`static_rate_kbps`) so only the most promising finalists
   reach the simulator.

Only stage-3 survivors are ever turned into harness jobs, which is the
property the synthesis safety test asserts: no malformed program can
reach the serve queue.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core.covert import (
    RECEIVER_ARENA,
    SENDER_ARENA,
    ZEBRA_ARENA,
    ChannelParams,
    CovertChannel,
)
from repro.core.exploitgen import FootprintSpec, emit_chain, emit_probe, striped_sets
from repro.core.gadgets import generate_corpus
from repro.contention.channels import (
    ITLBChannel,
    ITLBChannelParams,
    StoreBufferChannel,
    StoreBufferChannelParams,
)
from repro.cpu.config import CPUConfig
from repro.cpu.noise import NoiseModel
from repro.errors import ConfigError
from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.lint.gadgets import ChainClaim, PairClaim
from repro.lint.taint import SecretClaim
from repro.session import AttackSession, no_preflight
from repro.synth.genome import Genome

#: Arena for embedded gadget-corpus decoys, clear of the channel
#: arenas (RECEIVER/SENDER/ZEBRA end below 0x50_0000).
COVER_ARENA = 0x60_0000

#: Stage names, in pipeline order.
STAGES = ("raw", "rejected-assembly", "rejected-lint", "static", "measured")


class SynthCovert(CovertChannel):
    """Genome-parameterized tiger/zebra channel.

    Generalises :class:`~repro.core.covert.CovertChannel` over the
    genes the hand-written driver fixes; with the baseline genome it
    rebuilds that driver's program exactly (modulo nothing -- the
    equivalence test asserts identical fingerprints).
    """

    def __init__(self, genome: Genome,
                 config: Optional[CPUConfig] = None,
                 noise: Optional[NoiseModel] = None):
        self.genome = dict(genome)
        params = ChannelParams(
            nsets=genome["nsets"],
            nways=genome["nways"],
            samples=genome["samples"],
            sender_reps=genome["sender_reps"],
            prime_reps=genome["prime_reps"],
            calibration_rounds=6,
        )
        super().__init__(params, config, noise)

    def build_program(self) -> Program:
        g = self.genome
        pad = dict(
            nops_per_region=g["nops"],
            nop_len=g["nop_len"],
            lcp_per_nop=g["lcp"],
            jmp_lcp=g["jmp_lcp"],
        )
        tiger_sets = striped_sets(g["nsets"], offset=g["tiger_offset"])
        zebra_sets = striped_sets(g["nsets"], offset=g["zebra_offset"])
        probe_spec = FootprintSpec(tiger_sets, g["nways"], RECEIVER_ARENA, **pad)
        tiger_spec = FootprintSpec(tiger_sets, g["nways"], SENDER_ARENA, **pad)
        zebra_spec = FootprintSpec(zebra_sets, g["nways"], ZEBRA_ARENA, **pad)
        asm = Assembler()
        asm.reserve("probe_result", 8)
        emit_probe(asm, "probe", probe_spec, "probe_result")
        emit_chain(asm, "send_one", tiger_spec)
        emit_chain(asm, "send_zero", zebra_spec)
        if g["cover"]:
            # gadget substitution: a seeded slice of the Section VI-A
            # corpus embedded as decoy code -- never executed, but part
            # of the static surface and the content hash
            generate_corpus(
                functions=g["cover"],
                rng=random.Random(g["cover_seed"]),
                asm=asm,
                prefix="cover",
                origin=COVER_ARENA,
            )
        self._lint_claims = [
            ChainClaim("probe", probe_spec, "probe"),
            ChainClaim("send_one", tiger_spec, "tiger"),
            ChainClaim("send_zero", zebra_spec, "zebra"),
        ]
        self._lint_pairs = [
            PairClaim("send_one", "probe", "conflict"),
            PairClaim("send_zero", "probe", "disjoint"),
        ]
        self._lint_secrets = [
            SecretClaim(
                name="bit", entries=("send_one", "send_zero"),
                leaks_to=("dsb", "itlb"),
            )
        ]
        return asm.assemble(entry="probe")


class SynthITLB(ITLBChannel):
    """Genome-parameterized iTLB episode channel."""

    def __init__(self, genome: Genome,
                 config: Optional[CPUConfig] = None,
                 noise: Optional[NoiseModel] = None):
        self.genome = dict(genome)
        params = ITLBChannelParams(
            rx_pages=genome["rx_pages"],
            tx_pages=genome["tx_pages"],
            probe_passes=genome["probe_passes"],
            sender_loops=genome["sender_loops"],
            delay_iters=genome["delay_iters"],
            calibration_rounds=4,
        )
        super().__init__(params, config, noise)


class SynthStoreBuffer(StoreBufferChannel):
    """Genome-parameterized store-buffer episode channel.

    Constructively rejects geometries that cannot signal: the
    receiver's burst must oversubscribe the store buffer (otherwise it
    never pays capacity stalls and there is no baseline to inflate),
    and the Trojan's flood must oversubscribe it too (otherwise the
    flood drains freely and steals no drain slots).
    """

    def __init__(self, genome: Genome,
                 config: Optional[CPUConfig] = None,
                 noise: Optional[NoiseModel] = None):
        self.genome = dict(genome)
        entries = (config or CPUConfig.skylake(store_buffer_entries=16)
                   ).store_buffer_entries
        if genome["rx_stores"] <= entries:
            raise ConfigError(
                f"rx burst of {genome['rx_stores']} stores fits the "
                f"{entries}-entry store buffer: no capacity stalls to probe"
            )
        if genome["tx_stores"] <= entries:
            raise ConfigError(
                f"tx flood of {genome['tx_stores']} stores fits the "
                f"{entries}-entry store buffer: drains without contention"
            )
        params = StoreBufferChannelParams(
            rx_stores=genome["rx_stores"],
            tx_stores=genome["tx_stores"],
            probe_passes=genome["probe_passes"],
            sender_loops=genome["sender_loops"],
            calibration_rounds=4,
        )
        super().__init__(params, config, noise)


def build_session(genome: Genome,
                  noise: Optional[NoiseModel] = None) -> AttackSession:
    """Construct the candidate's session (assembles + preflights).

    Raises :class:`~repro.errors.ConfigError` for out-of-range
    geometry (stage-1 rejection) and
    :class:`~repro.lint.LintError` for lint-dirty layouts (stage-2).
    """
    family = genome.get("family")
    if family == "covert":
        return SynthCovert(genome, noise=noise)
    if family == "smt":
        resource = genome.get("resource")
        if resource == "itlb":
            return SynthITLB(genome, noise=noise)
        if resource == "store_buffer":
            return SynthStoreBuffer(genome, noise=noise)
        raise ConfigError(f"unknown smt resource {resource!r}")
    raise ConfigError(f"unknown candidate family {family!r}")


#: Build sessions without the construction-time preflight.  Alias of
#: the thread-local :func:`repro.session.no_preflight` -- serve workers
#: computing job keys concurrently with the main thread's static
#: evaluation must not disturb each other's lint gating.
_no_preflight = no_preflight


def build_program(config: CPUConfig, params: Dict[str, Any]) -> Program:
    """Harness ``program_builder`` hook: the candidate's assembled
    program, folded into the job's content hash so two genomes that
    assemble identically share one cache entry (and re-visited
    candidates dedupe across generations for free)."""
    with _no_preflight():
        return build_session(params["genome"]).program


# ----------------------------------------------------------------------
# static fitness


def static_symbol_cycles(genome: Genome) -> float:
    """Statically estimated cycles to move one symbol (bit).

    A coarse cost model over the genome -- region counts times
    micro-op and predecode weight times the sampling schedule -- used
    only *ordinally*: the ranking stage divides the taint capacity
    bound by this estimate to prefer candidates that move their
    (identical) one bit per symbol in fewer cycles.
    """
    if genome["family"] == "covert":
        regions = genome["nsets"] * genome["nways"]
        uops = genome["nops"] + 1
        predecode = (
            genome["nops"] * genome["lcp"] + genome["jmp_lcp"] + 1
        )
        region_cost = uops + 0.4 * predecode
        passes = (
            genome["prime_reps"] + genome["sender_reps"] + 1
        )
        return max(1.0, genome["samples"] * passes * regions * region_cost)
    if genome["resource"] == "itlb":
        walk = genome["rx_pages"] + 2
        return max(1.0, (
            genome["delay_iters"] * 3.0
            + genome["probe_passes"] * walk * 14.0
            + genome["sender_loops"] * genome["tx_pages"] * 4.0
        ))
    return max(1.0, (
        genome["probe_passes"] * genome["rx_stores"] * 4.0
        + genome["sender_loops"] * genome["tx_stores"] * 2.0
    ))


def static_viability(genome: Genome) -> float:
    """Statically estimated signal viability in [0, 1).

    The taint capacity bound says one bit *could* cross per symbol; it
    says nothing about whether the probe's timing margin survives the
    noise floor.  The margin grows with the probe's signal-bearing
    work -- conflict surface times votes -- so a saturating weight
    ``s / (s + 32)`` discounts degenerate layouts (one region, one
    sample) whose static rate would otherwise dwarf every channel that
    actually decodes.
    """
    if genome["family"] == "covert":
        signal = genome["nsets"] * genome["nways"] * genome["samples"]
    elif genome["resource"] == "itlb":
        signal = genome["probe_passes"] * genome["rx_pages"] * 2
    else:
        signal = genome["probe_passes"] * genome["rx_stores"]
    return signal / (signal + 32.0)


@dataclass
class Candidate:
    """One genome plus everything the pipeline has learned about it."""

    genome: Genome
    stage: str = "raw"
    reject: Optional[str] = None
    capacity_bits: float = 0.0
    static_rate_kbps: float = 0.0
    lint_findings: int = 0
    key: Optional[str] = None
    row: Optional[Dict[str, Any]] = None
    fitness: Optional[float] = None
    origin: str = "seed"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "genome": dict(self.genome),
            "stage": self.stage,
            "reject": self.reject,
            "capacity_bits": round(self.capacity_bits, 3),
            "static_rate_kbps": round(self.static_rate_kbps, 3),
            "lint_findings": self.lint_findings,
            "key": self.key,
            "row": self.row,
            "fitness": self.fitness,
            "origin": self.origin,
        }


def evaluate_static(genome: Genome, origin: str = "seed") -> Candidate:
    """Run the free stages: assemble, lint, taint-rank.

    Never raises for a bad genome -- rejection is the result.  The
    session built here is construction-only (no simulation steps run);
    its taint report supplies the capacity bound.
    """
    from repro.lint import LintError  # runtime-only, like the session layer

    cand = Candidate(genome=dict(genome), origin=origin)
    try:
        session = build_session(genome)
    except (ConfigError, ValueError) as exc:
        cand.stage = "rejected-assembly"
        cand.reject = f"{type(exc).__name__}: {exc}"
        return cand
    except LintError as exc:
        cand.stage = "rejected-lint"
        cand.reject = str(exc)[:200]
        return cand
    cand.stage = "static"
    cand.lint_findings = len(session.lint_findings)
    if session.taint_report is not None:
        cand.capacity_bits = session.taint_report.capacity_bits
    freq_hz = session.config.freq_ghz * 1e9
    cand.static_rate_kbps = (
        cand.capacity_bits / static_symbol_cycles(genome)
        * static_viability(genome) * freq_hz / 1e3
    )
    return cand
