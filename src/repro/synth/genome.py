"""The attack-program search space: genomes, sampling and operators.

A genome is a flat, JSON-able dict of genes describing one candidate
attack program.  Two families share the space:

``covert``
    The tiger/zebra micro-op cache channel (Section V-A) generalised
    over every knob the hand-written :class:`~repro.core.covert.
    CovertChannel` fixes: striped-set geometry (``nsets``/``nways``
    plus *alignment shifts* of both arms), region *padding* (NOP
    count/length, length-changing prefixes), the sampling schedule,
    and a *gadget-substitution* gene pair (``cover``/``cover_seed``)
    that embeds a seeded slice of the Section VI-A gadget corpus
    (:func:`repro.core.gadgets.generate_corpus`) as decoy code --
    changing the program's static surface and content hash without
    touching the executed channel.

``smt``
    The cross-thread episode channels of
    :mod:`repro.contention.channels` (iTLB walks, store-buffer
    drain-port floods), whose layout genes are seeded from the
    contention template sampler
    (:func:`repro.contention.templates.generate_pair` with an explicit
    ``rng`` -- satellite of the same PR), then mutated directly.

Gene ranges are deliberately *wider* than the valid space: the staged
fitness pipeline (see :mod:`repro.synth.candidate`) is what rejects
the out-of-range part, for free, before any simulation -- sampling
only valid genomes would leave the assemble/lint stages untested and
the paper's point (most of the raw space is junk) unreproduced.

Everything is driven by one explicit :class:`random.Random`; the same
seed replays the identical population, which is what makes warm serve
reruns execute zero new jobs.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.contention.templates import generate_pair

#: Genome gene, in sampling order.  Kept explicit so crossover walks a
#: stable gene list and content hashes never depend on dict order.
Genome = Dict[str, int]

FAMILIES = ("covert", "smt")
SMT_RESOURCES = ("itlb", "store_buffer")

#: Sampling ranges, intentionally overshooting validity (see module
#: docstring).  ``randrange``-style half-open [lo, hi).
_COVERT_RANGES = {
    "nsets": (1, 33),          # valid: 1..16 and offset < 32//nsets
    "nways": (1, 17),          # valid: 1..8
    "tiger_offset": (0, 8),    # valid: < 32//nsets
    "zebra_offset": (0, 12),   # valid: < 32//nsets, lint: disjoint arms
    "nops": (0, 11),           # valid: nops*nop_len + 5 <= 32
    "nop_len": (1, 11),
    "lcp": (0, 3),
    "jmp_lcp": (0, 3),
    "samples": (1, 9),
    "sender_reps": (1, 6),
    "prime_reps": (1, 3),
    "cover": (0, 4),           # embedded gadget-corpus functions
    "cover_seed": (0, 1 << 16),
}

_SMT_RANGES = {
    "itlb": {
        "rx_pages": (2, 33),       # lint: rx + idle page must fit the iTLB
        "tx_pages": (2, 33),       # lint: rx + tx must *exceed* capacity
        "probe_passes": (2, 7),
        "sender_loops": (2, 9),
        "delay_iters": (50, 301),
    },
    "store_buffer": {
        "rx_stores": (2, 81),      # valid: burst must oversubscribe entries
        "tx_stores": (4, 97),      # valid: flood must oversubscribe entries
        "probe_passes": (2, 7),
        "sender_loops": (2, 13),
    },
}

#: Operator names, for reports and the mutation log.
OPERATORS = ("align", "pad", "gadget", "relayout", "schedule")


def _draw(rng: random.Random, lo: int, hi: int) -> int:
    return rng.randrange(lo, hi)


def new_genome(rng: random.Random) -> Genome:
    """Sample one raw genome (either family) from the full space."""
    if rng.random() < 0.75:
        return new_covert_genome(rng)
    return new_smt_genome(rng)


def new_covert_genome(rng: random.Random) -> Genome:
    g: Genome = {"family": "covert"}
    for gene, (lo, hi) in _COVERT_RANGES.items():
        g[gene] = _draw(rng, lo, hi)
    return g


def new_smt_genome(rng: random.Random) -> Genome:
    """Sample an episode-channel genome.

    A third of the draws seed their layout genes from the contention
    template sampler (:func:`generate_pair` with an explicit ``rng`` --
    satellite of the same PR), reusing the templates' known-good
    footprint geometry; the rest draw the layout from the raw
    overshooting ranges, so the assemble/lint stages see the junk part
    of the episode space too."""
    resource = rng.choice(SMT_RESOURCES)
    g: Genome = {"family": "smt", "resource": resource}
    if rng.random() < 1.0 / 3.0:
        pair = generate_pair(resource, rng=rng)
        if resource == "itlb":
            g["rx_pages"] = int(pair.meta["victim_pages"]) - 1
            g["tx_pages"] = int(pair.meta["attacker_pages"]) - 1
            g["delay_iters"] = 50 * int(pair.meta["passes"])
        else:
            g["rx_stores"] = int(pair.meta["victim_stores"])
            g["tx_stores"] = int(pair.meta["attacker_stores"])
    for gene, (lo, hi) in _SMT_RANGES[resource].items():
        if gene not in g:
            g[gene] = _draw(rng, lo, hi)
    return g


def _gene_ranges(genome: Genome) -> Dict[str, tuple]:
    if genome["family"] == "covert":
        return _COVERT_RANGES
    return _SMT_RANGES[genome["resource"]]


#: Which genes each named operator may touch, per family/resource.
#: Operators redraw their whole gene group jointly, so a mutant of a
#: converged parent can still fall off the valid manifold -- the
#: staged pipeline, not the operator, decides what survives.
_OPERATOR_GENES = {
    "align": ("tiger_offset", "zebra_offset"),
    "pad": ("nops", "nop_len", "lcp", "jmp_lcp"),
    "gadget": ("cover", "cover_seed"),
    "relayout": ("nsets", "nways"),
    "schedule": ("samples", "sender_reps", "prime_reps"),
}

_SMT_OPERATOR_GENES = {
    "itlb": {
        "relayout": ("rx_pages", "tx_pages"),
        "schedule": ("probe_passes", "sender_loops", "delay_iters"),
    },
    "store_buffer": {
        "relayout": ("rx_stores", "tx_stores"),
        "schedule": ("probe_passes", "sender_loops"),
    },
}


def mutate(genome: Genome, rng: random.Random) -> Genome:
    """One seeded mutation: pick an operator, redraw its genes.

    Covert genomes mutate through the named operators of the paper's
    hand-tuning axes (alignment shifts, padding, gadget substitution,
    set-targeting relayouts, sampling schedule); smt genomes relayout
    their episode footprints or redraw the probe/flood schedule.
    Always returns a *new* dict.
    """
    child = dict(genome)
    ranges = _gene_ranges(genome)
    if genome["family"] == "covert":
        op = rng.choice(OPERATORS)
        genes = _OPERATOR_GENES[op]
    else:
        groups = _SMT_OPERATOR_GENES[genome["resource"]]
        genes = groups[rng.choice(sorted(groups))]
    for gene in genes:
        lo, hi = ranges[gene]
        child[gene] = _draw(rng, lo, hi)
    return child


def crossover(a: Genome, b: Genome, rng: random.Random) -> Genome:
    """Uniform crossover.  Cross-family parents cannot mix (the gene
    sets are disjoint); the child then clones parent ``a`` with one
    mutation instead, so the operator is total."""
    if a["family"] != b["family"] or a.get("resource") != b.get("resource"):
        return mutate(a, rng)
    child: Genome = {"family": a["family"]}
    if "resource" in a:
        child["resource"] = a["resource"]
    for gene in sorted(_gene_ranges(a)):
        child[gene] = (a if rng.random() < 0.5 else b)[gene]
    return child


def seed_population(
    rng: random.Random,
    size: int,
    include_baseline: bool = True,
) -> List[Genome]:
    """The generation-0 population: random genomes plus (optionally)
    the paper's hand-written operating point, so the search always
    contains the Table-I baseline as an ancestor to improve on."""
    population: List[Genome] = []
    if include_baseline and size > 0:
        population.append(baseline_genome())
    while len(population) < size:
        population.append(new_genome(rng))
    return population


def baseline_genome() -> Genome:
    """The hand-written covert channel's operating point (8 striped
    sets, 6 ways, 5 samples, 3 sender reps -- Figure 9's center)."""
    return {
        "family": "covert",
        "nsets": 8, "nways": 6,
        "tiger_offset": 0, "zebra_offset": 2,
        "nops": 3, "nop_len": 5, "lcp": 1, "jmp_lcp": 1,
        "samples": 5, "sender_reps": 3, "prime_reps": 1,
        "cover": 0, "cover_seed": 0,
    }
