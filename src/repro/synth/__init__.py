"""repro.synth -- automated attack synthesis (ROADMAP item 2).

A generate -> lint -> submit -> score search loop over the
attack-program space, in the spirit of uGen (PAPERS.md): seeded
mutation and crossover over parameterized gadget chains, a staged
static fitness pipeline (assemble / lint / taint) that kills most raw
candidates for free, and measured evaluation of the survivors through
the content-addressed harness -- locally or against the serve fleet.

Layers:

- :mod:`repro.synth.genome` -- the gene space, sampling and the five
  named operators (align / pad / gadget / relayout / schedule);
- :mod:`repro.synth.candidate` -- genome -> session builders and the
  staged static pipeline (:func:`evaluate_static`);
- :mod:`repro.synth.jobs` -- the ``synth.measure`` registered harness
  job (one cached row serves every objective);
- :mod:`repro.synth.objectives` -- bandwidth / capacity / stealth;
- :mod:`repro.synth.evaluate` -- local-harness and serve-fleet
  finalist evaluators;
- :mod:`repro.synth.search` -- :func:`run_search` and the
  best-candidate report.
"""

from repro.synth.candidate import (
    Candidate,
    build_session,
    evaluate_static,
)
from repro.synth.evaluate import (
    EvalStats,
    LocalEvaluator,
    ServeEvaluator,
    measure_job,
)
from repro.synth.genome import (
    FAMILIES,
    OPERATORS,
    baseline_genome,
    crossover,
    mutate,
    new_genome,
    seed_population,
)
from repro.synth.objectives import OBJECTIVES, get_objective
from repro.synth.search import (
    GenerationStats,
    SynthConfig,
    SynthResult,
    best_report,
    run_search,
    search_key,
    spearman,
)

__all__ = [
    "Candidate",
    "EvalStats",
    "FAMILIES",
    "GenerationStats",
    "LocalEvaluator",
    "OBJECTIVES",
    "OPERATORS",
    "ServeEvaluator",
    "SynthConfig",
    "SynthResult",
    "baseline_genome",
    "best_report",
    "build_session",
    "crossover",
    "evaluate_static",
    "get_objective",
    "measure_job",
    "mutate",
    "new_genome",
    "run_search",
    "search_key",
    "seed_population",
    "spearman",
]
