"""Pluggable search objectives over the ``synth.measure`` row.

Every objective is a pure function of the one measured row (the job
measures everything once -- see :mod:`repro.synth.jobs`), so switching
objectives re-scores cached rows without re-simulating anything.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

#: Raw bit-error rate above which a channel is considered broken: no
#: realistic framing recovers from it, so the fitness gates to zero
#: rather than rewarding fast garbage.
MAX_ERROR_RATE = 0.15


def bandwidth(row: Dict[str, Any]) -> float:
    """Raw covert bandwidth (Table I's Kbit/s), error-gated."""
    if row["error_rate"] > MAX_ERROR_RATE:
        return 0.0
    return row["bandwidth_kbps"]


def capacity(row: Dict[str, Any]) -> float:
    """Error-corrected goodput: Reed-Solomon framed bandwidth, zero
    unless the decode actually recovered the payload."""
    if not row["corrected_ok"]:
        return 0.0
    return row["corrected_bandwidth_kbps"]


def stealth(row: Dict[str, Any]) -> float:
    """Detector evasion as fitness-with-penalty (RELOAD+REFRESH's
    objective): bandwidth scaled by how close the Table-II detector is
    to chance.  AUC 0.5 keeps full bandwidth, AUC 1.0 zeroes it."""
    if row["error_rate"] > MAX_ERROR_RATE:
        return 0.0
    evasion = max(0.0, 2.0 * (1.0 - row["detector_auc"]))
    return row["bandwidth_kbps"] * min(1.0, evasion)


OBJECTIVES: Dict[str, Callable[[Dict[str, Any]], float]] = {
    "bandwidth": bandwidth,
    "capacity": capacity,
    "stealth": stealth,
}


def get_objective(name: str) -> Callable[[Dict[str, Any]], float]:
    """Look up an objective by CLI name."""
    try:
        return OBJECTIVES[name]
    except KeyError:
        raise ValueError(
            f"unknown objective {name!r}; choose from {sorted(OBJECTIVES)}"
        ) from None
