"""Finalist evaluation backends: local harness or the serve fleet.

Both backends speak the same content-addressed key space
(:meth:`repro.harness.job.Job.key`), so a population measured locally
warms the cache for a later fleet run and vice versa.  The evaluators
accumulate executed/cached counters across the whole search -- the
"identical rerun executes 0 new jobs" acceptance check reads them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.cpu.config import CPUConfig
from repro.harness.job import Job
from repro.synth.candidate import Candidate

#: Default wire payload for measured candidates: short enough that one
#: measurement stays cheap, long enough for a real RS frame; bandwidth
#: is a rate, so rows stay comparable to the 16-byte Table-I baseline.
DEFAULT_PAYLOAD = b"sync"

#: Default noise seed -- the Table-I baseline row's, so measured rows
#: and the hand-written channel share an operating point.
DEFAULT_SEED = 17


def measure_job(
    genome: Dict[str, Any],
    seed: int = DEFAULT_SEED,
    payload: bytes = DEFAULT_PAYLOAD,
    detector_bits: int = 8,
) -> Job:
    """The harness job measuring one finalist (see
    :mod:`repro.synth.jobs`)."""
    return Job(
        fn="synth.measure",
        config=CPUConfig.skylake(),
        params={
            "genome": dict(genome),
            "payload_hex": payload.hex(),
            "detector_bits": detector_bits,
        },
        seed=seed,
        tag=f"synth[{genome['family']}]",
    )


@dataclass
class EvalStats:
    """Counters across every evaluation round of one search."""

    submitted: int = 0  # finalist measurements requested
    executed: int = 0  # simulated fresh this run
    cached: int = 0  # answered from cache / coalesced
    failed: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "executed": self.executed,
            "cached": self.cached,
            "failed": self.failed,
        }


class LocalEvaluator:
    """Measure finalists through :func:`repro.harness.executor.run_jobs`
    (in-process or a local worker pool), sharing the on-disk
    :class:`~repro.harness.cache.ResultCache` with every other harness
    consumer.

    Evaluators carry only *transport* concerns (worker pool, cache,
    timeout); the measurement parameters -- noise seed, payload,
    detector window -- arrive with each :meth:`measure` call from the
    search config, so the keys the search dedupes on and the jobs the
    backend runs can never disagree.
    """

    def __init__(self, workers: int = 0, cache=None,
                 timeout: Optional[float] = None):
        self.workers = workers
        self.cache = cache
        self.timeout = timeout
        self.stats = EvalStats()

    def measure(self, finalists: Sequence[Candidate],
                seed: int = DEFAULT_SEED,
                payload: bytes = DEFAULT_PAYLOAD,
                detector_bits: int = 8) -> None:
        """Fill ``candidate.row`` (and ``stage``) for each finalist."""
        from repro.harness.executor import run_jobs

        if not finalists:
            return
        jobs = []
        for cand in finalists:
            job = measure_job(cand.genome, seed, payload, detector_bits)
            cand.key = job.key()
            jobs.append(job)
        outcomes, summary = run_jobs(
            jobs, workers=self.workers, cache=self.cache,
            timeout=self.timeout,
        )
        self.stats.submitted += len(jobs)
        self.stats.executed += summary.executed
        self.stats.cached += summary.cached
        for cand, outcome in zip(finalists, outcomes):
            if outcome.ok:
                cand.row = outcome.result
                cand.stage = "measured"
            else:
                self.stats.failed += 1
                cand.reject = f"measurement failed: {outcome.error}"


class ServeEvaluator:
    """Measure finalists through a :class:`~repro.serve.client.
    ServeClient` -- one service or a coordinator fleet -- using the
    bounded-concurrency :meth:`~repro.serve.client.ServeClient.
    submit_many` batch helper."""

    def __init__(self, client, max_in_flight: int = 8,
                 timeout: Optional[float] = None):
        self.client = client
        self.max_in_flight = max_in_flight
        self.timeout = timeout
        self.stats = EvalStats()

    @staticmethod
    def _spec(genome: Dict[str, Any], seed: int, payload: bytes,
              detector_bits: int) -> Dict[str, Any]:
        return {
            "kind": "job",
            "params": {
                "fn": "synth.measure",
                "params": {
                    "genome": dict(genome),
                    "payload_hex": payload.hex(),
                    "detector_bits": detector_bits,
                },
            },
            "cpu": "skylake",
            "seed": seed,
        }

    def measure(self, finalists: Sequence[Candidate],
                seed: int = DEFAULT_SEED,
                payload: bytes = DEFAULT_PAYLOAD,
                detector_bits: int = 8) -> None:
        if not finalists:
            return
        for cand in finalists:
            cand.key = measure_job(cand.genome, seed, payload,
                                   detector_bits).key()
        specs = [self._spec(cand.genome, seed, payload, detector_bits)
                 for cand in finalists]
        records = self.client.submit_many(
            specs, max_in_flight=self.max_in_flight, timeout=self.timeout)
        self.stats.submitted += len(specs)
        for cand, record in zip(finalists, records):
            doc = record.get("result") or {}
            self.stats.executed += doc.get("executed", 0)
            self.stats.cached += doc.get("cached", 0)
            if record.get("status") == "done":
                cand.row = doc.get("result")
                cand.stage = "measured"
            else:
                self.stats.failed += 1
                cand.reject = (
                    f"serve {record.get('status')}: {record.get('error')}")
