"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the example scripts so the headline
experiments are runnable without writing any code:

- ``characterize``  -- Figures 3-7 (Section III)
- ``covert``        -- the three covert channels (Section V)
- ``spectre``       -- variant-1 + classic baseline (Section VI-A, Table II)
- ``lfence``        -- variant-2 fence comparison (Section VI-B, Figure 10)
- ``census``        -- gadget census (Section VI-A)
- ``mitigations``   -- Section VIII countermeasures
- ``workloads``     -- benign suite with DSB hit rates
"""

from __future__ import annotations

import argparse
import sys


def _cmd_characterize(args: argparse.Namespace) -> int:
    from examples import characterize_uop_cache  # noqa: F401  (docs)
    sys.argv = ["characterize"] + (["--fast"] if args.fast else [])
    _load_example("characterize_uop_cache").main()
    return 0


def _load_example(name: str):
    """Import an example script as a module (examples/ is not a
    package; load by path)."""
    import importlib.util
    import pathlib

    path = pathlib.Path(__file__).resolve().parents[2] / "examples" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _cmd_covert(args: argparse.Namespace) -> int:
    sys.argv = ["covert"] + ([args.message] if args.message else [])
    _load_example("covert_channel").main()
    return 0


def _cmd_spectre(args: argparse.Namespace) -> int:
    sys.argv = ["spectre"] + ([args.secret] if args.secret else [])
    _load_example("spectre_uop_cache").main()
    return 0


def _cmd_lfence(_args: argparse.Namespace) -> int:
    _load_example("lfence_bypass").main()
    return 0


def _cmd_census(args: argparse.Namespace) -> int:
    sys.argv = ["census", str(args.functions)]
    _load_example("gadget_census").main()
    return 0


def _cmd_mitigations(_args: argparse.Namespace) -> int:
    _load_example("mitigations_demo").main()
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.cpu.config import CPUConfig
    from repro.workloads import run_suite

    config = getattr(CPUConfig, args.cpu)()
    print(f"workload suite on {config.name} "
          f"({config.uop_cache_capacity}-uop cache):")
    print(f"{'workload':16s} {'cycles':>9s} {'IPC':>6s} {'DSB hit':>9s} "
          f"{'DSB uops':>9s} {'mispred':>8s}")
    results = run_suite(config, scale=args.scale)
    for name, r in results.items():
        print(f"{name:16s} {r.cycles:9d} {r.ipc:6.2f} "
              f"{r.dsb_hit_rate * 100:8.1f}% "
              f"{r.dsb_uop_fraction * 100:8.1f}% "
              f"{r.mispredict_rate * 100:7.1f}%")
    avg = sum(r.dsb_hit_rate for r in results.values()) / len(results)
    print(f"\nmean DSB hit rate: {avg * 100:.1f}% "
          "(paper cites ~80% average, ~100% for hotspots)")
    return 0


def main(argv=None) -> int:
    """CLI dispatch."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="I See Dead uops (ISCA 2021) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("characterize", help="Figures 3-7")
    p.add_argument("--fast", action="store_true")
    p.set_defaults(fn=_cmd_characterize)

    p = sub.add_parser("covert", help="Section V covert channels")
    p.add_argument("message", nargs="?", default=None)
    p.set_defaults(fn=_cmd_covert)

    p = sub.add_parser("spectre", help="variant-1 vs classic Spectre")
    p.add_argument("secret", nargs="?", default=None)
    p.set_defaults(fn=_cmd_spectre)

    p = sub.add_parser("lfence", help="variant-2 / Figure 10")
    p.set_defaults(fn=_cmd_lfence)

    p = sub.add_parser("census", help="gadget census")
    p.add_argument("functions", nargs="?", type=int, default=200)
    p.set_defaults(fn=_cmd_census)

    p = sub.add_parser("mitigations", help="Section VIII countermeasures")
    p.set_defaults(fn=_cmd_mitigations)

    p = sub.add_parser("workloads", help="benign suite + DSB hit rates")
    p.add_argument("--cpu", default="skylake",
                   choices=["skylake", "zen", "zen2", "sunny_cove"])
    p.add_argument("--scale", type=int, default=1)
    p.set_defaults(fn=_cmd_workloads)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
