"""Command-line interface: ``python -m repro <command>``.

Commands map one-to-one onto the example scripts so the headline
experiments are runnable without writing any code:

- ``characterize``  -- Figures 3-7 (Section III)
- ``covert``        -- the three covert channels (Section V)
- ``spectre``       -- variant-1 + classic baseline (Section VI-A, Table II)
- ``lfence``        -- variant-2 fence comparison (Section VI-B, Figure 10)
- ``census``        -- gadget census (Section VI-A)
- ``mitigations``   -- Section VIII countermeasures
- ``workloads``     -- benign suite with DSB hit rates

Batch orchestration (``repro.harness``):

- ``batch``         -- run an experiment as a parallel, cached job grid
  (``batch attacks`` runs Tables I & II, key extraction and the
  transient variants as one cached grid; ``batch contention`` runs the
  resource x sharing-mode contention matrix from ``repro.contention``)
- ``cache``         -- inspect / clear the content-addressed result store
- ``profile``       -- cProfile a seconds-scale slice of an experiment
- ``trace``         -- run an experiment under the structured event bus
  (``repro.observe``): event summary, optional set-occupancy heatmaps
  (``--heatmap``) and Chrome trace-event export (``--chrome out.json``,
  loadable in chrome://tracing or Perfetto)

Serving (``repro.serve``):

- ``serve``         -- async experiment service over the harness:
  bounded admission queue with 429 backpressure, in-flight coalescing
  of identical submissions, NDJSON event streams, graceful SIGTERM
  drain
- ``submit``        -- client: expand a shorthand (``covert``,
  ``itlb``, ``storebuffer``, ``table2``, ``workloads``, ``lint``,
  ``trace``, raw ``job``) into a spec, POST it, optionally ``--wait``
  for the result

Synthesis (``repro.synth``):

- ``synth``         -- automated attack synthesis: a seeded
  generate -> lint -> submit -> score search over the attack-program
  space; finalists measured locally, against a running service
  (``--port``), or an in-process fleet (``--fleet K``)
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional


def _load_example(name: str):
    """Import an example script as a module (``examples/`` is not a
    package; load by path).

    Only works from a source checkout: the scripts live next to
    ``src/``, not inside the installed package.  Fails with a clear
    message -- instead of an opaque ``AttributeError`` -- when the
    layout does not match (e.g. a wheel install).
    """
    import importlib.util
    import pathlib

    path = pathlib.Path(__file__).resolve().parents[2] / "examples" / f"{name}.py"
    if not path.is_file():
        raise SystemExit(
            f"example script not found: {path}\n"
            f"'python -m repro' example commands need a source checkout "
            f"(the examples/ directory is not installed). Clone the "
            f"repository, or use the self-contained 'batch' subcommand."
        )
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:
        raise SystemExit(f"cannot load example script {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _cmd_characterize(args: argparse.Namespace) -> int:
    if args.json:
        # Machine-readable path: run the same sweeps through the
        # harness (serially, uncached) and write one JSON document.
        from repro.harness import outcome_records, write_json
        from repro.harness.experiments import run_characterize

        figures, outcomes, summary = run_characterize(fast=args.fast)
        print(f"characterization study: {len(figures)} figures, "
              f"{len(outcomes)} measurement points")
        path = write_json(args.json, {
            "experiment": "characterize",
            "fast": args.fast,
            "points": outcome_records(outcomes),
        })
        print(summary.format())
        print(f"wrote {path}")
        return 0
    argv = ["--fast"] if args.fast else []
    _load_example("characterize_uop_cache").main(argv)
    return 0


def _cmd_covert(args: argparse.Namespace) -> int:
    _load_example("covert_channel").main(
        [args.message] if args.message else []
    )
    return 0


def _cmd_spectre(args: argparse.Namespace) -> int:
    _load_example("spectre_uop_cache").main(
        [args.secret] if args.secret else []
    )
    return 0


def _cmd_lfence(_args: argparse.Namespace) -> int:
    _load_example("lfence_bypass").main()
    return 0


def _cmd_census(args: argparse.Namespace) -> int:
    _load_example("gadget_census").main([str(args.functions)])
    return 0


def _cmd_mitigations(_args: argparse.Namespace) -> int:
    _load_example("mitigations_demo").main()
    return 0


def _workload_rows(results) -> List[dict]:
    rows = []
    for name, r in results.items():
        rows.append({
            "name": name,
            "cycles": r["cycles"] if isinstance(r, dict) else r.cycles,
            "ipc": r["ipc"] if isinstance(r, dict) else r.ipc,
            "dsb_hit_rate": (
                r["dsb_hit_rate"] if isinstance(r, dict) else r.dsb_hit_rate
            ),
            "dsb_uop_fraction": (
                r["dsb_uop_fraction"] if isinstance(r, dict)
                else r.dsb_uop_fraction
            ),
            "mispredict_rate": (
                r["mispredict_rate"] if isinstance(r, dict)
                else r.mispredict_rate
            ),
        })
    return rows


def _print_workload_table(config, rows) -> None:
    print(f"workload suite on {config.name} "
          f"({config.uop_cache_capacity}-uop cache):")
    print(f"{'workload':16s} {'cycles':>9s} {'IPC':>6s} {'DSB hit':>9s} "
          f"{'DSB uops':>9s} {'mispred':>8s}")
    for row in rows:
        print(f"{row['name']:16s} {row['cycles']:9d} {row['ipc']:6.2f} "
              f"{row['dsb_hit_rate'] * 100:8.1f}% "
              f"{row['dsb_uop_fraction'] * 100:8.1f}% "
              f"{row['mispredict_rate'] * 100:7.1f}%")
    avg = sum(row["dsb_hit_rate"] for row in rows) / len(rows)
    print(f"\nmean DSB hit rate: {avg * 100:.1f}% "
          "(paper cites ~80% average, ~100% for hotspots)")


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.cpu.config import CPUConfig
    from repro.workloads import run_suite

    config = getattr(CPUConfig, args.cpu)()
    results = run_suite(config, scale=args.scale)
    rows = _workload_rows(results)
    _print_workload_table(config, rows)
    if args.json:
        from repro.harness import write_json

        path = write_json(args.json, {
            "experiment": "workloads",
            "cpu": args.cpu,
            "scale": args.scale,
            "workloads": rows,
        })
        print(f"wrote {path}")
    return 0


# ----------------------------------------------------------------------
# Batch harness


def _make_cache(args: argparse.Namespace):
    from repro.harness import ResultCache

    if getattr(args, "no_cache", False):
        return None
    return ResultCache(args.cache_dir)  # None root -> default location


def _runner_kwargs(args: argparse.Namespace) -> dict:
    return dict(
        workers=args.jobs,
        cache=_make_cache(args),
        timeout=args.timeout,
        retries=args.retries,
        refresh=args.refresh,
    )


def _export_artifacts(args: argparse.Namespace, experiment: str, outcomes,
                      summary, extra=None) -> None:
    from repro.harness import outcome_records, write_csv, write_json, write_jsonl

    records = outcome_records(outcomes)
    if args.jsonl:
        print(f"wrote {write_jsonl(args.jsonl, records)}")
    if args.csv:
        print(f"wrote {write_csv(args.csv, records)}")
    if args.json:
        doc = {"experiment": experiment, "points": records}
        if extra:
            doc.update(extra)
        print(f"wrote {write_json(args.json, doc)}")


def _batch_characterize(args: argparse.Namespace) -> int:
    from repro.harness.experiments import run_characterize

    figures, outcomes, summary = run_characterize(
        fast=args.fast, **_runner_kwargs(args)
    )
    fig3a = figures["fig3a_size"]
    fig3b = figures["fig3b_associativity"]
    fig6 = figures["fig6_smt"]
    geo = figures["fig7_geometry"]
    print("characterization study (Figures 3-7):")
    print(f"  fig3a: capacity knee at {fig3a.knee()} regions "
          f"({len(fig3a.x)} points; paper: 256 lines)")
    print(f"  fig3b: associativity knee at {fig3b.knee()} ways "
          f"({len(fig3b.x)} points; paper: 8 ways)")
    print(f"  fig4:  {sum(len(s) for s in figures['fig4_placement'].dsb_uops.values())} "
          "placement cells")
    print(f"  fig5:  {len(figures['fig5_replacement'].main_iters)}x"
          f"{len(figures['fig5_replacement'].evict_iters)} replacement matrix")
    print(f"  fig6:  SMT knee {fig6.knee_smt()} vs single-thread "
          f"{fig6.knee_single()} regions (static partitioning)")
    print(f"  fig7:  max cross-thread contention "
          f"t1={max(geo.sweep_t1_mite):.1f}, t2={max(geo.sweep_t2_mite):.1f}")
    _export_artifacts(args, "characterize", outcomes, summary)
    print(summary.format())
    return 0


def _batch_covert(args: argparse.Namespace) -> int:
    from repro.harness.experiments import run_table1

    payload = (args.payload or "uop cache leaks!").encode()
    rows, outcomes, summary = run_table1(payload, **_runner_kwargs(args))
    print("Table I -- bandwidth and error rate (simulated):")
    print(f"  {'Mode':32s} {'BitErr':>8s} {'Kbit/s':>10s} {'w/ECC':>10s}")
    for row in rows:
        print("  " + row.format())
    _export_artifacts(args, "covert", outcomes, summary)
    print(summary.format())
    return 0


def _batch_workloads(args: argparse.Namespace) -> int:
    from repro.cpu.config import CPUConfig
    from repro.harness.experiments import run_workloads

    config = getattr(CPUConfig, args.cpu)()
    results, outcomes, summary = run_workloads(
        config=config, scale=args.scale, **_runner_kwargs(args)
    )
    _print_workload_table(config, _workload_rows(results))
    _export_artifacts(args, "workloads", outcomes, summary)
    print(summary.format())
    return 0


def _batch_attacks(args: argparse.Namespace) -> int:
    from repro.harness.attacks import run_attacks

    kwargs = _runner_kwargs(args)
    if args.payload:
        kwargs["payload"] = args.payload.encode()
    results, outcomes, summary = run_attacks(fast=args.fast, **kwargs)

    print("Attack evaluation (Tables I & II, key extraction, variants):")
    print(f"  {'Mode':32s} {'BitErr':>8s} {'Kbit/s':>10s} {'w/ECC':>10s}")
    for row in results["table1"]:
        print("  " + row.format())
    for row in results["contention"]:  # non-DSB channels, same format
        print("  " + row.format())
    print()
    print(f"  {'Attack':24s} {'Seconds':>11s} {'LLC refs':>12s} "
          f"{'LLC miss':>12s} {'DSB penalty':>14s} {'Acc':>7s}")
    for row in results["table2"]:
        print("  " + row.format())
    print()
    exact = sum(1 for r in results["keyextract"] if r["exact"])
    print(f"  key extraction: {exact}/{len(results['keyextract'])} exact")
    for r in results["keyextract"]:
        print(f"    {r['nbits']}-bit key {r['true_key']:#x} -> "
              f"{r['recovered_key']:#x} ({r['bit_errors']} bit errors)")
    bti = results["bti"][0]
    print(f"  BTI (variant 2): {bti['byte_accuracy'] * 100:.1f}% bytes, "
          f"{bti['bit_errors']} bit errors")
    jt = results["jumptable"][0]
    print(f"  jump table (multi-bit v1): {jt['byte_accuracy'] * 100:.1f}% "
          f"bytes, {jt['bit_errors']} bit errors")
    fences = {r["fence"]: r["signal"] for r in results["lfence"]}
    print(f"  fence signal (Fig 10): none={fences['nf']:.1f} "
          f"lfence={fences['lf']:.1f} cpuid={fences['cp']:.1f} cycles")
    _export_artifacts(args, "attacks", outcomes, summary)
    print(summary.format())
    return 0


def _batch_contention(args: argparse.Namespace) -> int:
    from repro.harness.contention import format_matrix, run_contention

    matrix, outcomes, summary = run_contention(
        fast=args.fast, **_runner_kwargs(args)
    )
    n_cells = sum(
        len(cells) for per_mode in matrix.values()
        for cells in per_mode.values()
    )
    print(f"contention matrix ({len(matrix)} resources, {n_cells} cells; "
          "slowdown = (contended - baseline) / baseline):")
    print(format_matrix(matrix))
    _export_artifacts(args, "contention", outcomes, summary,
                      extra={"matrix": matrix})
    print(summary.format())
    return 0


_BATCH_EXPERIMENTS = {
    "attacks": _batch_attacks,
    "characterize": _batch_characterize,
    "contention": _batch_contention,
    "covert": _batch_covert,
    "workloads": _batch_workloads,
}


def _cmd_batch(args: argparse.Namespace) -> int:
    try:
        return _BATCH_EXPERIMENTS[args.experiment](args)
    except RuntimeError as exc:
        # Job failures (timeouts, exhausted retries) arrive here with
        # the first failing job's label and error already formatted.
        print(f"batch {args.experiment} failed: {exc}")
        return 1


# ----------------------------------------------------------------------
# Profiler


def _profile_covert(engine: str) -> None:
    from repro.core.covert import ChannelParams, CovertChannel
    from repro.cpu.config import CPUConfig

    # Reset-loop shape (warm, then repeat trials) so the replay engine
    # has recorded segments to replay -- a single cold transmit would
    # only ever record.
    channel = CovertChannel(
        ChannelParams(), config=CPUConfig.skylake(engine=engine)
    )
    channel.transmit(b"uop")
    for _ in range(3):
        channel.reset()
        channel.transmit(b"uop")


def _profile_spectre(engine: str) -> None:
    from repro.core.transient import UopCacheSpectreV1
    from repro.cpu.config import CPUConfig

    UopCacheSpectreV1(
        secret=b"\xa5\x3c", config=CPUConfig.skylake(engine=engine)
    ).leak()


def _profile_classic(engine: str) -> None:
    from repro.core.transient import ClassicSpectreV1
    from repro.cpu.config import CPUConfig

    ClassicSpectreV1(
        secret=b"\xa5\x3c", config=CPUConfig.skylake(engine=engine)
    ).leak()


def _profile_smt(engine: str) -> None:
    from repro.core.smtchannel import SMTChannel, SMTChannelParams
    from repro.cpu.config import CPUConfig

    SMTChannel(
        SMTChannelParams(), config=CPUConfig.zen(engine=engine)
    ).transmit(b"u")


def _profile_keyextract(engine: str) -> None:
    from repro.core.keyextract import KeyExtractor
    from repro.cpu.config import CPUConfig

    KeyExtractor(nbits=8, config=CPUConfig.zen(engine=engine)).extract(0xB5)


def _profile_characterize(engine: str) -> None:
    from repro.core.characterize import size_point
    from repro.cpu.config import CPUConfig

    size_point(CPUConfig.skylake(engine=engine), 64, 8)


#: Small named workloads for ``repro profile`` (seconds, not minutes;
#: each is the hot loop of the matching full command).  Each takes the
#: stepping-backend name and builds its config with it.
_PROFILE_TARGETS = {
    "covert": _profile_covert,
    "spectre": _profile_spectre,
    "classic": _profile_classic,
    "smt": _profile_smt,
    "keyextract": _profile_keyextract,
    "characterize": _profile_characterize,
}


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import pstats

    from repro.cpu.profiling import PhaseTimer

    target = _PROFILE_TARGETS[args.experiment]

    # Pass 1: per-phase wall clock (pipeline terms), without cProfile's
    # tracing overhead skewing the split.
    with PhaseTimer() as timer:
        t0 = time.perf_counter()
        target(args.engine)
        wall = time.perf_counter() - t0
    print(f"profile: {args.experiment} (engine={args.engine})")
    print(f"phase breakdown (cumulative seconds, {wall:.3f}s wall):")
    for phase, seconds, share in timer.report():
        calls = timer.calls[phase]
        print(f"  {phase:<8} {seconds:8.3f}s  {share:6.1%}  "
              f"({calls} calls)")
    other = wall - timer.total
    print(f"  {'other':<8} {other:8.3f}s  "
          f"{(other / wall if wall else 0.0):6.1%}  "
          "(assembly, calibration glue, classifier)")

    # Pass 2: the classic cProfile view.
    prof = cProfile.Profile()
    prof.enable()
    target(args.engine)
    prof.disable()
    stats = pstats.Stats(prof)
    stats.sort_stats("cumulative")
    print(f"top {args.top} functions by cumulative time:")
    stats.print_stats(args.top)
    return 0


# ----------------------------------------------------------------------
# Structured tracing (repro.observe)

#: Names accepted by ``repro trace`` / ``repro submit trace`` -- the
#: implementations live in :mod:`repro.observe.capture` so the serving
#: layer's worker processes can run them too.
_TRACE_EXPERIMENTS = ("classic", "covert", "keyextract", "smt", "spectre")


def _cmd_trace(args: argparse.Namespace) -> int:
    import hashlib
    import json

    from repro.harness.job import CACHE_SCHEMA_VERSION, canonical_json
    from repro.observe import (
        capture_trace,
        chrome_trace,
        validate_chrome_trace,
        write_chrome_trace,
    )

    recorder, snaps = capture_trace(args.experiment)

    print(f"trace: {args.experiment} -- {len(recorder.events)} events")
    for kind, count in sorted(recorder.counts().items()):
        print(f"  {kind:16s} {count:8d}")
    by_source = recorder.uops_by_source()
    if by_source:
        rendered = ", ".join(
            f"{source}={n}" for source, n in sorted(by_source.items())
        )
        print(f"  uops by source: {rendered}")

    if args.heatmap:
        for snap in snaps:
            print()
            print(snap.render_text())

    doc = chrome_trace(recorder.events, process_name=f"repro:{args.experiment}")
    problems = validate_chrome_trace(doc)
    if problems:
        print("chrome trace export is invalid:")
        for problem in problems[:10]:
            print(f"  {problem}")
        return 1
    if args.chrome:
        write_chrome_trace(args.chrome, doc)
        print(f"wrote {args.chrome} ({len(doc['traceEvents'])} trace events)")

    cache = _make_cache(args)
    if cache is not None:
        key = hashlib.sha256(
            canonical_json(
                {
                    "schema": CACHE_SCHEMA_VERSION,
                    "kind": "trace",
                    "experiment": args.experiment,
                }
            )
        ).hexdigest()
        cache.put_artifact(key, "events.json", json.dumps(recorder.as_records()))
        cache.put_artifact(key, "chrome.json", json.dumps(doc))
        for i, snap in enumerate(snaps):
            cache.put_artifact(
                key, f"heatmap-{i}.json", json.dumps(snap.to_json())
            )
        print(
            f"cached {2 + len(snaps)} artifact(s) under "
            f"{cache.artifact_path(key, 'events.json').parent}"
        )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.lint.runner import run_lint

    names = args.targets
    if args.all or not names:
        names = None  # every registered target
    try:
        run = run_lint(names, cross=args.cross_check, taint=args.taint)
    except KeyError as exc:
        print(exc.args[0])
        return 2
    if args.json != "-":  # keep stdout pure JSON when piping
        print(run.render(show_info=args.show_info))
    if args.json is not None:
        doc = json.dumps(run.as_dict(), indent=2)
        if args.json == "-":
            print(doc)
        else:
            with open(args.json, "w") as fh:
                fh.write(doc + "\n")
            print(f"wrote {args.json}")
    return run.exit_code


def _cmd_synth(args: argparse.Namespace) -> int:
    import json

    from repro.synth import (
        LocalEvaluator,
        ServeEvaluator,
        SynthConfig,
        best_report,
        run_search,
    )

    kwargs = dict(objective=args.objective, budget=args.budget,
                  seed=args.seed)
    if args.fast:
        # smoke-sized: a 2-byte payload, a 2-round detector window and
        # a smaller per-generation cohort (same search semantics)
        kwargs.update(population=16, finalists=4,
                      payload=b"sy", detector_bits=2)
    config = SynthConfig(**kwargs)
    cache = _make_cache(args)

    cluster = None
    try:
        if args.port is not None:
            from repro.serve.client import ServeClient

            client = ServeClient(host=args.host, port=args.port)
            evaluator = ServeEvaluator(
                client, max_in_flight=args.in_flight,
                timeout=args.timeout)
        elif args.fleet:
            from repro.serve.testing import ClusterThread

            print(f"synth: booting in-process fleet "
                  f"({args.fleet} workers)...")
            cluster = ClusterThread(workers=args.fleet).start()
            evaluator = ServeEvaluator(
                cluster.client(), max_in_flight=args.in_flight,
                timeout=args.timeout)
        else:
            evaluator = LocalEvaluator(
                workers=args.jobs, cache=cache, timeout=args.timeout)
        result = run_search(config, evaluator, cache=cache,
                            log=lambda msg: print(f"synth: {msg}"))
    finally:
        if cluster is not None:
            cluster.stop()

    report = best_report(result)
    funnel = report.get("funnel", {})
    print(f"synth: objective={config.objective} budget={config.budget} "
          f"seed={config.seed}")
    print(f"  funnel: raw={funnel.get('raw')} "
          f"rejected={funnel.get('rejected')} "
          f"(reject rate {funnel.get('static_reject_rate', 0.0):.2f}) "
          f"measured={funnel.get('measured')} "
          f"executed={funnel.get('executed')} "
          f"cached={funnel.get('cached')}")
    best = result.best
    if best is None or best.row is None:
        print("  no measured candidate (budget too small?)")
        return 1
    row = best.row
    print(f"  best [{best.key[:16]}...]: {row['family']}"
          + (f"/{best.genome.get('resource')}"
             if best.genome.get("resource") else "")
          + f" fitness={best.fitness:.1f}")
    print(f"    bandwidth={row['bandwidth_kbps']:.1f} Kbit/s "
          f"error={row['error_rate']:.4f} "
          f"ecc_ok={row['corrected_ok']} "
          f"detector_auc={row['detector_auc']:.3f}")
    print(f"    genome: {json.dumps(best.genome, sort_keys=True)}")
    print(f"    static: capacity={best.capacity_bits:.2f} bits/symbol, "
          f"rate~{best.static_rate_kbps:.0f} Kbit/s, "
          f"{best.lint_findings} lint findings")
    print("    listing:")
    for line in report["listing"][:12]:
        print(f"      {line}")
    if len(report["listing"]) > 12:
        print(f"      ... ({len(report['listing']) - 12} more lines)")
    if args.json:
        from repro.harness import write_json

        print(f"wrote {write_json(args.json, report)}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.harness import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        print(cache.stats().format())
    elif args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.root}")
    return 0


# ----------------------------------------------------------------------
# Serving (repro.serve)


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.coordinator and args.worker:
        raise SystemExit("--coordinator and --worker are mutually exclusive")

    if args.coordinator:
        from repro.serve.cluster import run_coordinator

        port = args.port if args.port != 8787 else 8786
        print(f"repro serve: coordinator on {args.host}:{port}"
              + (f" (shared store {args.shared_store})"
                 if args.shared_store else ""))
        print("workers register via POST /v1/workers/register; start them "
              "with: repro serve --worker HOST:PORT")
        run_coordinator(host=args.host, port=port,
                        shared_store=args.shared_store)
        print("repro serve: coordinator drained")
        return 0

    print(f"repro serve: listening on {args.host}:{args.port} "
          f"({args.workers} worker(s), queue capacity "
          f"{args.queue_capacity}, mode {args.worker_mode})")
    if args.worker:
        print(f"cluster worker: registering with coordinator {args.worker}")
    print("SIGTERM/SIGINT drains gracefully: running jobs finish, "
          "new submissions get 503")
    from repro.serve.server import run_server

    run_server(host=args.host, port=args.port, workers=args.workers,
               queue_capacity=args.queue_capacity, cache=_make_cache(args),
               worker_mode=args.worker_mode,
               shared_store=args.shared_store,
               coordinator_url=args.worker,
               advertise_host=args.advertise_host)
    print("repro serve: drained")
    return 0


def _submit_spec(args: argparse.Namespace) -> dict:
    """Expand a ``repro submit`` shorthand into a spec document."""
    import json

    if args.experiment == "job":
        if not args.job_fn:
            raise SystemExit("submit job needs --fn NAME")
        params = {"fn": args.job_fn,
                  "params": json.loads(args.params) if args.params else {}}
        kind = "job"
    elif args.experiment == "covert":
        payload = (args.payload or "uop cache leaks!").encode().hex()
        params = {"fn": "covert.table1_row",
                  "params": {"mode": "Same address space",
                             "payload_hex": payload}}
        kind = "job"
    elif args.experiment == "itlb":
        payload = (args.payload or "uop cache leaks!").encode().hex()
        params = {"fn": "covert.table1_row",
                  "params": {"mode": "Cross-thread iTLB (SMT)",
                             "payload_hex": payload}}
        kind = "job"
    elif args.experiment == "storebuffer":
        payload = (args.payload or "uop cache leaks!").encode().hex()
        params = {"fn": "covert.table1_row",
                  "params": {"mode": "Cross-thread store buffer (SMT)",
                             "payload_hex": payload}}
        kind = "job"
    elif args.experiment == "table2":
        params = {"fn": "attacks.table2_row",
                  "axes": {"attack": ["classic", "uop_cache"]},
                  "base": {"secret_hex": "a53c"}}
        kind = "sweep"
    elif args.experiment == "workloads":
        params = {"fn": "workloads.run",
                  "axes": {"name": ["branchy", "hash_loop", "hot_loop",
                                    "interpreter", "large_code", "matvec",
                                    "pointer_chase", "syscall_heavy"]},
                  "base": {"scale": args.scale}}
        kind = "sweep"
    elif args.experiment == "lint":
        params = {}
        if args.targets:
            params["targets"] = args.targets
        if args.taint:
            params["taint"] = True
        kind = "lint"
    elif args.experiment == "trace":
        params = {"experiment": args.target or "covert"}
        kind = "trace"
    else:  # pragma: no cover -- choices= forbids this
        raise SystemExit(f"unknown submit shorthand {args.experiment!r}")
    spec = {"kind": kind, "params": params, "seed": args.seed,
            "priority": args.priority}
    if args.timeout is not None:
        spec["timeout"] = args.timeout
    if args.refresh:
        spec["refresh"] = True
    return spec


def _cmd_submit(args: argparse.Namespace) -> int:
    import json
    import threading

    from repro.serve.client import ServeClient, ServeError

    spec = _submit_spec(args)
    client = ServeClient(host=args.host, port=args.port)
    copies = max(1, args.copies)
    records = [None] * copies
    errors = [None] * copies

    def one(i: int) -> None:
        try:
            if args.wait:
                records[i] = client.submit_and_wait(spec)
            else:
                records[i] = client.submit(spec)
        except (ServeError, OSError) as exc:
            errors[i] = exc

    if copies == 1:
        one(0)
    else:
        # Concurrent identical submissions: the server must coalesce
        # them onto one execution (the CI smoke test asserts this via
        # the /metrics 'coalesced' counter).
        threads = [threading.Thread(target=one, args=(i,))
                   for i in range(copies)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    failures = [e for e in errors if e is not None]
    for exc in failures:
        print(f"submit failed: {exc}")
    done = [r for r in records if r is not None]
    for record in done:
        status = record.get("status")
        print(f"{record.get('id')}: {record.get('describe')} "
              f"[{status}] source={record.get('source')} "
              f"key={str(record.get('key'))[:16]}...")
        if status == "done" and args.wait and not args.json:
            print(json.dumps(record.get("result"), indent=2,
                             sort_keys=True)[:2000])
        elif status in ("failed", "timeout"):
            print(f"  error: {record.get('error')}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"spec": spec, "records": done}, fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    if failures:
        return 1
    if args.wait and any(r.get("status") != "done" for r in done):
        return 1
    return 0


def main(argv=None) -> int:
    """CLI dispatch."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="I See Dead uops (ISCA 2021) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("characterize", help="Figures 3-7")
    p.add_argument("--fast", action="store_true")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="also write machine-readable results (runs via "
                        "the harness)")
    p.set_defaults(fn=_cmd_characterize)

    p = sub.add_parser("covert", help="Section V covert channels")
    p.add_argument("message", nargs="?", default=None)
    p.set_defaults(fn=_cmd_covert)

    p = sub.add_parser("spectre", help="variant-1 vs classic Spectre")
    p.add_argument("secret", nargs="?", default=None)
    p.set_defaults(fn=_cmd_spectre)

    p = sub.add_parser("lfence", help="variant-2 / Figure 10")
    p.set_defaults(fn=_cmd_lfence)

    p = sub.add_parser("census", help="gadget census")
    p.add_argument("functions", nargs="?", type=int, default=200)
    p.set_defaults(fn=_cmd_census)

    p = sub.add_parser("mitigations", help="Section VIII countermeasures")
    p.set_defaults(fn=_cmd_mitigations)

    p = sub.add_parser("workloads", help="benign suite + DSB hit rates")
    p.add_argument("--cpu", default="skylake",
                   choices=["skylake", "zen", "zen2", "sunny_cove"])
    p.add_argument("--scale", type=int, default=1)
    p.add_argument("--json", metavar="PATH", default=None,
                   help="write machine-readable results")
    p.set_defaults(fn=_cmd_workloads)

    p = sub.add_parser(
        "batch",
        help="run an experiment as a parallel, cached job grid",
        description="Expand an experiment into a job grid, answer "
                    "already-computed points from the content-addressed "
                    "cache, and fan the rest out over worker processes.",
    )
    p.add_argument("experiment", nargs="?", default="characterize",
                   choices=sorted(_BATCH_EXPERIMENTS))
    p.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                   help="worker processes (1 = serial in-process)")
    p.add_argument("--fast", action="store_true",
                   help="coarser sweeps / smoke-size grids "
                        "(characterize, attacks)")
    p.add_argument("--cpu", default="skylake",
                   choices=["skylake", "zen", "zen2", "sunny_cove"],
                   help="CPU preset (workloads)")
    p.add_argument("--scale", type=int, default=1, help="(workloads)")
    p.add_argument("--payload", default=None, help="(covert, attacks)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="result store location (default: $REPRO_CACHE_DIR "
                        "or ~/.cache/repro)")
    p.add_argument("--no-cache", action="store_true",
                   help="neither read nor write the result store")
    p.add_argument("--refresh", action="store_true",
                   help="recompute everything, then update the store")
    p.add_argument("--timeout", type=float, default=None, metavar="SEC",
                   help="per-job wall-clock budget")
    p.add_argument("--retries", type=int, default=1, metavar="N",
                   help="extra attempts for transient failures")
    p.add_argument("--jsonl", metavar="PATH", default=None,
                   help="write per-point results as JSON lines")
    p.add_argument("--csv", metavar="PATH", default=None,
                   help="write per-point results as CSV")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="write per-point results as one JSON document")
    p.set_defaults(fn=_cmd_batch)

    p = sub.add_parser(
        "profile",
        help="cProfile a small named experiment",
        description="Run a seconds-scale slice of an experiment under "
                    "cProfile and print the hottest functions by "
                    "cumulative time.",
    )
    p.add_argument("experiment", choices=sorted(_PROFILE_TARGETS))
    p.add_argument("--top", type=int, default=20, metavar="N",
                   help="rows of the report (default 20)")
    p.add_argument("--engine", choices=("reference", "replay"),
                   default="reference",
                   help="stepping backend to profile (default reference)")
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser(
        "trace",
        help="run an experiment under the structured event bus",
        description="Run a seconds-scale slice of an experiment with "
                    "repro.observe attached: print an event summary, "
                    "optionally render micro-op cache occupancy heatmaps "
                    "and export a Chrome trace-event JSON timeline.",
    )
    p.add_argument("experiment", choices=sorted(_TRACE_EXPERIMENTS))
    p.add_argument("--chrome", metavar="PATH", default=None,
                   help="write the run as Chrome trace-event JSON "
                        "(chrome://tracing / Perfetto)")
    p.add_argument("--heatmap", action="store_true",
                   help="render per-set/way occupancy heatmaps")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="artifact store location (default: $REPRO_CACHE_DIR "
                        "or ~/.cache/repro)")
    p.add_argument("--no-cache", action="store_true",
                   help="do not persist trace artifacts")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "lint",
        help="static µop-cache footprint analysis of the attack programs",
        description="Build the shipped attack programs, statically "
                    "verify their micro-op cache footprints and gadget "
                    "claims, and report diagnostics.  Exits nonzero on "
                    "any error-severity finding.",
    )
    p.add_argument("targets", nargs="*", metavar="TARGET",
                   help="lint targets (default: all); see repro.lint.runner")
    p.add_argument("--all", action="store_true",
                   help="lint every registered target (the default when "
                        "no targets are named)")
    p.add_argument("--cross-check", action="store_true",
                   help="also run short simulations and diff predicted "
                        "vs observed dsb_fill events (XC001 on divergence)")
    p.add_argument("--taint", action="store_true",
                   help="run the secret-flow taint analysis over targets "
                        "declaring secrets (TA diagnostics, capacity "
                        "bounds) and the two-secret XC004 differential "
                        "where a secret driver exists")
    p.add_argument("--show-info", action="store_true",
                   help="include info-severity diagnostics in the report")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="write the full report as JSON ('-' for stdout)")
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser(
        "synth",
        help="automated attack synthesis (repro.synth)",
        description="Seeded generate -> lint -> submit -> score search "
                    "over the attack-program space: mutation/crossover "
                    "over gadget chains and contention templates, a "
                    "staged static fitness pipeline (assemble / lint / "
                    "taint) killing most raw candidates for free, and "
                    "measured evaluation of the finalists through the "
                    "content-addressed harness -- locally, against a "
                    "running 'repro serve', or an in-process fleet.",
    )
    p.add_argument("--objective", default="bandwidth",
                   choices=["bandwidth", "capacity", "stealth"],
                   help="fitness: raw covert bandwidth, error-corrected "
                        "capacity (repro.coding), or detector-evading "
                        "bandwidth (Table-II ROC penalty)")
    p.add_argument("--budget", type=int, default=200, metavar="N",
                   help="raw candidates drawn over the whole search "
                        "(default 200)")
    p.add_argument("--seed", type=int, default=2021,
                   help="search RNG seed (same seed + budget replays "
                        "the identical search)")
    p.add_argument("--fast", action="store_true",
                   help="smoke-sized payload/detector windows and "
                        "smaller generations")
    p.add_argument("--jobs", "-j", type=int, default=0, metavar="N",
                   help="local worker processes (0 = in-process)")
    p.add_argument("--host", default="127.0.0.1",
                   help="(--port) service host")
    p.add_argument("--port", type=int, default=None, metavar="PORT",
                   help="measure finalists against a running "
                        "'repro serve' (single service or coordinator)")
    p.add_argument("--fleet", type=int, default=None, metavar="K",
                   help="boot an in-process coordinator + K workers and "
                        "measure finalists through it")
    p.add_argument("--in-flight", type=int, default=8, metavar="N",
                   help="(--port/--fleet) bounded batch concurrency "
                        "(default 8)")
    p.add_argument("--timeout", type=float, default=None, metavar="SEC",
                   help="per-measurement budget")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="result store location (default: $REPRO_CACHE_DIR "
                        "or ~/.cache/repro)")
    p.add_argument("--no-cache", action="store_true",
                   help="neither read nor write the result store")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="write the best-candidate report as JSON")
    p.set_defaults(fn=_cmd_synth)

    p = sub.add_parser("cache", help="inspect/clear the result store")
    p.add_argument("action", choices=["stats", "clear"])
    p.add_argument("--cache-dir", default=None, metavar="DIR")
    p.set_defaults(fn=_cmd_cache)

    p = sub.add_parser(
        "serve",
        help="run the async experiment service (repro.serve)",
        description="Expose the harness over HTTP/JSON: POST /v1/jobs "
                    "enqueues experiment specs on a bounded priority "
                    "queue, identical concurrent submissions coalesce "
                    "onto one execution, and results stream as NDJSON. "
                    "SIGTERM drains gracefully.",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787)
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="worker processes executing specs (default 2)")
    p.add_argument("--queue-capacity", type=int, default=64, metavar="N",
                   help="admission queue bound; beyond it, 429 + "
                        "Retry-After (default 64)")
    p.add_argument("--worker-mode", default="process",
                   choices=["process", "thread"],
                   help="worker tier flavour (threads lose in-worker "
                        "SIGALRM timeouts; default process)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="result store shared with 'batch' (default: "
                        "$REPRO_CACHE_DIR or ~/.cache/repro)")
    p.add_argument("--no-cache", action="store_true",
                   help="serve without a result store (no warm answers)")
    p.add_argument("--coordinator", action="store_true",
                   help="run the cluster coordinator instead of a worker "
                        "service: route submissions to registered workers "
                        "by rendezvous-hashed job key, coalesce identical "
                        "fleet submissions, split sweeps, evict dead "
                        "workers (default port 8786)")
    p.add_argument("--worker", default=None, metavar="COORD",
                   help="run as a cluster worker registering with the "
                        "coordinator at COORD (host:port)")
    p.add_argument("--shared-store", default=None, metavar="DIR",
                   help="fleet-shared read-through result store directory "
                        "(workers write through to it; the coordinator "
                        "answers warm submissions from it)")
    p.add_argument("--advertise-host", default=None, metavar="HOST",
                   help="(--worker) hostname to register with the "
                        "coordinator (default: --host)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit an experiment to a running 'repro serve'",
        description="Client for the experiment service: expand a "
                    "shorthand into a spec document, POST it, optionally "
                    "wait for the result.  --copies N submits N identical "
                    "specs concurrently (they coalesce server-side onto "
                    "one execution).",
    )
    p.add_argument("experiment",
                   choices=["covert", "itlb", "storebuffer", "table2",
                            "workloads", "lint", "trace", "job"],
                   help="shorthand: covert=Table I row, itlb/storebuffer="
                        "contention covert-channel rows, table2=Table II "
                        "sweep, workloads=benign suite sweep, lint, "
                        "trace, or a raw 'job' via --fn/--params")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787)
    p.add_argument("--wait", action="store_true",
                   help="block until the job is terminal and print the "
                        "result")
    p.add_argument("--copies", type=int, default=1, metavar="N",
                   help="submit N identical specs concurrently "
                        "(coalescing demo/smoke)")
    p.add_argument("--fn", dest="job_fn", default=None, metavar="NAME",
                   help="(job) registered harness function")
    p.add_argument("--params", default=None, metavar="JSON",
                   help="(job) parameters as a JSON object")
    p.add_argument("--payload", default=None,
                   help="(covert, itlb, storebuffer) message")
    p.add_argument("--scale", type=int, default=1, help="(workloads)")
    p.add_argument("--targets", nargs="*", default=None, metavar="T",
                   help="(lint) target subset")
    p.add_argument("--taint", action="store_true",
                   help="(lint) also run the secret-flow taint analysis "
                        "and the XC004 two-secret differential")
    p.add_argument("--target", default=None, metavar="NAME",
                   help="(trace) experiment name (default covert)")
    p.add_argument("--seed", type=int, default=17)
    p.add_argument("--priority", type=int, default=0, metavar="0-9")
    p.add_argument("--timeout", type=float, default=None, metavar="SEC",
                   help="per-spec execution budget")
    p.add_argument("--refresh", action="store_true",
                   help="bypass the warm cache; recompute")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="write spec + records as one JSON document")
    p.set_defaults(fn=_cmd_submit)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
