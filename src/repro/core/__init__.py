"""The paper's contribution: micro-op cache characterization, the
tiger/zebra exploit-generation framework, covert channels across
privilege and SMT boundaries, and the transient-execution attacks.

Section map:

- :mod:`repro.core.microbench` -- Listings 1-3 program generators (III)
- :mod:`repro.core.characterize` -- Figures 3-7 experiments (III)
- :mod:`repro.core.exploitgen` -- tiger/zebra generation (IV)
- :mod:`repro.core.timing` -- RDTSC probe harness + classifier (IV)
- :mod:`repro.core.covert` -- same-address-space channel + tuning (V-A)
- :mod:`repro.core.crossdomain` -- user/kernel channel (V-A)
- :mod:`repro.core.smtchannel` -- cross-SMT channel on Zen (V-B)
- :mod:`repro.core.transient` -- variant-1, Spectre-v1 baseline,
  variant-2 / LFENCE bypass (VI)
- :mod:`repro.core.mitigations` -- Section VIII countermeasures
"""

from repro.core.exploitgen import (
    FootprintSpec,
    emit_chain,
    emit_probe,
    neutral_set,
    striped_sets,
)
from repro.core.timing import ProbeTiming, TimingClassifier

__all__ = [
    "FootprintSpec",
    "ProbeTiming",
    "TimingClassifier",
    "emit_chain",
    "emit_probe",
    "neutral_set",
    "striped_sets",
]

# The attack classes live in submodules to keep imports cheap:
#   repro.core.covert.CovertChannel          (Section V-A)
#   repro.core.crossdomain.CrossDomainChannel (Section V-A)
#   repro.core.smtchannel.SMTChannel          (Section V-B)
#   repro.core.transient.UopCacheSpectreV1 / ClassicSpectreV1 /
#       LfenceBypass                          (Section VI)
#   repro.core.transient_multibit.JumpTableSpectre
#   repro.core.keyextract.KeyExtractor
#   repro.core.gadgets.scan / generate_corpus (Section VI-A)
#   repro.core.mitigations                    (Section VIII)
