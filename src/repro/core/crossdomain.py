"""User/kernel cross-domain channel (Section V-A, "Leaking Information
across Privilege Boundaries").

The spy makes periodic system calls; the kernel routine makes a
*secret-dependent* call to one of two internal routines whose code
occupies either the tiger sets (secret bit 1) or the zebra sets
(secret bit 0) of the micro-op cache.  Because the micro-op cache is
not flushed at the privilege boundary, the spy infers the bit by
timing its own user-space tiger afterwards.

The "secret" lives in kernel memory; the harness writes it per bit to
model whatever kernel state steers the secret-dependent call.  The
Section VIII mitigations (flush at domain crossings, privilege-level
partitioning) are exercised against exactly this channel by
:mod:`repro.core.mitigations`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.covert import (
    ChannelParams,
    ChannelReport,
    _bits_to_bytes,
    _bytes_to_bits,
)
from repro.core.exploitgen import FootprintSpec, emit_chain, emit_probe, striped_sets
from repro.core.timing import ProbeTiming
from repro.cpu.config import CPUConfig
from repro.cpu.noise import NoiseModel
from repro.isa import encodings as enc
from repro.isa.assembler import Assembler
from repro.lint.gadgets import ChainClaim, PairClaim
from repro.lint.taint import SecretClaim
from repro.session import AttackSession

SPY_ARENA = 0x44_0000
KERNEL_BASE = 0xC0_0000
KTIGER_ARENA = 0xC4_0000
KZEBRA_ARENA = 0xC8_0000
KERNEL_END = 0xD0_0000


@dataclass
class CrossDomainParams:
    """Channel knobs; ``syscalls_per_sample`` is how many times the spy
    triggers the kernel routine before each probe."""

    nsets: int = 8
    nways: int = 6
    samples: int = 5
    syscalls_per_sample: int = 3
    prime_reps: int = 1
    calibration_rounds: int = 8


class CrossDomainChannel(AttackSession):
    """Covert channel across the user/kernel privilege boundary."""

    def __init__(
        self,
        params: Optional[CrossDomainParams] = None,
        config: Optional[CPUConfig] = None,
        noise: Optional[NoiseModel] = None,
    ):
        self.params = params or CrossDomainParams()
        super().__init__(config or CPUConfig.skylake(), noise)

    # ------------------------------------------------------------------

    def build_program(self):
        p = self.params
        tiger_sets = striped_sets(p.nsets)
        stride = 32 // p.nsets
        zebra_sets = striped_sets(p.nsets, offset=max(1, stride // 2))
        asm = Assembler()
        asm.reserve("probe_result", 8)
        asm.reserve("kernel_secret", 8)

        # Spy: user-space probe over the tiger sets, plus a syscall stub.
        probe_spec = FootprintSpec(tiger_sets, p.nways, SPY_ARENA)
        emit_probe(asm, "probe", probe_spec, "probe_result")
        asm.org(SPY_ARENA + 12 * 1024)
        asm.label("invoke")
        asm.emit(enc.syscall())
        asm.emit(enc.halt())

        # Kernel: dispatch on the secret, then run one of two internal
        # routines with disjoint micro-op cache footprints.
        asm.org(KERNEL_BASE + 31 * 32)
        asm.label("kernel_entry")
        asm.emit(enc.mov_imm("r12", asm.resolve("kernel_secret"), width=64))
        asm.emit(enc.load("r11", "r12"))
        asm.emit(enc.test_reg("r11", "r11"))
        asm.emit(enc.jcc("nz", "k_routine_one"))
        asm.emit(enc.jmp("k_routine_zero"))
        ktiger_spec = FootprintSpec(tiger_sets, p.nways, KTIGER_ARENA)
        kzebra_spec = FootprintSpec(zebra_sets, p.nways, KZEBRA_ARENA)
        emit_chain(asm, "k_routine_one", ktiger_spec, exit_kind="sysret")
        emit_chain(asm, "k_routine_zero", kzebra_spec, exit_kind="sysret")
        self._lint_claims = [
            ChainClaim("probe", probe_spec, "probe"),
            ChainClaim("k_routine_one", ktiger_spec, "tiger"),
            ChainClaim("k_routine_zero", kzebra_spec, "zebra"),
        ]
        # Privilege-level partitioning maps kernel and user code into
        # disjoint cache halves -- the mitigation working as designed --
        # so the cross-domain conflict only holds without it.  The
        # disjointness of the zebra survives either way.
        self._lint_pairs = [PairClaim("k_routine_zero", "probe", "disjoint")]
        if not self.config.privilege_partition_uop_cache:
            self._lint_pairs.append(
                PairClaim("k_routine_one", "probe", "conflict")
            )
        # The kernel's dispatch loads kernel_secret and steers fetch
        # into the tiger or zebra routine; both sides of the dispatch
        # are the secret-dependent fetch surface the spy times.
        self._lint_secrets = [
            SecretClaim(
                name="kernel_secret", entry="kernel_entry",
                label="kernel_secret", leaks_to=("dsb", "itlb"),
            )
        ]
        prog = asm.assemble(entry="probe")
        prog.kernel_ranges.append((KERNEL_BASE, KERNEL_END))
        return prog

    def _send(self, bit: int) -> None:
        """The kernel transmits by executing its secret-dependent path."""
        self.core.write_mem(self.core.addr_of("kernel_secret"), bit)
        for _ in range(self.params.syscalls_per_sample):
            self._call("invoke")

    # ------------------------------------------------------------------

    def calibrate(self) -> ProbeTiming:
        """Fit the hit/miss threshold with known secrets."""
        hits, misses = [], []
        for _ in range(self.params.calibration_rounds):
            for _ in range(self.params.prime_reps):
                self._call("probe")
            self._send(0)
            hits.append(self._probe_time())
            for _ in range(self.params.prime_reps):
                self._call("probe")
            self._send(1)
            misses.append(self._probe_time())
        return self._fit(hits, misses)

    def send_bits(self, bits: Sequence[int]) -> List[int]:
        """Leak a bit string across the privilege boundary."""
        if self.classifier is None:
            self.calibrate()
        received = []
        for bit in bits:
            samples = []
            for _ in range(self.params.samples):
                for _ in range(self.params.prime_reps):
                    self._call("probe")
                self._send(bit)
                samples.append(self._probe_time())
            received.append(self.classifier.vote(samples))
        return received

    def transmit(self, payload: bytes) -> ChannelReport:
        """Send ``payload`` and report Table-I-style statistics."""
        if self.classifier is None:
            self.calibrate()
        self.total_cycles = 0
        sent = _bytes_to_bits(payload)
        received = self.send_bits(sent)
        errors = sum(1 for a, b in zip(sent, received) if a != b)
        return ChannelReport(
            bits_sent=len(sent),
            bit_errors=errors,
            total_cycles=self.total_cycles,
            freq_ghz=self.config.freq_ghz,
            payload_bytes=len(payload),
            timing=self.timing,
        )
