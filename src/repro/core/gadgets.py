"""Gadget analysis (Section VI-A).

The paper argues its variant-1 gadgets "occur more naturally" than
classic Spectre-v1 gadgets: a value-preserving taint analysis found
100 micro-op-cache gadgets in the Linux kernel against only 19
Spectre-v1 gadgets, plus 37 gadgets that additionally mask a bit of
the loaded value and branch on it.

This module reproduces that analysis over *our* programs: a small
dataflow scanner that recognises the three gadget shapes in assembled
code, and a synthetic kernel-like corpus generator to run the census
on (we have no Linux binary; the corpus embeds the same patterns at
controlled rates inside realistic filler).

Gadget shapes (window-bounded def-use chains after a bounds check):

- ``UOP_CACHE``:   cmp/test on an attacker register + conditional
  branch, followed by a load indexed by that register.  Enough for the
  micro-op cache attack -- the secret only needs to reach a register.
- ``MASKED_TRANSMIT``: a UOP_CACHE gadget whose loaded value is bit
  masked (and/shr) and then feeds a conditional branch -- the paper's
  37 "ready to use" gadgets with the transmitter built in.
- ``SPECTRE_V1``:  a UOP_CACHE gadget whose loaded value indexes a
  *second* load -- the classic double-array pattern needed for a
  data-cache disclosure.

Every SPECTRE_V1 gadget is by construction also a UOP_CACHE gadget,
which is the structural reason the paper's gadgets are more abundant.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.isa import encodings as enc
from repro.isa.assembler import Assembler
from repro.isa.instruction import BranchKind, MacroOp, UopKind
from repro.isa.program import Program


class GadgetKind(enum.Enum):
    """Recognised gadget shapes, weakest precondition first."""

    UOP_CACHE = "uop-cache"
    MASKED_TRANSMIT = "masked-transmit"
    SPECTRE_V1 = "spectre-v1"


@dataclass
class Gadget:
    """One finding: where the guard is and what follows it."""

    kind: GadgetKind
    check_addr: int  # address of the guarding conditional branch
    load_addr: int  # address of the guarded, attacker-indexed load
    extra_addr: Optional[int] = None  # second load / transmit branch

    def __str__(self) -> str:
        extra = f", +{self.extra_addr:#x}" if self.extra_addr else ""
        return (f"{self.kind.value} gadget: check @{self.check_addr:#x}, "
                f"load @{self.load_addr:#x}{extra}")


@dataclass
class GadgetCensus:
    """Counts per gadget kind over a scanned program."""

    gadgets: List[Gadget] = field(default_factory=list)

    def count(self, kind: GadgetKind) -> int:
        """Findings of one kind."""
        return sum(1 for g in self.gadgets if g.kind is kind)

    @property
    def uop_cache_total(self) -> int:
        """Gadgets usable by the micro-op cache attack (all of them --
        the stronger shapes subsume the weaker precondition)."""
        return len(self.gadgets)

    @property
    def spectre_v1_total(self) -> int:
        """Gadgets usable by classic Spectre-v1 (double-load only)."""
        return self.count(GadgetKind.SPECTRE_V1)


def _guard_register(instr: MacroOp) -> Optional[str]:
    """Register compared by a cmp/test immediately guarding a branch."""
    uop = instr.uops[0]
    if uop.kind in (UopKind.CMP, UopKind.TEST) and uop.srcs:
        return uop.srcs[0]
    return None


def scan(program: Program, window: int = 12) -> GadgetCensus:
    """Scan a program for transient-leak gadgets.

    ``window`` bounds how many instructions past the bounds check the
    def-use chase looks, mirroring how far a transient window plausibly
    reaches.  It is clamped to the program length (short programs --
    including empty and single-instruction ones -- are always safe to
    scan), and a non-positive window finds nothing.
    """
    census = GadgetCensus()
    instrs = list(program.iter_instructions())
    window = max(0, min(window, len(instrs)))
    for i, instr in enumerate(instrs):
        guard_reg = _guard_register(instr)
        if guard_reg is None:
            continue
        # the guard must actually guard: next control-flow op is a jcc
        if i + 1 >= len(instrs) or instrs[i + 1].branch_kind is not BranchKind.JCC:
            continue
        check = instrs[i + 1]
        gadget = _chase(instrs, i + 2, guard_reg, check, window)
        if gadget is not None:
            census.gadgets.append(gadget)
    return census


def _chase(
    instrs: Sequence[MacroOp],
    start: int,
    tainted_index: str,
    check: MacroOp,
    window: int,
) -> Optional[Gadget]:
    """Look for an attacker-indexed load, then classify its uses."""
    loaded: Optional[str] = None
    load_addr: Optional[int] = None
    masked = False
    end = min(len(instrs), start + window)
    for j in range(start, end):
        instr = instrs[j]
        uop = instr.uops[0]
        if loaded is None:
            if uop.kind is UopKind.LOAD and uop.index == tainted_index:
                loaded = uop.dst
                load_addr = instr.addr
            elif instr.branch_kind not in (BranchKind.NONE, BranchKind.JCC):
                return None  # control left the guarded region
            continue
        # we have a tainted loaded value: classify its first use
        if uop.kind is UopKind.LOAD and uop.index == loaded:
            return Gadget(GadgetKind.SPECTRE_V1, check.addr, load_addr,
                          instr.addr)
        if (
            uop.kind in (UopKind.ALU, UopKind.ALU_IMM)
            and uop.dst == loaded
            and uop.alu_op in ("and", "shr", "shl")
        ):
            masked = True
            continue
        if uop.kind in (UopKind.TEST, UopKind.CMP) and loaded in uop.srcs:
            continue
        if instr.branch_kind is BranchKind.JCC and masked:
            return Gadget(GadgetKind.MASKED_TRANSMIT, check.addr, load_addr,
                          instr.addr)
        if instr.branch_kind not in (BranchKind.NONE, BranchKind.JCC):
            break
    if loaded is not None:
        return Gadget(GadgetKind.UOP_CACHE, check.addr, load_addr)
    return None


# ----------------------------------------------------------------------
# synthetic corpus


#: Registers the generator draws from for filler code.
_FILLER_REGS = ["r4", "r5", "r6", "r7"]


def generate_corpus(
    functions: int = 120,
    seed: int = 2021,
    p_single_load: float = 0.45,
    p_masked: float = 0.17,
    p_double_load: float = 0.09,
    rng: Optional[random.Random] = None,
    asm: Optional[Assembler] = None,
    prefix: str = "fn",
    origin: Optional[int] = None,
) -> Optional[Program]:
    """A synthetic kernel-like code corpus with embedded gadgets.

    Each function has one bounds check; with the given probabilities it
    guards a single attacker-indexed load, a masked-transmit sequence,
    or the full Spectre-v1 double load -- the defaults approximate the
    relative abundances the paper measured in Linux (100 : 37 : 19).
    The remainder are benign checks that never touch attacker-indexed
    memory.

    ``rng`` threads an explicit generator through the emission so a
    caller (the synthesis layer) controls reproducibility without the
    corpus owning the seed; when omitted, ``seed`` builds one, which
    keeps the historical output byte-identical.  ``asm`` embeds the
    corpus into an existing program instead of assembling a standalone
    one (returns ``None``; the caller assembles): labels and table
    reservations are derived from ``prefix`` so two embeddings cannot
    collide, and ``origin`` places the corpus at a fixed address so its
    regions stay clear of the host program's arenas.
    """
    if rng is None:
        rng = random.Random(seed)
    standalone = asm is None
    if standalone:
        asm = Assembler()
    tbl = "tbl" if prefix == "fn" else f"{prefix}_tbl"
    tbl2 = "tbl2" if prefix == "fn" else f"{prefix}_tbl2"
    asm.reserve(tbl, 4096)
    asm.reserve(tbl2, 4096)
    if origin is not None:
        asm.org(origin)
    for f in range(functions):
        asm.align(64)
        asm.label(f"{prefix}_{f}")
        # prologue filler
        for _ in range(rng.randrange(0, 4)):
            asm.emit(enc.alu(rng.choice(["add", "xor", "or"]),
                             rng.choice(_FILLER_REGS),
                             rng.choice(_FILLER_REGS)))
        # the bounds check on the "untrusted" r1
        asm.emit(enc.cmp_imm("r1", 4096))
        asm.emit(enc.jcc("ae", f"{prefix}_{f}_out"))
        roll = rng.random()
        if roll < p_double_load:
            asm.emit(enc.mov_imm("r9", asm.resolve(tbl), width=64))
            asm.emit(enc.load("r3", "r9", index="r1", size=1))
            asm.emit(enc.alu_imm("shl", "r3", 6))
            asm.emit(enc.mov_imm("r8", asm.resolve(tbl2), width=64))
            asm.emit(enc.load("r2", "r8", index="r3"))
        elif roll < p_double_load + p_masked:
            asm.emit(enc.mov_imm("r9", asm.resolve(tbl), width=64))
            asm.emit(enc.load("r3", "r9", index="r1", size=1))
            asm.emit(enc.alu_imm("and", "r3", 1))
            asm.emit(enc.test_reg("r3", "r3"))
            asm.emit(enc.jcc("z", f"{prefix}_{f}_out"))
            asm.emit(enc.alu("add", "r4", "r5"))
        elif roll < p_double_load + p_masked + p_single_load:
            asm.emit(enc.mov_imm("r9", asm.resolve(tbl), width=64))
            asm.emit(enc.load("r3", "r9", index="r1", size=1))
            asm.emit(enc.alu("add", "r3", "r4"))
        else:
            # benign: the check guards plain arithmetic
            for _ in range(rng.randrange(1, 4)):
                asm.emit(enc.alu(rng.choice(["add", "sub"]),
                                 rng.choice(_FILLER_REGS),
                                 rng.choice(_FILLER_REGS)))
        asm.label(f"{prefix}_{f}_out")
        asm.emit(enc.ret())
    asm.align(64)
    asm.label("corpus_end" if prefix == "fn" else f"{prefix}_corpus_end")
    asm.emit(enc.halt())
    if not standalone:
        return None
    return asm.assemble(entry=f"{prefix}_0")
