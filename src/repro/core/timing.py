"""RDTSC-based timing harness and hit/miss classification (Section IV).

The attacks never read performance counters: they time a probe with
RDTSC and classify the elapsed cycles as "micro-op cache hit" (fast)
or "miss" (slow, the legacy decode path).  This module calibrates that
classifier the way an attacker would -- by measuring the probe in both
known states and splitting the distributions.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Callable, List, Sequence


@dataclass
class ProbeTiming:
    """Calibration summary of a probe's two timing distributions."""

    hit_times: List[int]
    miss_times: List[int]

    @property
    def hit_mean(self) -> float:
        """Mean probe time when the footprint is resident."""
        return statistics.fmean(self.hit_times)

    @property
    def miss_mean(self) -> float:
        """Mean probe time after a conflicting eviction."""
        return statistics.fmean(self.miss_times)

    @property
    def delta(self) -> float:
        """Mean timing difference between the two states (the signal)."""
        return self.miss_mean - self.hit_mean

    @property
    def delta_sd(self) -> float:
        """Pooled standard deviation of the signal.

        The degrees-of-freedom-weighted pooled estimate
        ``sqrt(sum((n_i - 1) * s_i^2) / sum(n_i - 1))`` over whichever
        sides have at least two samples; 0.0 when neither does.
        """
        weighted = 0.0
        dof = 0
        for times in (self.hit_times, self.miss_times):
            n = len(times)
            if n > 1:
                weighted += (n - 1) * statistics.variance(times)
                dof += n - 1
        return math.sqrt(weighted / dof) if dof else 0.0

    @property
    def threshold(self) -> float:
        """Midpoint decision threshold."""
        return (self.hit_mean + self.miss_mean) / 2.0

    @property
    def separable(self) -> bool:
        """True when the two distributions do not overlap at all."""
        return max(self.hit_times) < min(self.miss_times)


class TimingClassifier:
    """Binary hit/miss classifier over probe timings."""

    def __init__(self, threshold: float):
        self.threshold = threshold

    @classmethod
    def from_timing(cls, timing: ProbeTiming) -> "TimingClassifier":
        """Build from a calibration run."""
        return cls(timing.threshold)

    def is_miss(self, elapsed: float) -> bool:
        """True if the probe observed eviction (a transmitted one-bit)."""
        return elapsed > self.threshold

    def classify_bit(self, elapsed: float) -> int:
        """1 when the conflicting (tiger) code ran, else 0."""
        return 1 if self.is_miss(elapsed) else 0

    def vote(self, samples: Sequence[float]) -> int:
        """Majority vote over repeated samples of the same bit; ties
        fall back to comparing the sample mean to the threshold."""
        if not samples:
            raise ValueError("no samples to vote over")
        misses = sum(1 for s in samples if self.is_miss(s))
        if misses * 2 == len(samples):
            return 1 if statistics.fmean(samples) > self.threshold else 0
        return 1 if misses * 2 > len(samples) else 0
