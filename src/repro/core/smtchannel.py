"""Cross-SMT-thread covert channel (Section V-B).

Intel's micro-op cache is statically partitioned between SMT threads,
so no cross-thread signal exists there (the paper's Figure 6/7 finding,
and our negative control).  AMD Zen shares it competitively: micro-ops
of one thread evict the other's.  The Trojan thread transmits a
one-bit by executing a large tiger loop that contends for the probed
sets, and a zero-bit by idling in a PAUSE loop; the spy thread
continuously times its own tiger and watches its latency rise.

Each bit is one concurrent SMT episode: the spy runs a fixed number of
timed probe passes while the Trojan runs its per-bit workload on the
sibling thread.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.covert import ChannelReport, _bytes_to_bits
from repro.core.exploitgen import (
    FootprintSpec,
    _emit_regions,
    neutral_set,
    striped_sets,
)
from repro.core.timing import ProbeTiming
from repro.cpu.config import CPUConfig
from repro.cpu.noise import NoiseModel
from repro.isa import encodings as enc
from repro.isa.assembler import Assembler
from repro.lint.gadgets import ChainClaim, PairClaim
from repro.lint.taint import SecretClaim
from repro.session import AttackSession

RX_ARENA = 0x44_0000
TX_ARENA = 0x50_0000


@dataclass
class SMTChannelParams:
    """Episode sizing for the SMT channel."""

    nsets: int = 16
    nways: int = 6
    probe_passes: int = 6  # timed receiver passes per bit episode
    sender_loops: int = 24  # tiger passes the Trojan runs per one-bit
    calibration_rounds: int = 6


class SMTChannel(AttackSession):
    """Micro-op cache covert channel between two SMT threads.

    Defaults to :meth:`CPUConfig.zen` (competitively shared cache);
    instantiate with a Skylake config to demonstrate that static
    partitioning closes the channel.
    """

    def __init__(
        self,
        params: Optional[SMTChannelParams] = None,
        config: Optional[CPUConfig] = None,
        noise: Optional[NoiseModel] = None,
    ):
        self.params = params or SMTChannelParams()
        super().__init__(config or CPUConfig.zen(), noise)

    # ------------------------------------------------------------------

    def build_program(self):
        p = self.params
        sets = striped_sets(p.nsets)
        asm = Assembler()
        asm.reserve("rx_results", 8 * (p.probe_passes + 1))

        # Receiver: an epoch of timed probe passes, one timing per pass.
        rx_spec = FootprintSpec(sets, p.nways, RX_ARENA)
        scratch = neutral_set(rx_spec)
        prolog = RX_ARENA + 9 * rx_spec.way_stride + scratch * 32
        asm.org(prolog)
        asm.label("rx_epoch")
        asm.emit(enc.mov_imm("r12", p.probe_passes))
        asm.emit(enc.mov_imm("r11", asm.resolve("rx_results"), width=64))
        asm.label("rx_loop")
        asm.emit(enc.rdtsc("r14"))
        asm.emit(enc.jmp("rx_r0"))
        _emit_regions(asm, "rx", rx_spec, "rx_end")
        asm.org(prolog + rx_spec.way_stride)
        asm.label("rx_end")
        asm.emit(enc.rdtsc("r15"))
        asm.emit(enc.alu("sub", "r15", "r14"))
        asm.emit(enc.store("r15", "r11"))
        asm.emit(enc.alu_imm("add", "r11", 8))
        asm.emit(enc.dec("r12"))
        asm.emit(enc.jcc("nz", "rx_loop"))
        asm.emit(enc.halt())

        # Trojan one-bit: a looped tiger over the same sets.
        tx_spec = FootprintSpec(sets, p.nways, TX_ARENA)
        tx_prolog = TX_ARENA + 9 * tx_spec.way_stride + neutral_set(tx_spec) * 32
        asm.org(tx_prolog)
        asm.label("tx_one")
        asm.emit(enc.mov_imm("r2", p.sender_loops))
        asm.label("tx_loop")
        asm.emit(enc.jmp("tx_r0"))
        _emit_regions(asm, "tx", tx_spec, "tx_end")
        asm.org(tx_prolog + tx_spec.way_stride)
        asm.label("tx_end")
        asm.emit(enc.dec("r2"))
        asm.emit(enc.jcc("nz", "tx_loop"))
        asm.emit(enc.halt())

        # Trojan zero-bit: PAUSE for a comparable duration, leaving no
        # micro-op cache footprint (PAUSE is not cached).
        asm.org(tx_prolog + 2 * tx_spec.way_stride)
        asm.label("tx_zero")
        asm.emit(enc.mov_imm("r2", p.sender_loops * 4))
        asm.label("tx_idle")
        asm.emit(enc.pause())
        asm.emit(enc.dec("r2"))
        asm.emit(enc.jcc("nz", "tx_idle"))
        asm.emit(enc.halt())
        self._lint_claims = [
            ChainClaim("rx", rx_spec, "probe"),
            ChainClaim("tx", tx_spec, "tiger"),
        ]
        self._lint_pairs = [PairClaim("tx", "rx", "conflict")]
        # The Trojan's bit is the choice between the tiger loop and the
        # (uncacheable) PAUSE loop; the PAUSE side surfaces as TA006
        # dead-tainted regions, which is exactly the zero-bit's point.
        self._lint_secrets = [
            SecretClaim(
                name="bit", entries=("tx_one", "tx_zero"),
                leaks_to=("dsb", "itlb"),
            )
        ]
        return asm.assemble(entry="rx_epoch")

    # ------------------------------------------------------------------

    def _episode(self, bit: int) -> float:
        """Run one concurrent bit episode; returns the receiver's mean
        probe time (first pass dropped as warm-up)."""
        label = "tx_one" if bit else "tx_zero"
        self._run_smt(("rx_epoch", label))
        base = self.core.addr_of("rx_results")
        times = [
            self._elapsed(base + 8 * i)
            for i in range(self.params.probe_passes)
        ]
        return statistics.fmean(times[1:]) if len(times) > 1 else times[0]

    def calibrate(self) -> ProbeTiming:
        """Measure both episode kinds to fit the threshold."""
        hits, misses = [], []
        for _ in range(self.params.calibration_rounds):
            hits.append(self._episode(0))
            misses.append(self._episode(1))
        return self._fit(hits, misses)

    def send_bits(self, bits: Sequence[int]) -> List[int]:
        """Transmit bits, one SMT episode each."""
        if self.classifier is None:
            self.calibrate()
        return [
            self.classifier.classify_bit(self._episode(bit)) for bit in bits
        ]

    def transmit(self, payload: bytes) -> ChannelReport:
        """Send ``payload``; report Table-I-style statistics."""
        if self.classifier is None:
            self.calibrate()
        self.total_cycles = 0
        sent = _bytes_to_bits(payload)
        received = self.send_bits(sent)
        errors = sum(1 for a, b in zip(sent, received) if a != b)
        return ChannelReport(
            bits_sent=len(sent),
            bit_errors=errors,
            total_cycles=self.total_cycles,
            freq_ghz=self.config.freq_ghz,
            payload_bytes=len(payload),
            timing=self.timing,
        )
