"""Same-address-space covert channel over the micro-op cache (V-A).

The spy (receiver) executes and times a tiger loop; the Trojan
(sender) executes its own tiger to send a one-bit or a zebra to send a
zero-bit.  Everything is regular committed code -- no speculation --
and the only microarchitectural state touched is the micro-op cache:
probes that hit stream from the DSB without a single instruction-cache
access.

``CovertChannel`` wires the three functions into one program,
calibrates the timing threshold like an attacker would, and transmits
arbitrary payloads, reporting bandwidth/error-rate in the same units
as Table I (Kbit/s at the configured core frequency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.coding.reed_solomon import RSCodec, RSDecodeError
from repro.cpu.config import CPUConfig
from repro.cpu.noise import NoiseModel
from repro.core.exploitgen import FootprintSpec, emit_chain, emit_probe, striped_sets
from repro.core.timing import ProbeTiming
from repro.errors import ConfigError
from repro.isa.assembler import Assembler
from repro.lint.gadgets import ChainClaim, PairClaim
from repro.lint.taint import SecretClaim
from repro.session import AttackSession, read_elapsed

__all__ = [
    "ChannelParams",
    "ChannelReport",
    "CovertChannel",
    "read_elapsed",  # canonical home is repro.session; re-exported
    "tune",
]

#: Arena layout (all 1024-aligned, 256 KiB apart).
RECEIVER_ARENA = 0x44_0000
SENDER_ARENA = 0x48_0000
ZEBRA_ARENA = 0x4C_0000


@dataclass
class ChannelParams:
    """Tunable knobs of the channel (the three axes of Figure 9)."""

    nsets: int = 8
    nways: int = 6
    samples: int = 5
    sender_reps: int = 3
    prime_reps: int = 1
    calibration_rounds: int = 8

    def __post_init__(self) -> None:
        if self.nsets > 16:
            raise ConfigError(
                "nsets > 16 leaves no striped sets for the zebra"
            )
        if not 1 <= self.nways <= 8:
            raise ConfigError("nways must be 1..8")
        if self.samples < 1:
            raise ConfigError("samples must be >= 1")


@dataclass
class ChannelReport:
    """Outcome of one transmission."""

    bits_sent: int
    bit_errors: int
    total_cycles: int
    freq_ghz: float
    payload_bytes: int = 0
    corrected_ok: Optional[bool] = None
    ecc_overhead: float = 1.0
    timing: Optional[ProbeTiming] = None

    @property
    def error_rate(self) -> float:
        """Raw bit error rate."""
        return self.bit_errors / self.bits_sent if self.bits_sent else 0.0

    @property
    def seconds(self) -> float:
        """Simulated wall-clock time of the whole transmission."""
        return self.total_cycles / (self.freq_ghz * 1e9)

    @property
    def bandwidth_kbps(self) -> float:
        """Raw channel bandwidth in Kbit/s."""
        if self.total_cycles == 0:
            return 0.0
        return self.bits_sent / self.seconds / 1e3

    @property
    def corrected_bandwidth_kbps(self) -> float:
        """Goodput after error-correction overhead, in Kbit/s."""
        return self.bandwidth_kbps / self.ecc_overhead


def _bytes_to_bits(data: bytes) -> List[int]:
    bits = []
    for byte in data:
        for i in range(8):
            bits.append((byte >> i) & 1)
    return bits


def _bits_to_bytes(bits: Sequence[int]) -> bytes:
    out = bytearray((len(bits) + 7) // 8)
    for i, bit in enumerate(bits):
        if bit:
            out[i // 8] |= 1 << (i % 8)
    return bytes(out)


class CovertChannel(AttackSession):
    """Tiger/zebra covert channel between two same-privilege code
    regions sharing an address space."""

    def __init__(
        self,
        params: Optional[ChannelParams] = None,
        config: Optional[CPUConfig] = None,
        noise: Optional[NoiseModel] = None,
    ):
        self.params = params or ChannelParams()
        super().__init__(config or CPUConfig.skylake(), noise)

    # ------------------------------------------------------------------

    def build_program(self):
        p = self.params
        tiger_sets = striped_sets(p.nsets)
        stride = 32 // p.nsets
        zebra_sets = striped_sets(p.nsets, offset=max(1, stride // 2))
        probe_spec = FootprintSpec(tiger_sets, p.nways, RECEIVER_ARENA)
        tiger_spec = FootprintSpec(tiger_sets, p.nways, SENDER_ARENA)
        zebra_spec = FootprintSpec(zebra_sets, p.nways, ZEBRA_ARENA)
        asm = Assembler()
        asm.reserve("probe_result", 8)
        emit_probe(asm, "probe", probe_spec, "probe_result")
        emit_chain(asm, "send_one", tiger_spec)
        emit_chain(asm, "send_zero", zebra_spec)
        self._lint_claims = [
            ChainClaim("probe", probe_spec, "probe"),
            ChainClaim("send_one", tiger_spec, "tiger"),
            ChainClaim("send_zero", zebra_spec, "zebra"),
        ]
        self._lint_pairs = [
            PairClaim("send_one", "probe", "conflict"),
            PairClaim("send_zero", "probe", "disjoint"),
        ]
        # The Trojan's secret is the *choice of entry point*: bit 1
        # runs the tiger, bit 0 the zebra.  The taint analysis takes
        # the symmetric difference of the two reachable sets as the
        # secret-dependent fetch surface.
        self._lint_secrets = [
            SecretClaim(
                name="bit", entries=("send_one", "send_zero"),
                leaks_to=("dsb", "itlb"),
            )
        ]
        return asm.assemble(entry="probe")

    def _prime(self) -> None:
        for _ in range(self.params.prime_reps):
            self._call("probe")

    def _send(self, bit: int) -> None:
        label = "send_one" if bit else "send_zero"
        for _ in range(self.params.sender_reps):
            self._call(label)

    # ------------------------------------------------------------------

    def calibrate(self) -> ProbeTiming:
        """Measure the probe in both channel states and fit a
        threshold, exactly as an attacker would during setup."""
        hits, misses = [], []
        for _ in range(self.params.calibration_rounds):
            self._prime()
            self._send(0)
            hits.append(self._probe_time())
            self._prime()
            self._send(1)
            misses.append(self._probe_time())
        return self._fit(hits, misses)

    def send_bits(self, bits: Sequence[int]) -> List[int]:
        """Transmit a bit string; returns the received bits."""
        if self.classifier is None:
            self.calibrate()
        received = []
        for bit in bits:
            samples = []
            for _ in range(self.params.samples):
                self._prime()
                self._send(bit)
                samples.append(self._probe_time())
            received.append(self.classifier.vote(samples))
        return received

    def transmit(self, payload: bytes, ecc: bool = False,
                 ecc_nsym: Optional[int] = None) -> ChannelReport:
        """Send ``payload`` over the channel and report Table-I stats.

        With ``ecc=True`` the payload is Reed-Solomon encoded first and
        the report records whether decoding recovered it exactly.
        ``ecc_nsym`` defaults to ~20% parity (the paper's inflation),
        with a floor of 4 symbols for tiny payloads.
        """
        self.total_cycles = 0
        if self.classifier is None:
            self.calibrate()
        wire = payload
        overhead = 1.0
        if ecc:
            if ecc_nsym is None:
                ecc_nsym = max(4, min(32, -(-len(payload) // 5)))
            codec = RSCodec(nsym=ecc_nsym, block=min(255, ecc_nsym + len(payload)))
            wire = codec.encode(payload)
            overhead = len(wire) / len(payload)
        sent_bits = _bytes_to_bits(wire)
        cycles_before = self.total_cycles
        received_bits = self.send_bits(sent_bits)
        errors = sum(1 for a, b in zip(sent_bits, received_bits) if a != b)
        corrected_ok = None
        if ecc:
            try:
                corrected_ok = codec.decode(_bits_to_bytes(received_bits)) == payload
            except RSDecodeError:
                corrected_ok = False
        return ChannelReport(
            bits_sent=len(sent_bits),
            bit_errors=errors,
            total_cycles=self.total_cycles - cycles_before,
            freq_ghz=self.config.freq_ghz,
            payload_bytes=len(payload),
            corrected_ok=corrected_ok,
            ecc_overhead=overhead,
            timing=self.timing,
        )


def tune(
    payload: bytes,
    nsets_values: Sequence[int] = (1, 2, 4, 8, 16),
    nways_values: Sequence[int] = (4, 5, 6, 7, 8),
    samples_values: Sequence[int] = (1, 2, 5, 10, 20),
    base: ChannelParams = None,
    noise: Optional[NoiseModel] = None,
    noise_seed: int = 7,
) -> dict:
    """Figure 9 sweep: vary one parameter at a time around the paper's
    operating point (6 ways, 8 sets, 5 samples) and record bandwidth
    and error rate for each."""
    base = base or ChannelParams()
    results = {"nsets": [], "nways": [], "samples": []}

    def run(params: ChannelParams) -> Tuple[float, float]:
        nm = noise or NoiseModel(evict_prob=0.02, jitter_sd=30.0, seed=noise_seed)
        chan = CovertChannel(params, noise=nm)
        report = chan.transmit(payload)
        return report.bandwidth_kbps, report.error_rate

    for nsets in nsets_values:
        params = ChannelParams(nsets=nsets, nways=base.nways,
                               samples=base.samples)
        bw, err = run(params)
        results["nsets"].append((nsets, bw, err))
    for nways in nways_values:
        params = ChannelParams(nsets=base.nsets, nways=nways,
                               samples=base.samples)
        bw, err = run(params)
        results["nways"].append((nways, bw, err))
    for samples in samples_values:
        params = ChannelParams(nsets=base.nsets, nways=base.nways,
                               samples=samples)
        bw, err = run(params)
        results["samples"].append((samples, bw, err))
    return results
