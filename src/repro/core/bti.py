"""Branch target injection (Spectre-v2) chained with the micro-op
cache disclosure primitive.

Section VI-A closes with: "by combining our attack with Spectre-v2
(Branch Target Injection), we are also able to arbitrarily jump to
these gadgets while we are in the same address space."  This module
implements exactly that chain:

1. the victim exposes a *benign* indirect call (a handler dispatch);
2. the attacker owns a branch whose PC aliases the victim's call in
   the untagged indirect predictor, and trains it to point at a
   disclosure gadget elsewhere in the address space;
3. the attacker flushes the victim's handler-table entry so the call
   resolves late, then invokes the victim: transient fetch+execution
   follows the *injected* prediction into the gadget, which reads a
   secret bit and steers fetch through a tiger or zebra transmitter;
4. the squash erases everything architectural; the attacker reads the
   bit from the micro-op cache.

The victim never calls the gadget architecturally -- the paper's point
that gadget reachability is a predictor-state question, not a
control-flow-graph question.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.exploitgen import FootprintSpec, emit_chain, emit_probe, striped_sets
from repro.core.timing import ProbeTiming
from repro.core.transient import AttackStats
from repro.cpu.config import CPUConfig
from repro.cpu.noise import NoiseModel
from repro.isa import encodings as enc
from repro.isa.assembler import Assembler
from repro.lint.gadgets import ChainClaim, PairClaim
from repro.lint.taint import SecretClaim
from repro.session import AttackSession

RECV_ARENA = 0x44_0000
TTIGER_ARENA = 0x48_0000
TZEBRA_ARENA = 0x4C_0000


class BranchTargetInjection(AttackSession):
    """Spectre-v2 + micro-op cache disclosure, same address space.

    ``secret`` lives in the victim's data; the victim's only indirect
    control flow is a handler dispatch that never touches it.  The
    gadget (think: one of the 100 the paper's taint analysis found) is
    reachable only transiently, through the poisoned predictor.
    """

    #: The indirect predictor indexes by the low bits of the branch PC;
    #: the attacker's training branch sits exactly this far from the
    #: victim's call so both select the same untagged slot.
    ALIAS_STRIDE = 1024 * 4096  # predictor entries * a page multiple

    def __init__(
        self,
        secret: bytes,
        nsets: int = 8,
        probe_ways: int = 8,
        transmit_ways: int = 3,
        samples: int = 4,
        config: Optional[CPUConfig] = None,
        noise: Optional[NoiseModel] = None,
    ):
        self.secret = secret
        self.nsets = nsets
        self.probe_ways = probe_ways
        self.transmit_ways = transmit_ways
        self.samples = samples
        super().__init__(config or CPUConfig.skylake(), noise)

    def setup(self) -> None:
        # the attacker aims its training branch at the gadget (re-aimed
        # after every reset, which re-images data memory)
        self.core.write_mem(
            self.core.addr_of("attacker_target"),
            self.core.addr_of("gadget"),
        )
        # sanity: the two branches really do alias in the predictor
        predictor = self.core.thread(0).predictor.indirect
        assert predictor.slot(self.core.addr_of("victim_call")) == \
            predictor.slot(self.core.addr_of("attacker_branch"))

    # ------------------------------------------------------------------

    def build_program(self):
        tiger_sets = striped_sets(self.nsets)
        stride = 32 // self.nsets
        zebra_sets = striped_sets(self.nsets, offset=max(1, stride // 2))
        asm = Assembler()
        asm.reserve("probe_result", 8)
        asm.reserve("secret", len(self.secret) + 8)
        asm.reserve("handler_table", 8)
        asm.reserve("attacker_target", 8)

        probe_spec = FootprintSpec(tiger_sets, self.probe_ways, RECV_ARENA)
        tiger_spec = FootprintSpec(
            tiger_sets, self.transmit_ways, TTIGER_ARENA,
            nops_per_region=1, lcp_per_nop=0, jmp_lcp=0,
        )
        zebra_spec = FootprintSpec(
            zebra_sets, self.transmit_ways, TZEBRA_ARENA,
            nops_per_region=1, lcp_per_nop=0, jmp_lcp=0,
        )
        emit_probe(asm, "probe", probe_spec, "probe_result")
        emit_chain(asm, "send_one_t", tiger_spec, exit_kind="ret")
        emit_chain(asm, "send_zero_t", zebra_spec, exit_kind="ret")
        self._lint_claims = [
            ChainClaim("probe", probe_spec, "probe"),
            ChainClaim("send_one_t", tiger_spec, "tiger"),
            ChainClaim("send_zero_t", zebra_spec, "zebra"),
        ]
        self._lint_pairs = [
            PairClaim("send_one_t", "probe", "conflict"),
            PairClaim("send_zero_t", "probe", "disjoint"),
        ]

        # --- victim: a benign handler dispatch ------------------------
        asm.org(0x40_0040)
        asm.label("benign_handler")
        asm.emit(enc.alu_imm("add", "r6", 1))
        asm.emit(enc.ret())

        asm.align(64)
        asm.label("victim")  # r1 unused: no secret-dependent code here
        asm.emit(enc.mov_imm("r10", asm.resolve("handler_table"), width=64))
        asm.emit(enc.load("r5", "r10"))
        asm.label("victim_call")
        asm.emit(enc.call_ind("r5"))
        asm.emit(enc.ret())

        asm.align(64)
        asm.label("invoke_victim")
        asm.emit(enc.call("victim"))
        asm.emit(enc.halt())

        # --- the disclosure gadget (never called architecturally) -----
        # r2 = bit index (attacker-controlled register, as in real BTI
        # PoCs where the attacker prepares register state before the
        # victim entry point).
        asm.align(64)
        asm.label("gadget")
        asm.emit(enc.mov_imm("r9", asm.resolve("secret"), width=64))
        asm.emit(enc.load("r4", "r9", index="r1", size=1))
        asm.emit(enc.alu("shr", "r4", "r2"))
        asm.emit(enc.alu_imm("and", "r4", 1))
        asm.emit(enc.test_reg("r4", "r4"))
        asm.emit(enc.jcc("z", "g_zero"))
        asm.emit(enc.call("send_one_t"))
        asm.label("g_zero")
        asm.emit(enc.call("send_zero_t"))
        asm.emit(enc.ret())

        # --- attacker stubs -------------------------------------------
        asm.align(64)
        asm.label("flush_table")
        asm.emit(enc.mov_imm("r13", asm.resolve("handler_table"), width=64))
        asm.emit(enc.clflush("r13"))
        asm.emit(enc.halt())

        # place the trainer so its call_ind PC aliases victim_call's
        # slot in the untagged indirect predictor
        target_pc = asm.resolve("victim_call") + self.ALIAS_STRIDE
        # the call_ind uop must sit exactly at target_pc; the stub
        # preceding it loads the trained target.
        asm.org(target_pc - 17)
        asm.label("train")
        asm.emit(enc.mov_imm("r5", asm.resolve("attacker_target"), width=64))
        asm.emit(enc.load("r5", "r5"))
        asm.emit(enc.nop(3))
        asm.label("attacker_branch")
        asm.emit(enc.call_ind("r5"))  # jumps to the gadget (attacker code
        asm.emit(enc.halt())  # may call it architecturally: it is code
        # in the shared address space, like a kernel gadget reached by a
        # confused-deputy attacker)

        # The victim never reaches the gadget architecturally, but the
        # poisoned predictor does -- so the taint entry point is the
        # gadget itself, exactly how the paper's gadget scan treats
        # transiently reachable code.
        self._lint_secrets = [
            SecretClaim(
                name="secret", entry="gadget", label="secret",
                size=len(self.secret) + 8, leaks_to=("dsb", "itlb"),
            )
        ]

        return asm.assemble(entry="probe")

    # ------------------------------------------------------------------

    def _install_secret(self) -> None:
        base = self.core.addr_of("secret")
        for i, byte in enumerate(self.secret):
            self.core.write_mem(base + i, byte, size=1)
        self.core.write_mem(
            self.core.addr_of("handler_table"),
            self.core.addr_of("benign_handler"),
        )

    def _poison(self) -> None:
        """Train the shared predictor slot to point at the gadget.

        The attacker's training branch jumps to the gadget with its
        *own* calibration byte index, never touching the secret
        architecturally."""
        self._call("train", regs={"r1": len(self.secret), "r2": 0})

    def _episode(self, byte_index: int, bit: int) -> int:
        self._poison()
        self._call("probe")  # prime
        self._call("flush_table")
        self._call("invoke_victim", regs={"r1": byte_index, "r2": bit})
        return self._probe_time()

    def calibrate(self, rounds: int = 6) -> ProbeTiming:
        """Fit the threshold using a known calibration byte the
        attacker plants next to the secret (index len(secret))."""
        self._install_secret()
        cal_index = len(self.secret)
        self.core.write_mem(self.core.addr_of("secret") + cal_index, 0x01,
                            size=1)
        hits, misses = [], []
        for _ in range(rounds):
            hits.append(self._episode(cal_index, 1))  # bit1 of 0x01 = 0
            misses.append(self._episode(cal_index, 0))  # bit0 of 0x01 = 1
        return self._fit(hits, misses)

    def leak_bit(self, byte_index: int, bit: int) -> int:
        """Leak one secret bit through the injected gadget."""
        if self.classifier is None:
            self.calibrate()
        self._episode(byte_index, bit)  # warm the secret line
        samples = [
            self._episode(byte_index, bit) for _ in range(self.samples)
        ]
        return self.classifier.vote(samples)

    def leak(self, nbytes: Optional[int] = None) -> AttackStats:
        """Leak the secret bit by bit via branch target injection."""
        if self.classifier is None:
            self.calibrate()
        nbytes = nbytes if nbytes is not None else len(self.secret)
        self.total_cycles = 0
        before = self.core.counters().snapshot()
        leaked = bytearray()
        for k in range(nbytes):
            value = 0
            for bit in range(8):
                value |= self.leak_bit(k, bit) << bit
            leaked.append(value)
        return AttackStats(
            leaked=bytes(leaked),
            secret=self.secret[:nbytes],
            total_cycles=self.total_cycles,
            freq_ghz=self.config.freq_ghz,
            counters=self.core.counters().delta(before),
        )
