"""Mitigations (Section VIII) and their evaluation.

Three countermeasures the paper discusses are implemented and
evaluated against the attacks they target:

- **Flushing at domain crossings** (`flush_uop_cache_on_domain_crossing`):
  SYSCALL/SYSRET flush the micro-op cache (the iTLB-flush mechanism).
  Closes the user/kernel channel; costs decode bandwidth.
- **Privilege-level partitioning** (`privilege_partition_uop_cache`):
  user and kernel code index disjoint halves.  Also closes the
  user/kernel channel -- but, as the paper notes, does *not* stop
  variant-1, whose priming and probing both run in user space.
- **Performance-counter monitoring**: a sliding-window anomaly
  detector over the DSB miss rate, with the false-positive liability
  the paper warns about.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.crossdomain import CrossDomainChannel, CrossDomainParams
from repro.core.transient import UopCacheSpectreV1
from repro.cpu.config import CPUConfig
from repro.cpu.counters import PerfCounters


@dataclass
class MitigationOutcome:
    """Channel quality and cost under one configuration."""

    name: str
    signal_delta: float
    error_rate: float
    kernel_cycles: int  # cost proxy: cycles to run the kernel workload

    @property
    def channel_closed(self) -> bool:
        """True when the receiver can no longer separate the bits."""
        return self.error_rate >= 0.25  # indistinguishable from guessing


def _evaluate_crossdomain(
    name: str, config: CPUConfig, payload: bytes = b"\xaa\x55"
) -> MitigationOutcome:
    chan = CrossDomainChannel(config=config)
    timing = chan.calibrate()
    report = chan.transmit(payload)
    return MitigationOutcome(
        name=name,
        signal_delta=timing.delta,
        error_rate=report.error_rate,
        kernel_cycles=report.total_cycles,
    )


def evaluate_crossdomain_mitigations(
    payload: bytes = b"\xaa\x55",
) -> List[MitigationOutcome]:
    """Run the user/kernel channel against: no mitigation, flush at
    crossings, and privilege partitioning."""
    return [
        _evaluate_crossdomain("baseline", CPUConfig.skylake(), payload),
        _evaluate_crossdomain(
            "flush-on-crossing",
            CPUConfig.skylake(flush_uop_cache_on_domain_crossing=True),
            payload,
        ),
        _evaluate_crossdomain(
            "privilege-partition",
            CPUConfig.skylake(privilege_partition_uop_cache=True),
            payload,
        ),
    ]


def variant1_under_partitioning(secret: bytes = b"\x5a") -> Tuple[float, float]:
    """The paper's caveat: privilege partitioning does NOT stop
    variant-1 (priming and probing both happen in user mode).

    Returns (byte_accuracy_baseline, byte_accuracy_partitioned).
    """
    base = UopCacheSpectreV1(secret=secret)
    acc_base = base.leak().byte_accuracy
    part = UopCacheSpectreV1(
        secret=secret,
        config=CPUConfig.skylake(privilege_partition_uop_cache=True),
    )
    acc_part = part.leak().byte_accuracy
    return acc_base, acc_part


# ----------------------------------------------------------------------
# Performance-counter monitoring


@dataclass
class DetectionReport:
    """Sliding-window DSB-miss-rate anomaly detection results."""

    threshold: float
    attack_windows_flagged: int
    attack_windows_total: int
    benign_windows_flagged: int
    benign_windows_total: int

    @property
    def detection_rate(self) -> float:
        """Fraction of attack windows flagged."""
        if not self.attack_windows_total:
            return 0.0
        return self.attack_windows_flagged / self.attack_windows_total

    @property
    def false_positive_rate(self) -> float:
        """Fraction of benign windows flagged (the mimicry liability)."""
        if not self.benign_windows_total:
            return 0.0
        return self.benign_windows_flagged / self.benign_windows_total


def collect_benign_windows(
    names: Optional[Sequence[str]] = None,
    rounds: int = 3,
) -> List[int]:
    """DSB-miss counts per benign observation window.

    Each window is one run of one workload from
    :mod:`repro.workloads` -- giving the monitor a baseline with
    honest cross-workload variance rather than synthetic numbers.
    """
    from repro.workloads import WORKLOADS, run_workload

    windows = []
    for name in (names or sorted(WORKLOADS)):
        for _ in range(rounds):
            result = run_workload(name)
            windows.append(result.counters.dsb_misses)
    return windows


def collect_attack_windows(bits: int = 16) -> List[int]:
    """DSB-miss counts per attack window (one covert-channel bit)."""
    from repro.core.covert import ChannelParams, CovertChannel

    chan = CovertChannel(ChannelParams(samples=1, calibration_rounds=2))
    chan.calibrate()
    windows = []
    for i in range(bits):
        before = chan.core.counters().snapshot()
        chan.send_bits([i & 1])
        windows.append(chan.core.counters().delta(before).dsb_misses)
    return windows


class UopCacheMonitor:
    """Counts DSB misses per observation window and flags windows whose
    miss count exceeds a threshold learned from a benign baseline."""

    def __init__(self, sigma: float = 3.0):
        self.sigma = sigma
        self.threshold: Optional[float] = None

    def train(self, benign_windows: Sequence[int]) -> float:
        """Fit the threshold as mean + sigma * stdev of benign windows."""
        mean = statistics.fmean(benign_windows)
        sd = statistics.stdev(benign_windows) if len(benign_windows) > 1 else 0.0
        self.threshold = mean + self.sigma * sd
        return self.threshold

    def flag(self, window: int) -> bool:
        """True if this window's DSB miss count looks anomalous."""
        if self.threshold is None:
            raise RuntimeError("train() the monitor first")
        return window > self.threshold

    def evaluate(
        self,
        benign_windows: Sequence[int],
        attack_windows: Sequence[int],
    ) -> DetectionReport:
        """Train on half the benign trace, evaluate on the rest."""
        split = max(2, len(benign_windows) // 2)
        self.train(benign_windows[:split])
        held_out = benign_windows[split:]
        return DetectionReport(
            threshold=self.threshold,
            attack_windows_flagged=sum(1 for w in attack_windows if self.flag(w)),
            attack_windows_total=len(attack_windows),
            benign_windows_flagged=sum(1 for w in held_out if self.flag(w)),
            benign_windows_total=len(held_out),
        )
