"""Micro-op cache characterization experiments (Section III).

Each ``measure_*`` function reproduces one figure of the paper and
returns a small result dataclass with the same x/y series the figure
plots.  All of them measure *steady state*: the workload runs once to
warm the structures, then again for the measurement, mirroring the
paper's large fixed sample counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cpu.config import CPUConfig
from repro.cpu.core import Core
from repro.core import microbench


@dataclass
class SeriesResult:
    """One x/y series (Figures 3a, 3b)."""

    x: List[int]
    y: List[float]
    x_label: str
    y_label: str

    def knee(self, factor: float = 4.0) -> Optional[int]:
        """First x where y jumps by ``factor`` over the running floor.

        A crude but robust knee detector used by tests to locate the
        256-line / 8-way capacity cliffs.
        """
        floor = max(1.0, min(self.y) if self.y else 1.0)
        for xi, yi in zip(self.x, self.y):
            if yi > floor * factor and yi > 4.0:
                return xi
        return None


@dataclass
class PlacementResult:
    """Figure 4: micro-ops streamed from the DSB per iteration, as a
    function of region micro-op count, for several region counts."""

    regions: List[int]
    uops_per_region: List[int]
    dsb_uops: Dict[int, List[float]]  # regions -> series over uop counts


@dataclass
class ReplacementResult:
    """Figure 5: the main-loop-vs-evicting-loop iteration matrix."""

    main_iters: List[int]
    evict_iters: List[int]
    matrix: List[List[float]]  # [main][evict] = DSB uops per main pass

    def cell(self, main: int, evict: int) -> float:
        """Matrix value for (main iterations, evict iterations)."""
        return self.matrix[self.main_iters.index(main)][
            self.evict_iters.index(evict)
        ]


@dataclass
class SMTPartitionResult:
    """Figure 6: T1's legacy-decode micro-ops vs loop size, single
    thread versus SMT with a co-runner."""

    sizes: List[int]
    single_thread: List[float]
    smt: List[float]

    def knee_single(self) -> Optional[int]:
        """Capacity knee without a co-runner (expect ~256 regions)."""
        return SeriesResult(self.sizes, self.single_thread, "", "").knee()

    def knee_smt(self) -> Optional[int]:
        """Capacity knee with a co-runner (expect ~128 regions)."""
        return SeriesResult(self.sizes, self.smt, "", "").knee()


@dataclass
class PartitionGeometryResult:
    """Figure 7: (a) T1 sweeping sets against T2 pinned to set 0;
    (b) number of 8-way groups streamable in single-thread vs SMT."""

    sweep_sets: List[int]
    sweep_t1_mite: List[float]
    sweep_t2_mite: List[float]
    group_counts: List[int]
    groups_single: List[float]
    groups_smt: List[float]


# ----------------------------------------------------------------------
# Per-point kernels
#
# Each figure's sweep is a pure function of (config, point params); the
# kernels below measure exactly one point.  The serial ``measure_*``
# sweeps and the parallel harness jobs (``repro.harness.experiments``)
# both call these, so the two paths produce identical numbers by
# construction.


def size_point(config: CPUConfig, n: int, iters: int) -> float:
    """Legacy-decode uops/iter for one Listing-1 loop size."""
    core = Core(config, microbench.size_loop(n, iters))
    core.call("main")  # warm
    delta = core.call("main")
    return delta.uops_legacy / iters


def associativity_point(config: CPUConfig, n: int, iters: int) -> float:
    """Legacy-decode uops/iter for ``n`` same-set regions (Listing 2)."""
    core = Core(config, microbench.assoc_loop(n, iters))
    core.call("main")
    delta = core.call("main")
    return delta.uops_legacy / iters


def placement_point(
    config: CPUConfig, nregions: int, uops: int, iters: int
) -> float:
    """DSB uops/iter for one (region count, uops/region) cell."""
    prog = microbench.placement_loop(nregions, uops - 1, iters)
    core = Core(config, prog)
    core.call("main")
    delta = core.call("main")
    return delta.uops_dsb / iters


def replacement_point(
    config: CPUConfig, main_iters: int, evict_iters: int, rounds: int
) -> float:
    """Steady-state DSB uops per main pass for one (M, E) cell of the
    Figure 5 interleaving matrix."""
    core = Core(config, microbench.replacement_pair())
    total = 0
    measured = 0
    for r in range(rounds):
        for _ in range(main_iters):
            delta = core.call("main_0")
            if r >= rounds // 2:
                total += delta.uops_dsb
                measured += 1
        for _ in range(evict_iters):
            core.call("ev_0")
    return total / measured


def smt_partitioning_point(
    config: CPUConfig, n: int, iters: int, t2_kind: str = "pause"
) -> Dict[str, float]:
    """Single-thread and SMT legacy uops/iter for one loop size."""
    prog = microbench.smt_pair(n, iters, t2_kind=t2_kind)
    core = Core(config, prog)
    core.call("t1")
    delta = core.call("t1")
    single = delta.uops_legacy / iters

    # steady state in SMT mode: difference between a long and a
    # short run cancels the cold-start fills.
    prog_long = microbench.smt_pair(n, iters * 2, t2_kind=t2_kind)
    d1_long, _ = Core(config, prog_long).run_smt(("t1", "t2"))
    d1_short, _ = Core(config, prog).run_smt(("t1", "t2"))
    smt = (d1_long.uops_legacy - d1_short.uops_legacy) / iters
    return {"single": single, "smt": smt}


def geometry_sweep_point(
    config: CPUConfig, set_index: int, iters: int
) -> Dict[str, float]:
    """Figure 7a: T1 at ``set_index`` vs T2 hammering set 0."""
    prog = microbench.partition_probe_pair(t1_set=set_index, iters=iters)
    prog_long = microbench.partition_probe_pair(
        t1_set=set_index, iters=iters * 2
    )
    d1_long, d2_long = Core(config, prog_long).run_smt(("t1", "t2"))
    d1_short, d2_short = Core(config, prog).run_smt(("t1", "t2"))
    return {
        "t1": (d1_long.uops_legacy - d1_short.uops_legacy) / iters,
        "t2": (d2_long.uops_legacy - d2_short.uops_legacy) / iters,
    }


def geometry_groups_point(
    config: CPUConfig, n_groups: int, iters: int
) -> Dict[str, float]:
    """Figure 7b: stream ``n_groups`` 8-way groups, single vs SMT."""
    prog = microbench.eight_block_regions(n_groups, iters)
    core = Core(config, prog)
    core.call("main")
    delta = core.call("main")
    single = delta.uops_legacy / iters

    asm_prog = _dual_groups(n_groups, iters)
    long_prog = _dual_groups(n_groups, iters * 2)
    d1_long, _ = Core(config, long_prog).run_smt(("t1", "t2"))
    d1_short, _ = Core(config, asm_prog).run_smt(("t1", "t2"))
    smt = (d1_long.uops_legacy - d1_short.uops_legacy) / iters
    return {"single": single, "smt": smt}


# ----------------------------------------------------------------------
# Figure 3a -- size


def measure_size(
    config: Optional[CPUConfig] = None,
    sizes: Sequence[int] = tuple(range(8, 385, 8)),
    iters: int = 12,
) -> SeriesResult:
    """Sweep the Listing 1 loop size; the y-axis jumps once the loop
    exceeds the cache's 256 lines."""
    config = config or CPUConfig.skylake()
    ys = [size_point(config, n, iters) for n in sizes]
    return SeriesResult(
        list(sizes), ys, "32-byte regions in loop", "legacy-decode uops/iter"
    )


# ----------------------------------------------------------------------
# Figure 3b -- associativity


def measure_associativity(
    config: Optional[CPUConfig] = None,
    ways: Sequence[int] = tuple(range(1, 15)),
    iters: int = 12,
) -> SeriesResult:
    """Sweep same-set regions (Listing 2); the y-axis rises past the
    8-way associativity."""
    config = config or CPUConfig.skylake()
    ys = [associativity_point(config, n, iters) for n in ways]
    return SeriesResult(
        list(ways), ys, "same-set regions in loop", "legacy-decode uops/iter"
    )


# ----------------------------------------------------------------------
# Figure 4 -- placement rules


def measure_placement(
    config: Optional[CPUConfig] = None,
    region_counts: Sequence[int] = (2, 4, 8),
    uop_counts: Sequence[int] = tuple(range(1, 25)),
    iters: int = 12,
) -> PlacementResult:
    """Sweep micro-ops per region for 2/4/8-region loops (Listing 3)."""
    config = config or CPUConfig.skylake()
    result = PlacementResult(
        regions=list(region_counts),
        uops_per_region=list(uop_counts),
        dsb_uops={},
    )
    for nregions in region_counts:
        result.dsb_uops[nregions] = [
            placement_point(config, nregions, uops, iters)
            for uops in uop_counts
        ]
    return result


# ----------------------------------------------------------------------
# Figure 5 -- replacement policy


def measure_replacement(
    config: Optional[CPUConfig] = None,
    main_iters: Sequence[int] = tuple(range(1, 13)),
    evict_iters: Sequence[int] = tuple(range(0, 13)),
    rounds: int = 16,
) -> ReplacementResult:
    """Interleave the main and evicting loops (both 8 ways of set 0)
    and measure the main loop's DSB delivery in steady state."""
    config = config or CPUConfig.skylake()
    matrix: List[List[float]] = [
        [replacement_point(config, m, e, rounds) for e in evict_iters]
        for m in main_iters
    ]
    return ReplacementResult(list(main_iters), list(evict_iters), matrix)


# ----------------------------------------------------------------------
# Figure 6 -- SMT partitioning


def measure_smt_partitioning(
    config: Optional[CPUConfig] = None,
    sizes: Sequence[int] = tuple(range(16, 321, 16)),
    iters: int = 12,
    t2_kind: str = "pause",
) -> SMTPartitionResult:
    """T1 sweeps its loop size while T2 pauses or pointer-chases; under
    Intel's static partitioning T1's capacity knee halves in SMT mode
    regardless of what T2 executes."""
    config = config or CPUConfig.skylake()
    single, smt = [], []
    for n in sizes:
        point = smt_partitioning_point(config, n, iters, t2_kind)
        single.append(point["single"])
        smt.append(point["smt"])
    return SMTPartitionResult(list(sizes), single, smt)


# ----------------------------------------------------------------------
# Figure 7 -- partition geometry


def measure_partition_geometry(
    config: Optional[CPUConfig] = None,
    sweep_sets: Sequence[int] = tuple(range(0, 32, 2)),
    group_counts: Sequence[int] = (4, 8, 12, 16, 20, 24, 28, 32, 36),
    iters: int = 10,
) -> PartitionGeometryResult:
    """(a) Move T1's 8-way group across sets while T2 hammers set 0:
    with 16 private 8-way sets per thread, neither thread ever misses.
    (b) Stream N consecutive 8-way groups: 32 fit single-threaded, 16
    in SMT mode."""
    config = config or CPUConfig.skylake()
    sweep_t1, sweep_t2 = [], []
    for s in sweep_sets:
        point = geometry_sweep_point(config, s, iters)
        sweep_t1.append(point["t1"])
        sweep_t2.append(point["t2"])

    groups_single, groups_smt = [], []
    for n in group_counts:
        point = geometry_groups_point(config, n, iters)
        groups_single.append(point["single"])
        groups_smt.append(point["smt"])
    return PartitionGeometryResult(
        list(sweep_sets), sweep_t1, sweep_t2,
        list(group_counts), groups_single, groups_smt,
    )


def _dual_groups(n_groups: int, iters: int):
    """Both threads streaming ``n_groups`` 8-way groups."""
    from repro.isa.assembler import Assembler

    asm = Assembler()
    microbench.emit_eight_blocks(
        asm, "t1", n_groups, iters, arena=0x40_1000
    )
    microbench.emit_eight_blocks(
        asm, "t2", n_groups, iters, arena=0x50_1000, loop_reg="r2"
    )
    return asm.assemble(entry="t1")
