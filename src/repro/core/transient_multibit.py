"""Jump-table variant-1: leaking multiple bits per transient window.

Section VI-A notes that the bit-by-bit attack leaves "significant
additional room for bandwidth optimizations (for example, using a jump
table)".  This module implements that future-work suggestion: the
transient gadget masks ``k`` bits of the secret and makes an indirect
call through a ``2^k``-entry table of transmitters, each with a
*disjoint* micro-op cache footprint.  The attacker probes every group
and picks the one that got trampled -- ``k`` bits per victim
invocation instead of one.

The mechanism stacks two of the paper's primitives: the bounds-check
bypass (variant-1) and the predicted-indirect-target fetch (variant-2).
Within the transient window the indirect call first follows its
trained prediction, then -- once the table load resolves -- the
misprediction resteers transient fetch to the *actual* secret-dependent
transmitter, whose fetch fills its group's sets.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.exploitgen import FootprintSpec, emit_chain, emit_probe, striped_sets
from repro.core.transient import ARRAY_BYTES, AttackStats
from repro.cpu.config import CPUConfig
from repro.cpu.noise import NoiseModel
from repro.errors import ConfigError
from repro.isa import encodings as enc
from repro.isa.assembler import Assembler
from repro.lint.gadgets import ChainClaim, PairClaim
from repro.lint.taint import SecretClaim
from repro.session import AttackSession

_PROBE_ARENAS = 0x44_0000
_SEND_ARENAS = 0x60_0000
_ARENA_STRIDE = 0x4_0000


@dataclass
class SymbolCalibration:
    """Per-group probe baselines for both channel states."""

    quiet: List[float]  # mean probe time when the group was NOT hit
    loud: List[float]  # mean probe time when the group WAS hit

    def classify(self, times: List[float]) -> int:
        """Pick the symbol whose group looks most trampled."""
        scores = []
        for g, t in enumerate(times):
            span = max(self.loud[g] - self.quiet[g], 1.0)
            scores.append((t - self.quiet[g]) / span)
        return max(range(len(times)), key=lambda g: scores[g])


class JumpTableSpectre(AttackSession):
    """Multi-bit variant-1 using a transmitter jump table.

    ``bits_per_symbol`` of the secret byte are leaked per victim
    invocation (1..3; the group count ``2^k`` times ``sets_per_group``
    must fit in 32 sets).
    """

    TRAIN_BASE = 16  # array[16 + s] == s for every symbol s (public)

    def __init__(
        self,
        secret: bytes,
        bits_per_symbol: int = 2,
        sets_per_group: int = 4,
        probe_ways: int = 8,
        transmit_ways: int = 3,
        samples: int = 3,
        config: Optional[CPUConfig] = None,
        noise: Optional[NoiseModel] = None,
    ):
        if not 1 <= bits_per_symbol <= 3:
            raise ConfigError("bits_per_symbol must be 1..3")
        if 8 % bits_per_symbol:
            raise ConfigError("bits_per_symbol must divide 8")
        self.secret = secret
        self.bits = bits_per_symbol
        self.groups = 1 << bits_per_symbol
        self.sets_per_group = sets_per_group
        if self.groups * sets_per_group > 32:
            raise ConfigError("group footprints exceed 32 sets")
        self.probe_ways = probe_ways
        self.transmit_ways = transmit_ways
        self.samples = samples
        super().__init__(config or CPUConfig.skylake(), noise)

    def setup(self) -> None:
        # Transmitter jump table: resolved after assembly (and after
        # every reset, which re-images data memory).
        table = self.core.addr_of("transmit_table")
        for g in range(self.groups):
            self.core.write_mem(
                table + 8 * g, self.core.addr_of(f"send_{g}")
            )
        self.calibration: Optional[SymbolCalibration] = None

    # ------------------------------------------------------------------

    def _group_sets(self, g: int) -> Tuple[int, ...]:
        all_sets = striped_sets(self.groups * self.sets_per_group)
        return all_sets[g::self.groups]

    def build_program(self):
        asm = Assembler()
        asm.reserve("probe_results", 8 * self.groups)
        array_addr = asm.reserve(
            "array", ARRAY_BYTES + len(self.secret) + 64, align=64
        )
        asm.label_at("secret", array_addr + ARRAY_BYTES)
        asm.data("array_size", (ARRAY_BYTES).to_bytes(8, "little"))
        asm.reserve("transmit_table", 8 * self.groups)

        self._lint_claims = []
        self._lint_pairs = []
        for g in range(self.groups):
            sets = self._group_sets(g)
            probe_spec = FootprintSpec(
                sets, self.probe_ways, _PROBE_ARENAS + g * _ARENA_STRIDE
            )
            send_spec = FootprintSpec(
                sets, self.transmit_ways, _SEND_ARENAS + g * _ARENA_STRIDE,
                nops_per_region=1, lcp_per_nop=0, jmp_lcp=0,
            )
            emit_probe(asm, f"probe_{g}", probe_spec, "probe_results")
            emit_chain(asm, f"send_{g}", send_spec, exit_kind="ret")
            self._lint_claims += [
                ChainClaim(f"probe_{g}", probe_spec, "probe"),
                ChainClaim(f"send_{g}", send_spec, "tiger"),
            ]
            # Each symbol's transmitter must contend with its own
            # group's probe and stay clear of every other group's:
            # group separation is the whole multi-bit mechanism.
            self._lint_pairs.append(
                PairClaim(f"send_{g}", f"probe_{g}", "conflict")
            )
            for h in range(g):
                self._lint_pairs.append(
                    PairClaim(f"send_{g}", f"probe_{h}", "disjoint")
                )
                self._lint_pairs.append(
                    PairClaim(f"send_{h}", f"probe_{g}", "disjoint")
                )

        # Victim: r1 = index, r2 = symbol shift (bits * symbol_index).
        asm.org(0x40_0040)
        asm.label("victim")
        asm.emit(enc.mov_imm("r10", asm.resolve("array_size"), width=64))
        asm.emit(enc.load("r3", "r10"))
        asm.emit(enc.cmp_reg("r1", "r3"))
        asm.emit(enc.jcc("ae", "vm_oob"))
        asm.emit(enc.mov_imm("r9", asm.resolve("array"), width=64))
        asm.emit(enc.load("r4", "r9", index="r1", size=1))
        asm.emit(enc.alu("shr", "r4", "r2"))
        asm.emit(enc.alu_imm("and", "r4", self.groups - 1))
        asm.emit(enc.alu_imm("shl", "r4", 3))
        asm.emit(enc.mov_imm("r8", asm.resolve("transmit_table"), width=64))
        asm.emit(enc.load("r5", "r8", index="r4"))
        asm.emit(enc.call_ind("r5"))
        asm.label("vm_oob")
        asm.emit(enc.ret())

        asm.align(64)
        asm.label("invoke_victim")
        asm.emit(enc.call("victim"))
        asm.emit(enc.halt())
        asm.align(64)
        asm.label("flush_size")
        asm.emit(enc.mov_imm("r13", asm.resolve("array_size"), width=64))
        asm.emit(enc.clflush("r13"))
        asm.emit(enc.halt())
        # The masked symbol steers an indirect call through
        # transmit_table (written post-assembly in setup()), so the
        # claim enumerates the 2^k transmitters as landing sites.
        self._lint_secrets = [
            SecretClaim(
                name="secret", entry="victim", label="secret",
                size=len(self.secret) or 1,
                indirect_targets=tuple(
                    f"send_{g}" for g in range(self.groups)
                ),
                leaks_to=("dsb", "itlb"),
            )
        ]
        return asm.assemble(entry="victim")

    def _install_data(self) -> None:
        base = self.core.addr_of("secret")
        for i, byte in enumerate(self.secret):
            self.core.write_mem(base + i, byte, size=1)
        array = self.core.addr_of("array")
        for s in range(self.groups):
            self.core.write_mem(array + self.TRAIN_BASE + s, s, size=1)

    def _probe_all(self) -> List[float]:
        times = []
        result = self.core.addr_of("probe_results")
        for g in range(self.groups):
            self._call(f"probe_{g}")
            times.append(self._elapsed(result))
        return times

    def _episode(self, index: int, shift: int) -> List[float]:
        self._call("invoke_victim",
                   regs={"r1": self.TRAIN_BASE, "r2": 0})  # (re)train
        self._probe_all()  # prime
        self._call("flush_size")
        self._call("invoke_victim", regs={"r1": index, "r2": shift})
        return self._probe_all()

    # ------------------------------------------------------------------

    def calibrate(self, rounds: int = 4) -> SymbolCalibration:
        """Measure each group's probe in both states using *public*
        in-bounds array values that encode every symbol."""
        self._install_data()
        quiet = [[] for _ in range(self.groups)]
        loud = [[] for _ in range(self.groups)]
        for _ in range(rounds):
            for s in range(self.groups):
                times = self._episode(self.TRAIN_BASE + s, 0)
                for g in range(self.groups):
                    (loud if g == s else quiet)[g].append(times[g])
        self.calibration = SymbolCalibration(
            quiet=[statistics.fmean(q) for q in quiet],
            loud=[statistics.fmean(l) for l in loud],
        )
        return self.calibration

    def leak_symbol(self, byte_index: int, symbol_index: int) -> int:
        """Leak ``bits_per_symbol`` bits of one secret byte."""
        if self.calibration is None:
            self.calibrate()
        oob = ARRAY_BYTES + byte_index
        shift = self.bits * symbol_index
        self._episode(oob, shift)  # warm-up: pull the secret into L1D
        votes = []
        for _ in range(self.samples):
            times = self._episode(oob, shift)
            votes.append(self.calibration.classify(times))
        return max(set(votes), key=votes.count)

    def leak(self, nbytes: Optional[int] = None) -> AttackStats:
        """Leak the secret, ``bits_per_symbol`` bits per episode."""
        if self.calibration is None:
            self.calibrate()
        nbytes = nbytes if nbytes is not None else len(self.secret)
        self.total_cycles = 0
        before = self.core.counters().snapshot()
        symbols_per_byte = 8 // self.bits
        leaked = bytearray()
        for k in range(nbytes):
            value = 0
            for s in range(symbols_per_byte):
                value |= self.leak_symbol(k, s) << (self.bits * s)
            leaked.append(value)
        return AttackStats(
            leaked=bytes(leaked),
            secret=self.secret[:nbytes],
            total_cycles=self.total_cycles,
            freq_ghz=self.config.freq_ghz,
            counters=self.core.counters().delta(before),
        )
