"""Characterization microbenchmark generators (Listings 1-3 and the
SMT workloads of Section III).

Every builder returns an assembled :class:`~repro.isa.program.Program`
whose entry point runs the benchmark loop for a register-controlled
iteration count and halts.  Loop iteration counts are baked in at build
time (``mov r1, iters``), mirroring the papers' fixed 3000-sample
loops; harnesses take counter deltas around calls instead of relying
on a fixed warm-up.
"""

from __future__ import annotations

from typing import Optional

from repro.isa import encodings as enc
from repro.isa.assembler import Assembler
from repro.isa.program import Program

#: Default loop-counter register used by all generated benchmarks.
LOOP_REG = "r1"


def size_loop(n_regions: int, iters: int, base: int = 0x40_0000) -> Program:
    """Listing 1: a loop of ``n_regions`` aligned 32-byte regions, each
    ``nop15; nop15; nop2`` (three micro-ops, one cache line)."""
    asm = Assembler(base=base)
    asm.label("main")
    asm.emit(enc.mov_imm(LOOP_REG, iters))
    asm.align(32)
    asm.label("top")
    for _ in range(n_regions):
        asm.align(32)
        asm.emit(enc.nop(15), enc.nop(15), enc.nop(2))
    asm.emit(enc.dec(LOOP_REG))
    asm.emit(enc.jcc("nz", "top"))
    asm.emit(enc.halt())
    return asm.assemble(entry="main")


def assoc_loop(n_ways: int, iters: int, base: int = 0x40_0000) -> Program:
    """Listing 2: ``n_ways`` regions aligned 1024 bytes apart (all in
    set 0), each containing a single unconditional jump to the next."""
    asm = Assembler(base=base)
    asm.label("main")
    asm.emit(enc.mov_imm(LOOP_REG, iters))
    asm.emit(enc.jmp("region_0"))
    for i in range(n_ways):
        asm.align(1024, pad=False)
        asm.label(f"region_{i}")
        target = f"region_{i + 1}" if i + 1 < n_ways else "exit"
        asm.emit(enc.jmp(target))
    asm.align(32, pad=False)
    asm.label("exit")
    asm.emit(enc.dec(LOOP_REG))
    asm.emit(enc.jcc("nz", "region_0"))
    asm.emit(enc.halt())
    return asm.assemble(entry="main")


def placement_loop(
    n_regions: int, nops_per_region: int, iters: int, base: int = 0x40_0000
) -> Program:
    """Listing 3: regions of ``nops_per_region`` one-byte NOPs plus a
    jump, aligned 1024 bytes apart; micro-ops per region is therefore
    ``nops_per_region + 1`` (0..27 one-byte NOPs fit before the jump)."""
    if nops_per_region + 5 > 32:
        raise ValueError("region body exceeds 32 bytes")
    asm = Assembler(base=base)
    asm.label("main")
    asm.emit(enc.mov_imm(LOOP_REG, iters))
    asm.emit(enc.jmp("region_0"))
    for i in range(n_regions):
        asm.align(1024, pad=False)
        asm.label(f"region_{i}")
        for _ in range(nops_per_region):
            asm.emit(enc.nop(1))
        target = f"region_{i + 1}" if i + 1 < n_regions else "exit"
        asm.emit(enc.jmp(target))
    asm.align(32, pad=False)
    asm.label("exit")
    asm.emit(enc.dec(LOOP_REG))
    asm.emit(enc.jcc("nz", "region_0"))
    asm.emit(enc.halt())
    return asm.assemble(entry="main")


def replacement_pair(base: int = 0x40_0000) -> Program:
    """Figure 5 workload: two independent 8-way loops ("main" and
    "evict"), each jumping through eight full 6-micro-op lines of set
    0.  Entries: ``main_0`` and ``ev_0``; each pass runs once and
    halts, so the harness interleaves passes freely."""
    asm = Assembler(base=base)

    def loop(prefix: str) -> None:
        for i in range(8):
            asm.align(1024, pad=False)
            asm.label(f"{prefix}_{i}")
            for _ in range(5):
                asm.emit(enc.nop(1))
            target = f"{prefix}_{i + 1}" if i < 7 else f"{prefix}_exit"
            asm.emit(enc.jmp(target))
        asm.align(32, pad=False)
        asm.label(f"{prefix}_exit")
        asm.emit(enc.halt())

    loop("main")
    asm.align(32768, pad=False)
    loop("ev")
    return asm.assemble(entry="main_0")


def smt_pair(
    n_regions: int,
    iters: int,
    t2_kind: str = "pause",
    t2_iters: int = 2000,
    base: int = 0x40_0000,
) -> Program:
    """Figure 6 workload: T1 runs a Listing-1-style region loop; T2
    runs either a PAUSE loop or a pointer-chasing loop that misses in
    the data cache.  Entries: ``t1`` and ``t2``."""
    asm = Assembler(base=base)
    asm.label("t1")
    asm.emit(enc.mov_imm(LOOP_REG, iters))
    asm.align(32)
    asm.label("t1_top")
    for _ in range(n_regions):
        asm.align(32)
        asm.emit(enc.nop(15), enc.nop(15), enc.nop(2))
    asm.emit(enc.dec(LOOP_REG))
    asm.emit(enc.jcc("nz", "t1_top"))
    asm.emit(enc.halt())

    asm.align(4096)
    asm.label("t2")
    asm.emit(enc.mov_imm("r2", t2_iters))
    if t2_kind == "pause":
        asm.label("t2_top")
        asm.emit(enc.pause())
        asm.emit(enc.dec("r2"))
        asm.emit(enc.jcc("nz", "t2_top"))
        asm.emit(enc.halt())
    elif t2_kind == "chase":
        # Pointer chase through a sparse chain: r3 = *r3 repeatedly.
        chain_len = 512
        stride = 4096  # one page apart: misses all the way down
        chain_base = asm.reserve("t2_chain", chain_len * stride, align=4096)
        chain = bytearray()
        for i in range(chain_len):
            nxt = chain_base + ((i + 1) % chain_len) * stride
            entry = nxt.to_bytes(8, "little") + bytes(stride - 8)
            chain.extend(entry)
        asm.patch_data("t2_chain", bytes(chain))
        asm.emit(enc.mov_imm("r3", asm.resolve("t2_chain"), width=64))
        asm.label("t2_top")
        asm.emit(enc.load("r3", "r3"))
        asm.emit(enc.dec("r2"))
        asm.emit(enc.jcc("nz", "t2_top"))
        asm.emit(enc.halt())
    else:
        raise ValueError(f"unknown t2 workload {t2_kind!r}")
    return asm.assemble(entry="t1")


def emit_eight_blocks(
    asm: Assembler,
    entry_name: str,
    n_groups: int,
    iters: int,
    first_set: int = 0,
    arena: int = 0x40_1000,
    loop_reg: str = LOOP_REG,
) -> None:
    """Emit a Figure-7-style loop into an existing assembler.

    ``n_groups`` groups of eight 32-byte blocks; group g's blocks all
    map to set ``first_set + g`` and fill its eight ways.  The loop at
    label ``entry_name`` jumps through every block, ``iters`` times.
    """
    blocks = []
    for g in range(n_groups):
        # Past 32 groups the set indices wrap; keep the addresses
        # distinct by moving to the next 32 KiB "bank", as a contiguous
        # code layout naturally would.
        bank = (g // 32) * (32 * 1024)
        for w in range(8):
            blocks.append(
                arena + bank + w * 1024 + ((first_set + g) % 32) * 32
            )
    blocks.sort()
    exit_addr = arena + 9 * 1024 + ((first_set + 31) % 32) * 32
    asm.org(arena + 8 * 1024 + ((first_set + 31) % 32) * 32)
    asm.label(entry_name)
    asm.emit(enc.mov_imm(loop_reg, iters))
    asm.emit(enc.jmp(f"{entry_name}_b0"))
    for i, addr in enumerate(blocks):
        asm.org(addr)
        asm.label(f"{entry_name}_b{i}")
        for _ in range(5):
            asm.emit(enc.nop(1))
        target = (
            f"{entry_name}_b{i + 1}" if i + 1 < len(blocks) else f"{entry_name}_x"
        )
        asm.emit(enc.jmp(target))
    asm.org(exit_addr)
    asm.label(f"{entry_name}_x")
    asm.emit(enc.dec(loop_reg))
    asm.emit(enc.jcc("nz", f"{entry_name}_b0"))
    asm.emit(enc.halt())


def eight_block_regions(
    n_groups: int,
    iters: int,
    first_set: int = 0,
    base: int = 0x40_0000,
    entry_name: str = "main",
) -> Program:
    """Standalone Figure 7 workload (see :func:`emit_eight_blocks`)."""
    asm = Assembler(base=base)
    emit_eight_blocks(
        asm, entry_name, n_groups, iters, first_set, arena=base + 0x1000
    )
    return asm.assemble(entry=entry_name)


def partition_probe_pair(
    t1_set: int,
    t2_set: int = 0,
    iters: int = 8,
    base: int = 0x40_0000,
) -> Program:
    """Figure 7a workload: T1 fills the eight ways of ``t1_set`` while
    T2 fills the eight ways of ``t2_set``, concurrently.  Entries:
    ``t1`` and ``t2`` (T2 uses loop register r2)."""
    asm = Assembler(base=base)
    emit_eight_blocks(asm, "t1", 1, iters, first_set=t1_set, arena=base + 0x1000)
    emit_eight_blocks(
        asm, "t2", 1, iters, first_set=t2_set, arena=base + 0x10_0000,
        loop_reg="r2",
    )
    return asm.assemble(entry="t1")
