"""Assembles the paper's evaluation tables from the attack modules.

- :func:`table1` -- bandwidth and error rate for the four channel
  modes (same address space, user/kernel, cross-SMT, transient), raw
  and with Reed-Solomon error correction.
- :func:`table2` -- the Spectre-v1 vs micro-op-cache-Spectre
  comparison: time, LLC references/misses, micro-op cache miss
  penalty.

Formatting helpers render results as aligned text tables for the
benchmark harnesses and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.coding.reed_solomon import RSCodec
from repro.core.covert import ChannelParams, ChannelReport, CovertChannel
from repro.core.crossdomain import CrossDomainChannel, CrossDomainParams
from repro.core.smtchannel import SMTChannel, SMTChannelParams
from repro.core.transient import ClassicSpectreV1, UopCacheSpectreV1
from repro.cpu.noise import NoiseModel


@dataclass
class Table1Row:
    """One mode of Table I."""

    mode: str
    error_rate: float
    bandwidth_kbps: float
    corrected_bandwidth_kbps: float

    def format(self) -> str:
        """Fixed-width row rendering."""
        return (
            f"{self.mode:32s} {self.error_rate * 100:7.2f}% "
            f"{self.bandwidth_kbps:10.2f} {self.corrected_bandwidth_kbps:10.2f}"
        )


def _row(mode: str, report: ChannelReport, ecc_overhead: float = 1.2) -> Table1Row:
    corrected = report.bandwidth_kbps / ecc_overhead
    return Table1Row(mode, report.error_rate, report.bandwidth_kbps, corrected)


#: Table I channel modes, in the paper's row order.
TABLE1_MODES = (
    "Same address space",
    "Same address space (User/Kernel)",
    "Cross-thread (SMT)",
    "Transient Execution Attack",
)

#: Covert-channel modes added by the contention suite
#: (:mod:`repro.contention.channels`): the same Table-I protocol and
#: statistics, leaking through non-DSB shared resources.
CONTENTION_MODES = (
    "Cross-thread iTLB (SMT)",
    "Cross-thread store buffer (SMT)",
)


def table1_row(
    mode: str,
    payload: bytes = b"uop cache leaks!",
    noise: Optional[NoiseModel] = None,
    noise_seed: int = 17,
) -> Table1Row:
    """Regenerate one mode of Table I.

    Each row is an independent experiment (its own channel instance and
    noise stream), which is what lets the batch harness compute the
    four rows in parallel while matching :func:`table1` exactly.
    """
    if noise is None:
        noise = NoiseModel(evict_prob=0.01, jitter_sd=25.0, seed=noise_seed)
    if mode == "Same address space":
        chan = CovertChannel(ChannelParams(), noise=noise)
        return _row(mode, chan.transmit(payload))
    if mode == "Same address space (User/Kernel)":
        xdom = CrossDomainChannel(CrossDomainParams(), noise=noise)
        return _row(mode, xdom.transmit(payload))
    if mode == "Cross-thread (SMT)":
        smt = SMTChannel(SMTChannelParams(), noise=noise)
        return _row(mode, smt.transmit(payload))
    if mode == "Transient Execution Attack":
        attack = UopCacheSpectreV1(secret=payload, noise=noise)
        stats = attack.leak()
        return _row(mode, attack.channel_report(stats))
    if mode == "Cross-thread iTLB (SMT)":
        # Imported lazily: repro.contention builds on the session and
        # lint layers and is only needed for its own rows.
        from repro.contention.channels import ITLBChannel

        return _row(mode, ITLBChannel(noise=noise).transmit(payload))
    if mode == "Cross-thread store buffer (SMT)":
        from repro.contention.channels import StoreBufferChannel

        return _row(mode, StoreBufferChannel(noise=noise).transmit(payload))
    raise ValueError(
        f"unknown Table I mode {mode!r}; choose from "
        f"{TABLE1_MODES + CONTENTION_MODES}"
    )


def table1(
    payload: bytes = b"uop cache leaks!",
    noise: Optional[NoiseModel] = None,
    noise_seed: int = 17,
) -> List[Table1Row]:
    """Regenerate Table I: all four channel modes.

    ``noise`` defaults to a mild interference model so error rates are
    realistic (the simulator is otherwise deterministic and error-free;
    see DESIGN.md).
    """
    return [
        table1_row(mode, payload, noise=noise, noise_seed=noise_seed)
        for mode in TABLE1_MODES
    ]


@dataclass
class Table2Row:
    """One attack of Table II."""

    attack: str
    seconds: float
    llc_references: int
    llc_misses: int
    uop_cache_penalty_cycles: int
    byte_accuracy: float

    def format(self) -> str:
        """Fixed-width row rendering."""
        return (
            f"{self.attack:24s} {self.seconds:10.6f}s "
            f"{self.llc_references:12d} {self.llc_misses:12d} "
            f"{self.uop_cache_penalty_cycles:14d} {self.byte_accuracy * 100:6.1f}%"
        )


def table2(secret: bytes = b"\xa5\x3c\x5a\xc3") -> List[Table2Row]:
    """Regenerate Table II: classic Spectre-v1 vs the micro-op cache
    variant leaking the same secret.

    Expected shape (paper): the micro-op cache attack is faster, makes
    several-fold fewer LLC references/misses, and shifts the signal
    into the micro-op cache miss penalty.
    """
    classic = ClassicSpectreV1(secret=secret)
    cstats = classic.leak()
    uop = UopCacheSpectreV1(secret=secret)
    ustats = uop.leak()
    return [
        Table2Row(
            "Spectre (original)",
            cstats.seconds,
            cstats.counters.llc_refs,
            cstats.counters.llc_misses,
            cstats.counters.dsb_miss_penalty_cycles,
            cstats.byte_accuracy,
        ),
        Table2Row(
            "Spectre (uop cache)",
            ustats.seconds,
            ustats.counters.llc_refs,
            ustats.counters.llc_misses,
            ustats.counters.dsb_miss_penalty_cycles,
            ustats.byte_accuracy,
        ),
    ]


def format_table(
    header: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a list of rows as an aligned text table."""
    cells = [list(map(str, header))] + [list(map(str, row)) for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(header))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
